//! Property-style integration tests for the filter–verify store search:
//! over ≥ 50-graph stores and across two solver methods, `GedQuery::TopK`
//! and `GedQuery::Range` must return *exactly* the brute-force answer
//! (every stored graph evaluated, same bound refinement) while invoking
//! the solver on strictly fewer candidates — observable through
//! `SearchStats`. `GedQuery::RangeExact` must additionally equal a
//! brute-force τ-bounded **exact** scan, with every pipeline tier firing
//! and `ExactSearchStats` accounting closing to the store size.

use ged_testkit::{assert_same_neighbors as assert_same, property_stores as stores, solver_for};
use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// An engine over the two training-free methods the properties sweep.
fn engine() -> GedEngine {
    ged_testkit::gedgw_classic_engine()
}

/// Brute force over the whole store, exactly as the engine computes it.
fn brute_force(store: &GraphStore, query: &Graph, method: MethodKind) -> Vec<Neighbor> {
    ged_testkit::brute_force_refined(store, query, solver_for(method).as_ref(), None)
}

#[test]
fn top_k_equals_brute_force_across_methods_and_stores() {
    let engine = engine();
    for ds in stores() {
        assert!(ds.len() >= 50);
        // Query with a member of the collection — the similarity-search
        // scenario: close neighbors exist, so the k-th-best threshold
        // tightens and the bounds can discard the far candidates.
        let query = ds.graphs().next().unwrap().clone();
        for method in [MethodKind::Gedgw, MethodKind::Classic] {
            let brute = brute_force(&ds, &query, method);
            let mut pruned_somewhere = false;
            for k in [1usize, 5, 13, ds.len()] {
                let ctx = format!("{}/{}/k={}", ds.kind.name(), method, k);
                let result = engine
                    .top_k_as(method, &query, &ds, k)
                    .expect("valid query");
                assert_same(&result.neighbors, &brute[..k.min(brute.len())], &ctx);
                assert_eq!(result.stats.candidates, ds.len(), "{ctx}");
                assert_eq!(
                    result.stats.pruned() + result.stats.verified,
                    result.stats.candidates,
                    "{ctx}: accounting must close"
                );
                if k < ds.len() / 2 {
                    assert!(
                        result.stats.verified < ds.len(),
                        "{ctx}: must invoke the solver on strictly fewer pairs: {:?}",
                        result.stats
                    );
                }
                pruned_somewhere |= result.stats.pruned() > 0;
            }
            assert!(
                pruned_somewhere,
                "{}/{method}: pruning never fired",
                ds.kind.name()
            );
        }
    }
}

#[test]
fn range_equals_brute_force_across_methods_and_stores() {
    let engine = engine();
    for ds in stores() {
        let query = ds.graphs().next().unwrap().clone();
        for method in [MethodKind::Gedgw, MethodKind::Classic] {
            let brute = brute_force(&ds, &query, method);
            // Thresholds spanning tight to loose, data-derived so every
            // regime is non-trivial.
            let taus = [
                brute[2].ged,
                brute[brute.len() / 4].ged,
                brute[brute.len() / 2].ged,
            ];
            let mut pruned_somewhere = false;
            for tau in taus {
                let ctx = format!("{}/{}/tau={:.3}", ds.kind.name(), method, tau);
                let result = engine
                    .range_as(method, &query, &ds, tau)
                    .expect("valid query");
                let want: Vec<Neighbor> = brute.iter().copied().filter(|n| n.ged <= tau).collect();
                assert_same(&result.neighbors, &want, &ctx);
                assert!(!result.neighbors.is_empty(), "{ctx}: τ chosen non-trivial");
                assert_eq!(
                    result.stats.pruned() + result.stats.verified,
                    result.stats.candidates,
                    "{ctx}: accounting must close"
                );
                pruned_somewhere |= result.stats.pruned() > 0;
                if result.stats.pruned() > 0 {
                    assert!(
                        result.stats.verified < ds.len(),
                        "{ctx}: pruning must save solver calls: {:?}",
                        result.stats
                    );
                }
            }
            assert!(
                pruned_somewhere,
                "{}/{method}: pruning never fired",
                ds.kind.name()
            );
        }
    }
}

#[test]
fn search_stays_consistent_across_incremental_updates() {
    let engine = engine();
    let mut rng = SmallRng::seed_from_u64(44);
    let mut ds = GraphDataset::aids_like(50, &mut rng);
    let query = ged_testkit::external_query(440);

    // Remove the current best, insert a fresh graph, re-query: the store
    // is live, and filter–verify stays exactly brute-force-equal.
    for round in 0..3 {
        let result = engine.top_k(&query, &ds, 5).expect("valid query");
        let brute = brute_force(&ds, &query, MethodKind::Gedgw);
        assert_same(&result.neighbors, &brute[..5], &format!("round {round}"));

        let best = result.neighbors[0].id;
        ds.remove(best);
        let fresh = GraphDataset::aids_like(1, &mut rng)
            .graphs()
            .next()
            .unwrap()
            .clone();
        let new_id = ds.insert(fresh);
        assert!(ds.contains(new_id));
        let rerun = engine.top_k(&query, &ds, ds.len()).expect("valid query");
        assert!(rerun.neighbors.iter().all(|n| n.id != best));
        assert!(rerun.neighbors.iter().any(|n| n.id == new_id));
    }
}

use ged_testkit::brute_range_exact as brute_force_exact;

#[test]
fn range_exact_equals_brute_force_with_every_tier_firing() {
    let engine = engine();
    for ds in stores() {
        assert!(ds.len() >= 50);
        // Query with a member: a GED-0 self-match guarantees the
        // upper-bound tier has something to accept.
        let query = ds.graphs().next().unwrap().clone();
        let mut fired = ExactSearchStats::default();
        for tau in [1usize, 3, 5] {
            let ctx = format!("{}/tau={}", ds.kind.name(), tau);
            let result = engine
                .query(GedQuery::RangeExact {
                    query: &query,
                    store: &ds,
                    tau: tau as f64,
                })
                .expect("valid query")
                .into_range_exact()
                .expect("RangeExact yields RangeExact");

            // Exactly the brute-force τ-bounded scan: same ids, same
            // exact distances, same (ascending id) order.
            let want = brute_force_exact(&ds, &query, tau);
            assert_eq!(result.matches, want, "{ctx}: brute-force equality");
            assert!(!result.matches.is_empty(), "{ctx}: member query matches");
            assert!(
                result.budget_exhausted.is_empty(),
                "{ctx}: unlimited budget never exhausts"
            );
            assert_eq!(
                result.stats.total(),
                ds.len(),
                "{ctx}: accounting must close to the store size: {:?}",
                result.stats
            );
            fired.filtered += result.stats.filtered;
            fired.accepted_early += result.stats.accepted_early;
            fired.verified += result.stats.verified;
        }
        // Every tier must fire on every store across the τ sweep.
        assert!(
            fired.filtered > 0,
            "{}: filter tier never fired",
            ds.kind.name()
        );
        assert!(
            fired.accepted_early > 0,
            "{}: upper-bound accept tier never fired",
            ds.kind.name()
        );
        assert!(
            fired.verified > 0,
            "{}: verify tier never fired",
            ds.kind.name()
        );
    }
}

#[test]
fn range_exact_is_thread_count_invariant() {
    let ds = ged_testkit::aids_store(50, 46);
    let query = ds.graphs().next().unwrap().clone();
    let sequential = ged_testkit::gedgw_engine(1)
        .range_exact(&query, &ds, 4.0)
        .unwrap();
    let parallel = ged_testkit::gedgw_engine(4)
        .range_exact(&query, &ds, 4.0)
        .unwrap();
    assert_eq!(sequential, parallel, "exact answers are thread-independent");
    assert_eq!(sequential.matches, brute_force_exact(&ds, &query, 4));
}

#[test]
fn range_exact_budget_degrades_per_candidate_not_per_query() {
    let ds = ged_testkit::aids_store(50, 47);
    let query = ds.graphs().next().unwrap().clone();
    let build = |budget: usize| {
        ged_testkit::engine_builder(&[MethodKind::Gedgw])
            .threads(2)
            .verify_budget(budget)
            .build()
            .expect("valid configuration")
    };
    let truth = brute_force_exact(&ds, &query, 4);
    for budget in [1usize, 16, usize::MAX] {
        let result = build(budget).range_exact(&query, &ds, 4.0).unwrap();
        assert_eq!(
            result.stats.total(),
            ds.len(),
            "budget={budget}: accounting closes"
        );
        assert_eq!(
            result.stats.budget_exceeded,
            result.budget_exhausted.len(),
            "budget={budget}: stats mirror the undecided list"
        );
        // Everything the budgeted query *did* decide agrees with truth;
        // anything missing is exactly the undecided set.
        for m in &result.matches {
            assert!(
                truth.contains(m),
                "budget={budget}: decided matches are true"
            );
        }
        for t in &truth {
            assert!(
                result.matches.contains(t) || result.budget_exhausted.iter().any(|u| u.id == t.id),
                "budget={budget}: true match {t:?} lost without being reported undecided"
            );
        }
        // Membership evidence that survived the budget must be true: a
        // `known_match_ub` candidate is a real match and the bound holds.
        for u in &result.budget_exhausted {
            if let Some(ub) = u.known_match_ub {
                let t = truth.iter().find(|t| t.id == u.id).unwrap_or_else(|| {
                    panic!("budget={budget}: proven member {u:?} must truly match")
                });
                assert!(t.ged <= ub, "budget={budget}: bound must hold");
            }
        }
    }
    // The unlimited run is the brute-force answer outright.
    let unlimited = build(usize::MAX).range_exact(&query, &ds, 4.0).unwrap();
    assert_eq!(unlimited.matches, truth);
    assert!(unlimited.budget_exhausted.is_empty());
}

#[test]
fn parallel_verification_is_bit_identical_to_sequential() {
    // The verify phase runs through BatchRunner; thread count must never
    // change a search answer.
    let ds = ged_testkit::aids_store(50, 45);
    let query = ged_testkit::external_query(450);
    let sequential = ged_testkit::gedgw_engine(1);
    let parallel = ged_testkit::gedgw_engine(4);
    let a = sequential.top_k(&query, &ds, 7).unwrap();
    let b = parallel.top_k(&query, &ds, 7).unwrap();
    assert_eq!(a.stats, b.stats, "plan is thread-independent");
    assert_same(&a.neighbors, &b.neighbors, "threads=1 vs threads=4");

    let tau = a.neighbors[3].ged;
    let ra = sequential.range(&query, &ds, tau).unwrap();
    let rb = parallel.range(&query, &ds, tau).unwrap();
    assert_eq!(ra.stats, rb.stats);
    assert_same(&ra.neighbors, &rb.neighbors, "range threads=1 vs 4");
}
