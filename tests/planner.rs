//! Planner-on ≡ planner-off property suite: every decision the adaptive
//! [`QueryPlanner`] takes must be **result-invariant** — for any planner
//! state, any query shape, any store kind, and any thread count, the
//! adaptive engine's answers are bit-identical to the static engine's.
//!
//! * bit-identity across all four query shapes × flat/sharded × thread
//!   counts, with the adaptive planner warmed past its observation
//!   threshold first;
//! * adversarial stats priming: skewed warmup workloads (all-discard,
//!   no-discard, collapse-heavy) may steer the EWMAs anywhere — answers
//!   still match the static plan bit for bit;
//! * accounting regression: a planner-skipped pivot tier never breaks
//!   the `ExactSearchStats::total() == store.len()` /
//!   `SearchStats::pruned() + verified == candidates` closure;
//! * strictly-not-more work: with a call-counting solver, the adaptive
//!   engine never makes more solver calls than the static engine on the
//!   same workload, and collapsed (`lb == ub`) verification provably
//!   eliminates calls on pivot-tight workloads;
//! * the `*_by_id` range entry points resolve stored ids and reject
//!   foreign ones with [`GedError::UnknownGraphId`].

use ged_testkit::{
    aids_store, assert_same_neighbors as assert_same, counting_engine_builder, engine_builder,
    external_query, linux_store, sharded_copy,
};
use ot_ged::prelude::*;
use std::sync::atomic::Ordering;

/// Warmup queries to push the planner past its observation threshold.
const WARMUP: usize = 4;

/// A static/adaptive engine pair sharing every other knob.
fn engine_pair(threads: usize, pivots: usize) -> (GedEngine, GedEngine) {
    let build = |adaptive| {
        engine_builder(&[MethodKind::Gedgw])
            .threads(threads)
            .pivots(pivots)
            .adaptive_planner(adaptive)
            .build()
            .expect("valid configuration")
    };
    (build(false), build(true))
}

fn assert_same_exact(got: &RangeExactResult, want: &RangeExactResult, ctx: &str) {
    assert_eq!(got.matches, want.matches, "{ctx}: exact matches");
    assert_eq!(
        got.budget_exhausted, want.budget_exhausted,
        "{ctx}: undecided candidates"
    );
}

/// Runs all four query shapes on both engines and asserts bit-identical
/// answers plus closed accounting totals (per-tier *attribution* may
/// legitimately shift under a reordered plan, so it is not compared).
fn assert_engines_agree(
    stat: &GedEngine,
    adap: &GedEngine,
    query: &Graph,
    store: &GraphStore,
    tau: f64,
    ctx: &str,
) {
    let (s, a) = (
        stat.top_k(query, store, 5).expect("static top-k"),
        adap.top_k(query, store, 5).expect("adaptive top-k"),
    );
    assert_same(&a.neighbors, &s.neighbors, &format!("{ctx}/top-k"));
    assert_eq!(
        a.stats.pruned() + a.stats.verified,
        a.stats.candidates,
        "{ctx}/top-k: accounting closes"
    );

    let (s, a) = (
        stat.range(query, store, tau).expect("static range"),
        adap.range(query, store, tau).expect("adaptive range"),
    );
    assert_same(&a.neighbors, &s.neighbors, &format!("{ctx}/range"));
    assert_eq!(
        a.stats.pruned() + a.stats.verified,
        a.stats.candidates,
        "{ctx}/range: accounting closes"
    );

    let (s, a) = (
        stat.range_exact(query, store, tau).expect("static exact"),
        adap.range_exact(query, store, tau).expect("adaptive exact"),
    );
    assert_same_exact(&a, &s, &format!("{ctx}/range-exact"));
    assert_eq!(
        a.stats.total(),
        store.len(),
        "{ctx}/range-exact: accounting closes"
    );
}

/// The sharded twin of [`assert_engines_agree`].
fn assert_engines_agree_sharded(
    stat: &GedEngine,
    adap: &GedEngine,
    query: &Graph,
    store: &ShardedStore,
    tau: f64,
    ctx: &str,
) {
    let (s, a) = (
        stat.top_k_sharded(query, store, 5).expect("static top-k"),
        adap.top_k_sharded(query, store, 5).expect("adaptive top-k"),
    );
    assert_same(&a.neighbors, &s.neighbors, &format!("{ctx}/top-k"));

    let (s, a) = (
        stat.range_sharded(query, store, tau).expect("static range"),
        adap.range_sharded(query, store, tau)
            .expect("adaptive range"),
    );
    assert_same(&a.neighbors, &s.neighbors, &format!("{ctx}/range"));
    assert_eq!(
        a.stats.pruned() + a.stats.verified,
        a.stats.candidates,
        "{ctx}/range: accounting closes"
    );

    let (s, a) = (
        stat.range_exact_sharded(query, store, tau)
            .expect("static exact"),
        adap.range_exact_sharded(query, store, tau)
            .expect("adaptive exact"),
    );
    assert_same_exact(&a, &s, &format!("{ctx}/range-exact"));
    assert_eq!(
        a.stats.total(),
        store.len(),
        "{ctx}/range-exact: accounting closes"
    );
}

/// Matrix is the verify-only shape: nothing to plan, so one identity
/// check per store kind suffices (it is query- and τ-independent).
fn assert_matrices_agree(s: &DistanceMatrix, a: &DistanceMatrix, ctx: &str) {
    assert_eq!(s.ids(), a.ids(), "{ctx}: matrix ids");
    for i in 0..s.size() {
        for j in 0..s.size() {
            assert_eq!(
                s.get(i, j).to_bits(),
                a.get(i, j).to_bits(),
                "{ctx}: matrix value at ({i}, {j})"
            );
        }
    }
}

/// Warms the planner's per-shape EWMAs past the observation threshold
/// with an ordinary workload.
fn warm(adap: &GedEngine, query: &Graph, store: &GraphStore, tau: f64) {
    for _ in 0..WARMUP {
        adap.top_k(query, store, 3).expect("warmup top-k");
        adap.range(query, store, tau).expect("warmup range");
        adap.range_exact(query, store, tau).expect("warmup exact");
    }
}

#[test]
fn adaptive_plans_are_bit_identical_across_shapes_stores_and_threads() {
    for (store, tag) in [
        (aids_store(24, 9101), "AIDS"),
        (linux_store(20, 9102), "LINUX"),
    ] {
        let query = external_query(9103);
        let (sharded, _) = sharded_copy(&store, 4);
        for pivots in [0, 3] {
            for threads in [1, 4] {
                let (stat, adap) = engine_pair(threads, pivots);
                warm(&adap, &query, &store, 5.0);
                let ctx = format!("{tag}/pivots={pivots}/threads={threads}");
                for tau in [2.0, 6.0] {
                    assert_engines_agree(&stat, &adap, &query, &store, tau, &ctx);
                    assert_engines_agree_sharded(
                        &stat,
                        &adap,
                        &query,
                        &sharded,
                        tau,
                        &format!("{ctx}/sharded"),
                    );
                }
            }
        }
    }
}

#[test]
fn matrix_shape_is_unplanned_and_bit_identical() {
    let store = aids_store(10, 9151);
    let (sharded, _) = sharded_copy(&store, 4);
    let (stat, adap) = engine_pair(2, 2);
    // Steer the planner somewhere non-static first; matrix must not care.
    warm(&adap, &external_query(9152), &store, 3.0);
    assert_matrices_agree(
        &stat.distance_matrix(&store).expect("static flat"),
        &adap.distance_matrix(&store).expect("adaptive flat"),
        "flat",
    );
    assert_matrices_agree(
        &stat
            .distance_matrix_sharded(&sharded)
            .expect("static sharded"),
        &adap
            .distance_matrix_sharded(&sharded)
            .expect("adaptive sharded"),
        "sharded",
    );
}

#[test]
fn adversarial_stats_priming_cannot_change_answers() {
    let store = aids_store(22, 9201);
    let (mut sharded, _) = sharded_copy(&store, 4);
    let query = external_query(9203);
    let member = store.iter().next().expect("nonempty store").1.clone();

    // Each regime steers the EWMAs somewhere extreme before the check.
    #[allow(clippy::type_complexity)]
    let regimes: [(&str, &dyn Fn(&GedEngine)); 3] = [
        // Everything is discarded: the signature tiers soak up all the
        // credit, the pivot tier none.
        ("all-discard", &|e| {
            for _ in 0..WARMUP {
                e.range(&query, &store, 0.0).expect("prime");
                e.range_exact(&query, &store, 0.0).expect("prime");
                e.top_k(&query, &store, 1).expect("prime");
            }
        }),
        // Nothing is discarded: every share decays toward zero, arming
        // the pivot-skip for exact range.
        ("no-discard", &|e| {
            for _ in 0..WARMUP {
                e.range(&query, &store, f64::INFINITY).expect("prime");
                e.range_exact(&query, &store, f64::INFINITY).expect("prime");
                e.top_k(&query, &store, store.len()).expect("prime");
            }
        }),
        // A member query: zero self-distance, collapse-friendly tight
        // intervals wherever pivots bite.
        ("member-query", &|e| {
            for _ in 0..WARMUP {
                e.range(&member, &store, 1.0).expect("prime");
                e.range_exact(&member, &store, 1.0).expect("prime");
            }
        }),
    ];

    let (stat, _) = engine_pair(1, 3);
    stat.sync_sharded_pivots(&mut sharded);
    for (name, prime) in regimes {
        let (_, adap) = engine_pair(1, 3);
        prime(&adap);
        assert!(
            adap.explain(QueryShape::Range).observations >= WARMUP as u64,
            "{name}: priming was observed"
        );
        for tau in [0.0, 3.0, f64::INFINITY] {
            let ctx = format!("primed:{name}/tau={tau}");
            assert_engines_agree(&stat, &adap, &query, &store, tau, &ctx);
            assert_engines_agree_sharded(
                &stat,
                &adap,
                &query,
                &sharded,
                tau,
                &format!("{ctx}/sharded"),
            );
        }
    }
}

#[test]
fn skipped_pivot_tier_keeps_results_and_accounting_closed() {
    // An engine with a pivot target over a sharded store whose pivot
    // blocks were never synced: the armed tier is vacuous by
    // construction, so its EWMA yield is exactly zero and the planner
    // must withdraw the arming after warmup — without moving a single
    // answer or breaking the exact accounting closure.
    let store = aids_store(20, 9301);
    let (sharded, _) = sharded_copy(&store, 4);
    let query = external_query(9303);
    let (stat, adap) = engine_pair(1, 3);
    assert!(!sharded.pivots_ready(3), "deliberately left unsynced");

    for _ in 0..WARMUP {
        adap.range_exact_sharded(&query, &sharded, 4.0)
            .expect("warmup");
    }
    let explanation = adap.explain(QueryShape::RangeExact);
    assert_eq!(
        explanation.skipped,
        vec!["pivot_lb", "pivot_ub_accept"],
        "zero observed yield withdraws the pivot tier"
    );
    assert!(
        !explanation.tiers.contains(&"pivot_lb"),
        "the skipped tier leaves the executed order"
    );

    for tau in [0.0, 4.0, 9.0] {
        let s = stat
            .range_exact_sharded(&query, &sharded, tau)
            .expect("static");
        let a = adap
            .range_exact_sharded(&query, &sharded, tau)
            .expect("adaptive");
        assert_same_exact(&a, &s, &format!("skip/tau={tau}"));
        assert_eq!(
            a.stats.total(),
            sharded.len(),
            "skip/tau={tau}: every candidate still lands in exactly one tier"
        );
    }
}

#[test]
fn finite_verify_budget_never_unarms_the_pivot_tier() {
    // Under a finite budget, un-arming could shift candidates between
    // `matches` and `budget_exhausted` — the planner must refuse even
    // at provably zero pivot yield.
    let store = aids_store(16, 9401);
    let (sharded, _) = sharded_copy(&store, 4);
    let query = external_query(9403);
    let adap = engine_builder(&[MethodKind::Gedgw])
        .pivots(3)
        .verify_budget(50_000)
        .adaptive_planner(true)
        .build()
        .expect("valid configuration");
    for _ in 0..WARMUP {
        adap.range_exact_sharded(&query, &sharded, 4.0)
            .expect("warmup");
    }
    let explanation = adap.explain(QueryShape::RangeExact);
    assert!(
        explanation.skipped.is_empty(),
        "finite budget keeps the pivot tier armed: {explanation:?}"
    );
    assert!(explanation.tiers.contains(&"pivot_lb"));
}

#[test]
fn collapsed_verification_eliminates_solver_calls_on_tight_intervals() {
    // A query drawn from the engine's own pivot set has an exact pivot
    // distance to every stored graph: lb == ub everywhere, so collapsed
    // verification answers the whole candidate set without one solver
    // invocation — while the static engine pays one call per survivor.
    let store = aids_store(14, 9501);
    let (stat_builder, stat_calls) = counting_engine_builder();
    let stat = stat_builder.pivots(3).build().expect("static engine");
    let (adap_builder, adap_calls) = counting_engine_builder();
    let adap = adap_builder
        .pivots(3)
        .adaptive_planner(true)
        .build()
        .expect("adaptive engine");

    let pivots = stat.pivot_ids(&store);
    assert_eq!(pivots, adap.pivot_ids(&store), "deterministic pivot choice");
    let query = store.get(pivots[0]).expect("pivot is stored").clone();

    let s = stat.range(&query, &store, 6.0).expect("static range");
    let static_cost = stat_calls.load(Ordering::Relaxed);
    let a = adap.range(&query, &store, 6.0).expect("adaptive range");
    let adaptive_cost = adap_calls.load(Ordering::Relaxed);

    assert_same(&a.neighbors, &s.neighbors, "pivot-member range");
    assert_eq!(static_cost, s.stats.verified, "static pays per survivor");
    assert!(static_cost > 0, "the workload reaches the verify tier");
    assert_eq!(adaptive_cost, 0, "every interval is tight: all collapsed");
    let counters = adap.planner_counters().expect("planner is on");
    assert_eq!(
        counters.solver_calls_saved, static_cost as u64,
        "savings counter equals the static engine's bill"
    );

    // Top-k collapses the same way.
    let s = stat.top_k(&query, &store, 4).expect("static top-k");
    let a = adap.top_k(&query, &store, 4).expect("adaptive top-k");
    assert_same(&a.neighbors, &s.neighbors, "pivot-member top-k");
    assert_eq!(adap_calls.load(Ordering::Relaxed), 0, "top-k collapses too");
}

#[test]
fn adaptive_engine_never_makes_more_solver_calls() {
    let store = aids_store(18, 9601);
    let (sharded, _) = sharded_copy(&store, 4);
    let queries: Vec<Graph> = (0..3).map(|i| external_query(9610 + i)).collect();

    let (stat_builder, stat_calls) = counting_engine_builder();
    let stat = stat_builder.pivots(3).build().expect("static engine");
    let (adap_builder, adap_calls) = counting_engine_builder();
    let adap = adap_builder
        .pivots(3)
        .adaptive_planner(true)
        .build()
        .expect("adaptive engine");

    for query in &queries {
        for tau in [3.0, 7.0] {
            let s = stat.range(query, &store, tau).expect("static");
            let a = adap.range(query, &store, tau).expect("adaptive");
            assert_same(&a.neighbors, &s.neighbors, "workload range");
            let s = stat.range_sharded(query, &sharded, tau).expect("static");
            let a = adap.range_sharded(query, &sharded, tau).expect("adaptive");
            assert_same(&a.neighbors, &s.neighbors, "workload sharded range");
        }
        let s = stat.top_k(query, &store, 5).expect("static");
        let a = adap.top_k(query, &store, 5).expect("adaptive");
        assert_same(&a.neighbors, &s.neighbors, "workload top-k");
    }
    assert!(
        adap_calls.load(Ordering::Relaxed) <= stat_calls.load(Ordering::Relaxed),
        "adaptive must never exceed the static engine's solver bill: {} > {}",
        adap_calls.load(Ordering::Relaxed),
        stat_calls.load(Ordering::Relaxed)
    );
}

#[test]
fn explain_reports_static_and_adaptive_plans() {
    let (stat, adap) = engine_pair(1, 2);
    let e = stat.explain(QueryShape::Range);
    assert!(!e.adaptive);
    assert_eq!(e.observations, 0);
    assert_eq!(
        e.tiers,
        vec![
            "shard",
            "label",
            "degree",
            "pivot_lb",
            "pivot_ub_accept",
            "verify"
        ],
        "static range plan"
    );
    assert!(e.skipped.is_empty());
    assert!(stat.planner_counters().is_none(), "no planner, no counters");

    let store = aids_store(10, 9701);
    let query = external_query(9702);
    adap.range(&query, &store, 4.0).expect("one observation");
    let e = adap.explain(QueryShape::Range);
    assert!(e.adaptive);
    assert_eq!(e.observations, 1);
    assert_eq!(
        adap.explain(QueryShape::Matrix).tiers,
        vec!["verify"],
        "matrix has nothing to plan"
    );
}

#[test]
fn range_by_id_resolves_stored_ids_and_rejects_foreign_ones() {
    let store = aids_store(12, 9801);
    let (sharded, map) = sharded_copy(&store, 4);
    let engine = engine_builder(&[MethodKind::Gedgw])
        .build()
        .expect("valid configuration");

    let (id, query) = store.iter().next().expect("nonempty store");
    let by_id = engine.range_by_id(&store, id, 5.0).expect("stored id");
    let direct = engine.range(query, &store, 5.0).expect("direct query");
    assert_same(&by_id.neighbors, &direct.neighbors, "flat by-id");
    assert!(
        by_id.neighbors.iter().any(|n| n.id == id && n.ged == 0.0),
        "the query graph matches itself at distance 0"
    );

    let sid = map[&id];
    let by_id = engine
        .range_sharded_by_id(&sharded, sid, 5.0)
        .expect("stored id");
    let direct = engine
        .range_sharded(query, &sharded, 5.0)
        .expect("direct query");
    assert_same(&by_id.neighbors, &direct.neighbors, "sharded by-id");

    let foreign = external_query(9803);
    let mut scratch = GraphStore::new();
    let foreign_id = scratch.insert(foreign);
    assert_eq!(
        engine.range_by_id(&store, foreign_id, 5.0).unwrap_err(),
        GedError::UnknownGraphId(foreign_id)
    );
    assert_eq!(
        engine
            .range_sharded_by_id(&sharded, foreign_id, 5.0)
            .unwrap_err(),
        GedError::UnknownGraphId(foreign_id)
    );
}
