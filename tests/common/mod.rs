//! Shared oracle for the search integration tests.

use ot_ged::core::lower_bound::{degree_sequence_lower_bound, label_set_lower_bound};
use ot_ged::core::pairs::GedPair;
use ot_ged::core::solver::GedSolver;
use ot_ged::prelude::*;

/// The brute-force reference a filter–verify search must reproduce
/// exactly: evaluate every stored graph directly on the solver, refine
/// each prediction with the admissible lower bound the engine applies
/// (`max(prediction, lb)`), and sort by (ged, id).
pub fn brute_force_refined(
    store: &GraphStore,
    query: &Graph,
    solver: &dyn GedSolver,
) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = store
        .iter()
        .map(|(id, g)| {
            let pair = GedPair::new(query.clone(), g.clone());
            let lb = label_set_lower_bound(query, g).max(degree_sequence_lower_bound(query, g));
            Neighbor {
                id,
                ged: solver.predict(&pair).ged.max(lb as f64),
            }
        })
        .collect();
    all.sort_by(|a, b| a.ged.total_cmp(&b.ged).then(a.id.cmp(&b.id)));
    all
}
