//! Bit-identity tests for the workspace-backed `_in` kernels and the flat
//! CSR graph view.
//!
//! The allocation-free entry points (`lsap_min_in`, `sinkhorn_in`,
//! `conditional_gradient_in`, `Gedgw::solve_in`, ...) promise results
//! bit-identical to their allocating counterparts for *any* workspace
//! state. Each property here reuses a single workspace across all cases —
//! so from case two onward the scratch buffers are dirty, and often sized
//! for a different problem — and compares against a fresh allocating call
//! with `f64::to_bits` equality, never an epsilon.
//!
//! Like `tests/properties.rs`, these use a hand-rolled seeded generator
//! loop instead of `proptest` (the build environment is offline); every
//! assertion message carries the case seed.

use ot_ged::baselines::astar::{astar_beam, astar_beam_in, BeamWorkspace};
use ot_ged::core::gedgw::Gedgw;
use ot_ged::core::kbest::{kbest_edit_path, kbest_edit_path_in};
use ot_ged::core::search::{
    bounded_exact_ged_with_budget, bounded_exact_ged_with_budget_in, fast_upper_bound,
    fast_upper_bound_in, similarity_search, similarity_search_in,
};
use ot_ged::core::GedWorkspace;
use ot_ged::graph::CsrView;
use ot_ged::linalg::{
    best_matching, best_matching_in, lsap_min, lsap_min_in, lsap_min_munkres, lsap_min_munkres_in,
    second_best_matching, second_best_matching_in, LsapWorkspace, MatchingWorkspace, Matrix,
};
use ot_ged::ot::{
    conditional_gradient, conditional_gradient_in, sinkhorn, sinkhorn_dummy_row,
    sinkhorn_dummy_row_in, sinkhorn_in, sinkhorn_log, sinkhorn_log_in, CgOptions, OtWorkspace,
};
use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

fn random_matrix(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-3.0..3.0))
}

/// Asserts two matrices are equal down to the last mantissa bit.
fn assert_bits_eq(got: &Matrix, want: &Matrix, ctx: &str) {
    assert_eq!(got.shape(), want.shape(), "{ctx}: shape");
    for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: {g} vs {w}");
    }
}

/// A small connected labeled graph (same generator as tests/properties.rs).
fn small_graph(max_n: usize, labels: u32, rng: &mut SmallRng) -> Graph {
    let n = rng.gen_range(2..=max_n);
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_node(Label(rng.gen_range(0..labels)));
    }
    for i in 1..n as u32 {
        let j = rng.gen_range(0..i);
        g.add_edge(i, j);
    }
    for _ in 0..n {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v);
        }
    }
    g
}

/// `lsap_min_in` / `lsap_min_munkres_in` match the allocating solvers
/// exactly — same assignment vector, same cost bits — on a workspace that
/// stays dirty across matrices of varying shape.
#[test]
fn lsap_in_is_bit_identical() {
    let mut ws = LsapWorkspace::new();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB17_0001 + case);
        let n = rng.gen_range(1usize..=7);
        let m = n + rng.gen_range(0usize..=3);
        let cost = random_matrix(n, m, &mut rng);

        let want = lsap_min(&cost);
        let got = lsap_min_in(&cost, &mut ws);
        assert_eq!(
            got.row_to_col, want.row_to_col,
            "case {case}: jv assignment"
        );
        assert_eq!(
            got.cost.to_bits(),
            want.cost.to_bits(),
            "case {case}: jv cost"
        );

        let want = lsap_min_munkres(&cost);
        let got = lsap_min_munkres_in(&cost, &mut ws);
        assert_eq!(
            got.row_to_col, want.row_to_col,
            "case {case}: munkres assignment"
        );
        assert_eq!(
            got.cost.to_bits(),
            want.cost.to_bits(),
            "case {case}: munkres cost"
        );
    }
}

/// All three Sinkhorn entry points produce bit-identical couplings through
/// a shared dirty workspace.
#[test]
fn sinkhorn_in_is_bit_identical() {
    let mut ws = OtWorkspace::new();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB17_0002 + case);
        let n1 = rng.gen_range(1usize..=5);
        let n2 = n1 + rng.gen_range(0usize..=3);
        let cost = random_matrix(n1, n2, &mut rng);

        // Balanced form needs equal-mass marginals.
        let square = random_matrix(n2, n2, &mut rng);
        let mu: Vec<f64> = (0..n2).map(|i| 1.0 + i as f64 / n2 as f64).collect();
        let total: f64 = mu.iter().sum();
        let nu = vec![total / n2 as f64; n2];
        let want = sinkhorn(&square, &mu, &nu, 0.2, 60);
        let got = sinkhorn_in(&square, &mu, &nu, 0.2, 60, &mut ws);
        assert_bits_eq(&got.coupling, &want.coupling, "balanced coupling");
        assert_eq!(got.cost.to_bits(), want.cost.to_bits(), "case {case}: cost");

        let want = sinkhorn_dummy_row(&cost, 0.1, 80);
        let got = sinkhorn_dummy_row_in(&cost, 0.1, 80, &mut ws);
        assert_bits_eq(&got.coupling, &want.coupling, "dummy-row coupling");
        assert_eq!(
            got.cost.to_bits(),
            want.cost.to_bits(),
            "case {case}: dummy-row cost"
        );

        let want = sinkhorn_log(&square, &mu, &nu, 0.2, 60);
        let got = sinkhorn_log_in(&square, &mu, &nu, 0.2, 60, &mut ws);
        assert_bits_eq(&got.coupling, &want.coupling, "log-domain coupling");
    }
}

/// `conditional_gradient_in` reproduces the allocating Frank–Wolfe run
/// bit-for-bit: same coupling, same objective, same iteration history.
#[test]
fn conditional_gradient_in_is_bit_identical() {
    let mut ws = OtWorkspace::new();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB17_0003 + case);
        let n = rng.gen_range(2usize..=6);
        let linear = random_matrix(n, n, &mut rng);
        let c1 = random_matrix(n, n, &mut rng);
        let c2 = random_matrix(n, n, &mut rng);
        let init = Matrix::filled(n, n, 1.0 / n as f64);
        let opts = CgOptions {
            max_iter: 25,
            tol: 1e-9,
            quad_weight: 1.0,
        };

        let want = conditional_gradient(&linear, &c1, &c2, init.clone(), &opts);
        let mut pi = init;
        let run = conditional_gradient_in(&linear, &c1, &c2, &mut pi, &opts, &mut ws);
        assert_bits_eq(&pi, &want.coupling, "cg coupling");
        assert_eq!(
            run.objective.to_bits(),
            want.objective.to_bits(),
            "case {case}: objective"
        );
        assert_eq!(run.iterations, want.iterations, "case {case}: iterations");
        assert_eq!(
            run.history.len(),
            want.history.len(),
            "case {case}: history"
        );
        for (g, w) in run.history.iter().zip(&want.history) {
            assert_eq!(g.to_bits(), w.to_bits(), "case {case}: history entry");
        }
    }
}

/// The full GEDGW solve and the A*-based search helpers agree with their
/// allocating forms through one shared (dirty) `GedWorkspace`.
#[test]
fn core_workspace_paths_are_bit_identical() {
    let mut ws = GedWorkspace::new();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB17_0004 + case);
        let g1 = small_graph(5, 3, &mut rng);
        let g2 = small_graph(6, 3, &mut rng);

        let want = Gedgw::new(&g1, &g2).solve();
        let got = Gedgw::new(&g1, &g2).solve_in(&mut ws);
        assert_eq!(
            got.ged.to_bits(),
            want.ged.to_bits(),
            "case {case}: GEDGW objective"
        );
        assert_bits_eq(&got.coupling, &want.coupling, "GEDGW coupling");

        assert_eq!(
            fast_upper_bound_in(&g1, &g2, &mut ws),
            fast_upper_bound(&g1, &g2),
            "case {case}: fast upper bound"
        );

        let tau = rng.gen_range(0usize..=6);
        let budget = *[8usize, 64, usize::MAX].get(case as usize % 3).unwrap();
        assert_eq!(
            bounded_exact_ged_with_budget_in(&g1, &g2, tau, budget, &mut ws),
            bounded_exact_ged_with_budget(&g1, &g2, tau, budget),
            "case {case}: bounded search verdict"
        );
    }
}

/// `best_matching_in` / `second_best_matching_in` reproduce the
/// allocating matching-layer calls exactly — same assignment, same weight
/// bits — through one dirty `MatchingWorkspace`.
#[test]
fn matching_in_is_bit_identical() {
    let mut ws = MatchingWorkspace::new();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB17_0006 + case);
        let n = rng.gen_range(2usize..=6);
        let m = n + rng.gen_range(0usize..=2);
        let weights = random_matrix(n, m, &mut rng);
        let forced: Vec<(usize, usize)> = if rng.gen_bool(0.5) {
            vec![(0, rng.gen_range(0..m))]
        } else {
            Vec::new()
        };
        let mut forbidden: Vec<(usize, usize)> = Vec::new();
        for _ in 0..rng.gen_range(0usize..=3) {
            forbidden.push((rng.gen_range(0..n), rng.gen_range(0..m)));
        }

        let want = best_matching(&weights, &forced, &forbidden);
        let got = best_matching_in(&weights, &forced, &forbidden, &mut ws);
        match (&got, &want) {
            (Some(g), Some(w)) => {
                assert_eq!(g.row_to_col, w.row_to_col, "case {case}: best assignment");
                assert_eq!(g.cost.to_bits(), w.cost.to_bits(), "case {case}: best cost");
            }
            (None, None) => {}
            _ => panic!("case {case}: best feasibility mismatch"),
        }

        if let Some(best) = &want {
            let want2 = second_best_matching(&weights, &forced, &forbidden, best);
            let got2 = second_best_matching_in(&weights, &forced, &forbidden, best, &mut ws);
            match (&got2, &want2) {
                (Some(g), Some(w)) => {
                    assert_eq!(g.row_to_col, w.row_to_col, "case {case}: second assignment");
                    assert_eq!(
                        g.cost.to_bits(),
                        w.cost.to_bits(),
                        "case {case}: second cost"
                    );
                }
                (None, None) => {}
                _ => panic!("case {case}: second feasibility mismatch"),
            }
        }
    }
}

/// The three batch-level `_in` entry points added for workspace reuse —
/// `kbest_edit_path_in`, `similarity_search_in`, `astar_beam_in` — match
/// their allocating forms exactly through shared dirty workspaces.
#[test]
fn batch_entry_points_are_bit_identical() {
    let mut mws = MatchingWorkspace::new();
    let mut gws = GedWorkspace::new();
    let mut bws = BeamWorkspace::new();
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB17_0007 + case);
        let a = small_graph(5, 3, &mut rng);
        let b = small_graph(6, 3, &mut rng);
        let (g1, g2) = if a.num_nodes() <= b.num_nodes() {
            (&a, &b)
        } else {
            (&b, &a)
        };

        let pi = Gedgw::new(g1, g2).solve().coupling;
        let k = rng.gen_range(1usize..=20);
        let want = kbest_edit_path(g1, g2, &pi, k);
        let got = kbest_edit_path_in(g1, g2, &pi, k, &mut mws);
        assert_eq!(got.ged, want.ged, "case {case}: kbest ged");
        assert_eq!(got.mapping, want.mapping, "case {case}: kbest mapping");
        assert_eq!(
            got.candidates, want.candidates,
            "case {case}: kbest candidates"
        );

        let db: Vec<Graph> = (0..4).map(|_| small_graph(6, 3, &mut rng)).collect();
        let tau = rng.gen_range(0usize..=6);
        let (want_v, want_s) = similarity_search(&db, &a, tau);
        let (got_v, got_s) = similarity_search_in(&db, &a, tau, &mut gws);
        assert_eq!(got_v, want_v, "case {case}: search verdicts");
        assert_eq!(got_s, want_s, "case {case}: search stats");

        let beam = rng.gen_range(1usize..=30);
        let want = astar_beam(&a, &b, beam);
        let got = astar_beam_in(&a, &b, beam, &mut bws);
        assert_eq!(got.ged, want.ged, "case {case}: beam ged");
        assert_eq!(got.mapping, want.mapping, "case {case}: beam mapping");
        assert_eq!(got.expanded, want.expanded, "case {case}: beam expansions");
        assert_eq!(got.swapped, want.swapped, "case {case}: beam orientation");
    }
}

/// `CsrView` is a faithful flat image of `Graph` adjacency: labels,
/// degrees, neighbor lists, edge sets, and membership queries all agree,
/// both freshly built and rebuilt over a dirty view, on the ged-testkit
/// fixture stores and on random graphs.
#[test]
fn csr_view_round_trips_graph_adjacency() {
    let mut dirty = CsrView::default();
    let mut check = |g: &Graph, ctx: &str| {
        dirty.rebuild_from(g);
        for view in [&CsrView::of(g), &dirty] {
            assert_eq!(view.num_nodes(), g.num_nodes(), "{ctx}: node count");
            assert_eq!(view.num_edges(), g.num_edges(), "{ctx}: edge count");
            for u in 0..g.num_nodes() as u32 {
                assert_eq!(view.label(u), g.label(u), "{ctx}: label of {u}");
                assert_eq!(view.neighbors(u), g.neighbors(u), "{ctx}: neighbors of {u}");
                assert_eq!(view.degree(u), g.neighbors(u).len(), "{ctx}: degree of {u}");
                for v in 0..g.num_nodes() as u32 {
                    assert_eq!(
                        view.has_edge(u, v),
                        g.has_edge(u, v),
                        "{ctx}: has_edge({u}, {v})"
                    );
                }
            }
            let mut got: Vec<(u32, u32)> = view.edges().collect();
            let mut want: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.min(v), u.max(v))).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "{ctx}: edge set");
        }
    };

    for dataset in ged_testkit::property_stores() {
        let name = dataset.kind.name();
        for (i, g) in dataset.store().graphs().enumerate() {
            check(g, &format!("{name}[{i}]"));
        }
    }
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB17_0005 + case);
        let g = small_graph(8, 4, &mut rng);
        check(&g, &format!("random[{case}]"));
    }
}
