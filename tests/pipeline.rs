//! Cross-crate integration tests: the full pipeline from synthetic
//! datasets through training to evaluation, plus the feasibility and
//! ordering invariants that tie the methods together (DESIGN.md §7).

use ot_ged::baselines::astar::{astar_beam, astar_exact};
use ot_ged::baselines::classic::{classic_ged, hungarian_ged, vj_ged};
use ot_ged::baselines::noah::noah_like;
use ot_ged::core::pairs::GedPair;
use ot_ged::eval::metrics::{accuracy, mae, PairOutcome};
use ot_ged::graph::generate;
use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn training_pairs(count: usize, rng: &mut SmallRng) -> Vec<GedPair> {
    (0..count)
        .map(|i| {
            let g = generate::random_connected(5 + i % 4, 1, &[0.5, 0.3, 0.2], rng);
            let p = generate::perturb_with_edits(&g, 1 + i % 4, 3, rng);
            GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
        })
        .collect()
}

/// Every approximate method that realizes an edit path must upper-bound the
/// exact GED, and the exact GED must match brute force (via A* internal
/// agreement across methods).
#[test]
fn feasibility_hierarchy_across_methods() {
    let mut rng = SmallRng::seed_from_u64(1);
    for _ in 0..12 {
        let g1 = generate::random_connected(rng.gen_range(3..=6), 1, &[0.5, 0.5], &mut rng);
        let g2 = generate::random_connected(rng.gen_range(3..=7), 2, &[0.5, 0.5], &mut rng);
        let exact = astar_exact(&g1, &g2).ged;

        let beam = astar_beam(&g1, &g2, 20).ged;
        let hung = hungarian_ged(&g1, &g2).ged;
        let vj = vj_ged(&g1, &g2).ged;
        let classic = classic_ged(&g1, &g2).ged;
        let (_, gw_path) = Gedgw::new(&g1, &g2).solve_with_path(16);

        for (name, val) in [
            ("beam", beam),
            ("hungarian", hung),
            ("vj", vj),
            ("classic", classic),
            ("gedgw_path", gw_path.ged),
        ] {
            assert!(val >= exact, "{name} = {val} below exact {exact}");
        }
        assert!(classic <= hung.min(vj));
    }
}

/// GEDGW's fractional objective relaxes a minimization whose integral
/// optimum is the exact GED, so the k-best-rounded path squeezed between
/// them pins all three in order.
#[test]
fn gedgw_objective_vs_exact_vs_path() {
    let mut rng = SmallRng::seed_from_u64(2);
    for _ in 0..10 {
        let g1 = generate::random_connected(5, 1, &[0.4, 0.6], &mut rng);
        let g2 = generate::random_connected(6, 2, &[0.4, 0.6], &mut rng);
        let exact = astar_exact(&g1, &g2).ged as f64;
        let (solve, path) = Gedgw::new(&g1, &g2).solve_with_path(24);
        assert!(path.ged as f64 >= exact);
        // The CG local optimum is near the exact value on small graphs.
        assert!(
            (solve.ged - exact).abs() <= 4.0,
            "objective {} vs exact {exact}",
            solve.ged
        );
    }
}

/// The trained pipeline: GEDIOT learns, GEDHOT never does worse than the
/// better of its two members, and both produce verifiable edit paths.
#[test]
fn trained_ensemble_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(3);
    let pairs = training_pairs(30, &mut rng);
    let mut model = Gediot::new(GediotConfig::small(3), &mut rng);
    let before = model.evaluate_loss(&pairs);
    model.train(&pairs, 6, &mut rng);
    assert!(
        model.evaluate_loss(&pairs) < before,
        "training must reduce loss"
    );

    let ensemble = Gedhot::new(&model);
    for pair in pairs.iter().take(6) {
        let pred = ensemble.predict(&pair.g1, &pair.g2);
        assert!((pred.ged - pred.gediot_ged.min(pred.gedgw_ged)).abs() < 1e-12);

        let (_, path, _) = ensemble.predict_with_path(&pair.g1, &pair.g2, 8);
        let rebuilt = path.path.apply(&pair.g1).unwrap();
        assert!(ot_ged::graph::isomorphism::are_isomorphic(
            &rebuilt, &pair.g2
        ));
    }
}

/// Noah-like guided beam and GEDGNN's k-best paths are feasible and agree
/// with the mapping-induced cost formula.
#[test]
fn guided_search_and_neural_paths_are_consistent() {
    use ot_ged::baselines::gedgnn::{Gedgnn, GedgnnConfig};
    let mut rng = SmallRng::seed_from_u64(4);
    let pairs = training_pairs(16, &mut rng);
    let mut gedgnn = Gedgnn::new(GedgnnConfig::small(3), &mut rng);
    gedgnn.train(&pairs, 3, &mut rng);

    for pair in pairs.iter().take(5) {
        let pred = gedgnn.predict(&pair.g1, &pair.g2);
        let noah = noah_like(&pair.g1, &pair.g2, &pred.matching, 6, 1.0);
        assert_eq!(noah.mapping.induced_cost(&pair.g1, &pair.g2), noah.ged);
        let exact = astar_exact(&pair.g1, &pair.g2).ged;
        assert!(noah.ged >= exact);

        let (_, path) = gedgnn.predict_with_path(&pair.g1, &pair.g2, 6);
        assert!(path.ged >= exact);
    }
}

/// Metric plumbing: evaluating a perfect oracle gives perfect scores;
/// evaluating a constant predictor does not.
#[test]
fn metrics_discriminate_oracle_from_constant() {
    let mut rng = SmallRng::seed_from_u64(5);
    let pairs = training_pairs(20, &mut rng);
    let oracle: Vec<PairOutcome> = pairs
        .iter()
        .map(|p| PairOutcome {
            pred: p.ged.unwrap(),
            gt: p.ged.unwrap(),
        })
        .collect();
    assert_eq!(mae(&oracle), 0.0);
    assert_eq!(accuracy(&oracle), 1.0);

    let constant: Vec<PairOutcome> = pairs
        .iter()
        .map(|p| PairOutcome {
            pred: 2.0,
            gt: p.ged.unwrap(),
        })
        .collect();
    assert!(mae(&constant) > 0.0);
    assert!(accuracy(&constant) < 1.0);
}

/// GED is symmetric through the whole public API.
#[test]
fn symmetry_through_public_api() {
    let mut rng = SmallRng::seed_from_u64(6);
    let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
    let g2 = generate::random_connected(7, 2, &[0.5, 0.5], &mut rng);

    assert_eq!(astar_exact(&g1, &g2).ged, astar_exact(&g2, &g1).ged);
    assert_eq!(classic_ged(&g1, &g2).ged, classic_ged(&g2, &g1).ged);
    let a = Gedgw::new(&g1, &g2).solve().ged;
    let b = Gedgw::new(&g2, &g1).solve().ged;
    assert!((a - b).abs() < 1e-9);

    let model = Gediot::new(GediotConfig::small(2), &mut rng);
    let x = model.predict(&g1, &g2).ged;
    let y = model.predict(&g2, &g1).ged;
    assert!((x - y).abs() < 1e-12);
}

/// Dataset snapshot I/O round-trips through JSON.
#[test]
fn dataset_io_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(7);
    let ds = GraphDataset::aids_like(12, &mut rng);
    let dir = std::env::temp_dir().join("ot_ged_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.json");
    ot_ged::graph::io::save_dataset(&ds, &path).unwrap();
    let loaded = ot_ged::graph::io::load_dataset(&path).unwrap();
    assert_eq!(ds.len(), loaded.len());
    assert!(
        ds.graphs().eq(loaded.graphs()),
        "graphs round-trip in order"
    );
    std::fs::remove_file(&path).ok();
}
