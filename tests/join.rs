//! GED-join property suite: [`GedQuery::SelfJoin`] / [`GedQuery::Join`]
//! must reproduce a brute-force nested loop over
//! [`bounded_exact_ged`] bit for bit, for every store kind, pivot
//! configuration, planner mode, and thread count — the join tiers are
//! all exact or admissible, so no knob may change the answer.
//!
//! * self-join ≡ [`ged_testkit::brute_self_join`] and cross-store join
//!   ≡ [`ged_testkit::brute_join`] on the AIDS-like and LINUX-like
//!   property fixtures over a τ grid, with the oracle computed once per
//!   τ and reused across the whole configuration sweep;
//! * sharded joins translate to the flat answer through the
//!   [`ged_testkit::sharded_copy`] id map, pivots synced and unsynced;
//! * τ edge cases: `+∞` degrades to the full join with exact distances,
//!   `τ = 0` joins exactly the isomorphism classes, NaN is a
//!   [`GedError::Config`], negative τ matches nothing (every pair
//!   accounted in `filtered`), an empty store is
//!   [`GedError::EmptyStore`], and a single-graph self-join is an empty
//!   answer — not an error;
//! * `join(s, s)` covers all `n·m` ordered pairs including the
//!   diagonal, and symmetric duplicates verify once (`cache_hits`);
//! * [`JoinStats::total`] closes to the exact candidate pair count
//!   under every configuration, including a strangled verify budget —
//!   where matches stay exact and sound (a subset of the oracle) and
//!   the remainder surfaces in `budget_exhausted`;
//! * shared-work regression: the tiered join verifies strictly fewer
//!   pairs than the `n·(n−1)/2` / `n·m` nested loop would;
//! * a zero-duration [`Deadline`] aborts the join mid-execution with
//!   [`GedError::DeadlineExceeded`].

use ged_testkit::{
    aids_store, brute_join, brute_self_join, engine_builder, property_stores, sharded_copy,
};
use ot_ged::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

/// The τ grid the oracle sweeps share. Small on purpose: τ bounds the
/// verification effort, and the properties care about tier interplay,
/// not deep searches.
const TAUS: [usize; 3] = [0, 1, 2];

/// A single-method GEDGW engine with the swept knobs.
fn engine(threads: usize, pivots: usize, adaptive: bool) -> GedEngine {
    engine_builder(&[MethodKind::Gedgw])
        .threads(threads)
        .pivots(pivots)
        .adaptive_planner(adaptive)
        .build()
        .expect("valid configuration")
}

/// Maps both ids of flat-oracle pairs into a sharded copy's id space.
/// [`sharded_copy`] inserts in flat id order and ids are minted
/// monotonically, so the map preserves `(a, b)` sort order.
fn translate(pairs: &[JoinPair], map: &BTreeMap<GraphId, GraphId>) -> Vec<JoinPair> {
    pairs
        .iter()
        .map(|p| JoinPair {
            a: map[&p.a],
            b: map[&p.b],
            ged: p.ged,
        })
        .collect()
}

/// Maps only the right-hand ids (cross joins against a sharded corpus
/// keep the flat left store's ids).
fn translate_right(pairs: &[JoinPair], map: &BTreeMap<GraphId, GraphId>) -> Vec<JoinPair> {
    pairs
        .iter()
        .map(|p| JoinPair {
            a: p.a,
            b: map[&p.b],
            ged: p.ged,
        })
        .collect()
}

/// Asserts the invariants every *unlimited-budget* join result must
/// satisfy: the oracle answer bit for bit, nothing undecided, closed
/// accounting, and strictly less verification work than a nested loop.
fn assert_join(result: &JoinResult, oracle: &[JoinPair], total_pairs: usize, ctx: &str) {
    assert_eq!(result.pairs, oracle, "{ctx}: matches");
    assert!(
        result.budget_exhausted.is_empty(),
        "{ctx}: unlimited budget never leaves pairs undecided"
    );
    assert_eq!(
        result.stats.total(),
        total_pairs,
        "{ctx}: every candidate pair lands in exactly one tier\n{}",
        result.stats
    );
    assert!(
        result.stats.verified + result.stats.budget_exceeded < total_pairs,
        "{ctx}: the tiered join must verify strictly fewer pairs than \
         the nested loop ({} of {total_pairs} verified)",
        result.stats.verified,
    );
}

#[test]
fn self_join_matches_brute_force_all_pairs() {
    for dataset in property_stores() {
        let store = dataset.store();
        let n = store.len();
        let total = n * (n - 1) / 2;
        for tau in TAUS {
            let oracle = brute_self_join(store, tau);
            for threads in [1, 4] {
                for pivots in [0, 3] {
                    for adaptive in [false, true] {
                        let ctx = format!(
                            "{}/tau={tau}/threads={threads}/pivots={pivots}/adaptive={adaptive}",
                            dataset.kind.name()
                        );
                        let e = engine(threads, pivots, adaptive);
                        let got = e.self_join(store, tau as f64).expect("valid join");
                        assert_join(&got, &oracle, total, &ctx);
                    }
                }
            }
        }
    }
}

#[test]
fn sharded_self_join_is_bit_identical_to_flat() {
    for dataset in property_stores() {
        let store = dataset.store();
        let n = store.len();
        let total = n * (n - 1) / 2;
        let tau = 2;
        let oracle = brute_self_join(store, tau);
        for bucket_width in [4, 100] {
            let (mut sharded, map) = sharded_copy(store, bucket_width);
            let want = translate(&oracle, &map);
            for pivots in [0, 3] {
                for adaptive in [false, true] {
                    let ctx = format!(
                        "{}/width={bucket_width}/pivots={pivots}/adaptive={adaptive}",
                        dataset.kind.name()
                    );
                    let e = engine(2, pivots, adaptive);
                    if pivots > 0 {
                        e.sync_sharded_pivots(&mut sharded);
                        assert!(sharded.pivots_ready(pivots), "{ctx}: shards synced");
                    }
                    let got = e
                        .self_join_sharded(&sharded, tau as f64)
                        .expect("valid join");
                    assert_join(&got, &want, total, &ctx);
                }
            }
        }
    }
}

#[test]
fn cross_join_matches_nested_loop_oracle() {
    let left = aids_store(20, 9011).into_store();
    let right = aids_store(25, 9012).into_store();
    let total = left.len() * right.len();
    for tau in TAUS {
        let oracle = brute_join(&left, &right, tau);
        for threads in [1, 4] {
            for pivots in [0, 3] {
                let ctx = format!("cross/tau={tau}/threads={threads}/pivots={pivots}");
                let e = engine(threads, pivots, false);
                let got = e.join(&left, &right, tau as f64).expect("valid join");
                assert_join(&got, &oracle, total, &ctx);

                // The flat query batch against a sharded corpus answers
                // identically, modulo the copy's fresh ids.
                let (mut sharded, map) = sharded_copy(&right, 4);
                if pivots > 0 {
                    e.sync_sharded_pivots(&mut sharded);
                }
                let shrd = e
                    .join_sharded(&left, &sharded, tau as f64)
                    .expect("valid sharded join");
                assert_join(
                    &shrd,
                    &translate_right(&oracle, &map),
                    total,
                    &format!("{ctx}/sharded"),
                );
            }
        }
    }
}

#[test]
fn join_of_a_store_with_itself_covers_the_full_ordered_product() {
    // `join(s, s)` is the ordered product: all n·m pairs including the
    // zero-distance diagonal — unlike the self-join, which dedups to
    // unordered pairs. Symmetric duplicates canonicalize to one
    // representative and share its verification.
    let store = aids_store(12, 9021).into_store();
    let n = store.len();
    let tau = 1;
    let oracle = brute_join(&store, &store, tau);
    assert!(
        oracle.len() >= n,
        "the diagonal alone contributes {n} zero-distance matches"
    );
    let e = engine(2, 0, false);
    let got = e.join(&store, &store, tau as f64).expect("valid join");
    assert_join(&got, &oracle, n * n, "self-product");
    assert!(
        got.stats.cache_hits > 0,
        "symmetric (a, b)/(b, a) duplicates must verify once:\n{}",
        got.stats
    );
}

#[test]
fn duplicate_graphs_verify_once_and_all_match_at_tau_zero() {
    // τ = 0 joins exactly the isomorphism classes the store holds; a
    // store with duplicated graphs exercises the dedup tier.
    let base: Vec<Graph> = aids_store(4, 9031).graphs().cloned().collect();
    let mut graphs = base.clone();
    graphs.extend(base);
    let store = GraphStore::from_graphs(graphs);
    let n = store.len();
    let oracle = brute_self_join(&store, 0);
    assert_eq!(oracle.len(), 4, "each duplicated graph pairs with its copy");
    assert!(
        oracle.iter().all(|p| p.ged == 0),
        "τ = 0 matches are exact copies"
    );

    let e = engine(1, 0, false);
    let got = e.self_join(&store, 0.0).expect("valid join");
    assert_join(&got, &oracle, n * (n - 1) / 2, "duplicates/tau=0");
}

#[test]
fn infinite_tau_degrades_to_the_full_join_with_exact_distances() {
    let store = aids_store(8, 9041).into_store();
    let n = store.len();
    let oracle = brute_self_join(&store, usize::MAX);
    assert_eq!(
        oracle.len(),
        n * (n - 1) / 2,
        "τ = +∞ keeps every pair, each with its exact distance"
    );
    for pivots in [0, 3] {
        let e = engine(2, pivots, false);
        let got = e.self_join(&store, f64::INFINITY).expect("valid join");
        assert_join(
            &got,
            &oracle,
            n * (n - 1) / 2,
            &format!("inf/pivots={pivots}"),
        );
    }
}

#[test]
fn join_rejects_nan_and_matches_nothing_below_zero() {
    let store = aids_store(6, 9051).into_store();
    let other = aids_store(5, 9052).into_store();
    let e = engine(1, 0, false);

    assert!(
        matches!(e.self_join(&store, f64::NAN), Err(GedError::Config(_))),
        "NaN τ is a configuration error, not an empty answer"
    );
    assert!(matches!(
        e.join(&store, &other, f64::NAN),
        Err(GedError::Config(_))
    ));

    // Negative τ: a valid query that provably matches nothing — every
    // pair is accounted at the filter tier without any work.
    let got = e.self_join(&store, -1.0).expect("negative τ is valid");
    assert!(got.pairs.is_empty(), "nothing can have GED below zero");
    assert!(got.budget_exhausted.is_empty());
    let total = store.len() * (store.len() - 1) / 2;
    assert_eq!(
        got.stats.filtered, total,
        "all pairs filtered arithmetically"
    );
    assert_eq!(got.stats.total(), total, "accounting still closes");
    assert_eq!(got.stats.verified, 0, "no verification ran");

    let cross = e.join(&store, &other, -0.5).expect("negative τ is valid");
    assert!(cross.pairs.is_empty());
    assert_eq!(cross.stats.filtered, store.len() * other.len());
}

#[test]
fn empty_and_single_graph_stores() {
    let e = engine(1, 0, false);
    let empty = GraphStore::new();
    assert!(
        matches!(e.self_join(&empty, 2.0), Err(GedError::EmptyStore)),
        "joins follow the store-query convention: empty stores are errors"
    );
    let one = aids_store(1, 9061).into_store();
    assert!(matches!(
        e.join(&one, &empty, 2.0),
        Err(GedError::EmptyStore)
    ));
    assert!(matches!(
        e.join(&empty, &one, 2.0),
        Err(GedError::EmptyStore)
    ));

    // A single-graph store has zero unordered pairs — an empty answer,
    // not an error.
    let got = e.self_join(&one, 2.0).expect("one graph is a valid store");
    assert!(got.pairs.is_empty());
    assert_eq!(got.stats.total(), 0, "zero candidate pairs, zero tiers");
}

#[test]
fn stats_close_and_matches_stay_sound_under_a_strangled_budget() {
    let store = aids_store(30, 9071).into_store();
    let n = store.len();
    let total = n * (n - 1) / 2;
    let tau = 2;
    let oracle = brute_self_join(&store, tau);
    let oracle_ids: Vec<(GraphId, GraphId)> = oracle.iter().map(|p| (p.a, p.b)).collect();

    for budget in [1, 16, 256] {
        for pivots in [0, 3] {
            let ctx = format!("budget={budget}/pivots={pivots}");
            let e = engine_builder(&[MethodKind::Gedgw])
                .threads(2)
                .pivots(pivots)
                .verify_budget(budget)
                .build()
                .expect("valid configuration");
            let got = e.self_join(&store, tau as f64).expect("valid join");

            // Accounting closes whatever the budget strangles.
            assert_eq!(
                got.stats.total(),
                total,
                "{ctx}: accounting closes under budget pressure\n{}",
                got.stats
            );
            assert_eq!(
                got.budget_exhausted.len(),
                got.stats.budget_exceeded,
                "{ctx}: undecided pairs and their tier count agree"
            );

            // Reported matches are sound and exact: a subset of the
            // oracle, never a wrong distance.
            for p in &got.pairs {
                assert!(
                    oracle.contains(p),
                    "{ctx}: reported match {p:?} must appear in the oracle"
                );
            }
            // Nothing vanishes: every oracle match is either reported
            // or surfaced as undecided.
            let undecided: Vec<(GraphId, GraphId)> =
                got.budget_exhausted.iter().map(|u| (u.a, u.b)).collect();
            for &(a, b) in &oracle_ids {
                assert!(
                    got.pairs.iter().any(|p| (p.a, p.b) == (a, b)) || undecided.contains(&(a, b)),
                    "{ctx}: oracle match ({a:?}, {b:?}) neither reported nor undecided"
                );
            }
            // A proven-membership undecided pair carries its evidence.
            for u in &got.budget_exhausted {
                if let Some(ub) = u.known_match_ub {
                    assert!(ub <= tau, "{ctx}: membership certificate within τ");
                }
            }
        }
    }
}

#[test]
fn a_zero_deadline_aborts_the_join_mid_execution() {
    let store = aids_store(40, 9081).into_store();
    let e = engine(2, 0, false);
    // Sanity: the same join succeeds without a deadline.
    assert!(e.self_join(&store, 2.0).is_ok());
    let bound = e.with_deadline(Deadline::within(Duration::ZERO));
    assert!(
        matches!(
            bound.self_join(&store, 2.0),
            Err(GedError::DeadlineExceeded)
        ),
        "an already-expired deadline must abort before the answer"
    );
    let other = aids_store(10, 9082).into_store();
    assert!(matches!(
        bound.join(&store, &other, 2.0),
        Err(GedError::DeadlineExceeded)
    ));
    // `Deadline::NONE` through the same bound API never expires.
    assert!(e
        .with_deadline(Deadline::NONE)
        .self_join(&store, 1.0)
        .is_ok());
}
