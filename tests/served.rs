//! Serving-layer properties, on the in-process harness
//! (`ged_testkit::served`): concurrent wire sessions are bit-identical
//! to a serial replay of the same requests, graceful shutdown drains and
//! answers every admitted request, and deadline / admission rejections
//! are typed and deterministic.

use ged_testkit::served::{connect, serve_in_process};
use ged_testkit::PROPERTY_SEED;
use ot_ged::graph::generate::random_connected;
use ot_ged::graph::io::graph_to_json;
use ot_ged::graph::Graph;
use ot_ged::server::protocol::{ErrorCode, Request, Response, ResponseBody};
use ot_ged::server::{Server, ServerConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn small_graph(rng: &mut SmallRng) -> Graph {
    let n = rng.gen_range(3..7);
    random_connected(n, rng.gen_range(0..3), &[3.0, 2.0, 1.0], rng)
}

/// A random request line for the replay property: reads and mutations
/// over a shifting pool of stored names (many of which won't resolve —
/// typed errors must replay bit-identically too).
fn random_op_line(id: &str, rng: &mut SmallRng) -> String {
    let name = |rng: &mut SmallRng| format!("\"g{}\"", rng.gen_range(0..20));
    let graph_ref = |rng: &mut SmallRng| {
        if rng.gen_bool(0.5) {
            name(rng)
        } else {
            graph_to_json(&small_graph(rng))
        }
    };
    match rng.gen_range(0..100) {
        0..=29 => format!(
            "{{\"v\":1,\"id\":\"{id}\",\"op\":\"insert_graph\",\"graph\":{}}}",
            graph_to_json(&small_graph(rng))
        ),
        30..=44 => format!(
            "{{\"v\":1,\"id\":\"{id}\",\"op\":\"remove_graph\",\"name\":{}}}",
            name(rng)
        ),
        45..=69 => format!(
            "{{\"v\":1,\"id\":\"{id}\",\"op\":\"predict\",\"g1\":{},\"g2\":{}}}",
            graph_ref(rng),
            graph_ref(rng)
        ),
        70..=84 => format!(
            "{{\"v\":1,\"id\":\"{id}\",\"op\":\"top_k\",\"query\":{},\"k\":{}}}",
            graph_ref(rng),
            rng.gen_range(1..5)
        ),
        85..=94 => format!(
            "{{\"v\":1,\"id\":\"{id}\",\"op\":\"range\",\"query\":{},\"tau\":{}}}",
            graph_ref(rng),
            rng.gen_range(0..8)
        ),
        _ => format!("{{\"v\":1,\"id\":\"{id}\",\"op\":\"ping\"}}"),
    }
}

fn response_rev(line: &str) -> (u64, bool) {
    let resp: Response = ot_ged::server::parse_response(line).expect("well-formed response");
    let is_mutation = matches!(
        resp.body,
        ResponseBody::Inserted { .. } | ResponseBody::Removed { .. }
    );
    (resp.rev, is_mutation)
}

/// N concurrent wire sessions interleaving reads and mutations produce
/// exactly the responses a serial replay produces: mutations applied in
/// `rev` order against a fresh server, each read re-issued at the state
/// its `rev` marks. Bit-identical response lines, errors included.
#[test]
fn concurrent_sessions_are_bit_identical_to_serial_replay() {
    const THREADS: u64 = 4;
    const OPS: usize = 15;
    let config = ServerConfig {
        threads: Some(2),
        ..ServerConfig::default()
    };
    let (server, mut setup) = serve_in_process(&config);

    // Seed a few graphs over the wire (recorded — the replay needs them).
    let mut recorded: Vec<(String, String)> = Vec::new();
    let mut rng = SmallRng::seed_from_u64(PROPERTY_SEED);
    for i in 0..5 {
        let line = format!(
            "{{\"v\":1,\"id\":\"seed{i}\",\"op\":\"insert_graph\",\"graph\":{}}}",
            graph_to_json(&small_graph(&mut rng))
        );
        let resp = setup.request_line(&line);
        recorded.push((line, resp));
    }

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let mut client = connect(&server);
            std::thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(PROPERTY_SEED + 1 + t);
                let mut log = Vec::with_capacity(OPS);
                for i in 0..OPS {
                    let line = random_op_line(&format!("t{t}-{i}"), &mut rng);
                    let resp = client.request_line(&line);
                    log.push((line, resp));
                }
                log
            })
        })
        .collect();
    for h in handles {
        recorded.extend(h.join().expect("worker thread"));
    }

    // Split the transcript: mutations keyed by the rev they produced,
    // everything else keyed by the rev it observed.
    let mut mutations: BTreeMap<u64, (String, String)> = BTreeMap::new();
    let mut reads: BTreeMap<u64, Vec<(String, String)>> = BTreeMap::new();
    for (req, resp) in recorded {
        let (rev, is_mutation) = response_rev(&resp);
        if is_mutation {
            let prev = mutations.insert(rev, (req, resp));
            assert!(prev.is_none(), "two mutations claim rev {rev}");
        } else {
            reads.entry(rev).or_default().push((req, resp));
        }
    }
    let total = mutations.len() as u64;
    assert!(
        mutations.keys().copied().eq(1..=total),
        "mutation revs must be the contiguous sequence 1..={total}"
    );

    // Serial replay on a fresh server, no concurrency anywhere.
    let replay = Server::new(&config).expect("replay server");
    for at_rev in 0..=total {
        for (req, want) in reads.get(&at_rev).into_iter().flatten() {
            let (got, close) = replay.handle_line(req);
            assert!(!close);
            assert_eq!(&got, want, "read at rev {at_rev} diverged\nreq: {req}");
        }
        if let Some((req, want)) = mutations.get(&(at_rev + 1)) {
            let (got, close) = replay.handle_line(req);
            assert!(!close);
            assert_eq!(&got, want, "mutation to rev {} diverged", at_rev + 1);
        }
    }
}

/// `shutdown` with queries verifiably in flight: the drain answers every
/// admitted request in full, shutdown itself answers last, the served
/// connections then see EOF, and later requests (any connection) get a
/// typed `shutting_down` error.
#[test]
fn shutdown_drains_and_answers_inflight_queries() {
    const CLIENTS: u64 = 3;
    let config = ServerConfig {
        threads: Some(2),
        ..ServerConfig::default()
    };
    let (server, mut control) = serve_in_process(&config);
    let mut rng = SmallRng::seed_from_u64(PROPERTY_SEED + 100);
    // The matrix query must verifiably overlap with the control
    // connection's polling below: a 40-graph store of 14–17-node
    // graphs keeps each matrix ~100 ms+, so three staggered clients
    // are reliably in flight at once (a dozen small graphs answer in
    // ~2 ms — faster than the clients are spawned — and the poll loop
    // would never observe them together).
    for _ in 0..40 {
        let n = rng.gen_range(14..18);
        server.insert_local(random_connected(n, 3, &[3.0, 2.0, 1.0], &mut rng));
    }

    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let mut client = connect(&server);
            std::thread::spawn(move || {
                // The full pairwise matrix: heavy enough to still be
                // running while the control connection polls and shuts
                // down.
                let resp = client.call(&Request::Matrix {
                    id: format!("m{t}"),
                    deadline_ms: None,
                });
                let eof = client.recv_line().is_none();
                (resp, eof)
            })
        })
        .collect();

    // Wait until every query is verifiably admitted (stats is
    // admission-exempt, so it answers while the pool is busy), then
    // shut down mid-flight.
    loop {
        let resp = control.call(&Request::Stats {
            id: "s".to_string(),
        });
        match resp.body {
            ResponseBody::Stats(ref s) if s.inflight == CLIENTS => break,
            ResponseBody::Stats(_) => {}
            other => panic!("stats failed: {other:?}"),
        }
    }
    let resp = control.call(&Request::Shutdown {
        id: "bye".to_string(),
    });
    assert_eq!(resp.body, ResponseBody::ShutdownComplete);
    assert!(
        control.recv_line().is_none(),
        "the shutdown connection closes after answering"
    );

    // Every in-flight query was answered in full before shutdown
    // returned — never hung, never dropped.
    for h in handles {
        let (resp, eof) = h.join().expect("client thread");
        assert!(
            matches!(resp.body, ResponseBody::Matrix { .. }),
            "drained query must be answered with its real result, got {:?}",
            resp.body
        );
        assert!(eof, "served connections see EOF after the drain");
    }

    // The server object stays in the draining state: new sessions are
    // answered with a typed error, and a second shutdown is too.
    let mut late = connect(&server);
    let resp = late.call(&Request::Ping {
        id: "late".to_string(),
    });
    match resp.body {
        ResponseBody::Error { code, .. } => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    let resp = late.call(&Request::Shutdown {
        id: "again".to_string(),
    });
    match resp.body {
        ResponseBody::Error { code, .. } => assert_eq!(code, ErrorCode::ShuttingDown),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    assert!(late.recv_line().is_none(), "second shutdown also closes");
}

/// A zero deadline deterministically fails before executing, with the
/// same typed response every time.
#[test]
fn zero_deadline_is_a_deterministic_typed_rejection() {
    let (server, mut client) = serve_in_process(&ServerConfig::default());
    let name = server.insert_local(small_graph(&mut SmallRng::seed_from_u64(1)));
    let line = format!(
        "{{\"v\":1,\"id\":\"d\",\"op\":\"predict\",\"g1\":\"{name}\",\"g2\":\"{name}\",\"deadline_ms\":0}}"
    );
    let first = client.request_line(&line);
    let resp = ot_ged::server::parse_response(&first).unwrap();
    match resp.body {
        ResponseBody::Error { code, .. } => assert_eq!(code, ErrorCode::DeadlineExceeded),
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    for _ in 0..3 {
        assert_eq!(client.request_line(&line), first, "bit-identical rejection");
    }
}

/// With a zero admission cap every store/engine request is rejected as
/// `overloaded` — while introspection still answers.
#[test]
fn zero_admission_cap_rejects_with_overloaded() {
    let config = ServerConfig {
        max_inflight: 0,
        ..ServerConfig::default()
    };
    let (server, mut client) = serve_in_process(&config);
    let name = server.insert_local(small_graph(&mut SmallRng::seed_from_u64(2)));
    let resp = client.call(&Request::Predict {
        id: "p".to_string(),
        g1: ot_ged::server::protocol::GraphRef::Name(name.clone()),
        g2: ot_ged::server::protocol::GraphRef::Name(name),
        deadline_ms: None,
    });
    match resp.body {
        ResponseBody::Error { code, .. } => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected overloaded, got {other:?}"),
    }
    assert_eq!(
        client
            .call(&Request::Ping {
                id: "p2".to_string()
            })
            .body,
        ResponseBody::Pong,
        "introspection is admission-exempt"
    );
    let resp = client.call(&Request::Stats {
        id: "p3".to_string(),
    });
    assert!(matches!(resp.body, ResponseBody::Stats(_)));
}

/// Pipelined requests on one connection are answered in order, one
/// response line per request line.
#[test]
fn pipelined_requests_answer_in_order() {
    let (_server, mut client) = serve_in_process(&ServerConfig::default());
    let reqs: Vec<Request> = (0..8)
        .map(|i| Request::Ping {
            id: format!("p{i}"),
        })
        .collect();
    let resps = client.pipeline(&reqs);
    assert_eq!(resps.len(), reqs.len());
    for (req, resp) in reqs.iter().zip(&resps) {
        assert_eq!(resp.id, req.id());
        assert_eq!(resp.body, ResponseBody::Pong);
    }
}

/// The `explain` op reports the tier plan over the wire: the static
/// plan by default, the adaptive planner's plan (and its counters in
/// `stats`) when the server runs with `adaptive: true` — and like the
/// other introspection ops it answers even under a zero admission cap.
#[test]
fn explain_reports_plans_and_is_admission_exempt() {
    let config = ServerConfig {
        adaptive: true,
        max_inflight: 0,
        ..ServerConfig::default()
    };
    let (_server, mut client) = serve_in_process(&config);
    let resp = client.call(&Request::Explain {
        id: "e".to_string(),
        shape: "range".to_string(),
    });
    match resp.body {
        ResponseBody::Plan {
            ref shape,
            adaptive,
            ref tiers,
            ref skipped,
            observations,
            ..
        } => {
            assert_eq!(shape, "range");
            assert!(adaptive);
            assert_eq!(tiers.first().map(String::as_str), Some("shard"));
            assert_eq!(tiers.last().map(String::as_str), Some("verify"));
            assert!(skipped.is_empty(), "nothing to skip before any query");
            assert_eq!(observations, 0);
        }
        other => panic!("expected plan, got {other:?}"),
    }
    // Matrix is verify-only, with or without the planner.
    let resp = client.call(&Request::Explain {
        id: "m".to_string(),
        shape: "matrix".to_string(),
    });
    match resp.body {
        ResponseBody::Plan { ref tiers, .. } => assert_eq!(tiers, &["verify".to_string()]),
        other => panic!("expected plan, got {other:?}"),
    }
    // An unknown shape is a typed config error.
    let resp = client.call(&Request::Explain {
        id: "x".to_string(),
        shape: "nope".to_string(),
    });
    match resp.body {
        ResponseBody::Error { code, message } => {
            assert_eq!(code, ErrorCode::Config);
            assert!(message.contains("nope"), "{message}");
        }
        other => panic!("expected config error, got {other:?}"),
    }
    // Stats surfaces the planner state next to the admission counters.
    let resp = client.call(&Request::Stats {
        id: "s".to_string(),
    });
    match resp.body {
        ResponseBody::Stats(ref s) => {
            assert!(s.adaptive);
            assert_eq!(s.planner_saved, 0, "no queries, nothing saved yet");
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // The static server explains the static plan and reports adaptive
    // off in both ops.
    let (_server2, mut static_client) = serve_in_process(&ServerConfig::default());
    let resp = static_client.call(&Request::Explain {
        id: "e2".to_string(),
        shape: "range_exact".to_string(),
    });
    match resp.body {
        ResponseBody::Plan {
            adaptive,
            ref skipped,
            ..
        } => {
            assert!(!adaptive);
            assert!(skipped.is_empty());
        }
        other => panic!("expected plan, got {other:?}"),
    }
    let resp = static_client.call(&Request::Stats {
        id: "s2".to_string(),
    });
    match resp.body {
        ResponseBody::Stats(ref s) => assert!(!s.adaptive),
        other => panic!("expected stats, got {other:?}"),
    }
}

/// The join ops over the wire: `self_join` answers stored-name pairs
/// with exact distances, `join` addresses the inline query batch by
/// position (`"q{i}"`), the candidate accounting closes to the exact
/// pair counts, and an empty store is a typed `empty_store` error.
#[test]
fn joins_answer_over_the_wire() {
    use ot_ged::graph::Label;
    let (server, mut client) = serve_in_process(&ServerConfig::default());

    // An empty store rejects both join ops with a typed error.
    let resp = client.call(&Request::SelfJoin {
        id: "e".to_string(),
        tau: 1.0,
        deadline_ms: None,
    });
    match resp.body {
        ResponseBody::Error { code, .. } => assert_eq!(code, ErrorCode::EmptyStore),
        other => panic!("expected empty_store, got {other:?}"),
    }

    // Two copies of a path, a triangle, and a star: the only pair
    // within τ = 0 is the duplicated path.
    let path = Graph::from_edges(vec![Label(1), Label(1)], &[(0, 1)]);
    let tri = Graph::from_edges(
        vec![Label(2), Label(2), Label(2)],
        &[(0, 1), (1, 2), (0, 2)],
    );
    let star = Graph::from_edges(
        vec![Label(1), Label(1), Label(1), Label(1)],
        &[(0, 1), (0, 2), (0, 3)],
    );
    let p1 = server.insert_local(path.clone());
    let p2 = server.insert_local(path.clone());
    let t = server.insert_local(tri.clone());
    server.insert_local(star);

    let resp = client.call(&Request::SelfJoin {
        id: "sj".to_string(),
        tau: 0.0,
        deadline_ms: None,
    });
    match resp.body {
        ResponseBody::SelfJoin {
            ref pairs,
            ref undecided,
            candidates,
            verified,
        } => {
            assert_eq!(pairs.len(), 1, "only the duplicated path matches at τ = 0");
            assert_eq!((&pairs[0].a, &pairs[0].b), (&p1, &p2));
            assert_eq!(pairs[0].ged, 0);
            assert!(undecided.is_empty());
            assert_eq!(candidates, 6, "4 stored graphs make 6 unordered pairs");
            assert!(verified <= candidates);
        }
        other => panic!("expected self_join, got {other:?}"),
    }

    // A two-graph inline batch against the store: positions "q0"/"q1".
    let resp = client.call(&Request::Join {
        id: "j".to_string(),
        graphs: vec![path, tri],
        tau: 0.0,
        deadline_ms: None,
    });
    match resp.body {
        ResponseBody::Join {
            ref pairs,
            candidates,
            ..
        } => {
            let got: Vec<(String, String, u64)> = pairs
                .iter()
                .map(|p| (p.a.clone(), p.b.clone(), p.ged))
                .collect();
            assert_eq!(
                got,
                vec![
                    ("q0".to_string(), p1.clone(), 0),
                    ("q0".to_string(), p2.clone(), 0),
                    ("q1".to_string(), t.clone(), 0),
                ],
                "each query matches exactly its stored copies, in order"
            );
            assert_eq!(candidates, 8, "2 queries × 4 stored graphs");
        }
        other => panic!("expected join, got {other:?}"),
    }
}

/// A tight (but nonzero) deadline aborts a heavy store-level query
/// **mid-execution** via the engine's cooperative deadline — the typed
/// rejection arrives in a small fraction of the query's full runtime,
/// which the completion-time-only check of the old serving path could
/// never do.
#[test]
fn deadline_aborts_store_queries_mid_execution() {
    let config = ServerConfig {
        threads: Some(1),
        ..ServerConfig::default()
    };
    let (server, mut client) = serve_in_process(&config);
    let mut rng = SmallRng::seed_from_u64(PROPERTY_SEED + 500);
    for _ in 0..32 {
        let n = rng.gen_range(8..10);
        server.insert_local(random_connected(n, 3, &[3.0, 2.0, 1.0], &mut rng));
    }

    // Baseline: the full self-join, no deadline. τ = 3 keeps each
    // τ-bounded search tractable while the 496-pair matrix still
    // takes orders of magnitude longer than an aborted plan.
    let start = std::time::Instant::now();
    let resp = client.call(&Request::SelfJoin {
        id: "full".to_string(),
        tau: 3.0,
        deadline_ms: None,
    });
    let full = start.elapsed();
    assert!(
        matches!(resp.body, ResponseBody::SelfJoin { .. }),
        "baseline join must succeed, got {:?}",
        resp.body
    );

    // Deadline run: 1 ms passes admission (only 0 is rejected up
    // front) but expires inside the plan, which must abandon the
    // remaining verification blocks instead of finishing them.
    let start = std::time::Instant::now();
    let resp = client.call(&Request::SelfJoin {
        id: "cut".to_string(),
        tau: 3.0,
        deadline_ms: Some(1),
    });
    let aborted = start.elapsed();
    match resp.body {
        ResponseBody::Error { code, .. } => assert_eq!(code, ErrorCode::DeadlineExceeded),
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    assert!(
        aborted * 4 < full,
        "cooperative abort must return in a fraction of the full runtime \
         (aborted after {aborted:?}, full query takes {full:?})"
    );
}

/// `snapshot` → fresh server → `load` over the wire restores every
/// graph by name, answers queries identically, and keeps minting fresh
/// revisions past the restored one. Without a configured store path,
/// pathless snapshot requests get a typed `config` error.
#[test]
fn snapshot_and_load_restore_the_store_over_the_wire() {
    let dir = std::env::temp_dir().join("ot_ged_served_snapshot_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("wire.snapshot.json");
    let path_json = format!("\"{}\"", path.display());

    let (_server, mut client) = serve_in_process(&ServerConfig::default());
    let mut rng = SmallRng::seed_from_u64(PROPERTY_SEED + 77);
    for i in 0..8 {
        let line = format!(
            "{{\"v\":1,\"id\":\"s{i}\",\"op\":\"insert_graph\",\"graph\":{}}}",
            graph_to_json(&small_graph(&mut rng))
        );
        assert!(
            client.request_line(&line).contains("\"ok\":true"),
            "insert {i}"
        );
    }
    let probe = format!(
        "{{\"v\":1,\"id\":\"q\",\"op\":\"top_k\",\"query\":{},\"k\":4}}",
        graph_to_json(&small_graph(&mut rng))
    );
    let want = client.request_line(&probe);

    // No --store and no "path" field: a typed config error.
    let resp = client.request_line("{\"v\":1,\"id\":\"nope\",\"op\":\"snapshot\"}");
    match ot_ged::server::parse_response(&resp)
        .expect("well-formed")
        .body
    {
        ResponseBody::Error { code, message } => {
            assert_eq!(code, ErrorCode::Config);
            assert!(message.contains("no snapshot path"), "{message}");
        }
        other => panic!("expected config error, got {other:?}"),
    }

    let resp = client.request_line(&format!(
        "{{\"v\":1,\"id\":\"snap\",\"op\":\"snapshot\",\"path\":{path_json}}}"
    ));
    match ot_ged::server::parse_response(&resp)
        .expect("well-formed")
        .body
    {
        ResponseBody::Snapshotted { graphs, .. } => assert_eq!(graphs, 8),
        other => panic!("expected snapshotted, got {other:?}"),
    }

    // A brand-new server restores the snapshot over the wire.
    let (_server2, mut restored) = serve_in_process(&ServerConfig::default());
    let resp = restored.request_line(&format!(
        "{{\"v\":1,\"id\":\"load\",\"op\":\"load\",\"path\":{path_json}}}"
    ));
    let loaded = ot_ged::server::parse_response(&resp).expect("well-formed");
    match loaded.body {
        ResponseBody::Loaded { graphs, .. } => assert_eq!(graphs, 8),
        other => panic!("expected loaded, got {other:?}"),
    }

    // Identical store, identical answer (modulo each response's own rev).
    let got = restored.request_line(&probe);
    let strip_rev = |s: &str| {
        let at = s.find("\"rev\":").expect("rev field");
        let end = s[at..].find(',').map_or(s.len(), |c| at + c);
        format!("{}{}", &s[..at], &s[end..])
    };
    assert_eq!(strip_rev(&got), strip_rev(&want), "top-k across load");

    // Restored names resolve; mutations resume past the restored rev.
    let resp =
        restored.request_line("{\"v\":1,\"id\":\"rm\",\"op\":\"remove_graph\",\"name\":\"g3\"}");
    let removed = ot_ged::server::parse_response(&resp).expect("well-formed");
    assert!(removed.is_ok(), "restored name resolves: {resp}");
    assert!(removed.rev > loaded.rev, "revisions keep climbing");

    std::fs::remove_file(&path).ok();
}
