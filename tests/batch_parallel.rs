//! Integration test for the solver layer: the [`BatchRunner`] parallel
//! path must produce **bit-identical** results to a sequential per-pair
//! [`GedSolver::predict`] / [`GedSolver::edit_path`] loop, for *every*
//! solver in the registry, on a small seeded dataset.
//!
//! This is the contract every future scaling layer (sharding, caching,
//! async serving) relies on: parallelism may change throughput, never
//! values.
//!
//! [`GedSolver::predict`]: ot_ged::core::solver::GedSolver::predict
//! [`GedSolver::edit_path`]: ot_ged::core::solver::GedSolver::edit_path
//! [`BatchRunner`]: ot_ged::core::solver::BatchRunner

use ot_ged::core::pairs::GedPair;
use ot_ged::core::solver::BatchRunner;
use ot_ged::experiments::harness::{prepare, train_all, ExpConfig, MethodKind};
use ot_ged::graph::DatasetKind;

fn tiny_cfg() -> ExpConfig {
    ExpConfig {
        dataset_size: 24,
        partners: 4,
        train_pair_cap: 30,
        epochs: 2,
        kbest_k: 4,
        max_queries: 3,
        seed: 20_260_728,
    }
}

#[test]
fn batch_runner_matches_sequential_for_every_registered_solver() {
    let cfg = tiny_cfg();
    let mut rng = cfg.rng();
    let prep = prepare(DatasetKind::Aids, &cfg, false, &mut rng);
    let models = train_all(&prep, &cfg, &mut rng);
    let registry = models.registry(cfg.kbest_k);

    // Sanity: the whole Table-3 lineup is registered.
    assert_eq!(registry.len(), MethodKind::table3().len());

    let pairs: Vec<GedPair> = prep.test_groups.iter().flatten().cloned().collect();
    assert!(
        pairs.len() >= 8,
        "need a non-trivial batch, got {}",
        pairs.len()
    );

    for (method, solver) in registry.iter() {
        let name = solver.name();
        assert_eq!(name, method.name(), "registry key matches display name");

        // Values: bit-identical across thread counts and chunk sizes.
        let sequential: Vec<f64> = pairs.iter().map(|p| solver.predict(p).ged).collect();
        for (threads, chunk) in [(1, 8), (2, 3), (4, 1), (8, 5)] {
            let runner = BatchRunner::new(threads).with_chunk_size(chunk);
            let batch = runner.predict_batch(solver, &pairs);
            assert_eq!(batch.len(), sequential.len(), "{name}: batch size mismatch");
            for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
                assert_eq!(
                    b.ged.to_bits(),
                    s.to_bits(),
                    "{name}: pair {i} differs at threads={threads} chunk={chunk}: \
                     {} (batch) vs {} (sequential)",
                    b.ged,
                    s
                );
            }
        }

        // Edit paths: identical mappings, lengths and canonical ops — and
        // the path-capable set is exactly the Table-4 lineup.
        let sequential_paths: Vec<_> = pairs
            .iter()
            .map(|p| solver.edit_path(p, cfg.kbest_k))
            .collect();
        let runner = BatchRunner::new(4).with_chunk_size(3);
        let batch_paths = runner.edit_path_batch(solver, &pairs, cfg.kbest_k);
        assert_eq!(batch_paths, sequential_paths, "{name}: path batch differs");

        let expects_paths = method.path_capable();
        for (i, est) in sequential_paths.iter().enumerate() {
            assert_eq!(
                est.is_some(),
                expects_paths,
                "{name}: pair {i} path capability mismatch"
            );
            if let Some(est) = est {
                assert_eq!(est.ops.len(), est.ged, "{name}: ops/length mismatch");
            }
        }
    }
}
