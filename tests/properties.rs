//! Property-based tests of the core invariants listed in DESIGN.md §7,
//! spanning several crates.
//!
//! The build environment is offline, so instead of `proptest` these use a
//! hand-rolled generator loop: each property runs over `CASES` seeded
//! random instances, and every assertion message carries the case seed so
//! a failure is exactly reproducible.

use ot_ged::baselines::astar::astar_exact;
use ot_ged::core::gedgw::Gedgw;
use ot_ged::core::kbest::kbest_edit_path;
use ot_ged::core::lower_bound::label_set_lower_bound;
use ot_ged::graph::isomorphism::are_isomorphic;
use ot_ged::linalg::{lsap_min, lsap_min_munkres, Matrix};
use ot_ged::ot::sinkhorn::sinkhorn_dummy_row;
use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Cases per property (mirrors the old `ProptestConfig::with_cases(48)`).
const CASES: u64 = 48;

/// A small connected labeled graph: random spanning tree plus a few extra
/// edges, labels drawn uniformly from `0..labels`.
fn small_graph(max_n: usize, labels: u32, rng: &mut SmallRng) -> Graph {
    let n = rng.gen_range(2..=max_n);
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_node(Label(rng.gen_range(0..labels)));
    }
    for i in 1..n as u32 {
        let j = rng.gen_range(0..i);
        g.add_edge(i, j);
    }
    for _ in 0..n {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v);
        }
    }
    g
}

/// Invariant C/F: exact A* GED is symmetric, zero iff isomorphic, and
/// bounded below by the label-set lower bound.
#[test]
fn exact_ged_is_a_sane_metric() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0001 + case);
        let g1 = small_graph(5, 3, &mut rng);
        let g2 = small_graph(6, 3, &mut rng);
        let d12 = astar_exact(&g1, &g2).ged;
        let d21 = astar_exact(&g2, &g1).ged;
        assert_eq!(d12, d21, "case {case}: GED not symmetric");
        assert!(
            d12 >= label_set_lower_bound(&g1, &g2),
            "case {case}: GED below label-set lower bound"
        );
        assert_eq!(astar_exact(&g1, &g1).ged, 0, "case {case}: d(g,g) != 0");
        if d12 == 0 {
            assert!(
                are_isomorphic(&g1, &g2),
                "case {case}: GED 0 but not isomorphic"
            );
        }
    }
}

/// Invariant F: triangle inequality of the exact GED.
#[test]
fn exact_ged_triangle_inequality() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0002 + case);
        let a = small_graph(4, 2, &mut rng);
        let b = small_graph(4, 2, &mut rng);
        let c = small_graph(4, 2, &mut rng);
        let ab = astar_exact(&a, &b).ged;
        let bc = astar_exact(&b, &c).ged;
        let ac = astar_exact(&a, &c).ged;
        assert!(ac <= ab + bc, "case {case}: {ac} > {ab} + {bc}");
    }
}

/// Invariant A: every edit path produced by the k-best framework is
/// applicable and lands on the target graph.
#[test]
fn kbest_paths_always_verify() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0003 + case);
        let g1 = small_graph(5, 3, &mut rng);
        let g2 = small_graph(6, 3, &mut rng);
        let (a, b, _) = ot_ged::core::pairs::ordered(&g1, &g2);
        let pi = Matrix::from_fn(a.num_nodes(), b.num_nodes(), |_, _| rng.gen_range(0.0..1.0));
        let res = kbest_edit_path(a, b, &pi, 6);
        assert_eq!(
            res.path.len(),
            res.ged,
            "case {case}: path length != reported GED"
        );
        let rebuilt = res.path.apply(a).unwrap();
        assert!(
            are_isomorphic(&rebuilt, b),
            "case {case}: path does not land on target"
        );
        assert!(
            res.ged >= astar_exact(a, b).ged,
            "case {case}: heuristic path beats exact GED"
        );
    }
}

/// Invariant B (solver side): the GEDGW relaxed solve is finite,
/// non-negative, and its coupling has the ordered pair's shape.
#[test]
fn gedgw_solve_is_sane() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0004 + case);
        let g1 = small_graph(5, 3, &mut rng);
        let g2 = small_graph(5, 3, &mut rng);
        let res = Gedgw::new(&g1, &g2).solve();
        assert!(
            res.ged.is_finite(),
            "case {case}: non-finite GEDGW objective"
        );
        assert!(res.ged >= -1e-9, "case {case}: negative GEDGW objective");
        let (a, b, _) = ot_ged::core::pairs::ordered(&g1, &g2);
        assert_eq!(
            res.coupling.shape(),
            (a.num_nodes(), b.num_nodes()),
            "case {case}: coupling shape mismatch"
        );
    }
}

/// Invariant D: Sinkhorn's dummy-row coupling lies in the relaxed
/// node-matching polytope for arbitrary bounded cost matrices.
#[test]
fn sinkhorn_dummy_row_polytope() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0005 + case);
        let n1 = rng.gen_range(1usize..=5);
        let n2 = n1 + rng.gen_range(0usize..=3);
        let cost = Matrix::from_fn(n1, n2, |_, _| rng.gen_range(-1.0..1.0));
        let res = sinkhorn_dummy_row(&cost, 0.1, 1000);
        for s in res.coupling.row_sums() {
            assert!((s - 1.0).abs() < 1e-9, "case {case}: row sum {s}");
        }
        for s in res.coupling.col_sums() {
            // Rows are exact after the final φ-update; columns converge
            // geometrically and may retain a small residual.
            assert!(s <= 1.0 + 1e-3, "case {case}: col sum {s}");
        }
        assert!(
            res.coupling.min() >= 0.0,
            "case {case}: negative coupling entry"
        );
    }
}

/// The two independent LSAP solvers agree on arbitrary cost matrices.
#[test]
fn lsap_solvers_agree() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0006 + case);
        let n = rng.gen_range(1usize..=6);
        let m = n + rng.gen_range(0usize..=3);
        let cost = Matrix::from_fn(n, m, |_, _| rng.gen_range(-5.0..5.0));
        let a = lsap_min(&cost);
        let b = lsap_min_munkres(&cost);
        assert!(
            (a.cost - b.cost).abs() < 1e-9,
            "case {case}: {} vs {}",
            a.cost,
            b.cost
        );
    }
}

/// EPGen realizes exactly the induced cost for random mappings.
#[test]
fn epgen_cost_identity() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5EED_0007 + case);
        let g1 = small_graph(5, 3, &mut rng);
        let g2 = small_graph(6, 3, &mut rng);
        let (a, b, _) = ot_ged::core::pairs::ordered(&g1, &g2);
        let mut cols: Vec<u32> = (0..b.num_nodes() as u32).collect();
        cols.shuffle(&mut rng);
        let mapping = NodeMapping::new(cols[..a.num_nodes()].to_vec());
        let path = mapping.edit_path(a, b);
        assert_eq!(
            path.len(),
            mapping.induced_cost(a, b),
            "case {case}: EPGen length != induced cost"
        );
        let rebuilt = path.apply(a).unwrap();
        assert!(
            are_isomorphic(&rebuilt, b),
            "case {case}: EPGen path misses target"
        );
    }
}
