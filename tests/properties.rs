//! Property-based tests (proptest) of the core invariants listed in
//! DESIGN.md §7, spanning several crates.

use ot_ged::baselines::astar::astar_exact;
use ot_ged::core::gedgw::Gedgw;
use ot_ged::core::kbest::kbest_edit_path;
use ot_ged::core::lower_bound::label_set_lower_bound;
use ot_ged::graph::isomorphism::are_isomorphic;
use ot_ged::linalg::{lsap_min, lsap_min_munkres, Matrix};
use ot_ged::ot::sinkhorn::sinkhorn_dummy_row;
use ot_ged::prelude::*;
use proptest::prelude::*;

/// Strategy: a small connected labeled graph described by (n, extra-edge
/// seeds, label choices).
fn small_graph(max_n: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (2..=max_n, proptest::collection::vec(0u32..labels, max_n), any::<u64>()).prop_map(
        move |(n, label_choices, seed)| {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut g = Graph::new();
            for i in 0..n {
                g.add_node(Label(label_choices[i % label_choices.len()]));
            }
            for i in 1..n as u32 {
                let j = rng.gen_range(0..i);
                g.add_edge(i, j);
            }
            for _ in 0..n {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u != v && !g.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
            g
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariant C/F: exact A* GED is symmetric, zero iff isomorphic, and
    /// bounded below by the label-set lower bound.
    #[test]
    fn exact_ged_is_a_sane_metric(
        g1 in small_graph(5, 3),
        g2 in small_graph(6, 3),
    ) {
        let d12 = astar_exact(&g1, &g2).ged;
        let d21 = astar_exact(&g2, &g1).ged;
        prop_assert_eq!(d12, d21);
        prop_assert!(d12 >= label_set_lower_bound(&g1, &g2));
        prop_assert_eq!(astar_exact(&g1, &g1).ged, 0);
        if d12 == 0 {
            prop_assert!(are_isomorphic(&g1, &g2));
        }
    }

    /// Invariant F: triangle inequality of the exact GED.
    #[test]
    fn exact_ged_triangle_inequality(
        a in small_graph(4, 2),
        b in small_graph(4, 2),
        c in small_graph(4, 2),
    ) {
        let ab = astar_exact(&a, &b).ged;
        let bc = astar_exact(&b, &c).ged;
        let ac = astar_exact(&a, &c).ged;
        prop_assert!(ac <= ab + bc, "{} > {} + {}", ac, ab, bc);
    }

    /// Invariant A: every edit path produced by the k-best framework is
    /// applicable and lands on the target graph.
    #[test]
    fn kbest_paths_always_verify(
        g1 in small_graph(5, 3),
        g2 in small_graph(6, 3),
        seed in any::<u64>(),
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let (a, b, _) = ot_ged::core::pairs::ordered(&g1, &g2);
        let mut rng = SmallRng::seed_from_u64(seed);
        let pi = Matrix::from_fn(a.num_nodes(), b.num_nodes(), |_, _| rng.gen_range(0.0..1.0));
        let res = kbest_edit_path(a, b, &pi, 6);
        prop_assert_eq!(res.path.len(), res.ged);
        let rebuilt = res.path.apply(a).unwrap();
        prop_assert!(are_isomorphic(&rebuilt, b));
        prop_assert!(res.ged >= astar_exact(a, b).ged);
    }

    /// Invariant B (solver side): the GEDGW objective of the *exact*
    /// matching equals the exact GED, and the relaxed solve is finite and
    /// non-negative.
    #[test]
    fn gedgw_solve_is_sane(
        g1 in small_graph(5, 3),
        g2 in small_graph(5, 3),
    ) {
        let res = Gedgw::new(&g1, &g2).solve();
        prop_assert!(res.ged.is_finite());
        prop_assert!(res.ged >= -1e-9);
        let (a, b, _) = ot_ged::core::pairs::ordered(&g1, &g2);
        prop_assert_eq!(res.coupling.shape(), (a.num_nodes(), b.num_nodes()));
    }

    /// Invariant D: Sinkhorn's dummy-row coupling lies in the relaxed
    /// node-matching polytope for arbitrary bounded cost matrices.
    #[test]
    fn sinkhorn_dummy_row_polytope(
        n1 in 1usize..=5,
        extra in 0usize..=3,
        seed in any::<u64>(),
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let n2 = n1 + extra;
        let mut rng = SmallRng::seed_from_u64(seed);
        let cost = Matrix::from_fn(n1, n2, |_, _| rng.gen_range(-1.0..1.0));
        let res = sinkhorn_dummy_row(&cost, 0.1, 1000);
        for s in res.coupling.row_sums() {
            prop_assert!((s - 1.0).abs() < 1e-9, "row sum {}", s);
        }
        for s in res.coupling.col_sums() {
            // Rows are exact after the final φ-update; columns converge
            // geometrically and may retain a small residual.
            prop_assert!(s <= 1.0 + 1e-3, "col sum {}", s);
        }
        prop_assert!(res.coupling.min() >= 0.0);
    }

    /// The two independent LSAP solvers agree on arbitrary cost matrices.
    #[test]
    fn lsap_solvers_agree(
        n in 1usize..=6,
        extra in 0usize..=3,
        seed in any::<u64>(),
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let cost = Matrix::from_fn(n, n + extra, |_, _| rng.gen_range(-5.0..5.0));
        let a = lsap_min(&cost);
        let b = lsap_min_munkres(&cost);
        prop_assert!((a.cost - b.cost).abs() < 1e-9, "{} vs {}", a.cost, b.cost);
    }

    /// EPGen realizes exactly the induced cost for random mappings.
    #[test]
    fn epgen_cost_identity(
        g1 in small_graph(5, 3),
        g2 in small_graph(6, 3),
        seed in any::<u64>(),
    ) {
        use rand::rngs::SmallRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let (a, b, _) = ot_ged::core::pairs::ordered(&g1, &g2);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cols: Vec<u32> = (0..b.num_nodes() as u32).collect();
        cols.shuffle(&mut rng);
        let mapping = NodeMapping::new(cols[..a.num_nodes()].to_vec());
        let path = mapping.edit_path(a, b);
        prop_assert_eq!(path.len(), mapping.induced_cost(a, b));
        let rebuilt = path.apply(a).unwrap();
        prop_assert!(are_isomorphic(&rebuilt, b));
    }
}
