//! Integration tests for the `GedEngine` query API.
//!
//! The load-bearing contract: `GedQuery::TopK` over a `GraphStore` must
//! return exactly the ranking a brute-force per-pair evaluation produces
//! (on a ≥ 50-graph synthetic dataset) while invoking the solver on
//! strictly fewer candidates, and every documented error path must
//! surface as a typed `GedError` instead of a panic.

use ot_ged::core::pairs::GedPair;
use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// An engine over the training-free solvers (GEDGW default), so tests
/// need no model training.
fn engine() -> GedEngine {
    ged_testkit::engine_builder(&[MethodKind::Gedgw])
        .beam_width(8)
        .build()
        .expect("valid configuration")
}

/// The ranking the engine promises to reproduce exactly.
fn brute_force(store: &GraphStore, query: &Graph) -> Vec<Neighbor> {
    ged_testkit::brute_force_refined(store, query, &GedgwSolver, None)
}

#[test]
fn top_k_matches_brute_force_ranking_on_50_graph_store() {
    let mut rng = SmallRng::seed_from_u64(20_260_728);
    let dataset = GraphDataset::aids_like(50, &mut rng);
    assert!(dataset.len() >= 50);
    let query = GraphDataset::aids_like(1, &mut rng)
        .graphs()
        .next()
        .unwrap()
        .clone();
    let brute = brute_force(&dataset, &query);

    let engine = engine();
    for k in [1usize, 5, 10, 50] {
        let response = engine
            .query(GedQuery::TopK {
                query: &query,
                store: &dataset,
                k,
            })
            .expect("valid top-k query");
        let result = response.into_top_k().expect("TopK yields TopK");
        assert_eq!(result.neighbors.len(), k.min(dataset.len()));
        for (n, want) in result.neighbors.iter().zip(&brute) {
            assert_eq!(n.id, want.id, "k={k}: rank order differs");
            assert_eq!(
                n.ged.to_bits(),
                want.ged.to_bits(),
                "k={k}: distance differs at id {}",
                n.id
            );
        }
        // Filter–verify accounting always closes.
        assert_eq!(result.stats.candidates, dataset.len());
        assert_eq!(
            result.stats.pruned() + result.stats.verified,
            result.stats.candidates
        );
    }
    // For small k the lower bounds must save solver invocations.
    let result = engine.top_k(&query, &dataset, 5).expect("valid query");
    assert!(
        result.stats.verified < dataset.len(),
        "filter–verify must call the solver on strictly fewer pairs: {:?}",
        result.stats
    );
    assert!(result.stats.pruned() > 0, "stats: {:?}", result.stats);
}

#[test]
fn distance_matrix_agrees_with_per_pair_evaluation() {
    let mut rng = SmallRng::seed_from_u64(77);
    let dataset = GraphDataset::linux_like(8, &mut rng);
    let engine = engine();
    let m = engine
        .query(GedQuery::Matrix { store: &dataset })
        .unwrap()
        .into_matrix()
        .unwrap();
    assert_eq!(m.size(), dataset.len());
    assert_eq!(m.ids(), dataset.ids().as_slice());
    let graphs: Vec<&Graph> = dataset.graphs().collect();
    for i in 0..dataset.len() {
        assert_eq!(m.get(i, i), 0.0, "diagonal must be zero");
        for j in (i + 1)..dataset.len() {
            let pair = GedPair::new(graphs[i].clone(), graphs[j].clone());
            let want = GedgwSolver.predict(&pair).ged;
            assert_eq!(m.get(i, j).to_bits(), want.to_bits(), "({i},{j})");
            assert_eq!(m.get(j, i).to_bits(), want.to_bits(), "symmetry ({j},{i})");
        }
    }
}

#[test]
fn unknown_method_string_is_a_typed_error() {
    let err = "NoSuchMethod".parse::<MethodKind>().unwrap_err();
    assert_eq!(err, GedError::UnknownMethod("NoSuchMethod".to_string()));
    // And the happy path a CLI would take:
    assert_eq!("gedgw".parse::<MethodKind>().unwrap(), MethodKind::Gedgw);
}

#[test]
fn unregistered_method_is_a_typed_error() {
    let engine = engine();
    let mut rng = SmallRng::seed_from_u64(3);
    let ds = GraphDataset::aids_like(2, &mut rng);
    let gs: Vec<&Graph> = ds.graphs().collect();
    let pair = GedPair::new(gs[0].clone(), gs[1].clone());
    let err = engine
        .query_as(MethodKind::Gediot, GedQuery::Value { pair: &pair })
        .unwrap_err();
    assert_eq!(err, GedError::MethodNotRegistered(MethodKind::Gediot));
}

#[test]
fn empty_graph_queries_error_instead_of_panicking() {
    let engine = engine();
    let mut rng = SmallRng::seed_from_u64(4);
    let ds = GraphDataset::aids_like(3, &mut rng);
    let empty = Graph::new();

    let err = engine.ged(&empty, ds.graphs().next().unwrap()).unwrap_err();
    assert_eq!(err, GedError::EmptyGraph("g1".to_string()));

    let err = engine
        .query(GedQuery::TopK {
            query: &empty,
            store: &ds,
            k: 2,
        })
        .unwrap_err();
    assert_eq!(err, GedError::EmptyGraph("query".to_string()));

    // A node-less graph *inside* the store is caught by the signature
    // scan and named by id.
    let mut ds = ds;
    let bad = ds.insert(Graph::new());
    let query = ds.graphs().next().unwrap().clone();
    let err = engine.top_k(&query, &ds, 2).unwrap_err();
    assert_eq!(err, GedError::EmptyGraph(format!("store graph {bad}")));
}

#[test]
fn zero_k_and_empty_stores_are_typed_errors() {
    let engine = engine();
    let mut rng = SmallRng::seed_from_u64(5);
    let ds = GraphDataset::aids_like(3, &mut rng);
    let gs: Vec<&Graph> = ds.graphs().collect();
    let pair = GedPair::new(gs[0].clone(), gs[1].clone());
    let query = gs[0].clone();

    let err = engine
        .query(GedQuery::TopK {
            query: &query,
            store: &ds,
            k: 0,
        })
        .unwrap_err();
    assert_eq!(err, GedError::InvalidK { what: "top-k" });

    let err = engine
        .query(GedQuery::Path {
            pair: &pair,
            k: Some(0),
        })
        .unwrap_err();
    assert_eq!(err, GedError::InvalidK { what: "beam width" });

    let empty = GraphStore::new();
    let err = engine
        .query(GedQuery::TopK {
            query: &query,
            store: &empty,
            k: 3,
        })
        .unwrap_err();
    assert_eq!(err, GedError::EmptyStore);
    let err = engine
        .query(GedQuery::Range {
            query: &query,
            store: &empty,
            tau: 3.0,
        })
        .unwrap_err();
    assert_eq!(err, GedError::EmptyStore);
    let err = engine
        .query(GedQuery::Matrix { store: &empty })
        .unwrap_err();
    assert_eq!(err, GedError::EmptyStore);
}

#[test]
fn foreign_and_removed_ids_are_typed_errors() {
    let engine = engine();
    let mut rng = SmallRng::seed_from_u64(8);
    let mut ds = GraphDataset::aids_like(4, &mut rng);
    let other = GraphDataset::aids_like(2, &mut rng);
    let ids = ds.ids();

    // Foreign id: minted by a different store.
    let foreign = other.ids()[0];
    assert_eq!(
        engine.top_k_by_id(&ds, foreign, 2).unwrap_err(),
        GedError::UnknownGraphId(foreign)
    );
    assert_eq!(
        engine.ged_by_ids(&ds, ids[0], foreign).unwrap_err(),
        GedError::UnknownGraphId(foreign)
    );

    // Removed id: was valid, is not anymore.
    ds.remove(ids[1]);
    assert_eq!(
        engine.top_k_by_id(&ds, ids[1], 2).unwrap_err(),
        GedError::UnknownGraphId(ids[1])
    );
    // And the removed graph no longer appears in results.
    let result = engine.top_k_by_id(&ds, ids[0], 10).unwrap();
    assert!(result.neighbors.iter().all(|n| n.id != ids[1]));
    assert_eq!(result.neighbors.len(), ds.len());
}

#[test]
fn top_k_larger_than_store_returns_all_graphs_ranked() {
    let engine = engine();
    let mut rng = SmallRng::seed_from_u64(6);
    let ds = GraphDataset::aids_like(7, &mut rng);
    let first = ds.ids()[0];
    let result = engine.top_k_by_id(&ds, first, 1000).expect("clamped");
    assert_eq!(
        result.neighbors.len(),
        ds.len(),
        "k is clamped to the store"
    );
    for w in result.neighbors.windows(2) {
        assert!(w[0].ged <= w[1].ged, "ascending ranking");
    }
    // The query itself is in the store: its self-distance ranks first.
    assert_eq!(result.neighbors[0].id, first);
}
