//! Integration tests for the `GedEngine` query API.
//!
//! The load-bearing contract: `GedQuery::TopK` must return exactly the
//! ranking a brute-force per-pair evaluation produces (on a ≥ 50-graph
//! synthetic dataset), and every documented error path must surface as a
//! typed `GedError` instead of a panic.

use ot_ged::core::pairs::GedPair;
use ot_ged::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// An engine over the training-free solvers (GEDGW default), so tests
/// need no model training.
fn engine() -> GedEngine {
    let mut registry = SolverRegistry::new();
    registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
    GedEngine::builder(registry)
        .method(MethodKind::Gedgw)
        .beam_width(8)
        .build()
        .expect("valid configuration")
}

#[test]
fn top_k_matches_brute_force_ranking_on_50_graph_dataset() {
    let mut rng = SmallRng::seed_from_u64(20_260_728);
    let dataset = GraphDataset::aids_like(50, &mut rng);
    assert!(dataset.len() >= 50);
    let query = GraphDataset::aids_like(1, &mut rng).graphs[0].clone();

    // Brute force: evaluate every pair directly on the solver, then sort
    // by (ged, index) — the engine promises exactly this ranking.
    let mut brute: Vec<(usize, f64)> = dataset
        .graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let pair = GedPair::new(query.clone(), g.clone());
            (i, GedgwSolver.predict(&pair).ged)
        })
        .collect();
    brute.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));

    let engine = engine();
    for k in [1usize, 5, 10, 50] {
        let response = engine
            .query(GedQuery::TopK {
                query: &query,
                dataset: &dataset,
                k,
            })
            .expect("valid top-k query");
        let neighbors = response.into_top_k().expect("TopK yields TopK");
        assert_eq!(neighbors.len(), k.min(dataset.len()));
        for (n, (want_idx, want_ged)) in neighbors.iter().zip(&brute) {
            assert_eq!(n.index, *want_idx, "k={k}: rank order differs");
            assert_eq!(
                n.ged.to_bits(),
                want_ged.to_bits(),
                "k={k}: distance differs at index {}",
                n.index
            );
        }
    }
}

#[test]
fn distance_matrix_agrees_with_per_pair_evaluation() {
    let mut rng = SmallRng::seed_from_u64(77);
    let dataset = GraphDataset::linux_like(8, &mut rng);
    let engine = engine();
    let m = engine
        .query(GedQuery::Matrix { dataset: &dataset })
        .unwrap()
        .into_matrix()
        .unwrap();
    assert_eq!(m.size(), dataset.len());
    for i in 0..dataset.len() {
        assert_eq!(m.get(i, i), 0.0, "diagonal must be zero");
        for j in (i + 1)..dataset.len() {
            let pair = GedPair::new(dataset.graphs[i].clone(), dataset.graphs[j].clone());
            let want = GedgwSolver.predict(&pair).ged;
            assert_eq!(m.get(i, j).to_bits(), want.to_bits(), "({i},{j})");
            assert_eq!(m.get(j, i).to_bits(), want.to_bits(), "symmetry ({j},{i})");
        }
    }
}

#[test]
fn unknown_method_string_is_a_typed_error() {
    let err = "NoSuchMethod".parse::<MethodKind>().unwrap_err();
    assert_eq!(err, GedError::UnknownMethod("NoSuchMethod".to_string()));
    // And the happy path a CLI would take:
    assert_eq!("gedgw".parse::<MethodKind>().unwrap(), MethodKind::Gedgw);
}

#[test]
fn unregistered_method_is_a_typed_error() {
    let engine = engine();
    let mut rng = SmallRng::seed_from_u64(3);
    let ds = GraphDataset::aids_like(2, &mut rng);
    let pair = GedPair::new(ds.graphs[0].clone(), ds.graphs[1].clone());
    let err = engine
        .query_as(MethodKind::Gediot, GedQuery::Value { pair: &pair })
        .unwrap_err();
    assert_eq!(err, GedError::MethodNotRegistered(MethodKind::Gediot));
}

#[test]
fn empty_graph_queries_error_instead_of_panicking() {
    let engine = engine();
    let mut rng = SmallRng::seed_from_u64(4);
    let ds = GraphDataset::aids_like(3, &mut rng);
    let empty = Graph::new();

    let err = engine.ged(&empty, &ds.graphs[0]).unwrap_err();
    assert_eq!(err, GedError::EmptyGraph("g1".to_string()));

    let err = engine
        .query(GedQuery::TopK {
            query: &empty,
            dataset: &ds,
            k: 2,
        })
        .unwrap_err();
    assert_eq!(err, GedError::EmptyGraph("query".to_string()));
}

#[test]
fn zero_k_and_empty_datasets_are_typed_errors() {
    let engine = engine();
    let mut rng = SmallRng::seed_from_u64(5);
    let ds = GraphDataset::aids_like(3, &mut rng);
    let pair = GedPair::new(ds.graphs[0].clone(), ds.graphs[1].clone());

    let err = engine
        .query(GedQuery::TopK {
            query: &ds.graphs[0],
            dataset: &ds,
            k: 0,
        })
        .unwrap_err();
    assert_eq!(err, GedError::InvalidK { what: "top-k" });

    let err = engine
        .query(GedQuery::Path {
            pair: &pair,
            k: Some(0),
        })
        .unwrap_err();
    assert_eq!(err, GedError::InvalidK { what: "beam width" });

    let empty = GraphDataset {
        kind: ds.kind,
        graphs: Vec::new(),
    };
    let err = engine
        .query(GedQuery::TopK {
            query: &ds.graphs[0],
            dataset: &empty,
            k: 3,
        })
        .unwrap_err();
    assert_eq!(err, GedError::EmptyDataset);
    let err = engine
        .query(GedQuery::Matrix { dataset: &empty })
        .unwrap_err();
    assert_eq!(err, GedError::EmptyDataset);
}

#[test]
fn top_k_larger_than_dataset_returns_all_graphs_ranked() {
    let engine = engine();
    let mut rng = SmallRng::seed_from_u64(6);
    let ds = GraphDataset::aids_like(7, &mut rng);
    let neighbors = engine.top_k(&ds.graphs[0], &ds, 1000).expect("clamped");
    assert_eq!(neighbors.len(), ds.len(), "k is clamped to the dataset");
    for w in neighbors.windows(2) {
        assert!(w[0].ged <= w[1].ged, "ascending ranking");
    }
    // The query itself is in the dataset: its self-distance ranks first.
    assert_eq!(neighbors[0].index, 0);
}
