//! Property-style integration tests for the triangle-inequality pivot
//! tier (`GedEngineBuilder::pivots`):
//!
//! * the derived `[lb, ub]` bounds sandwich the exact GED for **every**
//!   query–candidate pair on random AIDS/LINUX stores;
//! * `TopK` / `Range` with pivots stay bit-identical to the brute-force
//!   scan applying the same two-sided bound refinement, across methods,
//!   with the pivot filter tier visibly pruning;
//! * `RangeExact` with pivots is bit-identical to both the brute-force
//!   τ-bounded exact scan *and* the pivot-disabled plan, while the τ-A\*
//!   verifications strictly decrease;
//! * everything is thread-count invariant;
//! * incremental `insert` / `remove` — including removing a pivot graph
//!   itself, which forces reselection — keeps every query exactly equal
//!   to a freshly built index;
//! * edge cases: `p = 0`, `p ≥ store.len()`, `τ = 0`, single-graph
//!   stores;
//! * regression: `ExactSearchStats::total()` closes to the store size
//!   for every query, whichever tiers fire (including under a strangled
//!   verify budget).

use ged_testkit::{
    aids_store, assert_same_neighbors as assert_same, brute_force_refined, brute_range,
    brute_range_exact, brute_top_k, engine_builder, external_query, linux_store, solver_for,
};
use ot_ged::prelude::*;

/// The standard pivoted engine of this suite: GEDGW + Classic, `p`
/// pivots, deterministic single-threaded verification.
fn pivoted_engine(p: usize) -> GedEngine {
    engine_builder(&[MethodKind::Gedgw, MethodKind::Classic])
        .threads(1)
        .pivots(p)
        .build()
        .expect("valid configuration")
}

/// Unbounded exact GED (the ground truth the bounds must contain).
fn exact(g1: &Graph, g2: &Graph) -> usize {
    bounded_exact_ged(g1, g2, usize::MAX / 2).expect("unbounded search always concludes")
}

#[test]
fn pivot_bounds_sandwich_exact_ged_for_all_pairs() {
    for (store, tag) in [
        (aids_store(18, 901), "AIDS"),
        (linux_store(16, 902), "LINUX"),
    ] {
        let engine = pivoted_engine(3);
        let member = store.graphs().next().unwrap().clone();
        let foreign = external_query(903);
        for (query, qtag) in [(&member, "member"), (&foreign, "external")] {
            let bounds = engine.pivot_bounds(query, &store).expect("pivots enabled");
            assert_eq!(bounds.len(), store.len(), "{tag}: one bound per graph");
            for (id, g) in store.iter() {
                let (lb, ub) = bounds[&id];
                let d = exact(query, g);
                assert!(
                    lb <= d && d <= ub,
                    "{tag}/{qtag}/{id}: [{lb}, {ub}] must contain exact GED {d}"
                );
            }
        }
    }
}

#[test]
fn top_k_and_range_with_pivots_equal_brute_force_across_methods() {
    for (store, tag) in [
        (aids_store(40, 911), "AIDS"),
        (linux_store(35, 912), "LINUX"),
    ] {
        let engine = pivoted_engine(4);
        // A member query: close neighbors exist, the k-th-best threshold
        // tightens, and the query itself can end up among the pivots.
        let query = store.graphs().next().unwrap().clone();
        let mut pivot_pruned = 0usize;
        let mut pivot_accepted = 0usize;
        for method in [MethodKind::Gedgw, MethodKind::Classic] {
            let bounds = engine.pivot_bounds(&query, &store).expect("pivots enabled");
            let solver = solver_for(method);
            let brute = brute_force_refined(&store, &query, solver.as_ref(), Some(&bounds));

            for k in [1usize, 5, store.len()] {
                let ctx = format!("{tag}/{method}/k={k}");
                let result = engine
                    .top_k_as(method, &query, &store, k)
                    .expect("valid query");
                let want = brute_top_k(&store, &query, solver.as_ref(), k, Some(&bounds));
                assert_same(&result.neighbors, &want, &ctx);
                assert_eq!(
                    result.stats.pruned() + result.stats.verified,
                    result.stats.candidates,
                    "{ctx}: accounting must close"
                );
                pivot_pruned += result.stats.pruned_pivot;
            }

            let taus = [brute[2].ged, brute[brute.len() / 4].ged];
            for tau in taus {
                let ctx = format!("{tag}/{method}/tau={tau:.3}");
                let result = engine
                    .range_as(method, &query, &store, tau)
                    .expect("valid query");
                let want = brute_range(&store, &query, solver.as_ref(), tau, Some(&bounds));
                assert_same(&result.neighbors, &want, &ctx);
                assert!(!result.neighbors.is_empty(), "{ctx}: τ chosen non-trivial");
                assert_eq!(
                    result.stats.pruned() + result.stats.verified,
                    result.stats.candidates,
                    "{ctx}: accounting must close"
                );
                pivot_pruned += result.stats.pruned_pivot;
                pivot_accepted += result.stats.accepted_pivot;
            }
        }
        assert!(
            pivot_pruned > 0,
            "{tag}: the pivot filter tier never pruned"
        );
        assert!(
            pivot_accepted > 0,
            "{tag}: the pivot range-accept tier never certified a match"
        );
    }
}

#[test]
fn range_exact_with_pivots_is_bit_identical_to_disabled_and_brute_force() {
    for (store, tag) in [
        (aids_store(40, 921), "AIDS"),
        (linux_store(35, 922), "LINUX"),
    ] {
        let with = pivoted_engine(4);
        let without = pivoted_engine(0);
        let query = store.graphs().next().unwrap().clone();
        let mut fired = ExactSearchStats::default();
        let (mut verified_with, mut verified_without) = (0usize, 0usize);
        for tau in [1usize, 3, 5] {
            let ctx = format!("{tag}/tau={tau}");
            let a = with.range_exact(&query, &store, tau as f64).unwrap();
            let b = without.range_exact(&query, &store, tau as f64).unwrap();
            let brute = brute_range_exact(&store, &query, tau);
            assert_eq!(a.matches, brute, "{ctx}: pivots ≡ brute force");
            assert_eq!(a.matches, b.matches, "{ctx}: pivots ≡ pivot-disabled");
            assert_eq!(a.budget_exhausted, b.budget_exhausted, "{ctx}: unlimited");
            assert_eq!(a.stats.total(), store.len(), "{ctx}: accounting closes");
            assert_eq!(b.stats.total(), store.len(), "{ctx}: accounting closes");
            fired.pruned_pivot += a.stats.pruned_pivot;
            fired.accepted_pivot += a.stats.accepted_pivot;
            verified_with += a.stats.verified;
            verified_without += b.stats.verified;
        }
        assert!(
            fired.pruned_pivot + fired.accepted_pivot > 0,
            "{tag}: the pivot tiers never fired"
        );
        assert!(
            verified_with < verified_without,
            "{tag}: pivots must strictly reduce τ-bounded verifications \
             ({verified_with} vs {verified_without})"
        );
    }
}

#[test]
fn pivot_searches_are_thread_count_invariant() {
    let store = aids_store(30, 931);
    let query = store.graphs().next().unwrap().clone();
    let build = |threads: usize| {
        engine_builder(&[MethodKind::Gedgw])
            .threads(threads)
            .pivots(3)
            .build()
            .expect("valid configuration")
    };
    let (seq, par) = (build(1), build(4));

    let a = seq.top_k(&query, &store, 7).unwrap();
    let b = par.top_k(&query, &store, 7).unwrap();
    assert_eq!(a.stats, b.stats, "plan is thread-independent");
    assert_same(&a.neighbors, &b.neighbors, "top-k threads=1 vs 4");

    let tau = a.neighbors[4].ged;
    let ra = seq.range(&query, &store, tau).unwrap();
    let rb = par.range(&query, &store, tau).unwrap();
    assert_eq!(ra.stats, rb.stats);
    assert_same(&ra.neighbors, &rb.neighbors, "range threads=1 vs 4");

    let ea = seq.range_exact(&query, &store, 4.0).unwrap();
    let eb = par.range_exact(&query, &store, 4.0).unwrap();
    assert_eq!(ea, eb, "exact answers are thread-independent");
}

#[test]
fn incremental_updates_match_a_freshly_built_index() {
    let mut store = aids_store(24, 941);
    let incremental = pivoted_engine(3);
    let query = external_query(942);

    let check = |round: usize, store: &GraphDataset, engine: &GedEngine| {
        let ctx = format!("round {round}");
        // RangeExact: exact semantics make fresh-vs-incremental equality
        // a theorem — assert it against a brand-new engine (fresh index)
        // and the brute-force scan.
        let fresh = pivoted_engine(3);
        let a = engine.range_exact(&query, store, 4.0).unwrap();
        let b = fresh.range_exact(&query, store, 4.0).unwrap();
        let brute = brute_range_exact(store, &query, 4);
        assert_eq!(a.matches, brute, "{ctx}: incremental ≡ brute force");
        assert_eq!(a.matches, b.matches, "{ctx}: incremental ≡ fresh build");
        assert_eq!(a.stats.total(), store.len(), "{ctx}: accounting closes");
        // TopK stays equal to the brute scan under the *synced* bounds.
        let bounds = engine.pivot_bounds(&query, store).expect("pivots enabled");
        assert_eq!(bounds.len(), store.len(), "{ctx}: bounds track the store");
        for (id, g) in store.iter() {
            let (lb, ub) = bounds[&id];
            let d = exact(&query, g);
            assert!(lb <= d && d <= ub, "{ctx}/{id}: sandwich after sync");
        }
        let result = engine.top_k(&query, store, 5).unwrap();
        let want = brute_top_k(store, &query, &GedgwSolver, 5, Some(&bounds));
        assert_same(&result.neighbors, &want, &ctx);
    };

    check(0, &store, &incremental);
    // Round 1: remove a *pivot* graph — the index must deselect it,
    // reselect a replacement, and keep answering exactly.
    let victim = incremental.pivot_ids(&store)[0];
    store.remove(victim);
    check(1, &store, &incremental);
    assert!(
        !incremental.pivot_ids(&store).contains(&victim),
        "a removed pivot must be deselected"
    );
    assert_eq!(
        incremental.pivot_ids(&store).len(),
        3,
        "reselection restores the pivot count"
    );
    // Round 2: remove a non-pivot, insert two fresh graphs.
    let non_pivot = *store
        .ids()
        .iter()
        .find(|id| !incremental.pivot_ids(&store).contains(id))
        .expect("24-graph store has non-pivots");
    store.remove(non_pivot);
    let fresh_pair = aids_store(2, 943);
    for g in fresh_pair.graphs() {
        store.insert(g.clone());
    }
    check(2, &store, &incremental);
    // Round 3: interleave again — insert, then remove the current best.
    let best = incremental.top_k(&query, &store, 1).unwrap().neighbors[0].id;
    store.remove(best);
    store.insert(external_query(944));
    check(3, &store, &incremental);
}

#[test]
fn pivot_edge_cases() {
    // p = 0 is exactly the pivot-disabled engine, bit for bit.
    let store = aids_store(12, 951);
    let query = store.graphs().next().unwrap().clone();
    let zero = pivoted_engine(0);
    assert!(zero.pivot_bounds(&query, &store).is_none());
    assert!(zero.pivot_ids(&store).is_empty());

    // p ≥ store.len(): every graph becomes a pivot; queries still agree
    // with brute force and the sandwich stays tight (the table is exact).
    let small = aids_store(6, 952);
    let all_pivots = pivoted_engine(50);
    assert_eq!(all_pivots.pivot_ids(&small).len(), small.len());
    let q = small.graphs().next().unwrap().clone();
    let bounds = all_pivots.pivot_bounds(&q, &small).unwrap();
    for (id, g) in small.iter() {
        let (lb, ub) = bounds[&id];
        let d = exact(&q, g);
        assert!(lb <= d && d <= ub);
    }
    let result = all_pivots.range_exact(&q, &small, 3.0).unwrap();
    assert_eq!(result.matches, brute_range_exact(&small, &q, 3));
    assert_eq!(result.stats.total(), small.len());

    // τ = 0: only exact self-matches survive, pivot tier or not.
    let strict = pivoted_engine(3);
    let z = strict.range_exact(&query, &store, 0.0).unwrap();
    assert_eq!(z.matches, brute_range_exact(&store, &query, 0));
    assert!(
        z.matches.iter().any(|m| m.ged == 0),
        "member matches itself"
    );
    assert_eq!(z.stats.total(), store.len());

    // A single-graph store: selection clamps to one pivot; every query
    // kind still answers.
    let mut solo = GraphStore::new();
    let lone = solo.insert(query.clone());
    let engine = pivoted_engine(2);
    assert_eq!(engine.pivot_ids(&solo), vec![lone]);
    let top = engine.top_k(&query, &solo, 1).unwrap();
    assert_eq!(top.neighbors[0].id, lone);
    let rx = engine.range_exact(&query, &solo, 0.0).unwrap();
    assert_eq!(rx.matches, vec![ExactNeighbor { id: lone, ged: 0 }]);
    assert_eq!(rx.stats.total(), 1);
}

#[test]
fn exact_accounting_closes_for_every_query_and_budget() {
    let store = aids_store(25, 961);
    let member = store.graphs().next().unwrap().clone();
    let foreign = external_query(962);
    let engines = [
        ("unlimited", pivoted_engine(3)),
        (
            "strangled",
            engine_builder(&[MethodKind::Gedgw])
                .threads(1)
                .pivots(3)
                .verify_budget(40)
                .build()
                .unwrap(),
        ),
    ];
    for (etag, engine) in &engines {
        for (query, qtag) in [(&member, "member"), (&foreign, "external")] {
            for tau in [0.0, 2.0, 5.0, f64::INFINITY] {
                let ctx = format!("{etag}/{qtag}/tau={tau}");
                let result = engine.range_exact(query, &store, tau).unwrap();
                assert_eq!(
                    result.stats.total(),
                    store.len(),
                    "{ctx}: the six tiers must account for every stored \
                     graph: {:?}",
                    result.stats
                );
                assert_eq!(
                    result.stats.budget_exceeded,
                    result.budget_exhausted.len(),
                    "{ctx}: stats mirror the undecided list"
                );
                // Approximate plans close too (overlay counters aside).
                let s = engine.range(query, &store, tau).unwrap().stats;
                assert_eq!(s.pruned() + s.verified, s.candidates, "{ctx}: range");
            }
        }
    }
}
