//! Property-style integration tests for the sharded search tier
//! (`ged_graph::ShardedStore` + the `*_sharded` engine plans):
//!
//! * pivot-free `TopK` / `Range` / `RangeExact` over a sharded store are
//!   bit-identical to the flat plans over the same graphs, across bucket
//!   widths (1, 4, unbounded) and thread counts;
//! * with pivots armed, `RangeExact` still equals the flat exact scan
//!   (exact answers are plan-independent), and the approximate plans
//!   equal the sharded brute-force oracle applying the engine's own
//!   per-shard pivot bounds;
//! * the shard tier visibly prunes (`pruned_shard > 0`) on
//!   size-heterogeneous stores while the stats accounting still closes;
//! * interleaved insert / remove keeps sharded answers equal to a flat
//!   mirror maintained alongside;
//! * a snapshot save → load round-trip preserves ids, revisions (the
//!   follow-up pivot sync is a no-op), and every answer bit.

use ged_testkit::{
    aids_store, assert_same_neighbors as assert_same, brute_range_exact_sharded,
    brute_range_sharded, brute_top_k_sharded, engine_builder, external_query, linux_store, rng,
    sharded_copy,
};
use ot_ged::prelude::*;
use std::collections::BTreeMap;

/// GEDGW-only engine with `threads` workers and `p` pivots.
fn engine(threads: usize, p: usize) -> GedEngine {
    engine_builder(&[MethodKind::Gedgw])
        .threads(threads)
        .pivots(p)
        .build()
        .expect("valid configuration")
}

/// Translates a flat-store neighbor list through the flat→sharded id map
/// (both mints are insertion-ordered, so relative id order — and hence
/// the `(ged, id)` sort — is preserved).
fn translate(neighbors: &[Neighbor], map: &BTreeMap<GraphId, GraphId>) -> Vec<Neighbor> {
    neighbors
        .iter()
        .map(|n| Neighbor {
            id: map[&n.id],
            ged: n.ged,
        })
        .collect()
}

fn translate_exact(
    matches: &[ExactNeighbor],
    map: &BTreeMap<GraphId, GraphId>,
) -> Vec<ExactNeighbor> {
    matches
        .iter()
        .map(|m| ExactNeighbor {
            id: map[&m.id],
            ged: m.ged,
        })
        .collect()
}

fn assert_same_exact(got: &[ExactNeighbor], want: &[ExactNeighbor], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: result size");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.id, w.id, "{ctx}: id order");
        assert_eq!(g.ged, w.ged, "{ctx}: exact value at {}", g.id);
    }
}

#[test]
fn pivot_free_sharded_plans_equal_flat_plans() {
    for (store, tag) in [
        (aids_store(30, 7101), "AIDS"),
        (linux_store(24, 7102), "LINUX"),
    ] {
        let query = external_query(7103);
        for width in [1, 4, usize::MAX] {
            let (sharded, map) = sharded_copy(&store, width);
            for threads in [1, 4] {
                let e = engine(threads, 0);
                let ctx = format!("{tag}/width={width}/threads={threads}");

                let flat = e.top_k(&query, &store, 7).expect("flat top-k");
                let shrd = e.top_k_sharded(&query, &sharded, 7).expect("sharded top-k");
                assert_same(
                    &shrd.neighbors,
                    &translate(&flat.neighbors, &map),
                    &format!("{ctx}/top-k"),
                );
                assert_eq!(
                    shrd.stats.pruned() + shrd.stats.verified,
                    shrd.stats.candidates,
                    "{ctx}/top-k: accounting closes"
                );

                let tau = flat.neighbors.last().expect("k results").ged;
                let flat_r = e.range(&query, &store, tau).expect("flat range");
                let shrd_r = e
                    .range_sharded(&query, &sharded, tau)
                    .expect("sharded range");
                assert_same(
                    &shrd_r.neighbors,
                    &translate(&flat_r.neighbors, &map),
                    &format!("{ctx}/range"),
                );

                let flat_x = e.range_exact(&query, &store, 8.0).expect("flat exact");
                let shrd_x = e
                    .range_exact_sharded(&query, &sharded, 8.0)
                    .expect("sharded exact");
                assert_same_exact(
                    &shrd_x.matches,
                    &translate_exact(&flat_x.matches, &map),
                    &format!("{ctx}/range-exact"),
                );
                assert_eq!(
                    shrd_x.stats.total(),
                    sharded.len(),
                    "{ctx}/range-exact: every candidate lands in one tier"
                );
            }
        }
    }
}

#[test]
fn sharded_range_exact_with_pivots_equals_flat_exact_scan() {
    let store = aids_store(24, 7201);
    let query = external_query(7202);
    let (mut sharded, map) = sharded_copy(&store, 4);
    let e = engine(1, 3);
    e.sync_sharded_pivots(&mut sharded);
    assert!(sharded.pivots_ready(3), "every shard synced at the target");

    let flat = e.range_exact(&query, &store, 7.0).expect("flat exact");
    let shrd = e
        .range_exact_sharded(&query, &sharded, 7.0)
        .expect("sharded exact");
    assert_same_exact(
        &shrd.matches,
        &translate_exact(&flat.matches, &map),
        "pivoted exact scan",
    );
    assert_eq!(shrd.stats.total(), sharded.len(), "accounting closes");

    // And against the brute-force sharded oracle directly.
    let brute = brute_range_exact_sharded(&sharded, &query, 7);
    assert_same_exact(&shrd.matches, &brute, "vs sharded oracle");
}

#[test]
fn pivoted_sharded_plans_equal_the_sharded_oracle() {
    let store = aids_store(26, 7301);
    let query = external_query(7302);
    let (mut sharded, _) = sharded_copy(&store, 4);
    let solver = GedgwSolver;
    for threads in [1, 3] {
        let e = engine(threads, 3);
        e.sync_sharded_pivots(&mut sharded);
        let bounds = e
            .sharded_pivot_bounds(&query, &sharded)
            .expect("pivots are synced");
        assert_eq!(bounds.len(), sharded.len(), "one bound per graph");

        let topk = e.top_k_sharded(&query, &sharded, 6).expect("top-k");
        let want = brute_top_k_sharded(&sharded, &query, &solver, 6, Some(&bounds));
        assert_same(&topk.neighbors, &want, &format!("threads={threads}/top-k"));

        let tau = want.last().expect("6 results").ged;
        let range = e.range_sharded(&query, &sharded, tau).expect("range");
        let want_r = brute_range_sharded(&sharded, &query, &solver, tau, Some(&bounds));
        assert_same(
            &range.neighbors,
            &want_r,
            &format!("threads={threads}/range"),
        );
    }
}

#[test]
fn shard_tier_prunes_on_size_heterogeneous_stores() {
    // IMDB-like stores mix small ego-nets with much larger ones, so a
    // small query is provably far from the large-graph shards on node
    // count alone — whole shards drop at the aggregate tier.
    let store = GraphDataset::imdb_like(40, 12, &mut rng(7401));
    let (sharded, _) = sharded_copy(&store, 4);
    assert!(
        sharded.shard_count() > 2,
        "heterogeneous sizes spread shards"
    );
    let query = store
        .graphs()
        .min_by_key(|g| g.num_nodes())
        .expect("nonempty")
        .clone();
    let e = engine(1, 0);

    let topk = e.top_k_sharded(&query, &sharded, 3).expect("top-k");
    assert!(
        topk.stats.pruned_shard > 0,
        "top-k skips whole shards: {}",
        topk.stats
    );
    assert_eq!(
        topk.stats.pruned() + topk.stats.verified,
        topk.stats.candidates,
        "top-k accounting closes"
    );

    let range = e.range_sharded(&query, &sharded, 2.0).expect("range");
    assert!(
        range.stats.pruned_shard > 0,
        "range skips whole shards: {}",
        range.stats
    );

    let exact = e.range_exact_sharded(&query, &sharded, 2.0).expect("exact");
    assert!(
        exact.stats.pruned_shard > 0,
        "exact range skips whole shards: {}",
        exact.stats
    );
    assert_eq!(
        exact.stats.total(),
        sharded.len(),
        "exact accounting closes"
    );
}

#[test]
fn interleaved_mutations_keep_sharded_equal_to_flat_mirror() {
    let source = aids_store(18, 7501);
    let spares = aids_store(6, 7502);
    let query = external_query(7503);
    let e = engine(1, 0);

    let mut flat = GraphStore::new();
    let mut sharded = ShardedStore::new(4);
    let mut map: BTreeMap<GraphId, GraphId> = BTreeMap::new();
    let mut flat_ids = Vec::new();
    for (_, g) in source.iter() {
        let fid = flat.insert(g.clone());
        map.insert(fid, sharded.insert(g.clone()));
        flat_ids.push(fid);
    }

    let check = |flat: &GraphStore,
                 sharded: &ShardedStore,
                 map: &BTreeMap<GraphId, GraphId>,
                 step: &str| {
        let f = e.top_k(&query, flat, 5).expect("flat top-k");
        let s = e.top_k_sharded(&query, sharded, 5).expect("sharded top-k");
        assert_same(&s.neighbors, &translate(&f.neighbors, map), step);
        let fx = e.range_exact(&query, flat, 6.0).expect("flat exact");
        let sx = e
            .range_exact_sharded(&query, sharded, 6.0)
            .expect("sharded exact");
        assert_same_exact(&sx.matches, &translate_exact(&fx.matches, map), step);
    };
    check(&flat, &sharded, &map, "initial");

    // Remove every third graph, inserting a spare after each removal.
    let mut spare_iter = spares.iter();
    for victim in flat_ids.iter().step_by(3) {
        assert!(
            flat.remove(*victim).is_some(),
            "flat mirror holds the victim"
        );
        assert!(
            sharded.remove(map[victim]).is_some(),
            "sharded store holds the twin"
        );
        map.remove(victim);
        if let Some((_, g)) = spare_iter.next() {
            let fid = flat.insert(g.clone());
            map.insert(fid, sharded.insert(g.clone()));
        }
    }
    assert_eq!(flat.len(), sharded.len());
    check(&flat, &sharded, &map, "after interleaved insert/remove");
}

#[test]
fn snapshot_roundtrip_preserves_answers_and_pivot_sync() {
    let store = aids_store(20, 7601);
    let query = external_query(7602);
    let (mut sharded, _) = sharded_copy(&store, 4);
    let e = engine(1, 3);
    e.sync_sharded_pivots(&mut sharded);

    let dir = std::env::temp_dir().join("ot_ged_sharded_search_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("snapshot.json");
    sharded.save(&path).expect("save");
    let mut loaded = ShardedStore::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.revision(), sharded.revision(), "revision carried");
    assert_eq!(loaded.ids(), sharded.ids(), "ids persisted verbatim");
    assert!(loaded.pivots_ready(3), "pivot blocks restored in-sync");

    // The restored revisions make the follow-up sync an O(1) no-op:
    // the snapshot is byte-stable across it.
    let before = loaded.to_json();
    e.sync_sharded_pivots(&mut loaded);
    assert_eq!(before, loaded.to_json(), "sync after load is a no-op");

    let want = e.top_k_sharded(&query, &sharded, 6).expect("pre-save");
    let got = e.top_k_sharded(&query, &loaded, 6).expect("post-load");
    assert_same(&got.neighbors, &want.neighbors, "top-k across round-trip");
    let want_x = e
        .range_exact_sharded(&query, &sharded, 6.0)
        .expect("pre-save");
    let got_x = e
        .range_exact_sharded(&query, &loaded, 6.0)
        .expect("post-load");
    assert_same_exact(&got_x.matches, &want_x.matches, "exact across round-trip");

    // Fresh inserts never alias restored ids.
    let extra = external_query(7604);
    let new_id = loaded.insert(extra);
    assert!(
        !sharded.ids().contains(&new_id),
        "restored seqs are reserved: {new_id:?}"
    );
}
