//! Dense linear algebra and linear assignment for `ot-ged`.
//!
//! The matrices in this project are small (a few hundred rows at most) and
//! dense, so [`Matrix`] is a plain row-major `f64` buffer with cache-friendly
//! `ikj`-order multiplication — no BLAS, no unsafe.
//!
//! The [`lsap`] module provides two independent linear-sum-assignment
//! solvers — a Jonker–Volgenant-style shortest-augmenting-path solver (the
//! machinery behind the paper's "VJ" baseline) and a classical Munkres
//! implementation (the "Hungarian" baseline) — plus a constrained variant
//! (forced / forbidden pairs) that powers the k-best matching framework in
//! [`kbest`]. Hot loops reuse scratch buffers across solves through
//! [`workspace::LsapWorkspace`] and the `_in` entry points.

#![warn(missing_docs)]

pub mod kbest;
pub mod lsap;
pub mod matrix;
pub mod workspace;

pub use kbest::{best_matching, best_matching_in, second_best_matching, second_best_matching_in};
pub use lsap::{
    lsap_min, lsap_min_constrained, lsap_min_constrained_in, lsap_min_in, lsap_min_munkres,
    lsap_min_munkres_in, Assignment,
};
pub use matrix::Matrix;
pub use workspace::{LsapWorkspace, MatchingWorkspace};
