//! Reusable scratch buffers for the LSAP solvers.
//!
//! The assignment solvers are the innermost kernel of every GED method —
//! a single GEDGW solve calls LSAP once per Frank–Wolfe iteration, and a
//! batched query calls GEDGW once per surviving candidate. Allocating the
//! dual/potential/cover buffers per call makes malloc the dominant cost
//! at this problem's matrix sizes (tens of rows). A [`LsapWorkspace`]
//! owns those buffers; the `_in` entry points ([`crate::lsap_min_in`],
//! [`crate::lsap_min_munkres_in`]) reuse them across calls and are
//! bit-identical to the allocating versions, which remain as thin
//! wrappers.
//!
//! Workspaces are plain owned data: keep one per thread (see
//! `BatchRunner::map_init` in `ged-core`) and hand it to every solve on
//! that thread. A "dirty" workspace left over from a previous call of any
//! shape is always safe to reuse — every entry point fully re-initializes
//! the prefix it reads.

use crate::matrix::Matrix;

/// Scratch buffers for [`crate::lsap_min`] (Jonker–Volgenant) and
/// [`crate::lsap_min_munkres`]. See the [module docs](self).
#[derive(Clone, Debug, Default)]
pub struct LsapWorkspace {
    // Jonker–Volgenant: dual potentials, matching, augmenting-path state.
    pub(crate) u: Vec<f64>,
    pub(crate) v: Vec<f64>,
    pub(crate) p: Vec<usize>,
    pub(crate) way: Vec<usize>,
    pub(crate) minv: Vec<f64>,
    pub(crate) used: Vec<bool>,
    // Munkres: padded square cost, stars/primes, covers, alternating path.
    pub(crate) square: Matrix,
    pub(crate) starred: Vec<usize>,
    pub(crate) star_col: Vec<usize>,
    pub(crate) primed: Vec<usize>,
    pub(crate) row_covered: Vec<bool>,
    pub(crate) col_covered: Vec<bool>,
    pub(crate) path: Vec<(usize, usize)>,
}

impl LsapWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Scratch buffers for the constrained-matching layer: the negated weight
/// matrix of [`crate::best_matching_in`], the reduced cost matrix and
/// forced/free bookkeeping of [`crate::lsap_min_constrained_in`], the
/// forbidden-pair scratch of [`crate::second_best_matching_in`], and the
/// [`LsapWorkspace`] the inner solver draws from. One k-best edit-path
/// generation issues `O(k · n)` constrained LSAP solves, so reusing these
/// buffers across the whole generation removes the dominant allocation
/// traffic. See the [module docs](self) for the reuse contract.
#[derive(Clone, Debug, Default)]
pub struct MatchingWorkspace {
    /// Scratch for the inner (unconstrained) LSAP solves.
    pub lsap: LsapWorkspace,
    pub(crate) neg: Matrix,
    pub(crate) red: Matrix,
    pub(crate) forced_row: Vec<usize>,
    pub(crate) forced_col: Vec<usize>,
    pub(crate) free_rows: Vec<usize>,
    pub(crate) free_cols: Vec<usize>,
    pub(crate) forb: Vec<(usize, usize)>,
    pub(crate) forced_rows: Vec<usize>,
}

impl MatchingWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Resets `buf` to `len` copies of `value`, reusing its capacity.
pub(crate) fn reset<T: Copy>(buf: &mut Vec<T>, len: usize, value: T) {
    buf.clear();
    buf.resize(len, value);
}
