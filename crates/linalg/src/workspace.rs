//! Reusable scratch buffers for the LSAP solvers.
//!
//! The assignment solvers are the innermost kernel of every GED method —
//! a single GEDGW solve calls LSAP once per Frank–Wolfe iteration, and a
//! batched query calls GEDGW once per surviving candidate. Allocating the
//! dual/potential/cover buffers per call makes malloc the dominant cost
//! at this problem's matrix sizes (tens of rows). A [`LsapWorkspace`]
//! owns those buffers; the `_in` entry points ([`crate::lsap_min_in`],
//! [`crate::lsap_min_munkres_in`]) reuse them across calls and are
//! bit-identical to the allocating versions, which remain as thin
//! wrappers.
//!
//! Workspaces are plain owned data: keep one per thread (see
//! `BatchRunner::map_init` in `ged-core`) and hand it to every solve on
//! that thread. A "dirty" workspace left over from a previous call of any
//! shape is always safe to reuse — every entry point fully re-initializes
//! the prefix it reads.

use crate::matrix::Matrix;

/// Scratch buffers for [`crate::lsap_min`] (Jonker–Volgenant) and
/// [`crate::lsap_min_munkres`]. See the [module docs](self).
#[derive(Clone, Debug, Default)]
pub struct LsapWorkspace {
    // Jonker–Volgenant: dual potentials, matching, augmenting-path state.
    pub(crate) u: Vec<f64>,
    pub(crate) v: Vec<f64>,
    pub(crate) p: Vec<usize>,
    pub(crate) way: Vec<usize>,
    pub(crate) minv: Vec<f64>,
    pub(crate) used: Vec<bool>,
    // Munkres: padded square cost, stars/primes, covers, alternating path.
    pub(crate) square: Matrix,
    pub(crate) starred: Vec<usize>,
    pub(crate) star_col: Vec<usize>,
    pub(crate) primed: Vec<usize>,
    pub(crate) row_covered: Vec<bool>,
    pub(crate) col_covered: Vec<bool>,
    pub(crate) path: Vec<(usize, usize)>,
}

impl LsapWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Resets `buf` to `len` copies of `value`, reusing its capacity.
pub(crate) fn reset<T: Copy>(buf: &mut Vec<T>, len: usize, value: T) {
    buf.clear();
    buf.resize(len, value);
}
