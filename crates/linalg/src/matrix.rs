//! A small dense row-major `f64` matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
///
/// Sized for this project's regime (graphs with tens to a few hundred
/// nodes): simple contiguous storage, `ikj` multiplication order, and a rich
/// set of element-wise helpers used by the OT kernels and the autodiff tape.
#[derive(Clone, Default, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// A `rows x cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows x cols` matrix filled with `value`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n x n` identity.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Wraps a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a function of `(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// A column vector (`n x 1`).
    #[must_use]
    pub fn col_vec(data: Vec<f64>) -> Self {
        let n = data.len();
        Matrix {
            rows: n,
            cols: 1,
            data,
        }
    }

    /// A row vector (`1 x n`).
    #[must_use]
    pub fn row_vec(data: Vec<f64>) -> Self {
        let n = data.len();
        Matrix {
            rows: 1,
            cols: n,
            data,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes to `rows x cols` with every element zero, reusing the
    /// existing buffer when its capacity suffices. This is the workspace
    /// primitive: repeated solves of similar sizes stop reallocating.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` an exact copy of `other` (shape and data), reusing the
    /// existing buffer when possible.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Self::matmul`] into a caller-provided output matrix (reshaped as
    /// needed). Bit-identical to the allocating version.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dims: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.resize_zeroed(self.rows, other.cols);
        // ikj order: stream over other's rows, accumulate into out's row.
        for i in 0..self.rows {
            let arow = self.row(i);
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, &b) in orow.iter_mut().zip(brow.iter()) {
                    *o += aik * b;
                }
            }
        }
    }

    /// `self * otherᵀ` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.cols != other.cols`.
    #[must_use]
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transpose_b_into(other, &mut out);
        out
    }

    /// [`Self::matmul_transpose_b`] into a caller-provided output matrix
    /// (reshaped as needed). Bit-identical to the allocating version.
    ///
    /// # Panics
    /// Panics if `self.cols != other.cols`.
    pub fn matmul_transpose_b_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_transpose_b inner dims");
        out.resize_zeroed(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                out.data[i * other.rows + j] =
                    arow.iter().zip(other.row(j)).map(|(a, b)| a * b).sum();
            }
        }
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Element-wise map into a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise combination of two same-shape matrices.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a + b)
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a - b)
    }

    /// Hadamard (element-wise) product.
    #[must_use]
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip_map(other, |a, b| a * b)
    }

    /// `self * scalar`.
    #[must_use]
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// In-place `self += other * s`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Matrix, s: f64) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * s;
        }
    }

    /// Frobenius inner product `⟨self, other⟩ = Σ_ij self_ij * other_ij`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn dot(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "dot shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Per-row sums as a length-`rows` vector.
    #[must_use]
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|r| self.row(r).iter().sum()).collect()
    }

    /// Per-column sums as a length-`cols` vector.
    #[must_use]
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Maximum element (`-inf` for empty matrices).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum element (`inf` for empty matrices).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Scales row `r` by `s`.
    pub fn scale_row(&mut self, r: usize, s: f64) {
        for x in self.row_mut(r) {
            *x *= s;
        }
    }

    /// Scales column `c` by `s`.
    pub fn scale_col(&mut self, c: usize, s: f64) {
        for r in 0..self.rows {
            self.data[r * self.cols + c] *= s;
        }
    }

    /// Returns a copy with an extra row appended.
    ///
    /// # Panics
    /// Panics if `row.len() != cols`.
    #[must_use]
    pub fn with_appended_row(&self, row: &[f64]) -> Matrix {
        assert_eq!(row.len(), self.cols);
        let mut data = self.data.clone();
        data.extend_from_slice(row);
        Matrix {
            rows: self.rows + 1,
            cols: self.cols,
            data,
        }
    }

    /// Returns a copy with the last row removed.
    ///
    /// # Panics
    /// Panics if the matrix has no rows.
    #[must_use]
    pub fn without_last_row(&self) -> Matrix {
        assert!(self.rows > 0);
        Matrix {
            rows: self.rows - 1,
            cols: self.cols,
            data: self.data[..(self.rows - 1) * self.cols].to_vec(),
        }
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// Panics if row counts differ.
    #[must_use]
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let mut data = Vec::with_capacity(self.len() + other.len());
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols: self.cols + other.cols,
            data,
        }
    }

    /// True if all elements are finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference to another matrix (shape-checked).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transpose_b_agrees() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64 * 0.3);
        let b = Matrix::from_fn(5, 4, |i, j| (i + j * 2) as f64 - 1.5);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_transpose_b(&b);
        assert!(via_t.max_abs_diff(&direct) < 1e-12);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(4).matmul(&a), a);
    }

    #[test]
    fn sums_and_dot() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert!(approx(a.sum(), 10.0));
        assert_eq!(a.row_sums(), vec![3.0, 7.0]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert!(approx(a.dot(&b), 5.0));
        assert!(approx(a.frobenius_norm(), (30.0f64).sqrt()));
    }

    #[test]
    fn elementwise_helpers() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![2.0, 2.0, 2.0]);
        assert_eq!(a.add(&b).as_slice(), &[3.0, 0.0, 5.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-1.0, -4.0, 1.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.scale(-1.0).as_slice(), &[-1.0, 2.0, -3.0]);
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 2.0, 3.0]);
        assert!(approx(a.max(), 3.0));
        assert!(approx(a.min(), -2.0));
    }

    #[test]
    fn row_col_scaling() {
        let mut a = Matrix::filled(2, 2, 1.0);
        a.scale_row(0, 3.0);
        a.scale_col(1, 5.0);
        assert_eq!(a.as_slice(), &[3.0, 15.0, 1.0, 5.0]);
    }

    #[test]
    fn append_remove_row() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = a.with_appended_row(&[9.0, 9.0]);
        assert_eq!(b.shape(), (3, 2));
        assert_eq!(b.without_last_row(), a);
    }

    #[test]
    fn hcat_works() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = a.hcat(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.as_slice(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dims")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let _ = a.matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn resize_zeroed_reuses_capacity_and_clears() {
        let mut m = Matrix::from_fn(4, 5, |i, j| (i * 5 + j) as f64 + 1.0);
        let cap = m.data.capacity();
        m.resize_zeroed(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(m.data.capacity(), cap, "shrinking must not reallocate");
        // Growing within capacity also stays zeroed (no stale data).
        m[(0, 0)] = 7.0;
        m.resize_zeroed(4, 5);
        assert_eq!(m.shape(), (4, 5));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        // Growing beyond capacity works too.
        m.resize_zeroed(8, 9);
        assert_eq!(m.len(), 72);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn copy_from_matches_clone() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 * 0.25);
        let mut b = Matrix::filled(7, 7, 9.0);
        b.copy_from(&a);
        assert_eq!(b, a);
    }

    #[test]
    fn into_variants_bit_identical_with_dirty_output() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64 * 0.3 - 1.0);
        let b = Matrix::from_fn(4, 5, |i, j| (i + j * 2) as f64 * 0.7);
        let mut dirty = Matrix::filled(2, 9, f64::NAN);
        a.matmul_into(&b, &mut dirty);
        assert_eq!(dirty, a.matmul(&b));
        let c = Matrix::from_fn(6, 4, |i, j| (i * 4 + j) as f64 - 5.5);
        a.matmul_transpose_b_into(&c, &mut dirty);
        assert_eq!(dirty, a.matmul_transpose_b(&c));
    }
}
