//! Linear sum assignment (LSAP).
//!
//! Two independent `O(n³)` solvers:
//!
//! * [`lsap_min`] — shortest augmenting path with dual potentials, the
//!   algorithmic core of Jonker–Volgenant / "VJ" [Fankhauser et al. 2011];
//! * [`lsap_min_munkres`] — the classical Munkres (Hungarian) star/prime
//!   algorithm [Munkres 1957], the core of the "Hungarian" GED baseline
//!   [Riesen & Bunke 2009].
//!
//! Both accept rectangular cost matrices with `rows <= cols` and assign
//! every row to a distinct column. [`lsap_min_constrained`] additionally
//! supports forced and forbidden pairs, which is what the k-best matching
//! framework needs for solution-space splitting.

use crate::matrix::Matrix;
use crate::workspace::{reset, LsapWorkspace, MatchingWorkspace};

/// Sentinel cost for forbidden assignments. Large enough to dominate any
/// realistic objective, small enough that sums stay finite.
pub const FORBIDDEN: f64 = 1e15;

/// A row-to-column assignment and its total cost.
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// `row_to_col[i]` is the column assigned to row `i`.
    pub row_to_col: Vec<usize>,
    /// Sum of the selected cost entries.
    pub cost: f64,
}

impl Assignment {
    /// Recomputes the cost of this assignment under a (possibly different)
    /// cost matrix.
    #[must_use]
    pub fn cost_under(&self, cost: &Matrix) -> f64 {
        self.row_to_col
            .iter()
            .enumerate()
            .map(|(r, &c)| cost[(r, c)])
            .sum()
    }

    /// True if no selected entry is forbidden.
    #[must_use]
    pub fn is_feasible(&self, cost: &Matrix) -> bool {
        self.row_to_col
            .iter()
            .enumerate()
            .all(|(r, &c)| cost[(r, c)] < FORBIDDEN / 2.0)
    }
}

/// Minimum-cost assignment via shortest augmenting paths with potentials
/// (Jonker–Volgenant style). `rows <= cols` required.
///
/// Allocates fresh scratch per call; hot loops should hold a
/// [`LsapWorkspace`] and call [`lsap_min_in`] instead.
///
/// # Panics
/// Panics if `rows > cols` or the matrix is empty with nonzero rows.
#[must_use]
pub fn lsap_min(cost: &Matrix) -> Assignment {
    lsap_min_in(cost, &mut LsapWorkspace::new())
}

/// [`lsap_min`] with caller-provided scratch buffers. Bit-identical to
/// the allocating version for any (possibly dirty) workspace.
///
/// # Panics
/// Panics if `rows > cols` or the matrix is empty with nonzero rows.
#[must_use]
pub fn lsap_min_in(cost: &Matrix, ws: &mut LsapWorkspace) -> Assignment {
    let n = cost.rows();
    let m = cost.cols();
    assert!(n <= m, "lsap_min requires rows <= cols (got {n}x{m})");
    if n == 0 {
        return Assignment {
            row_to_col: Vec::new(),
            cost: 0.0,
        };
    }

    // 1-indexed arrays, following the classical potentials formulation.
    let inf = f64::INFINITY;
    reset(&mut ws.u, n + 1, 0.0);
    reset(&mut ws.v, m + 1, 0.0);
    reset(&mut ws.p, m + 1, 0usize); // p[j] = row matched to column j (0 = none)
    reset(&mut ws.way, m + 1, 0usize);
    reset(&mut ws.minv, m + 1, inf);
    reset(&mut ws.used, m + 1, false);
    let (u, v, p, way) = (&mut ws.u, &mut ws.v, &mut ws.p, &mut ws.way);
    let (minv, used) = (&mut ws.minv, &mut ws.used);

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        minv[..=m].fill(inf);
        used[..=m].fill(false);
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            let row = cost.row(i0 - 1);
            for j in 1..=m {
                if !used[j] {
                    let cur = row[j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            debug_assert!(delta < inf, "no augmenting column found");
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut row_to_col = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] > 0 {
            row_to_col[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(row_to_col.iter().all(|&c| c != usize::MAX));
    let total = row_to_col
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[(r, c)])
        .sum();
    Assignment {
        row_to_col,
        cost: total,
    }
}

/// Minimum-cost assignment via the classical Munkres star/prime algorithm.
/// Rectangular inputs (`rows <= cols`) are padded internally with zero-cost
/// dummy rows.
///
/// Allocates fresh scratch per call; hot loops should hold a
/// [`LsapWorkspace`] and call [`lsap_min_munkres_in`] instead.
///
/// # Panics
/// Panics if `rows > cols`.
#[must_use]
pub fn lsap_min_munkres(cost: &Matrix) -> Assignment {
    lsap_min_munkres_in(cost, &mut LsapWorkspace::new())
}

/// [`lsap_min_munkres`] with caller-provided scratch buffers.
/// Bit-identical to the allocating version for any (possibly dirty)
/// workspace.
///
/// # Panics
/// Panics if `rows > cols`.
#[must_use]
pub fn lsap_min_munkres_in(cost: &Matrix, ws: &mut LsapWorkspace) -> Assignment {
    let n = cost.rows();
    let m = cost.cols();
    assert!(
        n <= m,
        "lsap_min_munkres requires rows <= cols (got {n}x{m})"
    );
    if n == 0 {
        return Assignment {
            row_to_col: Vec::new(),
            cost: 0.0,
        };
    }
    // Pad to square with zero rows (dummy rows absorb the extra columns).
    let size = m;
    let c = &mut ws.square;
    c.resize_zeroed(size, size);
    for r in 0..n {
        c.row_mut(r).copy_from_slice(cost.row(r));
    }
    // Shift to non-negative (Munkres assumes >= 0 costs for its zero-cover
    // reasoning). The shift changes the total by a constant per row.
    let min_val = c.min();
    if min_val < 0.0 {
        for x in c.as_mut_slice() {
            *x -= min_val;
        }
    }

    // Step 1: subtract row minima.
    for r in 0..size {
        let row = c.row_mut(r);
        let mn = row.iter().copied().fold(f64::INFINITY, f64::min);
        for x in row {
            *x -= mn;
        }
    }

    reset(&mut ws.starred, size, usize::MAX); // row -> starred col
    reset(&mut ws.star_col, size, usize::MAX); // col -> starred row
    reset(&mut ws.primed, size, usize::MAX); // row -> primed col
    reset(&mut ws.row_covered, size, false);
    reset(&mut ws.col_covered, size, false);
    let starred = &mut ws.starred;
    let star_col = &mut ws.star_col;
    let primed = &mut ws.primed;
    let row_covered = &mut ws.row_covered;
    let col_covered = &mut ws.col_covered;
    let path = &mut ws.path;

    // Step 2: greedy initial stars.
    for r in 0..size {
        for cc in 0..size {
            if c[(r, cc)] == 0.0 && starred[r] == usize::MAX && star_col[cc] == usize::MAX {
                starred[r] = cc;
                star_col[cc] = r;
            }
        }
    }

    loop {
        // Step 3: cover columns containing stars.
        for cc in 0..size {
            col_covered[cc] = star_col[cc] != usize::MAX;
        }
        if col_covered.iter().filter(|&&x| x).count() == size {
            break;
        }

        'step4: loop {
            // Step 4: find an uncovered zero and prime it.
            let mut found: Option<(usize, usize)> = None;
            'search: for r in 0..size {
                if row_covered[r] {
                    continue;
                }
                for cc in 0..size {
                    if !col_covered[cc] && c[(r, cc)] == 0.0 {
                        found = Some((r, cc));
                        break 'search;
                    }
                }
            }
            match found {
                Some((r, cc)) => {
                    primed[r] = cc;
                    if starred[r] == usize::MAX {
                        // Step 5: augmenting path of alternating primes/stars.
                        path.clear();
                        path.push((r, cc));
                        loop {
                            let col = path.last().unwrap().1;
                            let sr = star_col[col];
                            if sr == usize::MAX {
                                break;
                            }
                            path.push((sr, col));
                            let pc = primed[sr];
                            path.push((sr, pc));
                        }
                        // Flip: unstar stars, star primes along the path.
                        for (idx, &(pr, pc)) in path.iter().enumerate() {
                            if idx % 2 == 0 {
                                starred[pr] = pc;
                                star_col[pc] = pr;
                            }
                        }
                        // Fix star_col consistency for unstarred entries.
                        for (cc2, sc) in star_col.iter_mut().enumerate() {
                            if *sc != usize::MAX && starred[*sc] != cc2 {
                                *sc = usize::MAX;
                            }
                        }
                        for (r2, &sc) in starred.iter().enumerate() {
                            if sc != usize::MAX {
                                star_col[sc] = r2;
                            }
                        }
                        row_covered.iter_mut().for_each(|x| *x = false);
                        col_covered.iter_mut().for_each(|x| *x = false);
                        primed.iter_mut().for_each(|x| *x = usize::MAX);
                        break 'step4;
                    }
                    // Cover this row, uncover the starred column.
                    row_covered[r] = true;
                    col_covered[starred[r]] = false;
                }
                None => {
                    // Step 6: adjust by the minimum uncovered value.
                    let mut mn = f64::INFINITY;
                    for r in 0..size {
                        if row_covered[r] {
                            continue;
                        }
                        for cc in 0..size {
                            if !col_covered[cc] {
                                mn = mn.min(c[(r, cc)]);
                            }
                        }
                    }
                    debug_assert!(mn.is_finite());
                    for r in 0..size {
                        for cc in 0..size {
                            if row_covered[r] {
                                c[(r, cc)] += mn;
                            }
                            if !col_covered[cc] {
                                c[(r, cc)] -= mn;
                            }
                        }
                    }
                }
            }
        }
    }

    let row_to_col: Vec<usize> = (0..n).map(|r| starred[r]).collect();
    let total = row_to_col
        .iter()
        .enumerate()
        .map(|(r, &cc)| cost[(r, cc)])
        .sum();
    Assignment {
        row_to_col,
        cost: total,
    }
}

/// Constrained minimum-cost assignment with forced and forbidden pairs.
///
/// Forced pairs fix `row -> col`; forbidden pairs may not be used. Returns
/// `None` if the constraints are contradictory or no feasible assignment
/// exists (i.e. the optimum would need a forbidden entry).
///
/// Allocates fresh scratch per call; hot loops (the k-best matching
/// framework issues `O(k · n)` of these) should hold a
/// [`MatchingWorkspace`] and call [`lsap_min_constrained_in`] instead.
#[must_use]
pub fn lsap_min_constrained(
    cost: &Matrix,
    forced: &[(usize, usize)],
    forbidden: &[(usize, usize)],
) -> Option<Assignment> {
    lsap_min_constrained_in(cost, forced, forbidden, &mut MatchingWorkspace::new())
}

/// [`lsap_min_constrained`] with caller-provided scratch buffers.
/// Bit-identical to the allocating version for any (possibly dirty)
/// workspace.
#[must_use]
pub fn lsap_min_constrained_in(
    cost: &Matrix,
    forced: &[(usize, usize)],
    forbidden: &[(usize, usize)],
    ws: &mut MatchingWorkspace,
) -> Option<Assignment> {
    let n = cost.rows();
    let m = cost.cols();
    let MatchingWorkspace {
        lsap,
        red,
        forced_row,
        forced_col,
        free_rows,
        free_cols,
        ..
    } = ws;
    // Validate forced set: unique rows/cols, not forbidden.
    reset(forced_row, n, usize::MAX);
    reset(forced_col, m, usize::MAX);
    for &(r, c) in forced {
        if r >= n || c >= m {
            return None;
        }
        if forced_row[r] != usize::MAX || forced_col[c] != usize::MAX {
            return None;
        }
        if forbidden.contains(&(r, c)) {
            return None;
        }
        forced_row[r] = c;
        forced_col[c] = r;
    }

    // Reduced problem over free rows/cols.
    free_rows.clear();
    free_rows.extend((0..n).filter(|&r| forced_row[r] == usize::MAX));
    free_cols.clear();
    free_cols.extend((0..m).filter(|&c| forced_col[c] == usize::MAX));
    if free_rows.len() > free_cols.len() {
        return None;
    }

    red.resize_zeroed(free_rows.len(), free_cols.len());
    for (i, &fr) in free_rows.iter().enumerate() {
        let row = red.row_mut(i);
        for (j, &fc) in free_cols.iter().enumerate() {
            row[j] = cost[(fr, fc)];
        }
    }
    for &(r, c) in forbidden {
        if r >= n || c >= m {
            continue;
        }
        if let (Ok(i), Ok(j)) = (free_rows.binary_search(&r), free_cols.binary_search(&c)) {
            red[(i, j)] = FORBIDDEN;
        }
    }

    let sub = lsap_min_in(red, lsap);
    if !sub.is_feasible(red) {
        return None;
    }

    let mut row_to_col = vec![usize::MAX; n];
    for (r, &c) in forced_row
        .iter()
        .enumerate()
        .filter(|(_, &c)| c != usize::MAX)
    {
        row_to_col[r] = c;
    }
    for (i, &j) in sub.row_to_col.iter().enumerate() {
        row_to_col[free_rows[i]] = free_cols[j];
    }
    let total = row_to_col
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[(r, c)])
        .sum();
    Some(Assignment {
        row_to_col,
        cost: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force minimum over all injective row->col maps.
    fn brute_force(cost: &Matrix) -> f64 {
        fn rec(cost: &Matrix, r: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if r == cost.rows() {
                *best = best.min(acc);
                return;
            }
            for c in 0..cost.cols() {
                if !used[c] {
                    used[c] = true;
                    rec(cost, r + 1, used, acc + cost[(r, c)], best);
                    used[c] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        rec(cost, 0, &mut vec![false; cost.cols()], 0.0, &mut best);
        best
    }

    fn assert_valid(a: &Assignment, n: usize, m: usize) {
        assert_eq!(a.row_to_col.len(), n);
        let mut seen = vec![false; m];
        for &c in &a.row_to_col {
            assert!(c < m);
            assert!(!seen[c], "column {c} used twice");
            seen[c] = true;
        }
    }

    #[test]
    fn known_square_case() {
        // Classic example: optimal = 5 (0->1:1, 1->0:2, 2->2:2).
        let c = Matrix::from_vec(3, 3, vec![4.0, 1.0, 3.0, 2.0, 0.0, 5.0, 3.0, 2.0, 2.0]);
        let a = lsap_min(&c);
        assert_eq!(a.cost, 5.0);
        let b = lsap_min_munkres(&c);
        assert_eq!(b.cost, 5.0);
    }

    #[test]
    fn rectangular_case() {
        let c = Matrix::from_vec(2, 4, vec![10.0, 2.0, 8.0, 7.0, 3.0, 9.0, 9.0, 1.0]);
        let a = lsap_min(&c);
        assert_valid(&a, 2, 4);
        assert_eq!(a.cost, 3.0); // 0->1 (2), 1->3 (1)
        assert_eq!(lsap_min_munkres(&c).cost, 3.0);
    }

    #[test]
    fn solvers_agree_with_brute_force_random() {
        let mut rng = SmallRng::seed_from_u64(42);
        for trial in 0..200 {
            let n = rng.gen_range(1..=6);
            let m = rng.gen_range(n..=7);
            let c = Matrix::from_fn(n, m, |_, _| (rng.gen_range(-10..=10) as f64) * 0.5);
            let want = brute_force(&c);
            let jv = lsap_min(&c);
            let mk = lsap_min_munkres(&c);
            assert_valid(&jv, n, m);
            assert_valid(&mk, n, m);
            assert!(
                (jv.cost - want).abs() < 1e-9,
                "trial {trial}: jv {} want {want}",
                jv.cost
            );
            assert!(
                (mk.cost - want).abs() < 1e-9,
                "trial {trial}: munkres {} want {want}",
                mk.cost
            );
        }
    }

    #[test]
    fn negative_costs_handled() {
        let c = Matrix::from_vec(2, 2, vec![-5.0, -1.0, -2.0, -4.0]);
        assert_eq!(lsap_min(&c).cost, -9.0);
        assert_eq!(lsap_min_munkres(&c).cost, -9.0);
    }

    #[test]
    fn empty_problem() {
        let c = Matrix::zeros(0, 0);
        assert_eq!(lsap_min(&c).cost, 0.0);
        assert_eq!(lsap_min_munkres(&c).cost, 0.0);
    }

    #[test]
    fn constrained_forced_pair() {
        let c = Matrix::from_vec(3, 3, vec![1.0, 9.0, 9.0, 9.0, 1.0, 9.0, 9.0, 9.0, 1.0]);
        // Force the bad pair 0->1 (cost 9): rows 1,2 then take cols {0,2}
        // optimally as 1->0 (9), 2->2 (1), total 19.
        let a = lsap_min_constrained(&c, &[(0, 1)], &[]).unwrap();
        assert_eq!(a.row_to_col[0], 1);
        assert_eq!(a.cost, 19.0);
    }

    #[test]
    fn constrained_forbidden_pair() {
        let c = Matrix::from_vec(2, 2, vec![1.0, 5.0, 5.0, 1.0]);
        let a = lsap_min_constrained(&c, &[], &[(0, 0)]).unwrap();
        assert_eq!(a.cost, 10.0);
        // Forbid both of row 0's entries -> infeasible.
        assert!(lsap_min_constrained(&c, &[], &[(0, 0), (0, 1)]).is_none());
    }

    #[test]
    fn constrained_contradictions() {
        let c = Matrix::zeros(2, 2);
        // Duplicate forced row.
        assert!(lsap_min_constrained(&c, &[(0, 0), (0, 1)], &[]).is_none());
        // Forced pair that is also forbidden.
        assert!(lsap_min_constrained(&c, &[(0, 0)], &[(0, 0)]).is_none());
    }

    #[test]
    fn constrained_matches_filtered_brute_force() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let n = rng.gen_range(2..=5);
            let m = rng.gen_range(n..=6);
            let c = Matrix::from_fn(n, m, |_, _| rng.gen_range(0..20) as f64);
            let fr = rng.gen_range(0..n);
            let fc = rng.gen_range(0..m);
            let ban = (rng.gen_range(0..n), rng.gen_range(0..m));
            if ban == (fr, fc) {
                continue;
            }
            // Brute force with constraints.
            let mut best = f64::INFINITY;
            fn rec(
                cost: &Matrix,
                r: usize,
                used: &mut Vec<bool>,
                acc: f64,
                best: &mut f64,
                forced: (usize, usize),
                ban: (usize, usize),
            ) {
                if r == cost.rows() {
                    *best = (*best).min(acc);
                    return;
                }
                for c in 0..cost.cols() {
                    if used[c] || (r, c) == ban {
                        continue;
                    }
                    if r == forced.0 && c != forced.1 {
                        continue;
                    }
                    if c == forced.1 && r != forced.0 {
                        continue;
                    }
                    used[c] = true;
                    rec(cost, r + 1, used, acc + cost[(r, c)], best, forced, ban);
                    used[c] = false;
                }
            }
            rec(&c, 0, &mut vec![false; m], 0.0, &mut best, (fr, fc), ban);
            let got = lsap_min_constrained(&c, &[(fr, fc)], &[ban]);
            match got {
                Some(a) => {
                    assert!((a.cost - best).abs() < 1e-9, "got {} want {best}", a.cost);
                    assert_eq!(a.row_to_col[fr], fc);
                    assert_ne!(a.row_to_col[ban.0], ban.1);
                }
                None => assert!(best.is_infinite()),
            }
        }
    }
}
