//! Best and second-best maximum-weight matchings within a constrained
//! solution subspace.
//!
//! The k-best matching framework of the paper (Algorithm 4, after
//! Chegireddy & Hamacher 1987) partitions the space of node matchings by
//! (forced, forbidden) pair sets and needs, for every partition, the best
//! and the second-best matching under the coupling-matrix weight. This
//! module supplies both; the partition bookkeeping itself lives in
//! `ged-core::kbest`.
//!
//! Weights are **maximized** (they are matching confidences from a coupling
//! matrix); internally we negate and call the LSAP minimizers.

use crate::lsap::{lsap_min_constrained_in, Assignment};
use crate::matrix::Matrix;
use crate::workspace::MatchingWorkspace;

/// The best (maximum total weight) injective row-to-column matching subject
/// to forced/forbidden pairs, or `None` if the subspace is empty.
///
/// Allocates fresh scratch per call; hot loops should hold a
/// [`MatchingWorkspace`] and call [`best_matching_in`] instead.
#[must_use]
pub fn best_matching(
    weights: &Matrix,
    forced: &[(usize, usize)],
    forbidden: &[(usize, usize)],
) -> Option<Assignment> {
    best_matching_in(weights, forced, forbidden, &mut MatchingWorkspace::new())
}

/// [`best_matching`] with caller-provided scratch buffers. Bit-identical
/// to the allocating version for any (possibly dirty) workspace.
#[must_use]
pub fn best_matching_in(
    weights: &Matrix,
    forced: &[(usize, usize)],
    forbidden: &[(usize, usize)],
    ws: &mut MatchingWorkspace,
) -> Option<Assignment> {
    // Negate into the workspace buffer (same `x * -1.0` arithmetic as
    // `Matrix::scale(-1.0)`, so results are bit-identical).
    ws.neg.resize_zeroed(weights.rows(), weights.cols());
    #[allow(clippy::neg_multiply)]
    for (dst, &src) in ws.neg.as_mut_slice().iter_mut().zip(weights.as_slice()) {
        *dst = src * -1.0;
    }
    let neg = std::mem::take(&mut ws.neg);
    let a = lsap_min_constrained_in(&neg, forced, forbidden, ws);
    ws.neg = neg;
    let a = a?;
    let w = a.cost_under(weights);
    Some(Assignment {
        row_to_col: a.row_to_col,
        cost: w,
    })
}

/// The second-best matching within the subspace `(forced, forbidden)`,
/// given its `best` matching.
///
/// Implementation: for every free pair `e` of `best`, resolve with `e`
/// additionally forbidden; the heaviest such solution that differs from
/// `best` is the second best. `O(n)` constrained LSAP calls — `O(n⁴)`
/// total, which is fine in this project's `n ≤ tens` regime (the paper's
/// `O(n³)` variant is an optimization of the same enumeration).
///
/// Allocates fresh scratch per call; hot loops should hold a
/// [`MatchingWorkspace`] and call [`second_best_matching_in`] instead.
#[must_use]
pub fn second_best_matching(
    weights: &Matrix,
    forced: &[(usize, usize)],
    forbidden: &[(usize, usize)],
    best: &Assignment,
) -> Option<Assignment> {
    second_best_matching_in(
        weights,
        forced,
        forbidden,
        best,
        &mut MatchingWorkspace::new(),
    )
}

/// [`second_best_matching`] with caller-provided scratch buffers.
/// Bit-identical to the allocating version for any (possibly dirty)
/// workspace.
#[must_use]
pub fn second_best_matching_in(
    weights: &Matrix,
    forced: &[(usize, usize)],
    forbidden: &[(usize, usize)],
    best: &Assignment,
    ws: &mut MatchingWorkspace,
) -> Option<Assignment> {
    let mut forced_rows = std::mem::take(&mut ws.forced_rows);
    forced_rows.clear();
    forced_rows.extend(forced.iter().map(|&(r, _)| r));
    let mut result: Option<Assignment> = None;
    let mut forb = std::mem::take(&mut ws.forb);
    forb.clear();
    forb.extend_from_slice(forbidden);
    for (r, &c) in best.row_to_col.iter().enumerate() {
        if forced_rows.contains(&r) {
            continue;
        }
        forb.push((r, c));
        if let Some(cand) = best_matching_in(weights, forced, &forb, ws) {
            if cand.row_to_col != best.row_to_col {
                let better = match &result {
                    Some(cur) => cand.cost > cur.cost,
                    None => true,
                };
                if better {
                    result = Some(cand);
                }
            }
        }
        forb.pop();
    }
    ws.forb = forb;
    ws.forced_rows = forced_rows;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// All injective matchings with weights, sorted descending by weight.
    fn enumerate_sorted(weights: &Matrix) -> Vec<(Vec<usize>, f64)> {
        fn rec(
            w: &Matrix,
            r: usize,
            used: &mut Vec<bool>,
            cur: &mut Vec<usize>,
            acc: f64,
            out: &mut Vec<(Vec<usize>, f64)>,
        ) {
            if r == w.rows() {
                out.push((cur.clone(), acc));
                return;
            }
            for c in 0..w.cols() {
                if !used[c] {
                    used[c] = true;
                    cur.push(c);
                    rec(w, r + 1, used, cur, acc + w[(r, c)], out);
                    cur.pop();
                    used[c] = false;
                }
            }
        }
        let mut out = Vec::new();
        rec(
            weights,
            0,
            &mut vec![false; weights.cols()],
            &mut Vec::new(),
            0.0,
            &mut out,
        );
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        out
    }

    #[test]
    fn best_matches_enumeration() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            let n = rng.gen_range(1..=5);
            let m = rng.gen_range(n..=6);
            let w = Matrix::from_fn(n, m, |_, _| rng.gen_range(0..100) as f64 / 10.0);
            let all = enumerate_sorted(&w);
            let best = best_matching(&w, &[], &[]).unwrap();
            assert!((best.cost - all[0].1).abs() < 1e-9);
        }
    }

    #[test]
    fn second_best_matches_enumeration() {
        let mut rng = SmallRng::seed_from_u64(6);
        for trial in 0..100 {
            let n = rng.gen_range(2..=5);
            let m = rng.gen_range(n..=6);
            // Integer-ish weights risk weight ties between distinct matchings;
            // the definition of "second best" is by weight, so compare weights.
            let w = Matrix::from_fn(n, m, |_, _| rng.gen_range(0..1000) as f64 / 100.0);
            let all = enumerate_sorted(&w);
            let best = best_matching(&w, &[], &[]).unwrap();
            let second = second_best_matching(&w, &[], &[], &best).unwrap();
            assert!(
                (second.cost - all[1].1).abs() < 1e-9,
                "trial {trial}: got {} want {}",
                second.cost,
                all[1].1
            );
            assert_ne!(second.row_to_col, best.row_to_col);
        }
    }

    #[test]
    fn constrained_subspace() {
        let w = Matrix::from_vec(2, 2, vec![10.0, 1.0, 1.0, 10.0]);
        // Force the off-diagonal: subspace has exactly one matching.
        let best = best_matching(&w, &[(0, 1)], &[]).unwrap();
        assert_eq!(best.row_to_col, vec![1, 0]);
        assert_eq!(best.cost, 2.0);
        assert!(second_best_matching(&w, &[(0, 1)], &[], &best).is_none());
    }

    #[test]
    fn fully_forbidden_is_empty() {
        let w = Matrix::from_vec(1, 1, vec![1.0]);
        assert!(best_matching(&w, &[], &[(0, 0)]).is_none());
    }
}
