//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small, deterministic subset of the `rand 0.8` API that the
//! GED code actually uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` (integer and float ranges,
//!   half-open and inclusive) and `gen_bool`;
//! * [`SeedableRng::seed_from_u64`] and [`rngs::SmallRng`] (xoshiro256++
//!   seeded via SplitMix64 — the same generator family the real `SmallRng`
//!   uses on 64-bit targets);
//! * [`seq::SliceRandom`] with `shuffle`, `choose` and `choose_multiple`;
//! * [`distributions::WeightedIndex`] and [`distributions::Distribution`].
//!
//! The implementation is intentionally simple (modulo sampling instead of
//! rejection sampling, for instance); everything downstream only needs
//! determinism and a reasonable distribution, not cryptographic or
//! statistical perfection. Do **not** use this crate outside this
//! workspace — depend on the real `rand` instead.

#![warn(missing_docs)]

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform double in `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen_range`] can sample uniformly.
///
/// The generic `SampleRange` impls below are written over this trait (one
/// impl per range shape, not per element type) so that integer-literal
/// ranges unify with the surrounding inference context exactly like the
/// real `rand` crate.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_uniform_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}
float_uniform_impls!(f32, f64);

/// Range types that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive, int or float).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++), matching
    /// the role of `rand::rngs::SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as the real SmallRng does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices: in-place shuffling and sampling with
    /// and without replacement.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (fewer if the slice
        /// is shorter than `amount`).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i: usize = (0..self.len()).sample_from(rng);
                Some(&self[i])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = (i..idx.len()).sample_from(rng);
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

/// Probability distributions.
pub mod distributions {
    use super::{unit_f64, RngCore};
    use std::borrow::Borrow;

    /// Types that can produce samples of `T` given a source of randomness.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error building a [`WeightedIndex`].
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were provided.
        NoItem,
        /// A weight was negative or not finite, or all weights were zero.
        InvalidWeight,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no weights provided"),
                WeightedError::InvalidWeight => write!(f, "invalid weight"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..n` proportionally to a weight table.
    #[derive(Clone, Debug)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the sampler from non-negative weights.
        ///
        /// # Errors
        /// Returns an error for an empty table, negative/non-finite
        /// weights, or an all-zero table.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: std::borrow::Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = unit_f64(rng) * self.total;
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).expect("weights are finite"))
            {
                Ok(i) | Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u32 = a.gen_range(0..17);
            assert_eq!(x, b.gen_range(0..17));
            assert!(x < 17);
            let y: usize = a.gen_range(4..=10);
            assert_eq!(y, b.gen_range(4..=10));
            assert!((4..=10).contains(&y));
            let f = a.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let _ = b.gen_range(-1.0..1.0);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = SmallRng::seed_from_u64(11);
        let v: Vec<u32> = (0..20).collect();
        let mut picked: Vec<u32> = v.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 8, "sampling is without replacement");
        assert_eq!(v.choose_multiple(&mut rng, 99).count(), 20);
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = SmallRng::seed_from_u64(13);
        let dist = WeightedIndex::new([8.0, 1.0, 1.0]).unwrap();
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[1] * 4 && counts[0] > counts[2] * 4,
            "{counts:?}"
        );
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0]).is_err());
    }
}
