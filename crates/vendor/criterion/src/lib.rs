//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the small API subset the `ged-bench` benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `sample_size`,
//! `Bencher::iter` and the `criterion_group!` / `criterion_main!` macros —
//! backed by a plain wall-clock timer that prints median/mean per-iteration
//! times. It produces no HTML reports and does no statistical analysis;
//! `cargo bench` runs and prints comparable numbers, which is all the
//! experiment harness needs offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group: a function name plus an
/// optional parameter rendered with `Display`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<P: Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Passed to every benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after one warm-up
    /// call. The routine's output is passed through [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, also primes caches/allocations
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, bench: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{group}/{bench}: no samples");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{group}/{bench}: median {median:?}, mean {mean:?} ({} samples)",
        samples.len()
    );
}

/// A named collection of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a parameterless benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id, &mut b.samples);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Runs a benchmark over one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&self.name, &id.name, &mut b.samples);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// The top-level harness handle handed to every bench function.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group with the default sample size (10).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone parameterless benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.clone()).bench_function(id, f);
        self
    }
}

/// Declares a bench entry point running each listed function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built from `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
            g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        assert_eq!(c.benchmarks_run, 2);
    }

    criterion_group!(smoke, smoke_bench);

    fn smoke_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_expand() {
        smoke();
    }
}
