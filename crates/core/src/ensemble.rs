//! GEDHOT: the hybrid ensemble of GEDIOT and GEDGW (Section 5.2).
//!
//! Since GED is the *minimum* number of edit operations, the ensemble takes
//! the smaller of the two GED estimates, and for GEP generation it runs the
//! k-best matching framework on both coupling matrices and keeps the
//! shorter edit path.

use crate::gedgw::{Gedgw, GedgwOptions};
use crate::gediot::Gediot;
use crate::kbest::{kbest_edit_path, KBestResult};
use crate::pairs::ordered;
use ged_graph::Graph;

/// Which member supplied the winning estimate (Figure 13's adoption-rate
/// statistics read this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// The supervised GEDIOT model won.
    Gediot,
    /// The unsupervised GEDGW solver won.
    Gedgw,
}

/// A GEDHOT prediction.
#[derive(Clone, Debug)]
pub struct GedhotPrediction {
    /// The ensembled GED estimate (minimum of the two members).
    pub ged: f64,
    /// GEDIOT's estimate.
    pub gediot_ged: f64,
    /// GEDGW's estimate.
    pub gedgw_ged: f64,
    /// Which member the ensembled value came from.
    pub value_source: Source,
}

/// The GEDHOT ensemble, borrowing a trained GEDIOT model.
pub struct Gedhot<'m> {
    model: &'m Gediot,
    gw_options: GedgwOptions,
}

impl<'m> Gedhot<'m> {
    /// Wraps a trained GEDIOT model with default GEDGW options.
    #[must_use]
    pub fn new(model: &'m Gediot) -> Self {
        Gedhot {
            model,
            gw_options: GedgwOptions::default(),
        }
    }

    /// Overrides the GEDGW solver options.
    #[must_use]
    pub fn with_gw_options(mut self, opts: GedgwOptions) -> Self {
        self.gw_options = opts;
        self
    }

    /// Predicts the GED of a pair (order-insensitive).
    #[must_use]
    pub fn predict(&self, g1: &Graph, g2: &Graph) -> GedhotPrediction {
        let iot = self.model.predict(g1, g2);
        let gw = Gedgw::new(g1, g2).with_options(self.gw_options).solve();
        let (ged, value_source) = if iot.ged <= gw.ged {
            (iot.ged, Source::Gediot)
        } else {
            (gw.ged, Source::Gedgw)
        };
        GedhotPrediction {
            ged,
            gediot_ged: iot.ged,
            gedgw_ged: gw.ged,
            value_source,
        }
    }

    /// Predicts and generates an edit path: both members' couplings go
    /// through k-best matching and the shorter path wins. Returns the
    /// prediction, the winning path, and the path's source.
    #[must_use]
    pub fn predict_with_path(
        &self,
        g1: &Graph,
        g2: &Graph,
        k: usize,
    ) -> (GedhotPrediction, KBestResult, Source) {
        let pred = self.predict(g1, g2);
        let (a, b, _) = ordered(g1, g2);
        let iot = self.model.predict(g1, g2);
        let gw = Gedgw::new(g1, g2).with_options(self.gw_options).solve();
        let path_iot = kbest_edit_path(a, b, &iot.coupling, k);
        let path_gw = kbest_edit_path(a, b, &gw.coupling, k);
        if path_iot.ged <= path_gw.ged {
            (pred, path_iot, Source::Gediot)
        } else {
            (pred, path_gw, Source::Gedgw)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gediot::GediotConfig;
    use crate::pairs::GedPair;
    use ged_graph::generate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quick_model(rng: &mut SmallRng) -> Gediot {
        let cfg = GediotConfig {
            conv_dims: vec![8],
            embed_dim: 4,
            ntn_dim: 4,
            batch_size: 8,
            ..GediotConfig::small(2)
        };
        let mut model = Gediot::new(cfg, rng);
        let pairs: Vec<GedPair> = (0..12)
            .map(|i| {
                let g = generate::random_connected(5, 1, &[0.5, 0.5], rng);
                let p = generate::perturb_with_edits(&g, 1 + i % 3, 2, rng);
                GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
            })
            .collect();
        model.train(&pairs, 2, rng);
        model
    }

    #[test]
    fn ensemble_takes_the_minimum() {
        let mut rng = SmallRng::seed_from_u64(61);
        let model = quick_model(&mut rng);
        let ens = Gedhot::new(&model);
        for _ in 0..5 {
            let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
            let g2 = generate::random_connected(6, 1, &[0.5, 0.5], &mut rng);
            let pred = ens.predict(&g1, &g2);
            assert!((pred.ged - pred.gediot_ged.min(pred.gedgw_ged)).abs() < 1e-12);
            match pred.value_source {
                Source::Gediot => assert!(pred.gediot_ged <= pred.gedgw_ged),
                Source::Gedgw => assert!(pred.gedgw_ged < pred.gediot_ged),
            }
        }
    }

    #[test]
    fn ensemble_path_no_worse_than_members() {
        let mut rng = SmallRng::seed_from_u64(62);
        let model = quick_model(&mut rng);
        let ens = Gedhot::new(&model);
        let g1 = generate::random_connected(5, 1, &[0.5, 0.5], &mut rng);
        let g2 = generate::random_connected(6, 1, &[0.5, 0.5], &mut rng);
        let (_, path, _) = ens.predict_with_path(&g1, &g2, 8);
        let (_, iot_path) = model.predict_with_path(&g1, &g2, 8);
        let (_, gw_path) = Gedgw::new(&g1, &g2).solve_with_path(8);
        assert!(path.ged <= iot_path.ged);
        assert!(path.ged <= gw_path.ged);
        // And the path is feasible.
        let out = path.path.apply(&g1).unwrap();
        assert!(ged_graph::isomorphism::are_isomorphic(&out, &g2));
    }

    #[test]
    fn identical_graphs_give_near_zero_gw_side() {
        let mut rng = SmallRng::seed_from_u64(63);
        let model = quick_model(&mut rng);
        let ens = Gedhot::new(&model);
        let g = generate::random_connected(5, 1, &[0.5, 0.5], &mut rng);
        let pred = ens.predict(&g, &g);
        // GEDGW is exact on identical graphs, so the ensemble must be ~0.
        assert!(pred.ged < 0.5, "ged {}", pred.ged);
        assert_eq!(pred.value_source, Source::Gedgw);
    }
}
