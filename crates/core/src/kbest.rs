//! GEP generation via the k-best matching framework (Section 4.5,
//! Algorithm 4 of the paper; space splitting after Chegireddy & Hamacher).
//!
//! Given a coupling matrix `π` (matching confidences from GEDIOT or GEDGW),
//! the node-matching space is recursively partitioned into subspaces defined
//! by forced/forbidden pairs. Each subspace keeps its best and second-best
//! matching by `⟨π, M⟩` weight; at every step the subspace with the heaviest
//! second-best matching is split further. All `2k` collected matchings are
//! realized as edit paths via `EPGen`, and the shortest one wins. Subspaces
//! whose GED lower bound already meets the incumbent path length are pruned.

use crate::lower_bound::partial_matching_lower_bound;
use ged_graph::{EditPath, Graph, NodeMapping};
use ged_linalg::{
    best_matching_in, second_best_matching_in, Assignment, MatchingWorkspace, Matrix,
};

/// Result of k-best edit-path generation.
#[derive(Clone, Debug)]
pub struct KBestResult {
    /// The best (shortest) edit path found.
    pub path: EditPath,
    /// The node matching that realizes it.
    pub mapping: NodeMapping,
    /// Its length — a feasible (upper-bound) GED estimate.
    pub ged: usize,
    /// Number of candidate matchings evaluated.
    pub candidates: usize,
}

struct Subspace {
    forced: Vec<(usize, usize)>,
    forbidden: Vec<(usize, usize)>,
    best: Assignment,
    second: Option<Assignment>,
    lower_bound: usize,
}

fn mapping_of(a: &Assignment) -> NodeMapping {
    NodeMapping::new(a.row_to_col.iter().map(|&c| c as u32).collect())
}

/// Generates an edit path for `(g1, g2)` from coupling `pi` by exploring up
/// to `k` subspaces of the matching space.
///
/// One generation issues `O(k · n)` constrained LSAP solves; this wrapper
/// reuses one [`MatchingWorkspace`] across all of them (see
/// [`kbest_edit_path_in`] for reuse across generations).
///
/// # Panics
/// Panics if `g1` has more nodes than `g2` or `pi` is not `n1 x n2`.
#[must_use]
pub fn kbest_edit_path(g1: &Graph, g2: &Graph, pi: &Matrix, k: usize) -> KBestResult {
    kbest_edit_path_in(g1, g2, pi, k, &mut MatchingWorkspace::new())
}

/// [`kbest_edit_path`] with the matching-layer scratch drawn from `ws`.
/// The subspace exploration (split choices, candidate order, pruning) is
/// identical, so results are bit-identical for any (possibly dirty)
/// workspace.
///
/// # Panics
/// Panics if `g1` has more nodes than `g2` or `pi` is not `n1 x n2`.
#[must_use]
pub fn kbest_edit_path_in(
    g1: &Graph,
    g2: &Graph,
    pi: &Matrix,
    k: usize,
    ws: &mut MatchingWorkspace,
) -> KBestResult {
    let n1 = g1.num_nodes();
    let n2 = g2.num_nodes();
    assert!(n1 <= n2, "kbest_edit_path requires n1 <= n2");
    assert_eq!(pi.shape(), (n1, n2), "coupling shape mismatch");
    assert!(k >= 1, "k must be at least 1");

    let mut candidates = 0usize;
    let mut best_len = usize::MAX;
    let mut best_pair: Option<(EditPath, NodeMapping)> = None;

    let consider = |assignment: &Assignment,
                    candidates: &mut usize,
                    best_len: &mut usize,
                    best_pair: &mut Option<(EditPath, NodeMapping)>| {
        *candidates += 1;
        let mapping = mapping_of(assignment);
        let cost = mapping.induced_cost(g1, g2);
        if cost < *best_len {
            let path = mapping.edit_path(g1, g2);
            debug_assert_eq!(path.len(), cost);
            *best_len = cost;
            *best_pair = Some((path, mapping));
        }
    };

    // Initial subspace: the whole matching space.
    let m1 = best_matching_in(pi, &[], &[], ws).expect("full matching space is non-empty");
    consider(&m1, &mut candidates, &mut best_len, &mut best_pair);
    let global_lb = partial_matching_lower_bound(g1, g2, &[]);
    if k == 1 || best_len <= global_lb {
        // No splitting requested, or the incumbent already matches the GED
        // lower bound — no further candidate can improve it. Skipping the
        // (second-best) search here keeps k-best usable on the 400-node
        // power-law graphs of Figure 16, where second-best is the
        // dominating cost.
        let (path, mapping) = best_pair.expect("one matching considered");
        return KBestResult {
            ged: path.len(),
            path,
            mapping,
            candidates,
        };
    }
    let m2 = second_best_matching_in(pi, &[], &[], &m1, ws);
    if let Some(ref m2a) = m2 {
        consider(m2a, &mut candidates, &mut best_len, &mut best_pair);
    }
    let mut subspaces = vec![Subspace {
        forced: Vec::new(),
        forbidden: Vec::new(),
        best: m1,
        second: m2,
        lower_bound: global_lb,
    }];

    for _ in 2..=k {
        // Pick the subspace with the heaviest second-best matching among
        // promising ones (LB < incumbent).
        let mut chosen: Option<usize> = None;
        let mut max_weight = f64::NEG_INFINITY;
        for (idx, s) in subspaces.iter().enumerate() {
            if s.lower_bound >= best_len {
                continue;
            }
            if let Some(ref second) = s.second {
                if second.cost > max_weight {
                    max_weight = second.cost;
                    chosen = Some(idx);
                }
            }
        }
        let Some(idx) = chosen else { break };

        // Split on a pair present in best but not in second.
        let (e, second) = {
            let s = &subspaces[idx];
            let second = s.second.clone().expect("chosen subspace has a second");
            let mut split_edge = None;
            for (r, &c) in s.best.row_to_col.iter().enumerate() {
                if second.row_to_col[r] != c && !s.forced.contains(&(r, c)) {
                    split_edge = Some((r, c));
                    break;
                }
            }
            (
                split_edge.expect("distinct matchings differ on a free pair"),
                second,
            )
        };

        // Child S': forced += e, keeps the old best; fresh second-best.
        let mut forced_in = subspaces[idx].forced.clone();
        forced_in.push(e);
        let forbidden_in = subspaces[idx].forbidden.clone();
        let best_in = subspaces[idx].best.clone();
        let second_in = second_best_matching_in(pi, &forced_in, &forbidden_in, &best_in, ws);
        if let Some(ref s2) = second_in {
            consider(s2, &mut candidates, &mut best_len, &mut best_pair);
        }

        // Child S'': forbidden += e, old second becomes its best.
        let forced_out = subspaces[idx].forced.clone();
        let mut forbidden_out = subspaces[idx].forbidden.clone();
        forbidden_out.push(e);
        let best_out = second;
        let second_out = second_best_matching_in(pi, &forced_out, &forbidden_out, &best_out, ws);
        if let Some(ref s2) = second_out {
            consider(s2, &mut candidates, &mut best_len, &mut best_pair);
        }

        let lb_in = partial_matching_lower_bound(g1, g2, &forced_in);
        let lb_out = subspaces[idx].lower_bound;
        subspaces[idx] = Subspace {
            forced: forced_in,
            forbidden: forbidden_in,
            best: best_in,
            second: second_in,
            lower_bound: lb_in,
        };
        subspaces.push(Subspace {
            forced: forced_out,
            forbidden: forbidden_out,
            best: best_out,
            second: second_out,
            lower_bound: lb_out,
        });

        if best_len == 0 {
            break; // cannot improve further
        }
    }

    let (path, mapping) = best_pair.expect("at least one matching considered");
    KBestResult {
        ged: path.len(),
        path,
        mapping,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::isomorphism::are_isomorphic;
    use ged_graph::{Graph, Label};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn figure1() -> (Graph, Graph) {
        let g1 = Graph::from_edges(
            vec![Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 2)],
        );
        let g2 = Graph::from_edges(
            vec![Label(1), Label(1), Label(3), Label(4)],
            &[(0, 1), (0, 2), (2, 3)],
        );
        (g1, g2)
    }

    /// Brute-force exact GED over all injective mappings (tiny graphs only).
    fn brute_ged(g1: &Graph, g2: &Graph) -> usize {
        fn rec(
            g1: &Graph,
            g2: &Graph,
            u: usize,
            used: &mut Vec<bool>,
            map: &mut Vec<u32>,
            best: &mut usize,
        ) {
            if u == g1.num_nodes() {
                let m = NodeMapping::new(map.clone());
                *best = (*best).min(m.induced_cost(g1, g2));
                return;
            }
            for v in 0..g2.num_nodes() {
                if !used[v] {
                    used[v] = true;
                    map.push(v as u32);
                    rec(g1, g2, u + 1, used, map, best);
                    map.pop();
                    used[v] = false;
                }
            }
        }
        let mut best = usize::MAX;
        rec(
            g1,
            g2,
            0,
            &mut vec![false; g2.num_nodes()],
            &mut Vec::new(),
            &mut best,
        );
        best
    }

    #[test]
    fn perfect_coupling_recovers_exact_path() {
        let (g1, g2) = figure1();
        // Ground-truth coupling: identity matching (GED 4).
        let pi = Matrix::from_vec(
            3,
            4,
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0],
        );
        let res = kbest_edit_path(&g1, &g2, &pi, 5);
        assert_eq!(res.ged, 4);
        let out = res.path.apply(&g1).unwrap();
        assert!(are_isomorphic(&out, &g2));
    }

    #[test]
    fn noisy_coupling_still_finds_exact_with_enough_k() {
        let mut rng = SmallRng::seed_from_u64(17);
        for trial in 0..25 {
            let n1 = rng.gen_range(3..=5);
            let n2 = rng.gen_range(n1..=6);
            let g1 = ged_graph::generate::random_connected(n1, 1, &[0.5, 0.5], &mut rng);
            let g2 = ged_graph::generate::random_connected(n2, 1, &[0.5, 0.5], &mut rng);
            let exact = brute_ged(&g1, &g2);
            // Uninformative coupling: uniform + noise. With k large enough
            // relative to the tiny space, the search must reach the optimum.
            let pi = Matrix::from_fn(n1, n2, |_, _| 0.5 + rng.gen_range(-0.05..0.05));
            let res = kbest_edit_path(&g1, &g2, &pi, 200);
            assert!(res.ged >= exact, "trial {trial}: found below exact");
            assert_eq!(
                res.ged, exact,
                "trial {trial}: {} vs exact {exact}",
                res.ged
            );
        }
    }

    #[test]
    fn result_is_always_feasible() {
        let mut rng = SmallRng::seed_from_u64(18);
        for _ in 0..20 {
            let n1 = rng.gen_range(3..=6);
            let n2 = rng.gen_range(n1..=7);
            let g1 = ged_graph::generate::random_connected(n1, 2, &[0.4, 0.6], &mut rng);
            let g2 = ged_graph::generate::random_connected(n2, 2, &[0.4, 0.6], &mut rng);
            let pi = Matrix::from_fn(n1, n2, |_, _| rng.gen_range(0.0..1.0));
            let res = kbest_edit_path(&g1, &g2, &pi, 8);
            assert_eq!(res.path.len(), res.ged);
            let out = res.path.apply(&g1).unwrap();
            assert!(are_isomorphic(&out, &g2));
        }
    }

    #[test]
    fn larger_k_never_hurts() {
        let mut rng = SmallRng::seed_from_u64(19);
        let g1 = ged_graph::generate::random_connected(5, 2, &[0.3, 0.3, 0.4], &mut rng);
        let g2 = ged_graph::generate::random_connected(6, 2, &[0.3, 0.3, 0.4], &mut rng);
        let pi = Matrix::from_fn(5, 6, |_, _| rng.gen_range(0.0..1.0));
        let mut prev = usize::MAX;
        for k in [1, 2, 4, 8, 16, 32] {
            let res = kbest_edit_path(&g1, &g2, &pi, k);
            assert!(res.ged <= prev, "k={k} worsened {} -> {}", prev, res.ged);
            prev = res.ged;
        }
    }

    #[test]
    fn identical_graphs_zero_path() {
        let (g1, _) = figure1();
        let pi = Matrix::identity(3);
        let res = kbest_edit_path(&g1, &g1, &pi, 3);
        assert_eq!(res.ged, 0);
        assert!(res.path.is_empty());
    }
}
