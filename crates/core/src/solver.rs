//! The polymorphic solver layer: every GED method behind one trait.
//!
//! # The [`GedSolver`] contract
//!
//! A solver is any object that can estimate the GED of a [`GedPair`]:
//!
//! * [`GedSolver::name`] — the display name used in the paper's tables
//!   (`"GEDIOT"`, `"Classic"`, …). Names are unique within a
//!   [`SolverRegistry`] and are the lookup key.
//! * [`GedSolver::predict`] — a value-only estimate. May be infeasible
//!   (below the true GED) for regression models; must be finite and
//!   deterministic for a fixed trained model.
//! * [`GedSolver::edit_path`] — a *feasible* estimate: a concrete node
//!   mapping whose induced edit path transforms `g1` into `g2`, found with
//!   search effort `k` (beam width / k-best candidates). Returns `None`
//!   for methods that cannot produce paths (pure regressors such as
//!   SimGNN or TaGSim); when `Some`, `ged` must equal the realized path
//!   length, so it is always an upper bound on the true GED.
//!
//! Solvers are `Send + Sync`: predictions take `&self` and share no
//! mutable state, so one trained model can serve any number of threads.
//! Trained-model adapters hold their models behind [`Arc`], which lets a
//! registry hand the same trained weights to several solvers (the GEDHOT
//! ensemble and Noah's guidance both reuse other solvers' models) without
//! retraining or cloning parameters.
//!
//! # Batching
//!
//! [`BatchRunner`] evaluates a solver over a slice of pairs across scoped
//! threads with chunked work-stealing. Results are written back in input
//! order and are **bit-identical** to a sequential loop — per-pair
//! computations are independent, so parallelism changes throughput only,
//! never values. This is the seam every future scaling layer (sharding,
//! caching, async serving) plugs into.
//!
//! Implementations for the paper's own methods (GEDIOT, GEDGW, GEDHOT)
//! live here; the baseline adapters (SimGNN, GPN, TaGSim, GEDGNN,
//! Classic, Noah) live in `ged-baselines::solvers`.

use crate::ensemble::Gedhot;
use crate::error::GedError;
use crate::gedgw::Gedgw;
use crate::gediot::Gediot;
use crate::kbest::kbest_edit_path;
use crate::method::MethodKind;
use crate::pairs::GedPair;
use crate::workspace::GedWorkspace;
use ged_graph::{CanonicalOp, NodeMapping};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Per-thread scratch state batched prediction hands each worker
/// ([`BatchRunner::map_init`]); solvers that implement
/// [`GedSolver::predict_scratch`] draw their buffers from it instead of
/// allocating per pair. Opaque on purpose — the contents track whatever
/// the workspace-backed solvers need.
#[derive(Debug, Default)]
pub struct SolverScratch {
    pub(crate) ged: GedWorkspace,
}

impl SolverScratch {
    /// An empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A value-only GED estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GedEstimate {
    /// The estimated GED. May be fractional (regression heads) and, for
    /// non-path methods, may under-shoot the true GED.
    pub ged: f64,
}

impl fmt::Display for GedEstimate {
    /// Renders the estimate the way the result tables do: three decimals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GED ≈ {:.3}", self.ged)
    }
}

/// A feasible GED estimate realized by a concrete edit path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathEstimate {
    /// The realized path length (an upper bound on the true GED).
    pub ged: usize,
    /// The node mapping `V1 -> V2` that induces the path.
    pub mapping: NodeMapping,
    /// The path as order-independent canonical operations (the unit the
    /// paper's path precision/recall metrics compare).
    pub ops: Vec<CanonicalOp>,
}

impl PathEstimate {
    /// Builds an estimate from a mapping, deriving the canonical ops.
    #[must_use]
    pub fn from_mapping(pair: &GedPair, ged: usize, mapping: NodeMapping) -> Self {
        let ops = mapping.canonical_ops(&pair.g1, &pair.g2);
        PathEstimate { ged, mapping, ops }
    }
}

impl fmt::Display for PathEstimate {
    /// `GED 4 (feasible, 4 ops)` — the realized length plus a reminder
    /// that path estimates are always feasible upper bounds.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GED {} (feasible, {} ops)", self.ged, self.ops.len())
    }
}

/// One GED method behind a uniform, thread-safe interface.
pub trait GedSolver: Send + Sync {
    /// Display name as in the paper's tables; the registry lookup key.
    fn name(&self) -> &str;

    /// Estimates the GED of `pair` (value only, possibly infeasible).
    fn predict(&self, pair: &GedPair) -> GedEstimate;

    /// [`Self::predict`] with caller-provided scratch buffers. The default
    /// ignores the scratch and delegates to [`Self::predict`]; solvers
    /// with a workspace-backed hot path (GEDGW) override it. Must return
    /// results bit-identical to [`Self::predict`] — batched drivers pick
    /// freely between the two.
    fn predict_scratch(&self, pair: &GedPair, _scratch: &mut SolverScratch) -> GedEstimate {
        self.predict(pair)
    }

    /// Produces a feasible edit path with search effort `k`, or `None` if
    /// this method cannot generate paths.
    fn edit_path(&self, pair: &GedPair, k: usize) -> Option<PathEstimate>;
}

// ---------------------------------------------------------------------------
// Adapters for the paper's own methods.
// ---------------------------------------------------------------------------

/// [`GedSolver`] adapter for the supervised GEDIOT model.
pub struct GediotSolver {
    model: Arc<Gediot>,
}

impl GediotSolver {
    /// Wraps a trained model.
    #[must_use]
    pub fn new(model: Arc<Gediot>) -> Self {
        GediotSolver { model }
    }
}

impl GedSolver for GediotSolver {
    fn name(&self) -> &str {
        "GEDIOT"
    }

    fn predict(&self, pair: &GedPair) -> GedEstimate {
        GedEstimate {
            ged: self.model.predict(&pair.g1, &pair.g2).ged,
        }
    }

    fn edit_path(&self, pair: &GedPair, k: usize) -> Option<PathEstimate> {
        let (_, path) = self.model.predict_with_path(&pair.g1, &pair.g2, k);
        Some(PathEstimate::from_mapping(pair, path.ged, path.mapping))
    }
}

/// [`GedSolver`] adapter for the unsupervised GEDGW solver (training-free,
/// so the adapter is stateless).
#[derive(Clone, Copy, Debug, Default)]
pub struct GedgwSolver;

impl GedSolver for GedgwSolver {
    fn name(&self) -> &str {
        "GEDGW"
    }

    fn predict(&self, pair: &GedPair) -> GedEstimate {
        GedEstimate {
            ged: Gedgw::new(&pair.g1, &pair.g2).solve().ged,
        }
    }

    fn predict_scratch(&self, pair: &GedPair, scratch: &mut SolverScratch) -> GedEstimate {
        GedEstimate {
            ged: Gedgw::new(&pair.g1, &pair.g2)
                .solve_in(&mut scratch.ged)
                .ged,
        }
    }

    fn edit_path(&self, pair: &GedPair, k: usize) -> Option<PathEstimate> {
        let gw = Gedgw::new(&pair.g1, &pair.g2).solve();
        let path = kbest_edit_path(&pair.g1, &pair.g2, &gw.coupling, k);
        Some(PathEstimate::from_mapping(pair, path.ged, path.mapping))
    }
}

/// [`GedSolver`] adapter for the GEDHOT ensemble (the better of GEDIOT and
/// GEDGW per pair). Shares the trained GEDIOT model via [`Arc`].
pub struct GedhotSolver {
    gediot: Arc<Gediot>,
}

impl GedhotSolver {
    /// Wraps the trained GEDIOT model the ensemble combines with GEDGW.
    #[must_use]
    pub fn new(gediot: Arc<Gediot>) -> Self {
        GedhotSolver { gediot }
    }
}

impl GedSolver for GedhotSolver {
    fn name(&self) -> &str {
        "GEDHOT"
    }

    fn predict(&self, pair: &GedPair) -> GedEstimate {
        GedEstimate {
            ged: Gedhot::new(&self.gediot).predict(&pair.g1, &pair.g2).ged,
        }
    }

    fn edit_path(&self, pair: &GedPair, k: usize) -> Option<PathEstimate> {
        let (_, path, _) = Gedhot::new(&self.gediot).predict_with_path(&pair.g1, &pair.g2, k);
        Some(PathEstimate::from_mapping(pair, path.ged, path.mapping))
    }
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

/// An ordered collection of solvers keyed by [`MethodKind`].
///
/// Registration order is preserved (the experiment tables iterate it as
/// the paper's row order), and kinds are unique — registering the same
/// [`MethodKind`] twice panics, because two solvers answering to one
/// method is always a bug. Lookups are typed; display names are only a
/// rendering concern (`Default` builds an empty registry).
#[derive(Default)]
pub struct SolverRegistry {
    solvers: Vec<(MethodKind, Box<dyn GedSolver>)>,
}

impl SolverRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `solver` as the implementation of `method`.
    ///
    /// # Panics
    /// Panics if `method` is already registered.
    pub fn register(&mut self, method: MethodKind, solver: Box<dyn GedSolver>) {
        assert!(
            self.get(method).is_none(),
            "duplicate solver for method {method}"
        );
        self.solvers.push((method, solver));
    }

    /// Looks a solver up by its method kind.
    #[must_use]
    pub fn get(&self, method: MethodKind) -> Option<&dyn GedSolver> {
        self.solvers
            .iter()
            .find(|(m, _)| *m == method)
            .map(|(_, s)| s.as_ref())
    }

    /// Registered method kinds, in registration order.
    #[must_use]
    pub fn methods(&self) -> Vec<MethodKind> {
        self.solvers.iter().map(|(m, _)| *m).collect()
    }

    /// Registered display names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.solvers.iter().map(|(_, s)| s.name()).collect()
    }

    /// Iterates `(method, solver)` entries in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (MethodKind, &dyn GedSolver)> {
        self.solvers.iter().map(|(m, s)| (*m, s.as_ref()))
    }

    /// Number of registered solvers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Parallel batch evaluation.
// ---------------------------------------------------------------------------

/// Evaluates a solver over pair sets across scoped threads.
///
/// Work is split into fixed-size chunks claimed from a shared atomic
/// counter (work-stealing: fast threads pick up the slack of slow ones,
/// which matters because per-pair cost varies wildly with graph size).
/// Outputs land in input order and are bit-identical to a sequential
/// loop.
#[derive(Clone, Copy, Debug)]
pub struct BatchRunner {
    threads: usize,
    chunk_size: usize,
}

impl Default for BatchRunner {
    /// One thread per available core, chunks of 8 pairs.
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, usize::from);
        BatchRunner {
            threads,
            chunk_size: 8,
        }
    }
}

impl BatchRunner {
    /// A runner with an explicit thread count (`0` is clamped to 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        BatchRunner {
            threads: threads.max(1),
            chunk_size: 8,
        }
    }

    /// Default parallelism, overridable with the `GED_THREADS` env var
    /// (`GED_THREADS=1` forces sequential evaluation). Errors with
    /// [`GedError::Config`] when the variable is set but unparsable —
    /// silently ignoring a typo'd thread count hides the misconfiguration.
    pub fn try_from_env() -> Result<Self, GedError> {
        match std::env::var("GED_THREADS") {
            Ok(v) => v.trim().parse::<usize>().map(Self::new).map_err(|_| {
                GedError::Config(format!(
                    "GED_THREADS must be a non-negative integer, got {v:?}"
                ))
            }),
            Err(std::env::VarError::NotPresent) => Ok(Self::default()),
            Err(std::env::VarError::NotUnicode(_)) => Err(GedError::Config(
                "GED_THREADS is not valid unicode".to_string(),
            )),
        }
    }

    /// Infallible [`Self::try_from_env`]: an unparsable `GED_THREADS`
    /// prints a warning to stderr and falls back to default parallelism.
    #[must_use]
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| {
            eprintln!("warning: {e}; using default parallelism");
            Self::default()
        })
    }

    /// Sets the work-stealing chunk size (`0` is clamped to 1).
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Configured thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, preserving input order.
    ///
    /// Generic over the item type so callers can hand in `&[GedPair]`,
    /// `&[&GedPair]` (flattened query groups without cloning), or any
    /// other work list.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.map_init(items, || (), |(), item| f(item))
    }

    /// [`Self::map`] with per-worker state: `init` runs once per worker
    /// thread (once total on the sequential path) and the resulting state
    /// is threaded through every call that worker makes. This is how
    /// batched queries share one [`SolverScratch`]/workspace per thread —
    /// `O(threads)` allocations instead of `O(items)` — and it is only
    /// sound because workspace-backed computations are bit-identical
    /// regardless of the scratch state they start from, which keeps the
    /// output independent of how chunks land on workers.
    pub fn map_init<S, I, T, N, F>(&self, items: &[I], init: N, f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        N: Fn() -> S + Sync,
        F: Fn(&mut S, &I) -> T + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        if self.threads == 1 || items.len() <= self.chunk_size {
            let mut state = init();
            return items.iter().map(|item| f(&mut state, item)).collect();
        }
        let num_chunks = items.len().div_ceil(self.chunk_size);
        // One slot per chunk: written exactly once by whichever worker
        // claims the chunk, then drained in order — so the output order is
        // the input order regardless of which thread computed what.
        let slots: Vec<Mutex<Option<Vec<T>>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(num_chunks);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut state = init();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        let lo = c * self.chunk_size;
                        let hi = (lo + self.chunk_size).min(items.len());
                        let out: Vec<T> = items[lo..hi]
                            .iter()
                            .map(|item| f(&mut state, item))
                            .collect();
                        *slots[c]
                            .lock()
                            .expect("no worker panicked holding the slot") = Some(out);
                    }
                });
            }
        });
        let mut results = Vec::with_capacity(items.len());
        for slot in slots {
            let chunk = slot
                .into_inner()
                .expect("no worker panicked holding the slot")
                .expect("every chunk was claimed and computed");
            results.extend(chunk);
        }
        results
    }

    /// Batch [`GedSolver::predict`], in input order, with one
    /// [`SolverScratch`] per worker thread.
    #[must_use]
    pub fn predict_batch(&self, solver: &dyn GedSolver, pairs: &[GedPair]) -> Vec<GedEstimate> {
        self.map_init(pairs, SolverScratch::new, |scratch, p| {
            solver.predict_scratch(p, scratch)
        })
    }

    /// Batch [`GedSolver::edit_path`], in input order.
    #[must_use]
    pub fn edit_path_batch(
        &self,
        solver: &dyn GedSolver,
        pairs: &[GedPair],
        k: usize,
    ) -> Vec<Option<PathEstimate>> {
        self.map(pairs, |p| solver.edit_path(p, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::generate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn pairs(n: usize) -> Vec<GedPair> {
        let mut rng = SmallRng::seed_from_u64(99);
        (0..n)
            .map(|_| {
                let g = generate::random_connected(5, 1, &[0.6, 0.4], &mut rng);
                let p = generate::perturb_with_edits(&g, 2, 2, &mut rng);
                GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
            })
            .collect()
    }

    #[test]
    fn registry_preserves_order_and_rejects_duplicates() {
        let mut reg = SolverRegistry::new();
        reg.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        assert_eq!(reg.names(), vec!["GEDGW"]);
        assert_eq!(reg.methods(), vec![MethodKind::Gedgw]);
        assert_eq!(reg.len(), 1);
        assert!(reg.get(MethodKind::Gedgw).is_some());
        assert!(reg.get(MethodKind::Classic).is_none());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        }));
        assert!(result.is_err(), "duplicate registration must panic");
    }

    #[test]
    fn estimate_displays() {
        let est = GedEstimate { ged: 1.23456 };
        assert_eq!(est.to_string(), "GED ≈ 1.235");
    }

    #[test]
    fn batch_matches_sequential_bit_for_bit() {
        let pairs = pairs(23); // not a multiple of the chunk size
        let solver = GedgwSolver;
        let sequential: Vec<f64> = pairs.iter().map(|p| solver.predict(p).ged).collect();
        for threads in [1, 2, 7] {
            let runner = BatchRunner::new(threads).with_chunk_size(4);
            let batch = runner.predict_batch(&solver, &pairs);
            assert_eq!(batch.len(), sequential.len());
            for (i, (b, s)) in batch.iter().zip(&sequential).enumerate() {
                assert!(
                    b.ged.to_bits() == s.to_bits(),
                    "pair {i} differs at {threads} threads: {} vs {s}",
                    b.ged
                );
            }
        }
    }

    #[test]
    fn gedgw_edit_path_is_feasible_and_consistent() {
        for pair in pairs(6) {
            let est = GedgwSolver
                .edit_path(&pair, 8)
                .expect("GEDGW generates paths");
            assert_eq!(
                est.ops.len(),
                est.ged,
                "canonical op count must equal path length"
            );
            let lb = crate::lower_bound::label_set_lower_bound(&pair.g1, &pair.g2);
            assert!(
                est.ged >= lb,
                "feasible path cannot beat the label-set lower bound"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let runner = BatchRunner::default();
        assert!(runner.predict_batch(&GedgwSolver, &[]).is_empty());
    }
}
