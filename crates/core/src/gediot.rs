//! GEDIOT: the supervised inverse-optimal-transport GED model (Section 4).
//!
//! Architecture (Figure 4 of the paper):
//!
//! 1. **Node embedding component** — a siamese stack of GIN convolutions
//!    (Eq. 8) over one-hot label features; the outputs of *all* layers are
//!    concatenated (to fight over-smoothing) and reduced by an MLP
//!    `[D, 2D, D, d]` (Eq. 9) to final node embeddings `H1, H2`.
//! 2. **Learnable OT component** — a cost-matrix layer
//!    `Ĉ = tanh(H1 W H2ᵀ)` (Eq. 10) followed by a learnable Sinkhorn layer:
//!    the cost matrix is extended with a zero dummy row (Section 4.2), and
//!    the Sinkhorn iterations (Eq. 12) are unrolled onto the autodiff tape
//!    with a *learnable* regularization coefficient `ε` (kept positive via
//!    softplus). The resulting coupling `π̂` both supervises the matching
//!    loss and produces the transport score `w1 = ⟨Ĉ, π̂⟩`.
//! 3. **Graph discrepancy component** — attention pooling (Eq. 13) and an
//!    NTN (Eq. 14) reduce the pair to a score `w2` that accounts for the
//!    `n2 - n1` unmatched nodes.
//!
//! The prediction is `score = σ(w1 + w2)` fitting the normalized GED, and
//! the loss is `λ·MSE + (1-λ)·BCE` (Eq. 15).
//!
//! Ablation switches reproduce Table 6: GCN instead of GIN, no MLP, plain
//! inner-product cost layer, and frozen (non-learnable) `ε`.

use crate::kbest::{kbest_edit_path, KBestResult};
use crate::pairs::{ordered, GedPair};
use ged_graph::{max_edit_ops, Graph};
use ged_linalg::Matrix;
use ged_nn::init::softplus_inverse;
use ged_nn::layers::{Activation, AttentionPool, GinLayer, Linear, Mlp, Ntn};
use ged_nn::loss::{bce_matrix, mse_scalar};
use ged_nn::params::{Bindings, ParamId, ParamStore};
use ged_nn::tape::{Tape, Var};
use ged_nn::Adam;
use rand::seq::SliceRandom;
use rand::Rng;

/// Graph convolution flavor (Table 6 ablation "w/ GCN").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConvKind {
    /// Graph Isomorphism Network (Eq. 8) — the paper's default.
    Gin,
    /// Symmetric-normalized GCN convolution `h' = ReLU(Â h W + b)`.
    Gcn,
}

/// Hyperparameters of GEDIOT.
#[derive(Clone, Debug)]
pub struct GediotConfig {
    /// Size of the label alphabet (one-hot input dimension; 1 = unlabeled).
    pub num_labels: usize,
    /// Output dimension of each graph-convolution layer (paper: 128/64/32;
    /// scaled down by default for CPU training).
    pub conv_dims: Vec<usize>,
    /// Final node-embedding dimension `d` (paper: 32).
    pub embed_dim: usize,
    /// NTN output dimension `L` (paper: 16).
    pub ntn_dim: usize,
    /// Unrolled Sinkhorn iterations (paper default: 5).
    pub sinkhorn_iters: usize,
    /// Initial regularization coefficient `ε0` (paper: 0.05).
    pub epsilon0: f64,
    /// Learn `ε` by gradient descent (Table 6 "w/o learnable ε" sets false).
    pub learnable_epsilon: bool,
    /// Loss balance `λ` between value loss and matching loss (paper: 0.8).
    pub lambda: f64,
    /// Keep the node-embedding MLP (Table 6 "w/o MLP" sets false).
    pub use_mlp: bool,
    /// Keep the learnable cost-matrix layer `tanh(H1 W H2ᵀ)`; when false the
    /// plain (parameter-free) `tanh(H1 H2ᵀ)` is used (Table 6 "w/o Cost").
    pub use_cost_layer: bool,
    /// Convolution flavor.
    pub conv: ConvKind,
    /// Adam learning rate (paper: 1e-3).
    pub learning_rate: f64,
    /// Adam weight decay (paper: 5e-4).
    pub weight_decay: f64,
    /// Minibatch size (paper: 128; scaled down by default).
    pub batch_size: usize,
}

impl GediotConfig {
    /// A CPU-friendly configuration preserving the paper's architecture
    /// shape at reduced width.
    #[must_use]
    pub fn small(num_labels: usize) -> Self {
        GediotConfig {
            num_labels: num_labels.max(1),
            conv_dims: vec![32, 16, 8],
            embed_dim: 8,
            ntn_dim: 8,
            sinkhorn_iters: 5,
            epsilon0: 0.05,
            learnable_epsilon: true,
            lambda: 0.8,
            use_mlp: true,
            use_cost_layer: true,
            conv: ConvKind::Gin,
            learning_rate: 1e-3,
            weight_decay: 5e-4,
            batch_size: 32,
        }
    }

    /// The paper's full-width configuration (GIN 128/64/32, d=32, L=16).
    #[must_use]
    pub fn paper(num_labels: usize) -> Self {
        GediotConfig {
            conv_dims: vec![128, 64, 32],
            embed_dim: 32,
            ntn_dim: 16,
            ..Self::small(num_labels)
        }
    }
}

/// A prediction for one graph pair.
#[derive(Clone, Debug)]
pub struct GediotPrediction {
    /// Denormalized GED estimate.
    pub ged: f64,
    /// Normalized score in `(0, 1)`.
    pub nged: f64,
    /// Node coupling matrix (`n1 x n2` in the ordered orientation).
    pub coupling: Matrix,
    /// Whether the inputs were swapped to enforce `n1 <= n2`.
    pub swapped: bool,
}

enum Conv {
    Gin(GinLayer),
    Gcn(Linear),
}

/// The GEDIOT model: owns all parameters and the optimizer state.
pub struct Gediot {
    config: GediotConfig,
    store: ParamStore,
    convs: Vec<Conv>,
    mlp: Option<Mlp>,
    cost_w: Option<ParamId>,
    eps_param: ParamId,
    pool: AttentionPool,
    ntn: Ntn,
    head: Mlp,
    adam: Adam,
}

impl Gediot {
    /// Builds a model with freshly initialized parameters.
    pub fn new<R: Rng>(config: GediotConfig, rng: &mut R) -> Self {
        let mut store = ParamStore::new();
        let mut convs = Vec::new();
        let mut in_dim = config.num_labels.max(1);
        for (i, &out) in config.conv_dims.iter().enumerate() {
            let conv = match config.conv {
                ConvKind::Gin => Conv::Gin(GinLayer::new(
                    &mut store,
                    &format!("gin{i}"),
                    in_dim,
                    out,
                    rng,
                )),
                ConvKind::Gcn => Conv::Gcn(Linear::new(
                    &mut store,
                    &format!("gcn{i}"),
                    in_dim,
                    out,
                    rng,
                )),
            };
            convs.push(conv);
            in_dim = out;
        }
        // Concatenation of the input features and every conv output.
        let feat_dim = if config.num_labels <= 1 {
            1
        } else {
            config.num_labels
        };
        let concat_dim = feat_dim + config.conv_dims.iter().sum::<usize>();
        let (mlp, d_out) = if config.use_mlp {
            let mlp = Mlp::new(
                &mut store,
                "embed_mlp",
                &[concat_dim, 2 * concat_dim, concat_dim, config.embed_dim],
                Activation::Relu,
                Activation::None,
                rng,
            );
            (Some(mlp), config.embed_dim)
        } else {
            (None, concat_dim)
        };
        let cost_w = config
            .use_cost_layer
            .then(|| store.register("cost_w", ged_nn::init::xavier_uniform(d_out, d_out, rng)));
        // ε is stored pre-softplus so that softplus(param) = ε stays > 0.
        let eps_param = store.register(
            "epsilon_raw",
            Matrix::from_vec(1, 1, vec![softplus_inverse(config.epsilon0)]),
        );
        let pool = AttentionPool::new(&mut store, "pool", d_out, rng);
        let ntn = Ntn::new(&mut store, "ntn", d_out, config.ntn_dim, rng);
        let head = Mlp::new(
            &mut store,
            "head",
            &[config.ntn_dim, 8, 4, 1],
            Activation::Relu,
            Activation::None,
            rng,
        );
        let adam = Adam::new(config.learning_rate, config.weight_decay);
        Gediot {
            config,
            store,
            convs,
            mlp,
            cost_w,
            eps_param,
            pool,
            ntn,
            head,
            adam,
        }
    }

    /// The model's hyperparameters.
    #[must_use]
    pub fn config(&self) -> &GediotConfig {
        &self.config
    }

    /// Total scalar parameter count.
    #[must_use]
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    /// The current (softplus-transformed) Sinkhorn ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        if !self.config.learnable_epsilon {
            return self.config.epsilon0;
        }
        let raw = self.store.value(self.eps_param).as_slice()[0];
        raw.max(0.0) + (-raw.abs()).exp().ln_1p()
    }

    fn one_hot_features(&self, g: &Graph) -> Matrix {
        let n = g.num_nodes();
        let k = self.config.num_labels;
        if k <= 1 {
            // Unlabeled graphs: constant feature (paper convention).
            return Matrix::filled(n, 1, 1.0);
        }
        let mut x = Matrix::zeros(n, k);
        for u in 0..n {
            let l = g.label(u as u32).0 as usize;
            assert!(l < k, "label {l} out of alphabet {k}");
            x[(u, l)] = 1.0;
        }
        x
    }

    fn normalized_adjacency(g: &Graph) -> Matrix {
        // GCN: Â = D^{-1/2} (A + I) D^{-1/2}.
        let n = g.num_nodes();
        let mut a = Matrix::from_vec(n, n, g.adjacency_matrix());
        for i in 0..n {
            a[(i, i)] = 1.0;
        }
        let deg: Vec<f64> = a.row_sums();
        Matrix::from_fn(n, n, |i, j| a[(i, j)] / (deg[i] * deg[j]).sqrt())
    }

    /// Embeds one graph into final node embeddings (`n x d_out`).
    fn embed(&self, tape: &Tape, binds: &Bindings, g: &Graph) -> Var {
        let x0 = tape.constant(self.one_hot_features(g));
        let adj = match self.config.conv {
            ConvKind::Gin => tape.constant(Matrix::from_vec(
                g.num_nodes(),
                g.num_nodes(),
                g.adjacency_matrix(),
            )),
            ConvKind::Gcn => tape.constant(Self::normalized_adjacency(g)),
        };
        let mut h = x0;
        let mut concat = x0;
        for conv in &self.convs {
            h = match conv {
                Conv::Gin(gin) => gin.forward(tape, binds, adj, h),
                Conv::Gcn(lin) => {
                    let ah = tape.matmul(adj, h);
                    tape.relu(lin.forward(tape, binds, ah))
                }
            };
            concat = tape.concat_cols(concat, h);
        }
        match &self.mlp {
            Some(mlp) => mlp.forward(tape, binds, concat),
            None => concat,
        }
    }

    /// Builds the full forward pass for an ordered pair (`n1 <= n2`).
    /// Returns `(coupling π̂, cost matrix Ĉ, score)`.
    fn forward_pair(
        &self,
        tape: &Tape,
        binds: &Bindings,
        g1: &Graph,
        g2: &Graph,
    ) -> (Var, Var, Var) {
        let h1 = self.embed(tape, binds, g1);
        let h2 = self.embed(tape, binds, g2);

        // Cost matrix layer (Eq. 10).
        let h2t = tape.transpose(h2);
        let cost = match self.cost_w {
            Some(w) => {
                let hw = tape.matmul(h1, binds.var(w));
                let raw = tape.matmul(hw, h2t);
                tape.tanh(raw)
            }
            // Ablation "w/o Cost": parameter-free pairwise scores. tanh keeps
            // exp(-C/ε) bounded, matching the learnable variant's range.
            None => {
                let raw = tape.matmul(h1, h2t);
                tape.tanh(raw)
            }
        };

        // Learnable Sinkhorn layer (Section 4.2) with the dummy row.
        let n1 = g1.num_nodes();
        let n2 = g2.num_nodes();
        let eps = if self.config.learnable_epsilon {
            tape.softplus(binds.var(self.eps_param))
        } else {
            tape.scalar(self.config.epsilon0)
        };
        let extended = tape.append_zero_row(cost);
        let neg = tape.scale(extended, -1.0);
        let scaled_cost = tape.div_scalar_var(neg, eps);
        let kernel = tape.exp(scaled_cost);
        let kernel_t = tape.transpose(kernel);
        let mut mu = vec![1.0; n1 + 1];
        mu[n1] = (n2 - n1) as f64;
        let mu = tape.constant(Matrix::col_vec(mu));
        let nu = tape.constant(Matrix::col_vec(vec![1.0; n2]));
        let mut phi = tape.constant(Matrix::col_vec(vec![1.0; n1 + 1]));
        let mut psi = tape.constant(Matrix::col_vec(vec![1.0; n2]));
        for _ in 0..self.config.sinkhorn_iters.max(1) {
            let denom_psi = tape.matmul(kernel_t, phi);
            psi = tape.div(nu, denom_psi);
            let denom_phi = tape.matmul(kernel, psi);
            phi = tape.div(mu, denom_phi);
        }
        let psi_row = tape.transpose(psi);
        let col_scaled = tape.mul_broadcast_col(kernel, phi);
        let pi_full = tape.mul_broadcast_row(col_scaled, psi_row);
        let pi = tape.remove_last_row(pi_full);

        // Transport score w1 = ⟨Ĉ, π̂⟩.
        let w1 = tape.dot(cost, pi);

        // Graph discrepancy component: attention pooling + NTN + head.
        let hg1 = self.pool.forward(tape, binds, h1);
        let hg2 = self.pool.forward(tape, binds, h2);
        let s = self.ntn.forward(tape, binds, hg1, hg2);
        let w2 = self.head.forward(tape, binds, s);

        let sum = tape.add(w1, w2);
        let score = tape.sigmoid(sum);
        (pi, cost, score)
    }

    /// Loss of one supervised pair (Eq. 15).
    fn pair_loss(&self, tape: &Tape, binds: &Bindings, pair: &GedPair) -> Var {
        let (pi, _, score) = self.forward_pair(tape, binds, &pair.g1, &pair.g2);
        let nged = pair
            .normalized_ged()
            .expect("training pair needs ground-truth GED");
        let l_v = mse_scalar(tape, score, nged);
        let mapping = pair
            .mapping
            .as_ref()
            .expect("training pair needs ground-truth matching");
        let target = Matrix::from_vec(
            pair.g1.num_nodes(),
            pair.g2.num_nodes(),
            mapping.coupling_matrix(pair.g2.num_nodes()),
        );
        let l_m = bce_matrix(tape, pi, &target);
        let lv_scaled = tape.scale(l_v, self.config.lambda);
        let lm_scaled = tape.scale(l_m, 1.0 - self.config.lambda);
        tape.add(lv_scaled, lm_scaled)
    }

    /// Trains one epoch over `pairs` (shuffled); returns the mean loss.
    pub fn train_epoch<R: Rng>(&mut self, pairs: &[GedPair], rng: &mut R) -> f64 {
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        order.shuffle(rng);
        let mut total_loss = 0.0;
        for batch in order.chunks(self.config.batch_size.max(1)) {
            let mut grad_acc: Option<Vec<Matrix>> = None;
            for &i in batch {
                let tape = Tape::new();
                let binds = self.store.bind(&tape);
                let loss = self.pair_loss(&tape, &binds, &pairs[i]);
                total_loss += tape.scalar_value(loss);
                tape.backward(loss);
                let grads = self.store.gradients(&tape, &binds);
                match &mut grad_acc {
                    Some(acc) => {
                        for (a, g) in acc.iter_mut().zip(&grads) {
                            a.add_scaled_assign(g, 1.0);
                        }
                    }
                    None => grad_acc = Some(grads),
                }
            }
            if let Some(mut acc) = grad_acc {
                let scale = 1.0 / batch.len() as f64;
                for g in &mut acc {
                    *g = g.scale(scale);
                }
                self.adam.step(&mut self.store, &acc);
            }
        }
        total_loss / pairs.len().max(1) as f64
    }

    /// Trains for `epochs` epochs; returns the per-epoch mean losses.
    pub fn train<R: Rng>(&mut self, pairs: &[GedPair], epochs: usize, rng: &mut R) -> Vec<f64> {
        (0..epochs).map(|_| self.train_epoch(pairs, rng)).collect()
    }

    /// Predicts the GED and coupling of a pair (order-insensitive).
    #[must_use]
    pub fn predict(&self, g1: &Graph, g2: &Graph) -> GediotPrediction {
        let (a, b, swapped) = ordered(g1, g2);
        let tape = Tape::new();
        let binds = self.store.bind(&tape);
        let (pi, _, score) = self.forward_pair(&tape, &binds, a, b);
        let nged = tape.scalar_value(score);
        let ged = nged * max_edit_ops(a, b) as f64;
        GediotPrediction {
            ged,
            nged,
            coupling: tape.value(pi),
            swapped,
        }
    }

    /// Predicts and additionally generates a feasible edit path via k-best
    /// matching (Section 4.5). The path is in the ordered orientation.
    #[must_use]
    pub fn predict_with_path(
        &self,
        g1: &Graph,
        g2: &Graph,
        k: usize,
    ) -> (GediotPrediction, KBestResult) {
        let pred = self.predict(g1, g2);
        let (a, b, _) = ordered(g1, g2);
        let path = kbest_edit_path(a, b, &pred.coupling, k);
        (pred, path)
    }

    /// Serializes all trained parameters to a text checkpoint.
    #[must_use]
    pub fn save_checkpoint(&self) -> String {
        self.store.checkpoint().to_text()
    }

    /// Restores parameters from a checkpoint produced by
    /// [`Gediot::save_checkpoint`] on an identically-configured model.
    ///
    /// # Errors
    /// Fails when the checkpoint does not match this architecture.
    pub fn load_checkpoint(&mut self, text: &str) -> Result<(), String> {
        let ckpt = ged_nn::params::Checkpoint::from_text(text)?;
        self.store.restore(&ckpt)
    }

    /// Validation loss (no parameter update).
    #[must_use]
    pub fn evaluate_loss(&self, pairs: &[GedPair]) -> f64 {
        let mut total = 0.0;
        for pair in pairs {
            let tape = Tape::new();
            let binds = self.store.bind(&tape);
            let loss = self.pair_loss(&tape, &binds, pair);
            total += tape.scalar_value(loss);
        }
        total / pairs.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::generate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_config(num_labels: usize) -> GediotConfig {
        GediotConfig {
            conv_dims: vec![8, 8],
            embed_dim: 4,
            ntn_dim: 4,
            batch_size: 8,
            learning_rate: 5e-3,
            ..GediotConfig::small(num_labels)
        }
    }

    fn make_pairs(count: usize, rng: &mut SmallRng) -> Vec<GedPair> {
        (0..count)
            .map(|i| {
                let g = generate::random_connected(5 + i % 3, 1, &[0.5, 0.5], rng);
                let p = generate::perturb_with_edits(&g, 1 + i % 4, 2, rng);
                GedPair::supervised(g, p.graph, p.applied as f64, p.mapping)
            })
            .collect()
    }

    #[test]
    fn forward_shapes_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(41);
        let model = Gediot::new(tiny_config(2), &mut rng);
        let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
        let g2 = generate::random_connected(6, 2, &[0.5, 0.5], &mut rng);
        let pred = model.predict(&g1, &g2);
        assert_eq!(pred.coupling.shape(), (4, 6));
        assert!(pred.nged > 0.0 && pred.nged < 1.0);
        assert!(pred.ged >= 0.0);
        // Coupling rows sum to ~1 (each G1 node transports unit mass; the
        // last ψ/φ update leaves rows exactly normalized).
        for s in pred.coupling.row_sums() {
            assert!((s - 1.0).abs() < 0.05, "row sum {s}");
        }
        // Columns receive at most ~1.
        for s in pred.coupling.col_sums() {
            assert!(s <= 1.05, "col sum {s}");
        }
    }

    #[test]
    fn prediction_is_symmetric_in_input_order() {
        let mut rng = SmallRng::seed_from_u64(42);
        let model = Gediot::new(tiny_config(2), &mut rng);
        let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
        let g2 = generate::random_connected(6, 2, &[0.5, 0.5], &mut rng);
        let a = model.predict(&g1, &g2);
        let b = model.predict(&g2, &g1);
        assert!((a.ged - b.ged).abs() < 1e-12);
        assert!(!a.swapped && b.swapped);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = SmallRng::seed_from_u64(43);
        let pairs = make_pairs(24, &mut rng);
        let mut model = Gediot::new(tiny_config(2), &mut rng);
        let initial = model.evaluate_loss(&pairs);
        let losses = model.train(&pairs, 8, &mut rng);
        let final_loss = model.evaluate_loss(&pairs);
        assert!(
            final_loss < initial,
            "loss did not improve: {initial} -> {final_loss} ({losses:?})"
        );
    }

    #[test]
    fn learnable_epsilon_moves_during_training() {
        let mut rng = SmallRng::seed_from_u64(44);
        let pairs = make_pairs(16, &mut rng);
        let mut model = Gediot::new(tiny_config(2), &mut rng);
        let eps0 = model.epsilon();
        assert!((eps0 - 0.05).abs() < 1e-9, "initial epsilon {eps0}");
        model.train(&pairs, 5, &mut rng);
        assert!(
            (model.epsilon() - eps0).abs() > 1e-6,
            "epsilon never updated"
        );
    }

    #[test]
    fn frozen_epsilon_stays_fixed() {
        let mut rng = SmallRng::seed_from_u64(45);
        let pairs = make_pairs(8, &mut rng);
        let mut cfg = tiny_config(2);
        cfg.learnable_epsilon = false;
        let mut model = Gediot::new(cfg, &mut rng);
        model.train(&pairs, 3, &mut rng);
        assert!((model.epsilon() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn ablation_variants_run() {
        let mut rng = SmallRng::seed_from_u64(46);
        let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
        let g2 = generate::random_connected(5, 1, &[0.5, 0.5], &mut rng);
        for (gcn, mlp, cost) in [
            (true, true, true),
            (false, false, true),
            (false, true, false),
        ] {
            let mut cfg = tiny_config(2);
            cfg.conv = if gcn { ConvKind::Gcn } else { ConvKind::Gin };
            cfg.use_mlp = mlp;
            cfg.use_cost_layer = cost;
            let mut model = Gediot::new(cfg, &mut rng);
            let pairs = make_pairs(6, &mut rng);
            model.train(&pairs, 2, &mut rng);
            let pred = model.predict(&g1, &g2);
            assert!(pred.ged.is_finite());
        }
    }

    #[test]
    fn path_generation_is_feasible() {
        let mut rng = SmallRng::seed_from_u64(47);
        let model = Gediot::new(tiny_config(2), &mut rng);
        let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
        let g2 = generate::random_connected(6, 1, &[0.5, 0.5], &mut rng);
        let (_, path) = model.predict_with_path(&g1, &g2, 10);
        let out = path.path.apply(&g1).unwrap();
        assert!(ged_graph::isomorphism::are_isomorphic(&out, &g2));
    }

    #[test]
    fn overfits_single_pair_matching() {
        // Supervising a single pair repeatedly should push the coupling
        // toward the ground-truth matching.
        let mut rng = SmallRng::seed_from_u64(48);
        let g = generate::random_connected(5, 1, &[0.5, 0.5], &mut rng);
        let p = generate::perturb_with_edits(&g, 2, 2, &mut rng);
        let mapping = p.mapping.clone();
        let pair = GedPair::supervised(g.clone(), p.graph.clone(), p.applied as f64, p.mapping);
        let mut cfg = tiny_config(2);
        cfg.lambda = 0.2; // emphasize the matching loss
        cfg.learning_rate = 2e-2;
        let mut model = Gediot::new(cfg, &mut rng);
        let pairs = vec![pair];
        model.train(&pairs, 150, &mut rng);
        let pred = model.predict(&g, &p.graph);
        // The ground-truth entries should now carry high confidence.
        let n2 = p.graph.num_nodes();
        let mut hits = 0;
        for (u, &v) in mapping.as_slice().iter().enumerate() {
            let row = pred.coupling.row(u);
            let best = (0..n2)
                .max_by(|&a, &b| row[a].partial_cmp(&row[b]).unwrap())
                .unwrap();
            if best == v as usize {
                hits += 1;
            }
        }
        assert!(
            hits * 2 >= mapping.len(),
            "only {hits}/{} rows match",
            mapping.len()
        );
    }

    #[test]
    fn parameter_count_is_reported() {
        let mut rng = SmallRng::seed_from_u64(49);
        let model = Gediot::new(tiny_config(3), &mut rng);
        assert!(model.num_parameters() > 100);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_predictions() {
        let mut rng = SmallRng::seed_from_u64(50);
        let pairs = make_pairs(8, &mut rng);
        let mut model = Gediot::new(tiny_config(2), &mut rng);
        model.train(&pairs, 2, &mut rng);
        let g1 = generate::random_connected(4, 1, &[0.5, 0.5], &mut rng);
        let g2 = generate::random_connected(6, 1, &[0.5, 0.5], &mut rng);
        let before = model.predict(&g1, &g2).ged;
        let ckpt = model.save_checkpoint();

        let mut fresh = Gediot::new(tiny_config(2), &mut rng);
        fresh.load_checkpoint(&ckpt).unwrap();
        assert!((fresh.predict(&g1, &g2).ged - before).abs() < 1e-12);

        // Wrong architecture is rejected.
        let mut wrong = Gediot::new(tiny_config(3), &mut rng);
        assert!(wrong.load_checkpoint(&ckpt).is_err());
    }
}
