//! The paper's contribution: approximate GED via optimal transport.
//!
//! * [`gediot`] — the supervised **GEDIOT** model (Section 4): GIN node
//!   embeddings, a learnable cost-matrix layer, a learnable Sinkhorn layer
//!   with the dummy supernode, and the NTN graph-discrepancy head, trained
//!   with the bi-level inverse-OT objective (Eq. 7 / Eq. 15).
//! * [`gedgw`] — the unsupervised **GEDGW** solver (Section 5): node edits
//!   as optimal transport plus edge edits as Gromov–Wasserstein
//!   discrepancy, solved with conditional gradient (Eq. 17, Algorithm 2).
//! * [`ensemble`] — the **GEDHOT** ensemble (Section 5.2): the smaller GED
//!   and the shorter edit path of the two.
//! * [`kbest`] — GEP generation from any coupling matrix via the k-best
//!   matching framework with lower-bound pruning (Section 4.5, Algorithm 4).
//! * [`lower_bound`] — the label-set and degree-sequence GED lower
//!   bounds (Eq. 22), in per-pair and precomputed-signature forms.
//! * [`search`] — the τ-exact filter–prune–verify threshold pipeline
//!   (budgeted bounded A\*, feasible GEDGW upper bound) whose store-level
//!   form is [`engine::GedQuery::RangeExact`].
//! * [`pairs`] — training/evaluation pair plumbing shared by the models.
//! * [`solver`] — the [`solver::GedSolver`] trait every method implements,
//!   the [`solver::SolverRegistry`] that maps [`method::MethodKind`]s to
//!   them, and the [`solver::BatchRunner`] parallel batch engine.
//! * [`method`] — [`method::MethodKind`], the typed method identifier
//!   (registry key, CLI-parsable via `FromStr`).
//! * [`engine`] — the [`engine::GedEngine`] typed request/response query
//!   API ([`engine::GedQuery`] in, [`engine::GedResponse`] out) with
//!   method selection, filter–verify top-k and range similarity search
//!   over [`ged_graph::GraphStore`]s, pairwise matrices, dataset-scale
//!   GED joins (self-join and cross-store join), and cooperative
//!   query deadlines ([`engine::Deadline`]).
//! * [`plan`] — the unified tiered query pipeline every store-level plan
//!   (flat and sharded) runs through, plus the adaptive, stats-driven
//!   [`plan::QueryPlanner`] whose decisions are provably
//!   result-invariant.
//! * [`error`] — [`error::GedError`], the unified error type of the
//!   query API.

#![warn(missing_docs)]

pub mod edge_labeled;
pub mod engine;
pub mod ensemble;
pub mod error;
pub mod gedgw;
pub mod gediot;
pub mod kbest;
pub mod lower_bound;
pub mod method;
pub mod pairs;
pub mod plan;
pub mod search;
pub mod solver;
pub mod workspace;

pub use edge_labeled::{gedgw_edge_labeled, EdgeLabeledGraph};
pub use engine::{
    Deadline, DeadlineBound, DistanceMatrix, ExactNeighbor, GedEngine, GedEngineBuilder, GedQuery,
    GedResponse, JoinPair, JoinResult, Neighbor, RangeExactResult, SearchResult, SearchStats,
    UndecidedCandidate, UndecidedPair,
};
pub use ensemble::{Gedhot, GedhotPrediction};
pub use error::GedError;
pub use gedgw::{Gedgw, GedgwOptions, GedgwResult};
pub use gediot::{Gediot, GediotConfig, GediotPrediction};
pub use kbest::{kbest_edit_path, kbest_edit_path_in, KBestResult};
pub use lower_bound::{
    degree_sequence_lower_bound, degree_sequence_lower_bound_sig, label_set_lower_bound,
    label_set_lower_bound_sig,
};
pub use method::MethodKind;
pub use pairs::{ordered, GedPair};
pub use plan::{FilterTier, PlanExplanation, PlannerCounters, QueryPlanner, QueryShape};
pub use search::{
    bounded_exact_ged, bounded_exact_ged_with_budget, bounded_exact_ged_with_budget_in,
    fast_upper_bound, fast_upper_bound_in, pivot_distance, pivot_distance_in, prune_or_verify,
    prune_or_verify_in, prune_or_verify_with_pivot, prune_or_verify_with_pivot_in,
    similarity_search, similarity_search_in, BoundedSearch, CandidateOutcome, ExactSearchStats,
    JoinStats, Verdict,
};
pub use solver::{
    BatchRunner, GedEstimate, GedSolver, GedgwSolver, GedhotSolver, GediotSolver, PathEstimate,
    SolverRegistry, SolverScratch,
};
pub use workspace::GedWorkspace;
