//! The typed request/response query API over every GED method.
//!
//! [`GedEngine`] is the stable front door the harness, the examples, and
//! any future server/CLI layer sit on. It owns a [`SolverRegistry`]
//! (method implementations keyed by [`MethodKind`]), a [`BatchRunner`]
//! (so dataset-level queries parallelize), a default method, a default
//! edit-path beam width, and an optional prediction cache — all chosen
//! through [`GedEngineBuilder`].
//!
//! Requests are [`GedQuery`] values, answers are [`GedResponse`] values,
//! and every failure mode (unknown method, method missing from the
//! registry, empty graphs, zero budgets, empty datasets) is a
//! [`GedError`] — the engine never panics on bad input.
//!
//! | query | answer | workload |
//! |-------|--------|----------|
//! | [`GedQuery::Value`] | [`GedResponse::Value`] | one pair, value estimate |
//! | [`GedQuery::Path`] | [`GedResponse::Path`] | one pair, feasible edit path |
//! | [`GedQuery::TopK`] | [`GedResponse::TopK`] | query graph vs. dataset, ranked neighbors |
//! | [`GedQuery::Matrix`] | [`GedResponse::Matrix`] | full pairwise distance matrix |
//!
//! # Example
//!
//! ```
//! use ged_core::engine::{GedEngine, GedQuery, GedResponse};
//! use ged_core::method::MethodKind;
//! use ged_core::solver::{GedgwSolver, SolverRegistry};
//! use ged_graph::{Graph, Label};
//!
//! // A registry with the training-free GEDGW solver.
//! let mut registry = SolverRegistry::new();
//! registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
//! let engine = GedEngine::builder(registry)
//!     .method(MethodKind::Gedgw)
//!     .beam_width(16)
//!     .build()
//!     .expect("GEDGW is registered");
//!
//! // Figure 1 of the paper; exact GED of this pair is 4.
//! let g1 = Graph::from_edges(vec![Label(1), Label(1), Label(2)],
//!                            &[(0, 1), (0, 2), (1, 2)]);
//! let g2 = Graph::from_edges(vec![Label(1), Label(1), Label(3), Label(4)],
//!                            &[(0, 1), (0, 2), (2, 3)]);
//!
//! let estimate = engine.ged(&g1, &g2).unwrap();
//! assert!(estimate.ged > 0.0);
//!
//! // The same request in request/response form.
//! let pair = ged_core::pairs::GedPair::new(g1, g2);
//! match engine.query(GedQuery::Value { pair: &pair }).unwrap() {
//!     GedResponse::Value(v) => assert_eq!(v, estimate),
//!     _ => unreachable!("Value queries yield Value responses"),
//! }
//! ```

use crate::error::GedError;
use crate::method::MethodKind;
use crate::pairs::GedPair;
use crate::solver::{BatchRunner, GedEstimate, GedSolver, PathEstimate, SolverRegistry};
use ged_graph::{Graph, GraphDataset};
use std::collections::HashMap;
use std::sync::Mutex;

/// One ranked result of a [`GedQuery::TopK`] search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Index of the graph in the searched dataset.
    pub index: usize,
    /// Estimated GED between the query and that graph.
    pub ged: f64,
}

/// A symmetric pairwise distance matrix over a dataset
/// ([`GedQuery::Matrix`]). The diagonal is zero by construction; only the
/// upper triangle is computed (GED is symmetric) and mirrored.
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    fn new(n: usize) -> Self {
        DistanceMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Number of graphs (the matrix is `size × size`).
    #[must_use]
    pub fn size(&self) -> usize {
        self.n
    }

    /// The estimated GED between graphs `i` and `j`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j]
    }

    /// Row `i` as a slice (distances from graph `i` to every graph).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "index out of bounds");
        &self.data[i * self.n..(i + 1) * self.n]
    }
}

/// A typed request against a [`GedEngine`].
///
/// Pair-level queries borrow a normalized [`GedPair`]; dataset-level
/// queries borrow the dataset, so building a query never clones graphs.
#[derive(Clone, Copy, Debug)]
pub enum GedQuery<'a> {
    /// Estimate the GED of one pair (value only, possibly infeasible).
    Value {
        /// The pair to estimate.
        pair: &'a GedPair,
    },
    /// Produce a feasible edit path for one pair.
    Path {
        /// The pair to transform.
        pair: &'a GedPair,
        /// Search effort (beam width / k-best candidates); `None` uses
        /// the engine's default [`GedEngine::beam_width`].
        k: Option<usize>,
    },
    /// Rank the dataset by estimated GED to `query` and return the `k`
    /// nearest graphs (`k` larger than the dataset is clamped).
    TopK {
        /// The query graph.
        query: &'a Graph,
        /// The dataset to search.
        dataset: &'a GraphDataset,
        /// How many neighbors to return (must be ≥ 1).
        k: usize,
    },
    /// Compute the full pairwise distance matrix of a dataset.
    Matrix {
        /// The dataset to compare pairwise.
        dataset: &'a GraphDataset,
    },
}

/// The answer to a [`GedQuery`], variant-matched to the request.
#[derive(Clone, Debug, PartialEq)]
pub enum GedResponse {
    /// Answer to [`GedQuery::Value`].
    Value(GedEstimate),
    /// Answer to [`GedQuery::Path`].
    Path(PathEstimate),
    /// Answer to [`GedQuery::TopK`]: neighbors sorted by ascending GED
    /// (ties broken by dataset index), at most `k` of them.
    TopK(Vec<Neighbor>),
    /// Answer to [`GedQuery::Matrix`].
    Matrix(DistanceMatrix),
}

impl GedResponse {
    /// The value estimate, if this is a [`GedResponse::Value`].
    #[must_use]
    pub fn into_value(self) -> Option<GedEstimate> {
        match self {
            GedResponse::Value(v) => Some(v),
            _ => None,
        }
    }

    /// The path estimate, if this is a [`GedResponse::Path`].
    #[must_use]
    pub fn into_path(self) -> Option<PathEstimate> {
        match self {
            GedResponse::Path(p) => Some(p),
            _ => None,
        }
    }

    /// The ranked neighbors, if this is a [`GedResponse::TopK`].
    #[must_use]
    pub fn into_top_k(self) -> Option<Vec<Neighbor>> {
        match self {
            GedResponse::TopK(n) => Some(n),
            _ => None,
        }
    }

    /// The distance matrix, if this is a [`GedResponse::Matrix`].
    #[must_use]
    pub fn into_matrix(self) -> Option<DistanceMatrix> {
        match self {
            GedResponse::Matrix(m) => Some(m),
            _ => None,
        }
    }
}

/// A bounded memoization table for value predictions.
///
/// Lookups probe by `(method, structural fingerprint)` — no graph clones
/// on the hot path — and exact-compare only within the matching bucket,
/// so a fingerprint collision can never return a wrong value. Graphs are
/// cloned into the table only on insert. When full it is cleared
/// wholesale — predictions are cheap relative to unbounded memory
/// growth, and the cache exists for repeated-query serving workloads,
/// not for completeness.
struct PredictionCache {
    capacity: usize,
    entries: usize,
    map: HashMap<(MethodKind, u64), CacheBucket>,
}

/// Exact-match entries sharing one fingerprint: `(g1, g2, prediction)`.
type CacheBucket = Vec<(Graph, Graph, f64)>;

/// Structural fingerprint of a normalized pair ([`Graph`]'s `Hash`).
fn pair_fingerprint(pair: &GedPair) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    pair.g1.hash(&mut h);
    pair.g2.hash(&mut h);
    h.finish()
}

/// Configures and validates a [`GedEngine`].
///
/// ```
/// use ged_core::engine::GedEngine;
/// use ged_core::method::MethodKind;
/// use ged_core::solver::{GedgwSolver, SolverRegistry};
///
/// let mut registry = SolverRegistry::new();
/// registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
/// let engine = GedEngine::builder(registry)
///     .method(MethodKind::Gedgw)   // default method for every query
///     .threads(2)                  // dataset-level parallelism
///     .beam_width(24)              // default edit-path search effort
///     .prediction_cache(10_000)    // memoize repeated value queries
///     .build()
///     .unwrap();
/// assert_eq!(engine.method(), MethodKind::Gedgw);
/// ```
pub struct GedEngineBuilder {
    registry: SolverRegistry,
    method: Option<MethodKind>,
    runner: BatchRunner,
    beam_width: usize,
    cache_capacity: usize,
}

impl GedEngineBuilder {
    /// Starts a builder over `registry`. The default method is the first
    /// registered one unless [`Self::method`] overrides it.
    #[must_use]
    pub fn new(registry: SolverRegistry) -> Self {
        GedEngineBuilder {
            registry,
            method: None,
            runner: BatchRunner::default(),
            beam_width: 16,
            cache_capacity: 0,
        }
    }

    /// Selects the engine's default method (used by [`GedEngine::query`]
    /// and the typed convenience calls).
    #[must_use]
    pub fn method(mut self, method: MethodKind) -> Self {
        self.method = Some(method);
        self
    }

    /// Sets the thread count for dataset-level queries (`0` is clamped
    /// to 1, matching [`BatchRunner::new`]).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.runner = BatchRunner::new(threads);
        self
    }

    /// Installs a pre-configured [`BatchRunner`] (e.g.
    /// [`BatchRunner::try_from_env`] for `GED_THREADS` control).
    #[must_use]
    pub fn runner(mut self, runner: BatchRunner) -> Self {
        self.runner = runner;
        self
    }

    /// Sets the default edit-path search effort `k` (beam width /
    /// k-best candidates). Must be ≥ 1 at [`Self::build`] time.
    #[must_use]
    pub fn beam_width(mut self, k: usize) -> Self {
        self.beam_width = k;
        self
    }

    /// Enables a bounded value-prediction cache (`capacity` entries;
    /// `0` disables it, the default). Caching only ever memoizes —
    /// predictions are deterministic, so results are unchanged.
    #[must_use]
    pub fn prediction_cache(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Validates the configuration and builds the engine.
    ///
    /// # Errors
    /// * [`GedError::Config`] — the registry is empty.
    /// * [`GedError::MethodNotRegistered`] — the selected default method
    ///   has no solver in the registry.
    /// * [`GedError::InvalidK`] — the beam width is zero.
    pub fn build(self) -> Result<GedEngine, GedError> {
        if self.beam_width == 0 {
            return Err(GedError::InvalidK { what: "beam width" });
        }
        let method = match self.method {
            Some(m) => m,
            None => *self.registry.methods().first().ok_or_else(|| {
                GedError::Config("cannot build an engine from an empty registry".to_string())
            })?,
        };
        if self.registry.get(method).is_none() {
            return Err(GedError::MethodNotRegistered(method));
        }
        let cache = (self.cache_capacity > 0).then(|| {
            Mutex::new(PredictionCache {
                capacity: self.cache_capacity,
                entries: 0,
                map: HashMap::new(),
            })
        });
        Ok(GedEngine {
            registry: self.registry,
            method,
            runner: self.runner,
            beam_width: self.beam_width,
            cache,
        })
    }
}

/// The query engine: typed requests in, typed responses or [`GedError`]s
/// out. See the [module docs](self) for the full contract.
pub struct GedEngine {
    registry: SolverRegistry,
    method: MethodKind,
    runner: BatchRunner,
    beam_width: usize,
    cache: Option<Mutex<PredictionCache>>,
}

impl std::fmt::Debug for GedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GedEngine")
            .field("method", &self.method)
            .field("methods", &self.registry.methods())
            .field("beam_width", &self.beam_width)
            .field("threads", &self.runner.threads())
            .field("cache", &self.cache.is_some())
            .finish()
    }
}

impl GedEngine {
    /// Starts building an engine over `registry`.
    #[must_use]
    pub fn builder(registry: SolverRegistry) -> GedEngineBuilder {
        GedEngineBuilder::new(registry)
    }

    /// The engine's default method.
    #[must_use]
    pub fn method(&self) -> MethodKind {
        self.method
    }

    /// The default edit-path search effort.
    #[must_use]
    pub fn beam_width(&self) -> usize {
        self.beam_width
    }

    /// Every method this engine can answer for, in registration order.
    #[must_use]
    pub fn methods(&self) -> Vec<MethodKind> {
        self.registry.methods()
    }

    /// Resolves a method to its registered solver — the typed
    /// replacement for string-keyed registry lookups.
    ///
    /// # Errors
    /// [`GedError::MethodNotRegistered`] if the registry has no solver
    /// for `method`.
    pub fn solver(&self, method: MethodKind) -> Result<&dyn GedSolver, GedError> {
        self.registry
            .get(method)
            .ok_or(GedError::MethodNotRegistered(method))
    }

    /// Number of cached value predictions (`None` when the cache is
    /// disabled).
    #[must_use]
    pub fn cached_predictions(&self) -> Option<usize> {
        self.cache
            .as_ref()
            .map(|c| c.lock().expect("cache lock").entries)
    }

    // -- the request/response surface ------------------------------------

    /// Answers `query` with the engine's default method.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn query(&self, query: GedQuery<'_>) -> Result<GedResponse, GedError> {
        self.query_as(self.method, query)
    }

    /// Answers `query` with an explicit method, overriding the default.
    ///
    /// # Errors
    /// * [`GedError::MethodNotRegistered`] — no solver for `method`.
    /// * [`GedError::EmptyGraph`] — an input graph has no nodes.
    /// * [`GedError::PathsUnsupported`] — a `Path` query against a pure
    ///   value regressor.
    /// * [`GedError::InvalidK`] — a zero beam width or top-k size.
    /// * [`GedError::EmptyDataset`] — a dataset-level query against an
    ///   empty dataset.
    pub fn query_as(
        &self,
        method: MethodKind,
        query: GedQuery<'_>,
    ) -> Result<GedResponse, GedError> {
        match query {
            GedQuery::Value { pair } => self.predict_as(method, pair).map(GedResponse::Value),
            GedQuery::Path { pair, k } => self.edit_path_as(method, pair, k).map(GedResponse::Path),
            GedQuery::TopK { query, dataset, k } => self
                .top_k_as(method, query, dataset, k)
                .map(GedResponse::TopK),
            GedQuery::Matrix { dataset } => self
                .distance_matrix_as(method, dataset)
                .map(GedResponse::Matrix),
        }
    }

    /// Answers a batch of queries in parallel (input order preserved,
    /// results bit-identical to a sequential loop), with the default
    /// method.
    #[must_use]
    pub fn query_batch(&self, queries: &[GedQuery<'_>]) -> Vec<Result<GedResponse, GedError>> {
        self.query_batch_as(self.method, queries)
    }

    /// Answers a batch of queries in parallel with an explicit method.
    #[must_use]
    pub fn query_batch_as(
        &self,
        method: MethodKind,
        queries: &[GedQuery<'_>],
    ) -> Vec<Result<GedResponse, GedError>> {
        self.runner.map(queries, |q| self.query_as(method, *q))
    }

    // -- typed conveniences (thin wrappers over the same logic) ----------

    /// Estimates the GED of two graphs with the default method.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn ged(&self, g1: &Graph, g2: &Graph) -> Result<GedEstimate, GedError> {
        self.ged_as(self.method, g1, g2)
    }

    /// Estimates the GED of two graphs with an explicit method.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn ged_as(
        &self,
        method: MethodKind,
        g1: &Graph,
        g2: &Graph,
    ) -> Result<GedEstimate, GedError> {
        ensure_nonempty(g1, "g1")?;
        ensure_nonempty(g2, "g2")?;
        self.predict_as(method, &GedPair::new(g1.clone(), g2.clone()))
    }

    /// Estimates the GED of a prepared pair with the default method.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn predict(&self, pair: &GedPair) -> Result<GedEstimate, GedError> {
        self.predict_as(self.method, pair)
    }

    /// Estimates the GED of a prepared pair with an explicit method.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn predict_as(&self, method: MethodKind, pair: &GedPair) -> Result<GedEstimate, GedError> {
        ensure_nonempty(&pair.g1, "g1")?;
        ensure_nonempty(&pair.g2, "g2")?;
        let solver = self.solver(method)?;
        Ok(GedEstimate {
            ged: self.predict_cached(method, solver, pair),
        })
    }

    /// Generates a feasible edit path for two graphs with the default
    /// method and beam width.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn edit_path(&self, g1: &Graph, g2: &Graph) -> Result<PathEstimate, GedError> {
        ensure_nonempty(g1, "g1")?;
        ensure_nonempty(g2, "g2")?;
        self.edit_path_as(self.method, &GedPair::new(g1.clone(), g2.clone()), None)
    }

    /// Generates a feasible edit path for a prepared pair with an
    /// explicit method; `k = None` uses the engine's beam width.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn edit_path_as(
        &self,
        method: MethodKind,
        pair: &GedPair,
        k: Option<usize>,
    ) -> Result<PathEstimate, GedError> {
        ensure_nonempty(&pair.g1, "g1")?;
        ensure_nonempty(&pair.g2, "g2")?;
        let k = k.unwrap_or(self.beam_width);
        if k == 0 {
            return Err(GedError::InvalidK { what: "beam width" });
        }
        let solver = self.solver(method)?;
        solver
            .edit_path(pair, k)
            .ok_or(GedError::PathsUnsupported(method))
    }

    /// Ranks `dataset` by estimated GED to `query` and returns the `k`
    /// nearest graphs, with the default method. See [`Self::top_k_as`].
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn top_k(
        &self,
        query: &Graph,
        dataset: &GraphDataset,
        k: usize,
    ) -> Result<Vec<Neighbor>, GedError> {
        self.top_k_as(self.method, query, dataset, k)
    }

    /// Ranks `dataset` by estimated GED to `query` with an explicit
    /// method. Candidate predictions run in parallel through the
    /// engine's [`BatchRunner`]; the ranking sorts by ascending GED with
    /// ties broken by dataset index, so it is fully deterministic. A `k`
    /// larger than the dataset is clamped (every graph is returned,
    /// ranked).
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn top_k_as(
        &self,
        method: MethodKind,
        query: &Graph,
        dataset: &GraphDataset,
        k: usize,
    ) -> Result<Vec<Neighbor>, GedError> {
        if k == 0 {
            return Err(GedError::InvalidK { what: "top-k" });
        }
        ensure_nonempty(query, "query")?;
        let solver = self.solver(method)?;
        ensure_dataset_nonempty(dataset)?;
        // Pairs are built inside the parallel closure so the clone work
        // parallelizes and never precedes the validation above.
        let indices: Vec<usize> = (0..dataset.len()).collect();
        let geds = self.runner.map(&indices, |&i| {
            let pair = GedPair::new(query.clone(), dataset.graphs[i].clone());
            self.predict_cached(method, solver, &pair)
        });
        let mut neighbors: Vec<Neighbor> = geds
            .into_iter()
            .enumerate()
            .map(|(index, ged)| Neighbor { index, ged })
            .collect();
        // total_cmp keeps the no-panic contract even if a degenerate
        // model produces NaN (NaN sorts last).
        neighbors.sort_by(|a, b| a.ged.total_cmp(&b.ged).then(a.index.cmp(&b.index)));
        neighbors.truncate(k);
        Ok(neighbors)
    }

    /// Computes the pairwise distance matrix of `dataset` with the
    /// default method. See [`Self::distance_matrix_as`].
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn distance_matrix(&self, dataset: &GraphDataset) -> Result<DistanceMatrix, GedError> {
        self.distance_matrix_as(self.method, dataset)
    }

    /// Computes the pairwise distance matrix of `dataset` with an
    /// explicit method. Only the upper triangle is evaluated (GED is
    /// symmetric) — `n·(n−1)/2` predictions, parallelized through the
    /// engine's [`BatchRunner`] — then mirrored; the diagonal is zero.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn distance_matrix_as(
        &self,
        method: MethodKind,
        dataset: &GraphDataset,
    ) -> Result<DistanceMatrix, GedError> {
        let solver = self.solver(method)?;
        ensure_dataset_nonempty(dataset)?;
        let n = dataset.len();
        let mut index_pairs = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                index_pairs.push((i, j));
            }
        }
        let geds = self.runner.map(&index_pairs, |&(i, j)| {
            let pair = GedPair::new(dataset.graphs[i].clone(), dataset.graphs[j].clone());
            self.predict_cached(method, solver, &pair)
        });
        let mut matrix = DistanceMatrix::new(n);
        for (&(i, j), ged) in index_pairs.iter().zip(geds) {
            matrix.data[i * n + j] = ged;
            matrix.data[j * n + i] = ged;
        }
        Ok(matrix)
    }

    /// Predicts through the cache when one is configured. Predictions
    /// are deterministic, so memoization never changes a result.
    fn predict_cached(&self, method: MethodKind, solver: &dyn GedSolver, pair: &GedPair) -> f64 {
        let Some(cache) = &self.cache else {
            return solver.predict(pair).ged;
        };
        let key = (method, pair_fingerprint(pair));
        {
            let cache = cache.lock().expect("cache lock");
            if let Some(bucket) = cache.map.get(&key) {
                if let Some((_, _, hit)) = bucket
                    .iter()
                    .find(|(a, b, _)| *a == pair.g1 && *b == pair.g2)
                {
                    return *hit;
                }
            }
        }
        // Compute outside the lock: predictions can be expensive and the
        // cache must not serialize them.
        let ged = solver.predict(pair).ged;
        let mut cache = cache.lock().expect("cache lock");
        if cache.entries >= cache.capacity {
            cache.map.clear();
            cache.entries = 0;
        }
        cache
            .map
            .entry(key)
            .or_default()
            .push((pair.g1.clone(), pair.g2.clone(), ged));
        cache.entries += 1;
        ged
    }
}

/// Rejects empty datasets and datasets containing node-less graphs.
fn ensure_dataset_nonempty(dataset: &GraphDataset) -> Result<(), GedError> {
    if dataset.is_empty() {
        return Err(GedError::EmptyDataset);
    }
    for (i, g) in dataset.graphs.iter().enumerate() {
        ensure_nonempty(g, &format!("dataset[{i}]"))?;
    }
    Ok(())
}

/// Rejects node-less graphs with a [`GedError::EmptyGraph`] naming the
/// offending input.
fn ensure_nonempty(g: &Graph, which: &str) -> Result<(), GedError> {
    if g.num_nodes() == 0 {
        return Err(GedError::EmptyGraph(which.to_string()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::GedgwSolver;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gedgw_engine() -> GedEngine {
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        GedEngine::builder(registry)
            .method(MethodKind::Gedgw)
            .threads(1)
            .build()
            .expect("valid configuration")
    }

    fn small_dataset(count: usize, seed: u64) -> GraphDataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        GraphDataset::aids_like(count, &mut rng)
    }

    #[test]
    fn builder_defaults_to_first_registered_method() {
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let engine = GedEngine::builder(registry).build().unwrap();
        assert_eq!(engine.method(), MethodKind::Gedgw);
        assert_eq!(engine.methods(), vec![MethodKind::Gedgw]);
    }

    #[test]
    fn builder_rejects_bad_configurations() {
        let err = GedEngine::builder(SolverRegistry::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, GedError::Config(_)), "{err:?}");

        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let err = GedEngine::builder(registry)
            .method(MethodKind::Gediot)
            .build()
            .unwrap_err();
        assert_eq!(err, GedError::MethodNotRegistered(MethodKind::Gediot));

        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let err = GedEngine::builder(registry)
            .beam_width(0)
            .build()
            .unwrap_err();
        assert_eq!(err, GedError::InvalidK { what: "beam width" });
    }

    #[test]
    fn value_and_path_queries_agree_with_direct_solver_calls() {
        let engine = gedgw_engine();
        let ds = small_dataset(4, 42);
        let pair = GedPair::new(ds.graphs[0].clone(), ds.graphs[1].clone());

        let direct = GedgwSolver.predict(&pair);
        let value = engine
            .query(GedQuery::Value { pair: &pair })
            .unwrap()
            .into_value()
            .unwrap();
        assert_eq!(value, direct);

        let direct_path = GedgwSolver.edit_path(&pair, engine.beam_width()).unwrap();
        let path = engine
            .query(GedQuery::Path {
                pair: &pair,
                k: None,
            })
            .unwrap()
            .into_path()
            .unwrap();
        assert_eq!(path, direct_path);
    }

    #[test]
    fn empty_graphs_are_typed_errors() {
        let engine = gedgw_engine();
        let empty = Graph::new();
        let ok = small_dataset(1, 7).graphs[0].clone();
        let err = engine.ged(&empty, &ok).unwrap_err();
        assert_eq!(err, GedError::EmptyGraph("g1".to_string()));
        let err = engine.ged(&ok, &empty).unwrap_err();
        assert_eq!(err, GedError::EmptyGraph("g2".to_string()));
    }

    #[test]
    fn top_k_errors_and_clamping() {
        let engine = gedgw_engine();
        let ds = small_dataset(5, 3);
        let query = ds.graphs[0].clone();

        let err = engine.top_k(&query, &ds, 0).unwrap_err();
        assert_eq!(err, GedError::InvalidK { what: "top-k" });

        let empty = GraphDataset {
            kind: ds.kind,
            graphs: Vec::new(),
        };
        let err = engine.top_k(&query, &empty, 3).unwrap_err();
        assert_eq!(err, GedError::EmptyDataset);

        // k beyond the dataset is clamped: everything comes back, ranked.
        let all = engine.top_k(&query, &ds, 100).unwrap();
        assert_eq!(all.len(), ds.len());
        for w in all.windows(2) {
            assert!(w[0].ged <= w[1].ged, "ranking must be ascending");
        }
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let engine = gedgw_engine();
        let ds = small_dataset(6, 11);
        let m = engine.distance_matrix(&ds).unwrap();
        assert_eq!(m.size(), 6);
        for i in 0..6 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..6 {
                assert_eq!(m.get(i, j).to_bits(), m.get(j, i).to_bits());
            }
            assert_eq!(m.row(i).len(), 6);
        }
    }

    #[test]
    fn prediction_cache_memoizes_without_changing_results() {
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let cached = GedEngine::builder(registry)
            .prediction_cache(64)
            .threads(1)
            .build()
            .unwrap();
        let plain = gedgw_engine();

        let ds = small_dataset(4, 21);
        let pair = GedPair::new(ds.graphs[0].clone(), ds.graphs[1].clone());
        let a = cached.predict(&pair).unwrap();
        assert_eq!(cached.cached_predictions(), Some(1));
        let b = cached.predict(&pair).unwrap();
        assert_eq!(cached.cached_predictions(), Some(1), "second hit memoized");
        let reference = plain.predict(&pair).unwrap();
        assert_eq!(a.ged.to_bits(), reference.ged.to_bits());
        assert_eq!(b.ged.to_bits(), reference.ged.to_bits());
        assert_eq!(plain.cached_predictions(), None);
    }

    #[test]
    fn batch_queries_preserve_order() {
        let engine = gedgw_engine();
        let ds = small_dataset(6, 33);
        let pairs: Vec<GedPair> = (0..ds.len() - 1)
            .map(|i| GedPair::new(ds.graphs[i].clone(), ds.graphs[i + 1].clone()))
            .collect();
        let queries: Vec<GedQuery<'_>> =
            pairs.iter().map(|pair| GedQuery::Value { pair }).collect();
        let batch = engine.query_batch(&queries);
        assert_eq!(batch.len(), pairs.len());
        for (res, pair) in batch.into_iter().zip(&pairs) {
            let got = res.unwrap().into_value().unwrap();
            let want = engine.predict(pair).unwrap();
            assert_eq!(got.ged.to_bits(), want.ged.to_bits());
        }
    }
}
