//! The typed request/response query API over every GED method.
//!
//! [`GedEngine`] is the stable front door the harness, the examples, and
//! any future server/CLI layer sit on. It owns a [`SolverRegistry`]
//! (method implementations keyed by [`MethodKind`]), a [`BatchRunner`]
//! (so store-level queries parallelize), a default method, a default
//! edit-path beam width, and an optional prediction cache — all chosen
//! through [`GedEngineBuilder`].
//!
//! Requests are [`GedQuery`] values, answers are [`GedResponse`] values,
//! and every failure mode (unknown method, method missing from the
//! registry, empty graphs, zero budgets, empty stores, foreign or removed
//! [`GraphId`]s) is a [`GedError`] — the engine never panics on bad
//! input.
//!
//! | query | answer | workload |
//! |-------|--------|----------|
//! | [`GedQuery::Value`] | [`GedResponse::Value`] | one pair, value estimate |
//! | [`GedQuery::Path`] | [`GedResponse::Path`] | one pair, feasible edit path |
//! | [`GedQuery::TopK`] | [`GedResponse::TopK`] | query graph vs. store, ranked neighbors |
//! | [`GedQuery::Range`] | [`GedResponse::Range`] | query graph vs. store, all within estimated GED ≤ τ |
//! | [`GedQuery::RangeExact`] | [`GedResponse::RangeExact`] | query graph vs. store, all within **exact** GED ≤ τ |
//! | [`GedQuery::Matrix`] | [`GedResponse::Matrix`] | full pairwise distance matrix |
//! | [`GedQuery::SelfJoin`] | [`GedResponse::SelfJoin`] | all store pairs within **exact** GED ≤ τ |
//! | [`GedQuery::Join`] | [`GedResponse::Join`] | all cross-store pairs within **exact** GED ≤ τ |
//!
//! # Filter–verify search
//!
//! `TopK` and `Range` run over a [`GraphStore`] as a two-phase
//! *filter–verify* plan, the classic GED search architecture the paper's
//! similarity-search application calls for. The **filter** phase reads
//! only the store's precomputed [`ged_graph::GraphSignature`]s and the
//! query's, feeding them to the admissible label-set and degree-sequence
//! lower bounds: any candidate whose bound already exceeds the range
//! threshold τ (or, for top-k, the running k-th-best distance) is
//! discarded without ever invoking a solver. The **verify** phase runs
//! the surviving candidates through the selected solver in parallel via
//! the engine's [`BatchRunner`].
//!
//! Verified distances are *bound-refined*: the reported value is
//! `max(prediction, lower bound)`. Since the bounds provably
//! under-estimate the true GED, the refinement only ever corrects a
//! prediction that was certainly too low — and it makes the pruned plan
//! **exactly** equal to a brute-force scan that evaluates every stored
//! graph (enforced by `tests/store_search.rs`). Each search answer
//! carries [`SearchStats`] counting candidates pruned per filter tier
//! vs. verified, so the saved solver invocations are observable.
//!
//! # Exact range search
//!
//! [`GedQuery::RangeExact`] is the τ-**exact** variant of `Range`: it
//! retrieves every stored graph whose *true* GED to the query is `≤ τ`,
//! with exact distances, through the paper's three-tier
//! filter–prune–verify plan (Section 2; see [`crate::search`]):
//!
//! 1. **filter** — the signature-fed label-set and degree-sequence lower
//!    bounds discard candidates with `bound > τ` (no graph access at all);
//! 2. **prune** — the feasible GEDGW best-matching-rounding upper bound
//!    ([`crate::search::fast_upper_bound`]) *accepts* candidates with
//!    `bound ≤ τ` without any τ-bounded search (the exact distance is then
//!    recovered by a search bounded by the tighter feasible bound itself);
//! 3. **verify** — survivors run the τ-bounded exact A\*
//!    ([`crate::search::bounded_exact_ged_with_budget`]) in parallel
//!    through the engine's [`BatchRunner`].
//!
//! Unlike the approximate plan, no solver is consulted: every tier is
//! exact or admissible, so the answer is **provably** equal to running
//! [`crate::search::bounded_exact_ged`] against every stored graph —
//! independent of the selected method, the thread count, the order
//! candidates are processed in, and (under an unlimited
//! [`GedEngineBuilder::verify_budget`]) whether the pivot tier below is
//! enabled; a finite budget decides the same candidates correctly but
//! may split them differently between `matches` and `budget_exhausted`
//! depending on which bound each plan searched under. Exact search can still blow up on a
//! pathological pair, so [`GedEngineBuilder::verify_budget`] caps the
//! node expansions any single verification may spend; candidates that
//! exhaust the budget are reported per-id in
//! [`RangeExactResult::budget_exhausted`] — keeping whatever membership
//! evidence was already proven ([`UndecidedCandidate::known_match_ub`])
//! — instead of failing or stalling the whole query.
//! [`ExactSearchStats`] accounts every stored graph to exactly one tier.
//!
//! # The pivot tier
//!
//! GED is a metric, so exact distances to a few reference graphs bound
//! every query–candidate distance through the triangle inequality:
//! `max_i |d(q,p_i) − d(p_i,g)| ≤ GED(q,g) ≤ min_i d(q,p_i) + d(p_i,g)`.
//! [`GedEngineBuilder::pivots`] makes the engine maintain a
//! [`ged_graph::PivotIndex`] — `p` pivots chosen by deterministic
//! farthest-point selection, graph-to-pivot GEDs computed by the
//! τ-free budgeted exact search ([`crate::search::pivot_distance`],
//! degrading to admissible `[lb, ub]` intervals when
//! [`GedEngineBuilder::verify_budget`] bites) and kept in sync with the
//! queried store incrementally. Each store query then spends `p`
//! query-to-pivot distance computations to get per-candidate metric
//! bounds for free, wired in as:
//!
//! * **`TopK` / `Range`** — the pivot lower bound joins the filter phase
//!   (prune when `lb > ` k-th best / τ; [`SearchStats::pruned_pivot`]),
//!   and verified estimates clamp into `[lb, ub]`
//!   (`min(max(prediction, lb), ub)`). The interval provably contains
//!   the exact GED, so clamping only moves estimates toward it; for
//!   `Range`, a pivot upper bound within τ additionally *certifies*
//!   membership before the solver runs ([`SearchStats::accepted_pivot`]).
//!   The plans stay exactly equal to a brute-force scan applying the
//!   same two-sided refinement (the PR-3 contract, extended) — but note
//!   the refinement means reported *estimates* can differ from (and are
//!   never worse than) the pivot-disabled ones.
//! * **`RangeExact`** — the pivot lower bound discards *before* the
//!   signature bounds ([`ExactSearchStats::pruned_pivot`]) and the pivot
//!   upper bound accepts *before* the GEDGW bound
//!   ([`ExactSearchStats::accepted_pivot`], exact distance recovered by
//!   a pivot-ub-bounded search). Every tier is exact or admissible, so
//!   with an unlimited verify budget results are bit-identical to the
//!   pivot-disabled plan — the tier only saves work. Under a finite
//!   budget every decided answer is still correct, but the two plans
//!   search under different bounds, so a candidate can land in
//!   `matches` under one and in `budget_exhausted` under the other.
//!
//! # Example
//!
//! ```
//! use ged_core::engine::{GedEngine, GedQuery, GedResponse};
//! use ged_core::method::MethodKind;
//! use ged_core::solver::{GedgwSolver, SolverRegistry};
//! use ged_graph::{Graph, GraphStore, Label};
//!
//! // A registry with the training-free GEDGW solver.
//! let mut registry = SolverRegistry::new();
//! registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
//! let engine = GedEngine::builder(registry)
//!     .method(MethodKind::Gedgw)
//!     .beam_width(16)
//!     .build()
//!     .expect("GEDGW is registered");
//!
//! // Figure 1 of the paper; exact GED of this pair is 4.
//! let g1 = Graph::from_edges(vec![Label(1), Label(1), Label(2)],
//!                            &[(0, 1), (0, 2), (1, 2)]);
//! let g2 = Graph::from_edges(vec![Label(1), Label(1), Label(3), Label(4)],
//!                            &[(0, 1), (0, 2), (2, 3)]);
//!
//! let estimate = engine.ged(&g1, &g2).unwrap();
//! assert!(estimate.ged > 0.0);
//!
//! // The same request in request/response form.
//! let pair = ged_core::pairs::GedPair::new(g1.clone(), g2.clone());
//! match engine.query(GedQuery::Value { pair: &pair }).unwrap() {
//!     GedResponse::Value(v) => assert_eq!(v, estimate),
//!     _ => unreachable!("Value queries yield Value responses"),
//! }
//!
//! // Similarity search over an indexed store: results carry GraphIds.
//! let mut store = GraphStore::new();
//! let id1 = store.insert(g1.clone());
//! let _id2 = store.insert(g2);
//! let result = engine.top_k(&g1, &store, 1).unwrap();
//! assert_eq!(result.neighbors[0].id, id1, "g1 is its own nearest neighbor");
//! ```

use crate::error::GedError;
use crate::method::MethodKind;
use crate::pairs::GedPair;
use crate::plan::{PlanStore, QueryPlanner};
use crate::search::{pivot_distance_in, ExactSearchStats, JoinStats};
use crate::solver::{
    BatchRunner, GedEstimate, GedSolver, PathEstimate, SolverRegistry, SolverScratch,
};
use crate::workspace::GedWorkspace;
use ged_graph::{Graph, GraphId, GraphStore, PivotIndex, ShardedStore};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

/// One ranked result of a [`GedQuery::TopK`] or [`GedQuery::Range`]
/// search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Stable id of the matching graph in the searched [`GraphStore`].
    pub id: GraphId,
    /// Bound-refined GED estimate between the query and that graph (see
    /// the [module docs](self)).
    pub ged: f64,
}

/// Per-query statistics of a filter–verify search: how many candidates
/// each filter tier discarded and how many reached the solver. Always
/// satisfies `pruned() + verified == candidates`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Total graphs in the searched store.
    pub candidates: usize,
    /// Candidates discarded wholesale at the shard tier: their entire
    /// shard's aggregate lower bound already exceeded the threshold (or
    /// running k-th best), so not even their per-graph signatures were
    /// read. Always zero for flat-store plans (see
    /// [`ged_graph::shard::ShardedStore`]).
    pub pruned_shard: usize,
    /// Candidates discarded by the label-set lower bound.
    pub pruned_label: usize,
    /// Candidates that survived the label-set bound but were discarded by
    /// the degree-sequence lower bound.
    pub pruned_degree: usize,
    /// Candidates that survived both signature bounds but were discarded
    /// by the pivot-table triangle-inequality lower bound
    /// ([`GedEngineBuilder::pivots`]). Always zero without a pivot index.
    pub pruned_pivot: usize,
    /// Candidates verified by the solver (actual solver invocations).
    pub verified: usize,
    /// Of the verified candidates of a `Range` query, how many the
    /// pivot-table upper bound had already certified as true matches
    /// (`ub ≤ τ` proves exact GED ≤ τ) before the solver ran — an overlay
    /// over `verified`, **not** an extra accounting tier. Always zero for
    /// `TopK` (no fixed threshold to certify against) and without a pivot
    /// index.
    pub accepted_pivot: usize,
}

impl SearchStats {
    /// Total candidates discarded without a solver invocation.
    #[must_use]
    pub fn pruned(&self) -> usize {
        self.pruned_shard + self.pruned_label + self.pruned_degree + self.pruned_pivot
    }
}

impl fmt::Display for SearchStats {
    /// One-line tier breakdown, filter order left to right:
    /// `candidates=.. shard=.. label=.. degree=.. pivot=.. verified=..
    /// accept_pivot=..`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "candidates={} shard={} label={} degree={} pivot={} verified={} accept_pivot={}",
            self.candidates,
            self.pruned_shard,
            self.pruned_label,
            self.pruned_degree,
            self.pruned_pivot,
            self.verified,
            self.accepted_pivot
        )
    }
}

/// The answer to a store search: ranked [`Neighbor`]s plus the
/// [`SearchStats`] of the filter–verify plan that produced them.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchResult {
    /// Matching graphs, sorted by ascending GED (ties broken by
    /// [`GraphId`]).
    pub neighbors: Vec<Neighbor>,
    /// How the filter–verify plan spent its work.
    pub stats: SearchStats,
}

/// One match of a [`GedQuery::RangeExact`] search: a stored graph whose
/// **exact** GED to the query is within the threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactNeighbor {
    /// Stable id of the matching graph in the searched [`GraphStore`].
    pub id: GraphId,
    /// The exact GED between the query and that graph (`≤ τ`).
    pub ged: usize,
}

/// A candidate a [`GedQuery::RangeExact`] verify budget could not fully
/// resolve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UndecidedCandidate {
    /// Stable id of the candidate in the searched [`GraphStore`].
    pub id: GraphId,
    /// `Some(ub)` when the prune tier had already proven membership
    /// (`GED ≤ ub ≤ τ`) and only the exact-distance recovery ran out of
    /// budget — the candidate **is** a match, with `ub` its best known
    /// distance; `None` when the τ-bounded verification itself was cut
    /// short and membership is genuinely unknown.
    pub known_match_ub: Option<usize>,
}

/// The answer to a [`GedQuery::RangeExact`] search (see the
/// [module docs](self)): every match with its exact GED, the candidates
/// the expansion budget could not fully resolve, and per-tier
/// statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeExactResult {
    /// Every stored graph with exact GED ≤ τ, in ascending [`GraphId`]
    /// order (deterministic, equal to a brute-force τ-bounded scan).
    /// Distances here are always exact; a proven match whose exact
    /// distance the budget could not recover is reported in
    /// [`Self::budget_exhausted`] with its feasible bound instead.
    pub matches: Vec<ExactNeighbor>,
    /// Candidates whose bounded search ran out of node expansions
    /// ([`GedEngineBuilder::verify_budget`]), in ascending [`GraphId`]
    /// order — each with the membership evidence that survived. Empty
    /// when the budget is unlimited (the default).
    pub budget_exhausted: Vec<UndecidedCandidate>,
    /// How the three-tier plan spent its work;
    /// [`ExactSearchStats::total`] always equals the store size.
    pub stats: ExactSearchStats,
}

/// One match of a GED join ([`GedQuery::SelfJoin`] / [`GedQuery::Join`]):
/// a pair of stored graphs whose **exact** GED is within the threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinPair {
    /// Id of the pair's first graph — for a self-join always the smaller
    /// id; for a cross-store join an id of the *left* store.
    pub a: GraphId,
    /// Id of the pair's second graph — for a self-join always the larger
    /// id; for a cross-store join an id of the *right* store.
    pub b: GraphId,
    /// The exact GED of the pair (`≤ τ`).
    pub ged: usize,
}

/// A candidate pair a join's verify budget could not fully resolve —
/// the pair-level analogue of [`UndecidedCandidate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UndecidedPair {
    /// Id of the pair's first graph (see [`JoinPair::a`]).
    pub a: GraphId,
    /// Id of the pair's second graph (see [`JoinPair::b`]).
    pub b: GraphId,
    /// `Some(ub)` when membership was already proven (`GED ≤ ub ≤ τ`)
    /// and only the exact-distance recovery ran out of budget; `None`
    /// when membership is genuinely unknown.
    pub known_match_ub: Option<usize>,
}

/// The answer to a GED join ([`GedQuery::SelfJoin`] / [`GedQuery::Join`]):
/// every pair within the threshold with its exact GED, the pairs the
/// expansion budget could not resolve, and per-tier [`JoinStats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinResult {
    /// Every candidate pair with exact GED ≤ τ, in ascending `(a, b)`
    /// order (deterministic, equal to a brute-force nested loop over
    /// the candidate matrix). Distances are always exact; a proven
    /// match whose exact distance the budget could not recover is
    /// reported in [`Self::budget_exhausted`] instead.
    pub pairs: Vec<JoinPair>,
    /// Pairs whose bounded search ran out of node expansions
    /// ([`GedEngineBuilder::verify_budget`]), in ascending `(a, b)`
    /// order — each with the membership evidence that survived. Empty
    /// when the budget is unlimited (the default).
    pub budget_exhausted: Vec<UndecidedPair>,
    /// How the join plan spent its work; [`JoinStats::total`] always
    /// equals the exact candidate pair count (`n·(n−1)/2` for a
    /// self-join, `n·m` for a cross-store join).
    pub stats: JoinStats,
}

/// A symmetric pairwise distance matrix over a store
/// ([`GedQuery::Matrix`]). The diagonal is zero by construction; only the
/// upper triangle is computed (GED is symmetric) and mirrored. Positions
/// follow the store's id order; [`DistanceMatrix::ids`] maps positions
/// back to [`GraphId`]s.
#[derive(Clone, Debug, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    ids: Vec<GraphId>,
    data: Vec<f64>,
}

impl DistanceMatrix {
    fn new(ids: Vec<GraphId>) -> Self {
        let n = ids.len();
        DistanceMatrix {
            n,
            ids,
            data: vec![0.0; n * n],
        }
    }

    /// Number of graphs (the matrix is `size × size`).
    #[must_use]
    pub fn size(&self) -> usize {
        self.n
    }

    /// The store ids backing the matrix positions, in position order.
    #[must_use]
    pub fn ids(&self) -> &[GraphId] {
        &self.ids
    }

    /// The estimated GED between the graphs at positions `i` and `j`.
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.data[i * self.n + j]
    }

    /// The estimated GED between the graphs with ids `a` and `b`, or
    /// `None` if either id is not part of this matrix.
    #[must_use]
    pub fn get_by_ids(&self, a: GraphId, b: GraphId) -> Option<f64> {
        // Positions follow the store's ascending id order.
        let i = self.ids.binary_search(&a).ok()?;
        let j = self.ids.binary_search(&b).ok()?;
        Some(self.data[i * self.n + j])
    }

    /// Row `i` as a slice (distances from the graph at position `i` to
    /// every graph).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "index out of bounds");
        &self.data[i * self.n..(i + 1) * self.n]
    }
}

/// A typed request against a [`GedEngine`].
///
/// Pair-level queries borrow a normalized [`GedPair`]; store-level
/// queries borrow the [`GraphStore`], so building a query never clones
/// graphs.
#[derive(Clone, Copy, Debug)]
pub enum GedQuery<'a> {
    /// Estimate the GED of one pair (value only, possibly infeasible).
    Value {
        /// The pair to estimate.
        pair: &'a GedPair,
    },
    /// Produce a feasible edit path for one pair.
    Path {
        /// The pair to transform.
        pair: &'a GedPair,
        /// Search effort (beam width / k-best candidates); `None` uses
        /// the engine's default [`GedEngine::beam_width`].
        k: Option<usize>,
    },
    /// Rank the store by estimated GED to `query` and return the `k`
    /// nearest graphs (`k` larger than the store is clamped), via the
    /// filter–verify plan of the [module docs](self).
    TopK {
        /// The query graph.
        query: &'a Graph,
        /// The store to search.
        store: &'a GraphStore,
        /// How many neighbors to return (must be ≥ 1).
        k: usize,
    },
    /// Retrieve every stored graph whose (bound-refined) estimated GED to
    /// `query` is at most `tau`, via the filter–verify plan of the
    /// [module docs](self).
    Range {
        /// The query graph.
        query: &'a Graph,
        /// The store to search.
        store: &'a GraphStore,
        /// The GED threshold τ (NaN is rejected; `+∞` degrades to a full
        /// scan; a negative τ simply matches nothing).
        tau: f64,
    },
    /// Retrieve every stored graph whose **exact** GED to `query` is at
    /// most `tau`, with exact distances, via the three-tier
    /// filter–prune–verify plan of the [module docs](self).
    RangeExact {
        /// The query graph.
        query: &'a Graph,
        /// The store to search.
        store: &'a GraphStore,
        /// The GED threshold τ. GED is integral, so a fractional τ means
        /// `GED ≤ ⌊τ⌋`; NaN is rejected; `+∞` degrades to exact GED
        /// computation over the whole store (full scan); a negative τ
        /// matches nothing.
        tau: f64,
    },
    /// Compute the full pairwise distance matrix of a store.
    Matrix {
        /// The store to compare pairwise.
        store: &'a GraphStore,
    },
    /// Retrieve every pair of stored graphs whose **exact** GED is at
    /// most `tau` — the GED self-join (all `n·(n−1)/2` unordered pairs),
    /// via the shared-work join plan of [`crate::plan`].
    SelfJoin {
        /// The store to join with itself.
        store: &'a GraphStore,
        /// The GED threshold τ, with [`GedQuery::RangeExact`] semantics:
        /// fractional τ floors, NaN is rejected, `+∞` is a full join
        /// (exact GED of every pair), `0` joins isomorphism classes, a
        /// negative τ matches nothing.
        tau: f64,
    },
    /// Retrieve every cross-store pair (one graph from `store`, one from
    /// `other`) whose **exact** GED is at most `tau` — the GED join over
    /// all `n·m` pairs, via the shared-work join plan of [`crate::plan`].
    Join {
        /// The left store (e.g. a query batch).
        store: &'a GraphStore,
        /// The right store (e.g. the corpus).
        other: &'a GraphStore,
        /// The GED threshold τ (same semantics as [`GedQuery::SelfJoin`]).
        tau: f64,
    },
}

/// The answer to a [`GedQuery`], variant-matched to the request.
#[derive(Clone, Debug, PartialEq)]
pub enum GedResponse {
    /// Answer to [`GedQuery::Value`].
    Value(GedEstimate),
    /// Answer to [`GedQuery::Path`].
    Path(PathEstimate),
    /// Answer to [`GedQuery::TopK`]: at most `k` neighbors, sorted by
    /// ascending GED (ties broken by [`GraphId`]), plus search stats.
    TopK(SearchResult),
    /// Answer to [`GedQuery::Range`]: every neighbor within τ, sorted by
    /// ascending GED (ties broken by [`GraphId`]), plus search stats.
    Range(SearchResult),
    /// Answer to [`GedQuery::RangeExact`]: every exact match in id order,
    /// budget-undecided candidates, and per-tier stats.
    RangeExact(RangeExactResult),
    /// Answer to [`GedQuery::Matrix`].
    Matrix(DistanceMatrix),
    /// Answer to [`GedQuery::SelfJoin`]: every matching pair in
    /// ascending `(a, b)` order, budget-undecided pairs, and per-tier
    /// stats.
    SelfJoin(JoinResult),
    /// Answer to [`GedQuery::Join`]: every matching cross-store pair in
    /// ascending `(a, b)` order, budget-undecided pairs, and per-tier
    /// stats.
    Join(JoinResult),
}

impl GedResponse {
    /// The value estimate, if this is a [`GedResponse::Value`].
    #[must_use]
    pub fn into_value(self) -> Option<GedEstimate> {
        match self {
            GedResponse::Value(v) => Some(v),
            _ => None,
        }
    }

    /// The path estimate, if this is a [`GedResponse::Path`].
    #[must_use]
    pub fn into_path(self) -> Option<PathEstimate> {
        match self {
            GedResponse::Path(p) => Some(p),
            _ => None,
        }
    }

    /// The search result, if this is a [`GedResponse::TopK`].
    #[must_use]
    pub fn into_top_k(self) -> Option<SearchResult> {
        match self {
            GedResponse::TopK(r) => Some(r),
            _ => None,
        }
    }

    /// The search result, if this is a [`GedResponse::Range`].
    #[must_use]
    pub fn into_range(self) -> Option<SearchResult> {
        match self {
            GedResponse::Range(r) => Some(r),
            _ => None,
        }
    }

    /// The exact search result, if this is a [`GedResponse::RangeExact`].
    #[must_use]
    pub fn into_range_exact(self) -> Option<RangeExactResult> {
        match self {
            GedResponse::RangeExact(r) => Some(r),
            _ => None,
        }
    }

    /// The distance matrix, if this is a [`GedResponse::Matrix`].
    #[must_use]
    pub fn into_matrix(self) -> Option<DistanceMatrix> {
        match self {
            GedResponse::Matrix(m) => Some(m),
            _ => None,
        }
    }

    /// The join result, if this is a [`GedResponse::SelfJoin`].
    #[must_use]
    pub fn into_self_join(self) -> Option<JoinResult> {
        match self {
            GedResponse::SelfJoin(r) => Some(r),
            _ => None,
        }
    }

    /// The join result, if this is a [`GedResponse::Join`].
    #[must_use]
    pub fn into_join(self) -> Option<JoinResult> {
        match self {
            GedResponse::Join(r) => Some(r),
            _ => None,
        }
    }
}

/// A cooperative execution deadline for store-level queries.
///
/// Plans check the deadline between verification blocks (never inside a
/// solver or a bounded search, so one in-flight block bounds the
/// overshoot) and abandon the remaining work with
/// [`GedError::DeadlineExceeded`] instead of occupying the worker pool
/// for an answer nobody is waiting on. A deadline never changes a
/// completed answer — a query that finishes in time is bit-identical to
/// the deadline-free one. Attach one to an engine call via
/// [`GedEngine::with_deadline`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Deadline(Option<std::time::Instant>);

impl Deadline {
    /// No deadline: execution runs to completion.
    pub const NONE: Deadline = Deadline(None);

    /// A deadline `budget` from now.
    #[must_use]
    pub fn within(budget: std::time::Duration) -> Self {
        Deadline(Some(std::time::Instant::now() + budget))
    }

    /// A deadline at an absolute instant.
    #[must_use]
    pub fn at(when: std::time::Instant) -> Self {
        Deadline(Some(when))
    }

    /// Whether a deadline is set at all.
    #[must_use]
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    /// Whether the deadline has already passed (`false` when none is
    /// set).
    #[must_use]
    pub fn expired(&self) -> bool {
        self.0.is_some_and(|when| std::time::Instant::now() >= when)
    }

    /// The cooperative checkpoint plans call between verification
    /// blocks.
    pub(crate) fn check(&self) -> Result<(), GedError> {
        if self.expired() {
            Err(GedError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

/// A bounded memoization table for value predictions.
///
/// Lookups probe by `(method, structural fingerprint)` — no graph clones
/// on the hot path — and exact-compare only within the matching bucket,
/// so a fingerprint collision can never return a wrong value. Graphs are
/// cloned into the table only on insert. When full it is cleared
/// wholesale — predictions are cheap relative to unbounded memory
/// growth, and the cache exists for repeated-query serving workloads,
/// not for completeness.
struct PredictionCache {
    capacity: usize,
    entries: usize,
    map: HashMap<(MethodKind, u64), CacheBucket>,
}

/// Exact-match entries sharing one fingerprint: `(g1, g2, prediction)`.
type CacheBucket = Vec<(Graph, Graph, f64)>;

/// Structural fingerprint of a normalized pair ([`Graph`]'s `Hash`).
fn pair_fingerprint(pair: &GedPair) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    pair.g1.hash(&mut h);
    pair.g2.hash(&mut h);
    h.finish()
}

/// Configures and validates a [`GedEngine`].
///
/// ```
/// use ged_core::engine::GedEngine;
/// use ged_core::method::MethodKind;
/// use ged_core::solver::{GedgwSolver, SolverRegistry};
///
/// let mut registry = SolverRegistry::new();
/// registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
/// let engine = GedEngine::builder(registry)
///     .method(MethodKind::Gedgw)   // default method for every query
///     .threads(2)                  // store-level parallelism
///     .beam_width(24)              // default edit-path search effort
///     .prediction_cache(10_000)    // memoize repeated value queries
///     .build()
///     .unwrap();
/// assert_eq!(engine.method(), MethodKind::Gedgw);
/// ```
pub struct GedEngineBuilder {
    registry: SolverRegistry,
    method: Option<MethodKind>,
    runner: BatchRunner,
    beam_width: usize,
    cache_capacity: usize,
    verify_budget: usize,
    pivots: usize,
    adaptive: bool,
    default_tau: Option<f64>,
}

impl GedEngineBuilder {
    /// Starts a builder over `registry`. The default method is the first
    /// registered one unless [`Self::method`] overrides it.
    #[must_use]
    pub fn new(registry: SolverRegistry) -> Self {
        GedEngineBuilder {
            registry,
            method: None,
            runner: BatchRunner::default(),
            beam_width: 16,
            cache_capacity: 0,
            verify_budget: usize::MAX,
            pivots: 0,
            adaptive: false,
            default_tau: None,
        }
    }

    /// Selects the engine's default method (used by [`GedEngine::query`]
    /// and the typed convenience calls).
    #[must_use]
    pub fn method(mut self, method: MethodKind) -> Self {
        self.method = Some(method);
        self
    }

    /// Sets the thread count for store-level queries (`0` is clamped
    /// to 1, matching [`BatchRunner::new`]).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.runner = BatchRunner::new(threads);
        self
    }

    /// Installs a pre-configured [`BatchRunner`] (e.g.
    /// [`BatchRunner::try_from_env`] for `GED_THREADS` control).
    #[must_use]
    pub fn runner(mut self, runner: BatchRunner) -> Self {
        self.runner = runner;
        self
    }

    /// Sets the default edit-path search effort `k` (beam width /
    /// k-best candidates). Must be ≥ 1 at [`Self::build`] time.
    #[must_use]
    pub fn beam_width(mut self, k: usize) -> Self {
        self.beam_width = k;
        self
    }

    /// Enables a bounded value-prediction cache (`capacity` entries;
    /// `0` disables it, the default). Caching only ever memoizes —
    /// predictions are deterministic, so results are unchanged.
    #[must_use]
    pub fn prediction_cache(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Caps the node expansions any single τ-bounded exact verification
    /// ([`GedQuery::RangeExact`]) may spend, so one pathological pair
    /// cannot blow up a store-level query. Candidates that exhaust the
    /// budget surface per-id in [`RangeExactResult::budget_exhausted`]
    /// instead of failing the query. The default (`usize::MAX`) is
    /// unlimited; must be ≥ 1 at [`Self::build`] time.
    #[must_use]
    pub fn verify_budget(mut self, budget: usize) -> Self {
        self.verify_budget = budget;
        self
    }

    /// Enables the triangle-inequality pivot tier for store-level
    /// queries: the engine maintains a [`ged_graph::PivotIndex`] of up to
    /// `p` pivots (`0` disables it, the default; a `p` beyond the store
    /// size is clamped at selection time) whose exact graph-to-pivot GEDs
    /// it computes once and keeps in sync with the queried store
    /// incrementally. Each query then derives per-candidate metric
    /// `[lb, ub]` bounds from `p` query-to-pivot distances — see the
    /// [module docs](self) for how each plan consumes them. Pivot
    /// distance computations respect [`Self::verify_budget`], degrading
    /// to admissible intervals when a pair blows the budget.
    #[must_use]
    pub fn pivots(mut self, p: usize) -> Self {
        self.pivots = p;
        self
    }

    /// Enables the adaptive [`QueryPlanner`]
    /// (off by default): the engine records per-tier hit rates per query
    /// shape and per query reorders commutative discard tiers, skips
    /// ~0-yield tiers, and collapses already-decided verifications. Every
    /// planner decision is result-invariant — answers stay bit-identical
    /// to the static plan; only the work spent producing them changes.
    /// See [`crate::plan`] for the full contract and
    /// [`GedEngine::explain`] for introspection.
    #[must_use]
    pub fn adaptive_planner(mut self, on: bool) -> Self {
        self.adaptive = on;
        self
    }

    /// Sets the engine's default range threshold τ, consumed by
    /// [`GedEngine::range_default`] and [`GedEngine::range_exact_default`]
    /// (unset by default). Must not be NaN at [`Self::build`] time; the
    /// other τ semantics (`+∞` full scan, negative matches nothing)
    /// follow [`GedQuery::Range`].
    #[must_use]
    pub fn default_tau(mut self, tau: f64) -> Self {
        self.default_tau = Some(tau);
        self
    }

    /// Validates the configuration and builds the engine.
    ///
    /// # Errors
    /// * [`GedError::Config`] — the registry is empty, the beam width or
    ///   verify budget is zero, or the default τ is NaN.
    /// * [`GedError::MethodNotRegistered`] — the selected default method
    ///   has no solver in the registry.
    pub fn build(self) -> Result<GedEngine, GedError> {
        if self.beam_width == 0 {
            return Err(GedError::Config(
                "beam width must be at least 1".to_string(),
            ));
        }
        if self.verify_budget == 0 {
            return Err(GedError::Config(
                "verify budget must be at least 1 (usize::MAX = unlimited)".to_string(),
            ));
        }
        if self.default_tau.is_some_and(f64::is_nan) {
            return Err(GedError::Config(
                "default range threshold must not be NaN".to_string(),
            ));
        }
        let method = match self.method {
            Some(m) => m,
            None => *self.registry.methods().first().ok_or_else(|| {
                GedError::Config("cannot build an engine from an empty registry".to_string())
            })?,
        };
        if self.registry.get(method).is_none() {
            return Err(GedError::MethodNotRegistered(method));
        }
        let cache = (self.cache_capacity > 0).then(|| {
            Mutex::new(PredictionCache {
                capacity: self.cache_capacity,
                entries: 0,
                map: HashMap::new(),
            })
        });
        Ok(GedEngine {
            registry: self.registry,
            method,
            runner: self.runner,
            beam_width: self.beam_width,
            verify_budget: self.verify_budget,
            pivot_target: self.pivots,
            pivot_cache: Mutex::new(None),
            cache,
            planner: self.adaptive.then(|| Mutex::new(QueryPlanner::new())),
            default_tau: self.default_tau,
        })
    }
}

/// The query engine: typed requests in, typed responses or [`GedError`]s
/// out. See the [module docs](self) for the full contract.
pub struct GedEngine {
    registry: SolverRegistry,
    method: MethodKind,
    pub(crate) runner: BatchRunner,
    beam_width: usize,
    pub(crate) verify_budget: usize,
    /// How many pivots store-level queries may lean on (0 = disabled).
    pub(crate) pivot_target: usize,
    /// The lazily built, incrementally synced pivot table. One index
    /// serves one store at a time: alternating queries between stores
    /// re-syncs it wholesale (correct, but wasteful — prefer one engine
    /// per long-lived store when pivots are enabled). `Arc` so an
    /// unchanged store hands queries an `O(1)` snapshot.
    pivot_cache: Mutex<Option<Arc<PivotIndex>>>,
    cache: Option<Mutex<PredictionCache>>,
    /// The adaptive query planner ([`GedEngineBuilder::adaptive_planner`];
    /// `None` = static plans). Mutex-guarded observation state; every
    /// decision derived from it is result-invariant, so concurrent
    /// queries may interleave observations freely (see [`crate::plan`]).
    pub(crate) planner: Option<Mutex<QueryPlanner>>,
    /// The default range threshold of [`Self::range_default`] /
    /// [`Self::range_exact_default`] (validated non-NaN at build time).
    default_tau: Option<f64>,
}

impl std::fmt::Debug for GedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GedEngine")
            .field("method", &self.method)
            .field("methods", &self.registry.methods())
            .field("beam_width", &self.beam_width)
            .field("verify_budget", &self.verify_budget)
            .field("pivots", &self.pivot_target)
            .field("threads", &self.runner.threads())
            .field("cache", &self.cache.is_some())
            .field("adaptive", &self.planner.is_some())
            .finish()
    }
}

impl GedEngine {
    /// Starts building an engine over `registry`.
    #[must_use]
    pub fn builder(registry: SolverRegistry) -> GedEngineBuilder {
        GedEngineBuilder::new(registry)
    }

    /// The engine's default method.
    #[must_use]
    pub fn method(&self) -> MethodKind {
        self.method
    }

    /// The default edit-path search effort.
    #[must_use]
    pub fn beam_width(&self) -> usize {
        self.beam_width
    }

    /// The per-candidate node-expansion cap of exact verifications
    /// (`usize::MAX` = unlimited).
    #[must_use]
    pub fn verify_budget(&self) -> usize {
        self.verify_budget
    }

    /// The pivot count store-level queries aim for (`0` = pivot tier
    /// disabled; see [`GedEngineBuilder::pivots`]).
    #[must_use]
    pub fn pivot_target(&self) -> usize {
        self.pivot_target
    }

    /// The configured default range threshold
    /// ([`GedEngineBuilder::default_tau`]), if any. Never NaN.
    #[must_use]
    pub fn default_tau(&self) -> Option<f64> {
        self.default_tau
    }

    /// Range search at the engine's default threshold
    /// ([`GedEngineBuilder::default_tau`]), with the default method.
    ///
    /// # Errors
    /// [`GedError::Config`] if no default τ was configured; otherwise see
    /// [`Self::range_as`].
    pub fn range_default(
        &self,
        query: &Graph,
        store: &GraphStore,
    ) -> Result<SearchResult, GedError> {
        let tau = self.require_default_tau()?;
        self.range_as(self.method, query, store, tau)
    }

    /// Exact range search at the engine's default threshold
    /// ([`GedEngineBuilder::default_tau`]), with the default method.
    ///
    /// # Errors
    /// [`GedError::Config`] if no default τ was configured; otherwise see
    /// [`Self::range_exact_as`].
    pub fn range_exact_default(
        &self,
        query: &Graph,
        store: &GraphStore,
    ) -> Result<RangeExactResult, GedError> {
        let tau = self.require_default_tau()?;
        self.range_exact_as(self.method, query, store, tau)
    }

    fn require_default_tau(&self) -> Result<f64, GedError> {
        self.default_tau.ok_or_else(|| {
            GedError::Config(
                "no default range threshold configured (GedEngineBuilder::default_tau)".to_string(),
            )
        })
    }

    /// Syncs (or lazily builds) the cached pivot index against `store`
    /// and returns a snapshot of it. The mutex is held only for the
    /// sync itself — on an unchanged store that is an `O(1)` revision
    /// check plus an `Arc` bump — so concurrent queries never serialize
    /// on the expensive per-query distance computations, and the table
    /// is only deep-copied when a mutated store must be re-synced while
    /// other queries still hold the previous snapshot. `None` when the
    /// pivot tier is disabled or the store is empty.
    pub(crate) fn synced_pivot_index(&self, store: &GraphStore) -> Option<Arc<PivotIndex>> {
        if self.pivot_target == 0 || store.is_empty() {
            return None;
        }
        let mut ws = GedWorkspace::new();
        let mut oracle =
            |a: &Graph, b: &Graph| pivot_distance_in(a, b, self.verify_budget, &mut ws);
        let mut cache = self.pivot_cache.lock().expect("pivot cache lock");
        match cache.as_mut() {
            Some(index) if index.revision() == store.revision() => {}
            Some(index) => Arc::make_mut(index).sync(store, &mut oracle),
            None => {
                *cache = Some(Arc::new(PivotIndex::build(
                    store,
                    self.pivot_target,
                    &mut oracle,
                )));
            }
        }
        cache.clone()
    }

    /// The ids currently serving as pivots for `store`, after syncing the
    /// engine's pivot index to it (building it on first use). Empty when
    /// the pivot tier is disabled or the store is empty. Primarily an
    /// observability hook — tests use it to remove a live pivot and watch
    /// reselection keep queries exact.
    #[must_use]
    pub fn pivot_ids(&self, store: &GraphStore) -> Vec<GraphId> {
        self.synced_pivot_index(store)
            .map(|index| index.pivots().to_vec())
            .unwrap_or_default()
    }

    /// The triangle-inequality `[lb, ub]` bounds on the exact GED between
    /// `query` and every graph of `store`, derived from the engine's
    /// pivot table (synced to the store first, built on first use; the
    /// `p` query-to-pivot distances are computed once per call, outside
    /// the index lock). `None` when the pivot tier is disabled or the
    /// store is empty.
    ///
    /// This is the tier the store-level plans consume; it is public so
    /// callers (and the `ged-testkit` brute-force oracles) can observe
    /// exactly the bounds a query used.
    #[must_use]
    pub fn pivot_bounds(
        &self,
        query: &Graph,
        store: &GraphStore,
    ) -> Option<BTreeMap<GraphId, (usize, usize)>> {
        let index = self.synced_pivot_index(store)?;
        let mut ws = GedWorkspace::new();
        let mut oracle =
            |a: &Graph, b: &Graph| pivot_distance_in(a, b, self.verify_budget, &mut ws);
        let qdists = index.query_distances(store, query, &mut oracle);
        Some(
            store
                .ids()
                .into_iter()
                .map(|id| (id, index.bounds(&qdists, id).expect("index is synced")))
                .collect(),
        )
    }

    /// Every method this engine can answer for, in registration order.
    #[must_use]
    pub fn methods(&self) -> Vec<MethodKind> {
        self.registry.methods()
    }

    /// Resolves a method to its registered solver — the typed
    /// replacement for string-keyed registry lookups.
    ///
    /// # Errors
    /// [`GedError::MethodNotRegistered`] if the registry has no solver
    /// for `method`.
    pub fn solver(&self, method: MethodKind) -> Result<&dyn GedSolver, GedError> {
        self.registry
            .get(method)
            .ok_or(GedError::MethodNotRegistered(method))
    }

    /// Number of cached value predictions (`None` when the cache is
    /// disabled).
    #[must_use]
    pub fn cached_predictions(&self) -> Option<usize> {
        self.cache
            .as_ref()
            .map(|c| c.lock().expect("cache lock").entries)
    }

    // -- the request/response surface ------------------------------------

    /// Answers `query` with the engine's default method.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn query(&self, query: GedQuery<'_>) -> Result<GedResponse, GedError> {
        self.query_as(self.method, query)
    }

    /// Answers `query` with an explicit method, overriding the default.
    ///
    /// # Errors
    /// * [`GedError::MethodNotRegistered`] — no solver for `method`.
    /// * [`GedError::EmptyGraph`] — an input graph has no nodes.
    /// * [`GedError::PathsUnsupported`] — a `Path` query against a pure
    ///   value regressor.
    /// * [`GedError::InvalidK`] — a zero beam width or top-k size.
    /// * [`GedError::EmptyStore`] — a store-level query against an
    ///   empty store.
    /// * [`GedError::Config`] — a NaN range threshold.
    pub fn query_as(
        &self,
        method: MethodKind,
        query: GedQuery<'_>,
    ) -> Result<GedResponse, GedError> {
        match query {
            GedQuery::Value { pair } => self.predict_as(method, pair).map(GedResponse::Value),
            GedQuery::Path { pair, k } => self.edit_path_as(method, pair, k).map(GedResponse::Path),
            GedQuery::TopK { query, store, k } => self
                .top_k_as(method, query, store, k)
                .map(GedResponse::TopK),
            GedQuery::Range { query, store, tau } => self
                .range_as(method, query, store, tau)
                .map(GedResponse::Range),
            GedQuery::RangeExact { query, store, tau } => self
                .range_exact_as(method, query, store, tau)
                .map(GedResponse::RangeExact),
            GedQuery::Matrix { store } => self
                .distance_matrix_as(method, store)
                .map(GedResponse::Matrix),
            GedQuery::SelfJoin { store, tau } => self
                .self_join_as(method, store, tau)
                .map(GedResponse::SelfJoin),
            GedQuery::Join { store, other, tau } => self
                .join_as(method, store, other, tau)
                .map(GedResponse::Join),
        }
    }

    /// Answers a batch of queries in parallel (input order preserved,
    /// results bit-identical to a sequential loop), with the default
    /// method.
    #[must_use]
    pub fn query_batch(&self, queries: &[GedQuery<'_>]) -> Vec<Result<GedResponse, GedError>> {
        self.query_batch_as(self.method, queries)
    }

    /// Answers a batch of queries in parallel with an explicit method.
    #[must_use]
    pub fn query_batch_as(
        &self,
        method: MethodKind,
        queries: &[GedQuery<'_>],
    ) -> Vec<Result<GedResponse, GedError>> {
        self.runner.map(queries, |q| self.query_as(method, *q))
    }

    // -- typed conveniences (thin wrappers over the same logic) ----------

    /// Estimates the GED of two graphs with the default method.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn ged(&self, g1: &Graph, g2: &Graph) -> Result<GedEstimate, GedError> {
        self.ged_as(self.method, g1, g2)
    }

    /// Estimates the GED of two graphs with an explicit method.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn ged_as(
        &self,
        method: MethodKind,
        g1: &Graph,
        g2: &Graph,
    ) -> Result<GedEstimate, GedError> {
        ensure_nonempty(g1, "g1")?;
        ensure_nonempty(g2, "g2")?;
        self.predict_as(method, &GedPair::new(g1.clone(), g2.clone()))
    }

    /// Estimates the GED of two *stored* graphs, addressed by id, with
    /// the default method.
    ///
    /// # Errors
    /// See [`Self::ged_by_ids_as`].
    pub fn ged_by_ids(
        &self,
        store: &GraphStore,
        a: GraphId,
        b: GraphId,
    ) -> Result<GedEstimate, GedError> {
        self.ged_by_ids_as(self.method, store, a, b)
    }

    /// Estimates the GED of two stored graphs, addressed by id, with an
    /// explicit method.
    ///
    /// # Errors
    /// [`GedError::UnknownGraphId`] if either id is foreign to `store` or
    /// was removed; otherwise see [`Self::query_as`].
    pub fn ged_by_ids_as(
        &self,
        method: MethodKind,
        store: &GraphStore,
        a: GraphId,
        b: GraphId,
    ) -> Result<GedEstimate, GedError> {
        let ga = resolve(store, a)?;
        let gb = resolve(store, b)?;
        self.ged_as(method, ga, gb)
    }

    /// Estimates the GED of a prepared pair with the default method.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn predict(&self, pair: &GedPair) -> Result<GedEstimate, GedError> {
        self.predict_as(self.method, pair)
    }

    /// Estimates the GED of a prepared pair with an explicit method.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn predict_as(&self, method: MethodKind, pair: &GedPair) -> Result<GedEstimate, GedError> {
        ensure_nonempty(&pair.g1, "g1")?;
        ensure_nonempty(&pair.g2, "g2")?;
        let solver = self.solver(method)?;
        Ok(GedEstimate {
            ged: self.predict_cached(method, solver, pair, &mut SolverScratch::new()),
        })
    }

    /// Generates a feasible edit path for two graphs with the default
    /// method and beam width. The path transforms the pair's smaller
    /// graph into its larger one; for equal node counts the caller's
    /// orientation is preserved ([`GedPair::directed`] — edit paths are
    /// direction-sensitive, so the equal-size canonicalization of
    /// [`GedPair::new`] must not silently invert them).
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn edit_path(&self, g1: &Graph, g2: &Graph) -> Result<PathEstimate, GedError> {
        ensure_nonempty(g1, "g1")?;
        ensure_nonempty(g2, "g2")?;
        self.edit_path_as(
            self.method,
            &GedPair::directed(g1.clone(), g2.clone()),
            None,
        )
    }

    /// Generates a feasible edit path for a prepared pair with an
    /// explicit method; `k = None` uses the engine's beam width.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn edit_path_as(
        &self,
        method: MethodKind,
        pair: &GedPair,
        k: Option<usize>,
    ) -> Result<PathEstimate, GedError> {
        ensure_nonempty(&pair.g1, "g1")?;
        ensure_nonempty(&pair.g2, "g2")?;
        let k = k.unwrap_or(self.beam_width);
        if k == 0 {
            return Err(GedError::InvalidK { what: "beam width" });
        }
        let solver = self.solver(method)?;
        solver
            .edit_path(pair, k)
            .ok_or(GedError::PathsUnsupported(method))
    }

    /// Ranks `store` by estimated GED to `query` and returns the `k`
    /// nearest graphs, with the default method. See [`Self::top_k_as`].
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn top_k(
        &self,
        query: &Graph,
        store: &GraphStore,
        k: usize,
    ) -> Result<SearchResult, GedError> {
        self.top_k_as(self.method, query, store, k)
    }

    /// Ranks `store` by estimated GED to `query` with an explicit method,
    /// through the unified filter–verify pipeline of [`crate::plan`]
    /// (the flat store is the one-shard special case): candidates are
    /// processed in ascending-lower-bound order, and once `k` candidates
    /// are verified, any candidate whose lower bound exceeds the running
    /// k-th-best distance is discarded unverified. Verification runs in
    /// parallel through the engine's [`BatchRunner`]; the ranking sorts
    /// by ascending (bound-refined) GED with ties broken by id, so it is
    /// fully deterministic and exactly equal to a brute-force scan. A `k`
    /// larger than the store is clamped (every graph is returned,
    /// ranked).
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn top_k_as(
        &self,
        method: MethodKind,
        query: &Graph,
        store: &GraphStore,
        k: usize,
    ) -> Result<SearchResult, GedError> {
        self.plan_top_k(method, query, PlanStore::Flat(store), k, Deadline::NONE)
    }

    /// Ranks `store` by estimated GED to the *stored* graph `id`, with
    /// the default method.
    ///
    /// # Errors
    /// See [`Self::top_k_by_id_as`].
    pub fn top_k_by_id(
        &self,
        store: &GraphStore,
        id: GraphId,
        k: usize,
    ) -> Result<SearchResult, GedError> {
        self.top_k_by_id_as(self.method, store, id, k)
    }

    /// Ranks `store` by estimated GED to the stored graph `id` with an
    /// explicit method. The query graph itself stays in the candidate set
    /// (its self-distance ranks it first for any sane solver).
    ///
    /// # Errors
    /// [`GedError::UnknownGraphId`] if `id` is foreign to `store` or was
    /// removed; otherwise see [`Self::query_as`].
    pub fn top_k_by_id_as(
        &self,
        method: MethodKind,
        store: &GraphStore,
        id: GraphId,
        k: usize,
    ) -> Result<SearchResult, GedError> {
        let query = resolve(store, id)?;
        self.top_k_as(method, query, store, k)
    }

    /// Retrieves every stored graph within GED ≤ `tau` of `query`, with
    /// the default method. See [`Self::range_as`].
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn range(
        &self,
        query: &Graph,
        store: &GraphStore,
        tau: f64,
    ) -> Result<SearchResult, GedError> {
        self.range_as(self.method, query, store, tau)
    }

    /// Retrieves every stored graph within GED ≤ `tau` of `query` with an
    /// explicit method, through the filter–verify plan of the
    /// [module docs](self): the label-set bound discards first, the
    /// degree-sequence bound second, and only the surviving candidates
    /// are verified (in parallel through the engine's [`BatchRunner`]).
    /// Results sort by ascending (bound-refined) GED with ties broken by
    /// id, exactly equal to a brute-force scan. `tau = +∞` degrades to a
    /// full scan — every candidate is verified and returned — matching
    /// the τ = ∞ semantics of [`crate::search`].
    ///
    /// # Errors
    /// [`GedError::Config`] if `tau` is NaN; otherwise see
    /// [`Self::query_as`].
    pub fn range_as(
        &self,
        method: MethodKind,
        query: &Graph,
        store: &GraphStore,
        tau: f64,
    ) -> Result<SearchResult, GedError> {
        self.plan_range(method, query, PlanStore::Flat(store), tau, Deadline::NONE)
    }

    /// Range search around the *stored* graph `id`, with the default
    /// method — the `Range` counterpart of [`Self::top_k_by_id`]. The
    /// query graph itself stays in the candidate set (its self-distance
    /// 0 always matches for τ ≥ 0).
    ///
    /// # Errors
    /// See [`Self::range_by_id_as`].
    pub fn range_by_id(
        &self,
        store: &GraphStore,
        id: GraphId,
        tau: f64,
    ) -> Result<SearchResult, GedError> {
        self.range_by_id_as(self.method, store, id, tau)
    }

    /// Range search around the stored graph `id` with an explicit method.
    ///
    /// # Errors
    /// [`GedError::UnknownGraphId`] if `id` is foreign to `store` or was
    /// removed; otherwise see [`Self::range_as`].
    pub fn range_by_id_as(
        &self,
        method: MethodKind,
        store: &GraphStore,
        id: GraphId,
        tau: f64,
    ) -> Result<SearchResult, GedError> {
        let query = resolve(store, id)?;
        self.range_as(method, query, store, tau)
    }

    /// Retrieves every stored graph whose **exact** GED to `query` is
    /// ≤ `tau`, with the default method. See [`Self::range_exact_as`].
    ///
    /// # Errors
    /// See [`Self::range_exact_as`].
    pub fn range_exact(
        &self,
        query: &Graph,
        store: &GraphStore,
        tau: f64,
    ) -> Result<RangeExactResult, GedError> {
        self.range_exact_as(self.method, query, store, tau)
    }

    /// Retrieves every stored graph whose **exact** GED to `query` is
    /// ≤ `tau`, through the three-tier filter–prune–verify plan of the
    /// [module docs](self): the signature-fed lower bounds discard,
    /// the feasible GEDGW upper bound accepts early, and survivors run
    /// the τ-bounded exact search in parallel through the engine's
    /// [`BatchRunner`], each capped at [`Self::verify_budget`] node
    /// expansions.
    ///
    /// Every tier is exact or admissible, so — unlike every other store
    /// query — the answer does **not** depend on `method`: the parameter
    /// is validated for dispatch symmetry with [`Self::query_as`] but
    /// cannot change the result. `tau` follows [`GedQuery::RangeExact`]:
    /// fractional τ floors, `+∞` is a full exact scan, negative matches
    /// nothing.
    ///
    /// # Errors
    /// [`GedError::Config`] if `tau` is NaN; otherwise see
    /// [`Self::query_as`].
    pub fn range_exact_as(
        &self,
        method: MethodKind,
        query: &Graph,
        store: &GraphStore,
        tau: f64,
    ) -> Result<RangeExactResult, GedError> {
        self.plan_range_exact(method, query, PlanStore::Flat(store), tau, Deadline::NONE)
    }

    /// Exact range search around the *stored* graph `id`, with the
    /// default method. The query graph itself stays in the candidate set
    /// (its self-distance 0 always matches for τ ≥ 0).
    ///
    /// # Errors
    /// [`GedError::UnknownGraphId`] if `id` is foreign to `store` or was
    /// removed; otherwise see [`Self::range_exact_as`].
    pub fn range_exact_by_id(
        &self,
        store: &GraphStore,
        id: GraphId,
        tau: f64,
    ) -> Result<RangeExactResult, GedError> {
        let query = resolve(store, id)?;
        self.range_exact_as(self.method, query, store, tau)
    }

    /// Computes the pairwise distance matrix of `store` with the
    /// default method. See [`Self::distance_matrix_as`].
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn distance_matrix(&self, store: &GraphStore) -> Result<DistanceMatrix, GedError> {
        self.distance_matrix_as(self.method, store)
    }

    /// Computes the pairwise distance matrix of `store` with an
    /// explicit method. Only the upper triangle is evaluated (GED is
    /// symmetric) — `n·(n−1)/2` predictions, parallelized through the
    /// engine's [`BatchRunner`] — then mirrored; the diagonal is zero.
    /// Entries are raw solver predictions (no bound refinement), matching
    /// per-pair [`Self::predict_as`] calls bit for bit.
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn distance_matrix_as(
        &self,
        method: MethodKind,
        store: &GraphStore,
    ) -> Result<DistanceMatrix, GedError> {
        self.plan_matrix(method, PlanStore::Flat(store), Deadline::NONE)
    }

    /// The matrix kernel shared by the flat and sharded plans: upper
    /// triangle over `graphs` (already in ascending id order), mirrored.
    /// With a deadline set, the prediction batch is chunked into blocks
    /// with a cooperative [`Deadline::check`] between them (per-pair
    /// predictions are independent, so chunking cannot change a value).
    pub(crate) fn matrix_of(
        &self,
        method: MethodKind,
        solver: &dyn GedSolver,
        graphs: Vec<(GraphId, &Graph)>,
        deadline: Deadline,
    ) -> Result<DistanceMatrix, GedError> {
        let n = graphs.len();
        let mut index_pairs = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                index_pairs.push((i, j));
            }
        }
        let predict = |scratch: &mut SolverScratch, &(i, j): &(usize, usize)| {
            let pair = GedPair::new(graphs[i].1.clone(), graphs[j].1.clone());
            self.predict_cached(method, solver, &pair, scratch)
        };
        let geds = if deadline.is_set() {
            let mut geds = Vec::with_capacity(index_pairs.len());
            for block in index_pairs.chunks(self.verify_block_len()) {
                deadline.check()?;
                geds.extend(self.runner.map_init(block, SolverScratch::new, predict));
            }
            geds
        } else {
            self.runner
                .map_init(&index_pairs, SolverScratch::new, predict)
        };
        let mut matrix = DistanceMatrix::new(graphs.into_iter().map(|(id, _)| id).collect());
        for (&(i, j), ged) in index_pairs.iter().zip(geds) {
            matrix.data[i * n + j] = ged;
            matrix.data[j * n + i] = ged;
        }
        Ok(matrix)
    }

    /// How many verifications one deadline-checked block holds: enough
    /// to keep every worker busy between cooperative checkpoints.
    pub(crate) fn verify_block_len(&self) -> usize {
        crate::plan::VERIFY_BLOCK * self.runner.threads().max(1)
    }

    // -- sharded-store plans ----------------------------------------------
    //
    // The same filter–verify plans, one tier taller: a per-shard
    // aggregate lower bound ([`Shard::signature_lower_bound`] +
    // [`Shard::pivot_lower_bound`]) discards whole shards before any
    // per-graph metadata is read, surviving shards are visited in
    // ascending-bound order, and per-shard results merge through a
    // result set bounded at `k` (top-k) or filtered at τ (range).
    // Every aggregate bound under-approximates the corresponding
    // per-graph bound, so the answers are bit-identical to the flat
    // plans over the same graphs (ged-testkit property-tests this).
    //
    // The pivot tier is all-or-nothing: shards own their pivot blocks
    // (the engine cannot lazily sync a `&ShardedStore`), so plans use
    // pivots only when [`ShardedStore::pivots_ready`] holds for the
    // engine's target — call [`GedEngine::sync_sharded_pivots`] after
    // mutations to keep the tier armed. Stale or absent blocks degrade
    // to the (still exact) pivot-free plan, never to a wrong answer.

    /// Builds or incrementally syncs every shard's pivot block to this
    /// engine's [`GedEngineBuilder::pivots`] target, using the same
    /// bounded-exact oracle as the flat plans. Call after store mutations
    /// to (re)arm the sharded pivot tier; a no-op when the tier is
    /// disabled (the target is 0 clears the blocks) or nothing changed.
    pub fn sync_sharded_pivots(&self, store: &mut ShardedStore) {
        let mut ws = GedWorkspace::new();
        let mut oracle =
            |a: &Graph, b: &Graph| pivot_distance_in(a, b, self.verify_budget, &mut ws);
        store.sync_pivots(self.pivot_target, &mut oracle);
    }

    /// The triangle-inequality `[lb, ub]` bounds on the exact GED between
    /// `query` and every graph of `store`, from the shards' own pivot
    /// blocks — the sharded analogue of [`GedEngine::pivot_bounds`], and
    /// what the `ged-testkit` oracles consume to mirror sharded plans
    /// exactly. `None` unless every shard is synced at this engine's
    /// pivot target (see [`ShardedStore::pivots_ready`]).
    #[must_use]
    pub fn sharded_pivot_bounds(
        &self,
        query: &Graph,
        store: &ShardedStore,
    ) -> Option<BTreeMap<GraphId, (usize, usize)>> {
        if !store.pivots_ready(self.pivot_target) {
            return None;
        }
        let mut ws = GedWorkspace::new();
        let mut oracle =
            |a: &Graph, b: &Graph| pivot_distance_in(a, b, self.verify_budget, &mut ws);
        let mut out = BTreeMap::new();
        for shard in store.shards() {
            let index = shard.pivot_index().expect("pivots_ready");
            let qdists = index.query_distances(shard.store(), query, &mut oracle);
            for id in shard.store().ids() {
                out.insert(id, index.bounds(&qdists, id).expect("index is synced"));
            }
        }
        Some(out)
    }

    /// Ranks the `k` nearest stored graphs with the default method. The
    /// sharded counterpart of [`GedEngine::top_k`]; see
    /// [`GedEngine::top_k_sharded_as`].
    ///
    /// # Errors
    /// See [`Self::top_k_sharded_as`].
    pub fn top_k_sharded(
        &self,
        query: &Graph,
        store: &ShardedStore,
        k: usize,
    ) -> Result<SearchResult, GedError> {
        self.top_k_sharded_as(self.method, query, store, k)
    }

    /// The four-tier top-k plan over a [`ShardedStore`]: shards whose
    /// aggregate bound exceeds the running k-th best are skipped wholesale
    /// (`pruned_shard`); surviving shards run the flat per-graph plan and
    /// merge into one result set bounded at `k`. Answers are bit-identical
    /// to [`GedEngine::top_k_as`] over the same graphs.
    ///
    /// # Errors
    /// See [`Self::top_k_as`].
    pub fn top_k_sharded_as(
        &self,
        method: MethodKind,
        query: &Graph,
        store: &ShardedStore,
        k: usize,
    ) -> Result<SearchResult, GedError> {
        self.plan_top_k(method, query, PlanStore::Sharded(store), k, Deadline::NONE)
    }

    /// Range search with the default method. The sharded counterpart of
    /// [`GedEngine::range`]; see [`GedEngine::range_sharded_as`].
    ///
    /// # Errors
    /// See [`Self::range_sharded_as`].
    pub fn range_sharded(
        &self,
        query: &Graph,
        store: &ShardedStore,
        tau: f64,
    ) -> Result<SearchResult, GedError> {
        self.range_sharded_as(self.method, query, store, tau)
    }

    /// The four-tier range plan over a [`ShardedStore`]: shards whose
    /// aggregate bound exceeds `tau` are skipped wholesale, survivors run
    /// the flat per-graph plan. Answers are bit-identical to
    /// [`GedEngine::range_as`] over the same graphs.
    ///
    /// # Errors
    /// See [`Self::range_as`].
    pub fn range_sharded_as(
        &self,
        method: MethodKind,
        query: &Graph,
        store: &ShardedStore,
        tau: f64,
    ) -> Result<SearchResult, GedError> {
        self.plan_range(
            method,
            query,
            PlanStore::Sharded(store),
            tau,
            Deadline::NONE,
        )
    }

    /// Range search around the *stored* graph `id` of a [`ShardedStore`],
    /// with the default method — the sharded counterpart of
    /// [`Self::range_by_id`].
    ///
    /// # Errors
    /// See [`Self::range_sharded_by_id_as`].
    pub fn range_sharded_by_id(
        &self,
        store: &ShardedStore,
        id: GraphId,
        tau: f64,
    ) -> Result<SearchResult, GedError> {
        self.range_sharded_by_id_as(self.method, store, id, tau)
    }

    /// Range search around the stored graph `id` of a [`ShardedStore`]
    /// with an explicit method.
    ///
    /// # Errors
    /// [`GedError::UnknownGraphId`] if `id` is foreign to `store` or was
    /// removed; otherwise see [`Self::range_sharded_as`].
    pub fn range_sharded_by_id_as(
        &self,
        method: MethodKind,
        store: &ShardedStore,
        id: GraphId,
        tau: f64,
    ) -> Result<SearchResult, GedError> {
        let query = resolve_sharded(store, id)?;
        self.range_sharded_as(method, query, store, tau)
    }

    /// Exact range search with the default method. The sharded
    /// counterpart of [`GedEngine::range_exact`]; see
    /// [`GedEngine::range_exact_sharded_as`].
    ///
    /// # Errors
    /// See [`Self::range_exact_sharded_as`].
    pub fn range_exact_sharded(
        &self,
        query: &Graph,
        store: &ShardedStore,
        tau: f64,
    ) -> Result<RangeExactResult, GedError> {
        self.range_exact_sharded_as(self.method, query, store, tau)
    }

    /// The four-tier exact range plan over a [`ShardedStore`]: shard →
    /// pivot → signature → verify. Shards whose aggregate bound exceeds
    /// ⌊τ⌋ contribute their whole population to `pruned_shard`; survivors
    /// run the flat per-graph tiers, and the cross-shard survivor set is
    /// verified in one parallel batch in globally ascending id order —
    /// the same order, outcomes, and matches as
    /// [`GedEngine::range_exact_as`] over the same graphs.
    /// [`ExactSearchStats::total`] still closes to the store size.
    ///
    /// # Errors
    /// See [`Self::range_exact_as`].
    pub fn range_exact_sharded_as(
        &self,
        method: MethodKind,
        query: &Graph,
        store: &ShardedStore,
        tau: f64,
    ) -> Result<RangeExactResult, GedError> {
        self.plan_range_exact(
            method,
            query,
            PlanStore::Sharded(store),
            tau,
            Deadline::NONE,
        )
    }

    /// Pairwise distance matrix of a [`ShardedStore`] with the default
    /// method. See [`Self::distance_matrix_sharded_as`].
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn distance_matrix_sharded(
        &self,
        store: &ShardedStore,
    ) -> Result<DistanceMatrix, GedError> {
        self.distance_matrix_sharded_as(self.method, store)
    }

    /// Pairwise distance matrix of a [`ShardedStore`]: the same kernel as
    /// [`GedEngine::distance_matrix_as`] over the globally id-ordered
    /// graph sequence, so the result is bit-identical to the flat matrix
    /// of the same graphs. (No shard tier here — every pair must be
    /// computed.)
    ///
    /// # Errors
    /// See [`Self::query_as`].
    pub fn distance_matrix_sharded_as(
        &self,
        method: MethodKind,
        store: &ShardedStore,
    ) -> Result<DistanceMatrix, GedError> {
        self.plan_matrix(method, PlanStore::Sharded(store), Deadline::NONE)
    }

    // -- GED joins --------------------------------------------------------

    /// GED self-join with the default method: every unordered pair of
    /// stored graphs with exact GED ≤ `tau`. See [`Self::self_join_as`].
    ///
    /// # Errors
    /// See [`Self::self_join_as`].
    pub fn self_join(&self, store: &GraphStore, tau: f64) -> Result<JoinResult, GedError> {
        self.self_join_as(self.method, store, tau)
    }

    /// GED self-join over a flat store: every unordered pair of stored
    /// graphs (all `n·(n−1)/2`) whose **exact** GED is ≤ `tau`, through
    /// the shared-work join plan of [`crate::plan`] — one pivot-table
    /// arming serves every row, candidates stream in signature-sort
    /// order so the size-difference bound prunes whole contiguous
    /// bands, duplicate pairs verify once, and survivors run the
    /// τ-bounded exact search in parallel under
    /// [`Self::verify_budget`].
    ///
    /// Like [`Self::range_exact_as`], every tier is exact or
    /// admissible, so the answer does not depend on `method` (validated
    /// for dispatch symmetry only) and is provably equal to a
    /// brute-force [`crate::search::bounded_exact_ged`] nested loop.
    /// `tau` semantics follow [`GedQuery::SelfJoin`].
    ///
    /// # Errors
    /// [`GedError::Config`] if `tau` is NaN; otherwise see
    /// [`Self::query_as`].
    pub fn self_join_as(
        &self,
        method: MethodKind,
        store: &GraphStore,
        tau: f64,
    ) -> Result<JoinResult, GedError> {
        self.plan_self_join(method, PlanStore::Flat(store), tau, Deadline::NONE)
    }

    /// GED self-join of a [`ShardedStore`] with the default method. See
    /// [`Self::self_join_sharded_as`].
    ///
    /// # Errors
    /// See [`Self::self_join_sharded_as`].
    pub fn self_join_sharded(
        &self,
        store: &ShardedStore,
        tau: f64,
    ) -> Result<JoinResult, GedError> {
        self.self_join_sharded_as(self.method, store, tau)
    }

    /// GED self-join of a [`ShardedStore`]: shard×shard blocks whose
    /// aggregate bound ([`ged_graph::Shard::block_lower_bound`]) exceeds
    /// ⌊τ⌋ are discarded wholesale before any per-graph work; surviving
    /// blocks run the same banded per-pair tiers as the flat plan (the
    /// pivot tier serves same-shard pairs from each shard's own block
    /// when [`ShardedStore::pivots_ready`] holds). With an unlimited
    /// verify budget the matches are bit-identical to
    /// [`Self::self_join_as`] over the same graphs.
    ///
    /// # Errors
    /// See [`Self::self_join_as`].
    pub fn self_join_sharded_as(
        &self,
        method: MethodKind,
        store: &ShardedStore,
        tau: f64,
    ) -> Result<JoinResult, GedError> {
        self.plan_self_join(method, PlanStore::Sharded(store), tau, Deadline::NONE)
    }

    /// GED cross-store join with the default method: every pair with
    /// one graph from `left` and one from `right` and exact GED ≤
    /// `tau`. See [`Self::join_as`].
    ///
    /// # Errors
    /// See [`Self::join_as`].
    pub fn join(
        &self,
        left: &GraphStore,
        right: &GraphStore,
        tau: f64,
    ) -> Result<JoinResult, GedError> {
        self.join_as(self.method, left, right, tau)
    }

    /// GED cross-store join over two flat stores: every `(a, b)` pair
    /// (`a` from `left`, `b` from `right`, all `n·m`) whose **exact**
    /// GED is ≤ `tau`, through the shared-work join plan of
    /// [`crate::plan`] — the right store's pivot table is built once
    /// and armed once per left row, both sides stream in signature-sort
    /// order so the size-difference bound prunes contiguous bands, and
    /// structurally identical pairs (including `left == right`
    /// symmetric duplicates, via [`GedPair`]'s canonical orientation)
    /// verify once. Answer semantics follow [`Self::self_join_as`].
    ///
    /// # Errors
    /// [`GedError::Config`] if `tau` is NaN; otherwise see
    /// [`Self::query_as`].
    pub fn join_as(
        &self,
        method: MethodKind,
        left: &GraphStore,
        right: &GraphStore,
        tau: f64,
    ) -> Result<JoinResult, GedError> {
        self.plan_join(
            method,
            PlanStore::Flat(left),
            PlanStore::Flat(right),
            tau,
            Deadline::NONE,
        )
    }

    /// GED join of a flat query batch against a sharded corpus, with
    /// the default method. See [`Self::join_sharded_as`].
    ///
    /// # Errors
    /// See [`Self::join_sharded_as`].
    pub fn join_sharded(
        &self,
        left: &GraphStore,
        right: &ShardedStore,
        tau: f64,
    ) -> Result<JoinResult, GedError> {
        self.join_sharded_as(self.method, left, right, tau)
    }

    /// GED join of a flat query batch (`left`) against a sharded corpus
    /// (`right`): corpus shards whose aggregate block bound against the
    /// batch exceeds ⌊τ⌋ are discarded wholesale, and each surviving
    /// shard's pivot block serves its candidates (armed once per left
    /// row per shard) when [`ShardedStore::pivots_ready`] holds. With
    /// an unlimited verify budget the matches are bit-identical to
    /// [`Self::join_as`] over the same graphs.
    ///
    /// # Errors
    /// See [`Self::join_as`].
    pub fn join_sharded_as(
        &self,
        method: MethodKind,
        left: &GraphStore,
        right: &ShardedStore,
        tau: f64,
    ) -> Result<JoinResult, GedError> {
        self.plan_join(
            method,
            PlanStore::Flat(left),
            PlanStore::Sharded(right),
            tau,
            Deadline::NONE,
        )
    }

    /// Binds a cooperative [`Deadline`] to this engine's store-level
    /// queries: every call through the returned handle checks the
    /// deadline between verification blocks and answers
    /// [`GedError::DeadlineExceeded`] instead of running long past it.
    /// `Deadline::NONE` recovers the plain methods exactly.
    #[must_use]
    pub fn with_deadline(&self, deadline: Deadline) -> DeadlineBound<'_> {
        DeadlineBound {
            engine: self,
            deadline,
        }
    }

    /// Predicts through the cache when one is configured. Predictions
    /// are deterministic (and scratch-independent), so memoization never
    /// changes a result.
    pub(crate) fn predict_cached(
        &self,
        method: MethodKind,
        solver: &dyn GedSolver,
        pair: &GedPair,
        scratch: &mut SolverScratch,
    ) -> f64 {
        let Some(cache) = &self.cache else {
            return solver.predict_scratch(pair, scratch).ged;
        };
        let key = (method, pair_fingerprint(pair));
        {
            let cache = cache.lock().expect("cache lock");
            if let Some(bucket) = cache.map.get(&key) {
                if let Some((_, _, hit)) = bucket
                    .iter()
                    .find(|(a, b, _)| *a == pair.g1 && *b == pair.g2)
                {
                    return *hit;
                }
            }
        }
        // Compute outside the lock: predictions can be expensive and the
        // cache must not serialize them.
        let ged = solver.predict_scratch(pair, scratch).ged;
        let mut cache = cache.lock().expect("cache lock");
        if cache.entries >= cache.capacity {
            cache.map.clear();
            cache.entries = 0;
        }
        cache
            .map
            .entry(key)
            .or_default()
            .push((pair.g1.clone(), pair.g2.clone(), ged));
        cache.entries += 1;
        ged
    }
}

/// A [`GedEngine`] handle with a cooperative [`Deadline`] bound to every
/// store-level query (see [`GedEngine::with_deadline`]). All methods use
/// the engine's default method and mirror the plain entry points
/// exactly, except that execution stops with
/// [`GedError::DeadlineExceeded`] at the first verification-block
/// boundary past the deadline.
#[derive(Clone, Copy)]
pub struct DeadlineBound<'e> {
    engine: &'e GedEngine,
    deadline: Deadline,
}

impl DeadlineBound<'_> {
    /// Deadline-checked [`GedEngine::top_k`].
    ///
    /// # Errors
    /// [`GedError::DeadlineExceeded`] past the deadline; otherwise see
    /// [`GedEngine::top_k_as`].
    pub fn top_k(
        &self,
        query: &Graph,
        store: &GraphStore,
        k: usize,
    ) -> Result<SearchResult, GedError> {
        let e = self.engine;
        e.plan_top_k(e.method, query, PlanStore::Flat(store), k, self.deadline)
    }

    /// Deadline-checked [`GedEngine::top_k_sharded`].
    ///
    /// # Errors
    /// See [`Self::top_k`].
    pub fn top_k_sharded(
        &self,
        query: &Graph,
        store: &ShardedStore,
        k: usize,
    ) -> Result<SearchResult, GedError> {
        let e = self.engine;
        e.plan_top_k(e.method, query, PlanStore::Sharded(store), k, self.deadline)
    }

    /// Deadline-checked [`GedEngine::range`].
    ///
    /// # Errors
    /// [`GedError::DeadlineExceeded`] past the deadline; otherwise see
    /// [`GedEngine::range_as`].
    pub fn range(
        &self,
        query: &Graph,
        store: &GraphStore,
        tau: f64,
    ) -> Result<SearchResult, GedError> {
        let e = self.engine;
        e.plan_range(e.method, query, PlanStore::Flat(store), tau, self.deadline)
    }

    /// Deadline-checked [`GedEngine::range_sharded`].
    ///
    /// # Errors
    /// See [`Self::range`].
    pub fn range_sharded(
        &self,
        query: &Graph,
        store: &ShardedStore,
        tau: f64,
    ) -> Result<SearchResult, GedError> {
        let e = self.engine;
        e.plan_range(
            e.method,
            query,
            PlanStore::Sharded(store),
            tau,
            self.deadline,
        )
    }

    /// Deadline-checked [`GedEngine::range_exact`].
    ///
    /// # Errors
    /// [`GedError::DeadlineExceeded`] past the deadline; otherwise see
    /// [`GedEngine::range_exact_as`].
    pub fn range_exact(
        &self,
        query: &Graph,
        store: &GraphStore,
        tau: f64,
    ) -> Result<RangeExactResult, GedError> {
        let e = self.engine;
        e.plan_range_exact(e.method, query, PlanStore::Flat(store), tau, self.deadline)
    }

    /// Deadline-checked [`GedEngine::range_exact_sharded`].
    ///
    /// # Errors
    /// See [`Self::range_exact`].
    pub fn range_exact_sharded(
        &self,
        query: &Graph,
        store: &ShardedStore,
        tau: f64,
    ) -> Result<RangeExactResult, GedError> {
        let e = self.engine;
        e.plan_range_exact(
            e.method,
            query,
            PlanStore::Sharded(store),
            tau,
            self.deadline,
        )
    }

    /// Deadline-checked [`GedEngine::distance_matrix`].
    ///
    /// # Errors
    /// [`GedError::DeadlineExceeded`] past the deadline; otherwise see
    /// [`GedEngine::distance_matrix_as`].
    pub fn distance_matrix(&self, store: &GraphStore) -> Result<DistanceMatrix, GedError> {
        let e = self.engine;
        e.plan_matrix(e.method, PlanStore::Flat(store), self.deadline)
    }

    /// Deadline-checked [`GedEngine::distance_matrix_sharded`].
    ///
    /// # Errors
    /// See [`Self::distance_matrix`].
    pub fn distance_matrix_sharded(
        &self,
        store: &ShardedStore,
    ) -> Result<DistanceMatrix, GedError> {
        let e = self.engine;
        e.plan_matrix(e.method, PlanStore::Sharded(store), self.deadline)
    }

    /// Deadline-checked [`GedEngine::self_join`].
    ///
    /// # Errors
    /// [`GedError::DeadlineExceeded`] past the deadline; otherwise see
    /// [`GedEngine::self_join_as`].
    pub fn self_join(&self, store: &GraphStore, tau: f64) -> Result<JoinResult, GedError> {
        let e = self.engine;
        e.plan_self_join(e.method, PlanStore::Flat(store), tau, self.deadline)
    }

    /// Deadline-checked [`GedEngine::self_join_sharded`].
    ///
    /// # Errors
    /// See [`Self::self_join`].
    pub fn self_join_sharded(
        &self,
        store: &ShardedStore,
        tau: f64,
    ) -> Result<JoinResult, GedError> {
        let e = self.engine;
        e.plan_self_join(e.method, PlanStore::Sharded(store), tau, self.deadline)
    }

    /// Deadline-checked [`GedEngine::join`].
    ///
    /// # Errors
    /// [`GedError::DeadlineExceeded`] past the deadline; otherwise see
    /// [`GedEngine::join_as`].
    pub fn join(
        &self,
        left: &GraphStore,
        right: &GraphStore,
        tau: f64,
    ) -> Result<JoinResult, GedError> {
        let e = self.engine;
        e.plan_join(
            e.method,
            PlanStore::Flat(left),
            PlanStore::Flat(right),
            tau,
            self.deadline,
        )
    }

    /// Deadline-checked [`GedEngine::join_sharded`].
    ///
    /// # Errors
    /// See [`Self::join`].
    pub fn join_sharded(
        &self,
        left: &GraphStore,
        right: &ShardedStore,
        tau: f64,
    ) -> Result<JoinResult, GedError> {
        let e = self.engine;
        e.plan_join(
            e.method,
            PlanStore::Flat(left),
            PlanStore::Sharded(right),
            tau,
            self.deadline,
        )
    }
}

/// Resolves `id` in `store`, surfacing a typed error instead of a panic.
fn resolve(store: &GraphStore, id: GraphId) -> Result<&Graph, GedError> {
    store.get(id).ok_or(GedError::UnknownGraphId(id))
}

/// Resolves `id` in a [`ShardedStore`] — the sharded analogue of
/// [`resolve`].
fn resolve_sharded(store: &ShardedStore, id: GraphId) -> Result<&Graph, GedError> {
    store.get(id).ok_or(GedError::UnknownGraphId(id))
}

/// Rejects empty stores and stores containing node-less graphs. Reads
/// only the precomputed signatures, so validation never touches a graph.
pub(crate) fn ensure_store_valid(store: &GraphStore) -> Result<(), GedError> {
    if store.is_empty() {
        return Err(GedError::EmptyStore);
    }
    for (id, _, sig) in store.entries() {
        if sig.num_nodes() == 0 {
            return Err(GedError::EmptyGraph(format!("store graph {id}")));
        }
    }
    Ok(())
}

/// Rejects node-less graphs with a [`GedError::EmptyGraph`] naming the
/// offending input.
pub(crate) fn ensure_nonempty(g: &Graph, which: &str) -> Result<(), GedError> {
    if g.num_nodes() == 0 {
        return Err(GedError::EmptyGraph(which.to_string()));
    }
    Ok(())
}

/// Rejects empty sharded stores and stores containing node-less graphs —
/// the same contract (and error messages) as [`ensure_store_valid`].
pub(crate) fn ensure_sharded_store_valid(store: &ShardedStore) -> Result<(), GedError> {
    if store.is_empty() {
        return Err(GedError::EmptyStore);
    }
    for (id, _, sig) in store.entries() {
        if sig.num_nodes() == 0 {
            return Err(GedError::EmptyGraph(format!("store graph {id}")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound::{degree_sequence_lower_bound, label_set_lower_bound};
    use crate::solver::GedgwSolver;
    use ged_graph::GraphDataset;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gedgw_engine() -> GedEngine {
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        GedEngine::builder(registry)
            .method(MethodKind::Gedgw)
            .threads(1)
            .build()
            .expect("valid configuration")
    }

    fn small_dataset(count: usize, seed: u64) -> GraphDataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        GraphDataset::aids_like(count, &mut rng)
    }

    /// The brute-force reference: the bound-refined estimate for every
    /// stored graph, sorted ascending with id tie-breaks.
    fn brute_force(store: &GraphStore, query: &Graph) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = store
            .iter()
            .map(|(id, g)| {
                let pair = GedPair::new(query.clone(), g.clone());
                let lb = label_set_lower_bound(query, g).max(degree_sequence_lower_bound(query, g));
                Neighbor {
                    id,
                    ged: GedgwSolver.predict(&pair).ged.max(lb as f64),
                }
            })
            .collect();
        all.sort_by(|a, b| a.ged.total_cmp(&b.ged).then(a.id.cmp(&b.id)));
        all
    }

    #[test]
    fn builder_defaults_to_first_registered_method() {
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let engine = GedEngine::builder(registry).build().unwrap();
        assert_eq!(engine.method(), MethodKind::Gedgw);
        assert_eq!(engine.methods(), vec![MethodKind::Gedgw]);
    }

    #[test]
    fn builder_rejects_bad_configurations() {
        let err = GedEngine::builder(SolverRegistry::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, GedError::Config(_)), "{err:?}");

        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let err = GedEngine::builder(registry)
            .method(MethodKind::Gediot)
            .build()
            .unwrap_err();
        assert_eq!(err, GedError::MethodNotRegistered(MethodKind::Gediot));

        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let err = GedEngine::builder(registry)
            .beam_width(0)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            GedError::Config("beam width must be at least 1".to_string())
        );

        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let err = GedEngine::builder(registry)
            .verify_budget(0)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            GedError::Config(
                "verify budget must be at least 1 (usize::MAX = unlimited)".to_string()
            )
        );

        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let err = GedEngine::builder(registry)
            .default_tau(f64::NAN)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            GedError::Config("default range threshold must not be NaN".to_string())
        );
    }

    #[test]
    fn value_and_path_queries_agree_with_direct_solver_calls() {
        let engine = gedgw_engine();
        let ds = small_dataset(4, 42);
        let gs: Vec<&Graph> = ds.graphs().collect();
        let pair = GedPair::new(gs[0].clone(), gs[1].clone());

        let direct = GedgwSolver.predict(&pair);
        let value = engine
            .query(GedQuery::Value { pair: &pair })
            .unwrap()
            .into_value()
            .unwrap();
        assert_eq!(value, direct);

        let direct_path = GedgwSolver.edit_path(&pair, engine.beam_width()).unwrap();
        let path = engine
            .query(GedQuery::Path {
                pair: &pair,
                k: None,
            })
            .unwrap()
            .into_path()
            .unwrap();
        assert_eq!(path, direct_path);
    }

    #[test]
    fn edit_path_preserves_equal_size_orientation() {
        // Edit paths are direction-sensitive: the equal-size
        // canonicalization of GedPair::new must not invert the caller's
        // requested transformation.
        let engine = gedgw_engine();
        let mut rng = SmallRng::seed_from_u64(62);
        let ds = GraphDataset::aids_like(30, &mut rng);
        let gs: Vec<&Graph> = ds.graphs().collect();
        let mut checked = 0;
        for i in 0..gs.len() {
            for j in (i + 1)..gs.len() {
                let (a, b) = (gs[i], gs[j]);
                if a.num_nodes() != b.num_nodes() || a == b {
                    continue;
                }
                let got = engine.edit_path(a, b).unwrap();
                let want = GedgwSolver
                    .edit_path(
                        &GedPair::directed(a.clone(), b.clone()),
                        engine.beam_width(),
                    )
                    .unwrap();
                assert_eq!(got, want, "path must transform a into b, not b into a");
                checked += 1;
                if checked >= 5 {
                    return;
                }
            }
        }
        assert!(checked > 0, "the sweep must exercise equal-size pairs");
    }

    #[test]
    fn empty_graphs_are_typed_errors() {
        let engine = gedgw_engine();
        let empty = Graph::new();
        let ok = small_dataset(1, 7).graphs().next().unwrap().clone();
        let err = engine.ged(&empty, &ok).unwrap_err();
        assert_eq!(err, GedError::EmptyGraph("g1".to_string()));
        let err = engine.ged(&ok, &empty).unwrap_err();
        assert_eq!(err, GedError::EmptyGraph("g2".to_string()));
    }

    #[test]
    fn top_k_errors_and_clamping() {
        let engine = gedgw_engine();
        let ds = small_dataset(5, 3);
        let query = ds.graphs().next().unwrap().clone();

        let err = engine.top_k(&query, &ds, 0).unwrap_err();
        assert_eq!(err, GedError::InvalidK { what: "top-k" });

        let empty = GraphStore::new();
        let err = engine.top_k(&query, &empty, 3).unwrap_err();
        assert_eq!(err, GedError::EmptyStore);

        // k beyond the store is clamped: everything comes back, ranked.
        let all = engine.top_k(&query, &ds, 100).unwrap();
        assert_eq!(all.neighbors.len(), ds.len());
        for w in all.neighbors.windows(2) {
            assert!(w[0].ged <= w[1].ged, "ranking must be ascending");
        }
        assert_eq!(
            all.stats.pruned() + all.stats.verified,
            all.stats.candidates
        );
    }

    #[test]
    fn top_k_equals_brute_force_and_prunes() {
        let engine = gedgw_engine();
        let ds = small_dataset(40, 99);
        let mut rng = SmallRng::seed_from_u64(100);
        let query = GraphDataset::aids_like(1, &mut rng)
            .graphs()
            .next()
            .unwrap()
            .clone();
        let brute = brute_force(&ds, &query);
        for k in [1usize, 3, 10] {
            let result = engine.top_k(&query, &ds, k).unwrap();
            assert_eq!(result.neighbors.len(), k);
            for (got, want) in result.neighbors.iter().zip(&brute) {
                assert_eq!(got.id, want.id, "k={k}");
                assert_eq!(got.ged.to_bits(), want.ged.to_bits(), "k={k}");
            }
            assert_eq!(
                result.stats.pruned() + result.stats.verified,
                result.stats.candidates
            );
        }
        // Small k over a labeled dataset must save solver calls.
        let result = engine.top_k(&query, &ds, 1).unwrap();
        assert!(
            result.stats.verified < ds.len(),
            "stats: {:?}",
            result.stats
        );
        assert!(result.stats.pruned() > 0, "stats: {:?}", result.stats);
    }

    #[test]
    fn range_equals_brute_force_and_prunes() {
        let engine = gedgw_engine();
        let ds = small_dataset(40, 77);
        let mut rng = SmallRng::seed_from_u64(101);
        let query = GraphDataset::aids_like(1, &mut rng)
            .graphs()
            .next()
            .unwrap()
            .clone();
        let brute = brute_force(&ds, &query);
        // A threshold at the 8th-smallest distance keeps the result
        // non-trivial on both sides.
        let tau = brute[7].ged;
        let result = engine
            .query(GedQuery::Range {
                query: &query,
                store: &ds,
                tau,
            })
            .unwrap()
            .into_range()
            .unwrap();
        let want: Vec<&Neighbor> = brute.iter().filter(|n| n.ged <= tau).collect();
        assert_eq!(result.neighbors.len(), want.len());
        for (got, want) in result.neighbors.iter().zip(want) {
            assert_eq!(got.id, want.id);
            assert_eq!(got.ged.to_bits(), want.ged.to_bits());
        }
        assert!(result.stats.pruned() > 0, "stats: {:?}", result.stats);
        assert_eq!(
            result.stats.pruned() + result.stats.verified,
            result.stats.candidates
        );

        // NaN thresholds are rejected, negative ones match nothing.
        assert!(matches!(
            engine.range(&query, &ds, f64::NAN).unwrap_err(),
            GedError::Config(_)
        ));
        let none = engine.range(&query, &ds, -1.0).unwrap();
        assert!(none.neighbors.is_empty());
    }

    #[test]
    fn range_with_infinite_tau_is_a_full_scan() {
        // The search module promises "τ = ∞ degrades to exact GED
        // computation"; the approximate plan analogously degrades to a
        // full verified scan returning every stored graph.
        let engine = gedgw_engine();
        let ds = small_dataset(20, 78);
        let mut rng = SmallRng::seed_from_u64(102);
        let query = GraphDataset::aids_like(1, &mut rng)
            .graphs()
            .next()
            .unwrap()
            .clone();
        let result = engine.range(&query, &ds, f64::INFINITY).unwrap();
        assert_eq!(result.neighbors.len(), ds.len(), "every graph matches");
        assert_eq!(result.stats.verified, ds.len(), "nothing can be pruned");
        assert_eq!(result.stats.pruned(), 0);
        let brute = brute_force(&ds, &query);
        for (got, want) in result.neighbors.iter().zip(&brute) {
            assert_eq!(got.id, want.id);
            assert_eq!(got.ged.to_bits(), want.ged.to_bits());
        }
    }

    /// The brute-force reference for exact range search: τ-bounded exact
    /// search against every stored graph, in id order.
    fn brute_force_exact(store: &GraphStore, query: &Graph, tau: usize) -> Vec<ExactNeighbor> {
        store
            .iter()
            .filter_map(|(id, g)| {
                crate::search::bounded_exact_ged(query, g, tau).map(|ged| ExactNeighbor { id, ged })
            })
            .collect()
    }

    #[test]
    fn range_exact_equals_brute_force_bounded_scan() {
        let engine = gedgw_engine();
        let ds = small_dataset(25, 55);
        let query = ds.graphs().next().unwrap().clone();
        for tau in [0.0, 2.0, 4.0, 6.5] {
            let result = engine
                .query(GedQuery::RangeExact {
                    query: &query,
                    store: &ds,
                    tau,
                })
                .unwrap()
                .into_range_exact()
                .unwrap();
            let want = brute_force_exact(&ds, &query, tau.floor() as usize);
            assert_eq!(result.matches, want, "tau={tau}");
            assert!(result.budget_exhausted.is_empty(), "unlimited budget");
            assert_eq!(result.stats.total(), ds.len(), "accounting closes");
        }
        // The member query matches itself with exact distance zero.
        let self_hit = engine.range_exact(&query, &ds, 0.0).unwrap();
        assert!(self_hit.matches.iter().any(|m| m.ged == 0));
    }

    #[test]
    fn range_exact_tau_edge_cases() {
        let engine = gedgw_engine();
        let ds = small_dataset(10, 56);
        let query = ds.graphs().next().unwrap().clone();

        assert!(matches!(
            engine.range_exact(&query, &ds, f64::NAN).unwrap_err(),
            GedError::Config(_)
        ));

        // Negative τ matches nothing; the filter discards everything.
        let none = engine.range_exact(&query, &ds, -3.0).unwrap();
        assert!(none.matches.is_empty());
        assert_eq!(none.stats.filtered, ds.len());

        // τ = +∞ degrades to exact GED computation over the whole store.
        let all = engine.range_exact(&query, &ds, f64::INFINITY).unwrap();
        assert_eq!(all.matches.len(), ds.len(), "every graph matches at ∞");
        assert_eq!(all.stats.filtered, 0, "nothing can be filtered at ∞");
        let unbounded = brute_force_exact(&ds, &query, usize::MAX);
        assert_eq!(all.matches, unbounded, "distances are plain exact GEDs");
    }

    #[test]
    fn range_exact_is_method_independent_and_resolves_ids() {
        use crate::gediot::{Gediot, GediotConfig};
        use crate::solver::GedhotSolver;
        use std::sync::Arc;

        let mut rng = SmallRng::seed_from_u64(57);
        let gediot = Arc::new(Gediot::new(GediotConfig::small(29), &mut rng));
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        registry.register(MethodKind::Gedhot, Box::new(GedhotSolver::new(gediot)));
        let engine = GedEngine::builder(registry).threads(1).build().unwrap();

        let ds = small_dataset(12, 58);
        let ids = ds.ids();
        let query = ds[ids[0]].clone();

        // Exact search consults no solver: every method gives the answer.
        let a = engine
            .range_exact_as(MethodKind::Gedgw, &query, &ds, 4.0)
            .unwrap();
        let b = engine
            .range_exact_as(MethodKind::Gedhot, &query, &ds, 4.0)
            .unwrap();
        assert_eq!(a, b, "exact answers cannot depend on the method");
        // ... but an unregistered method still errors, like every query.
        let err = engine
            .range_exact_as(MethodKind::Classic, &query, &ds, 4.0)
            .unwrap_err();
        assert_eq!(err, GedError::MethodNotRegistered(MethodKind::Classic));

        let by_id = engine.range_exact_by_id(&ds, ids[0], 4.0).unwrap();
        assert_eq!(by_id, a, "by-id resolves to the same query");
        assert!(by_id.matches.iter().any(|m| m.id == ids[0] && m.ged == 0));

        let foreign = small_dataset(1, 59).ids()[0];
        let err = engine.range_exact_by_id(&ds, foreign, 4.0).unwrap_err();
        assert_eq!(err, GedError::UnknownGraphId(foreign));
    }

    #[test]
    fn range_exact_budget_surfaces_per_id_instead_of_poisoning() {
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let strangled = GedEngine::builder(registry)
            .threads(1)
            .verify_budget(1)
            .build()
            .unwrap();

        let ds = small_dataset(15, 60);
        let query = ds.graphs().next().unwrap().clone();
        let result = strangled.range_exact(&query, &ds, 3.0).unwrap();
        assert_eq!(result.stats.total(), ds.len(), "accounting still closes");
        assert_eq!(
            result.stats.budget_exceeded,
            result.budget_exhausted.len(),
            "stats mirror the per-id list"
        );
        // Whatever *was* decided must agree with the unbudgeted truth.
        let want = brute_force_exact(&ds, &query, 3);
        for m in &result.matches {
            assert!(want.contains(m), "budgeted match must be a true match");
        }
        for w in &want {
            assert!(
                result.matches.contains(w) || result.budget_exhausted.iter().any(|u| u.id == w.id),
                "a true match may only be missing because it was undecided"
            );
        }
        // An exhausted candidate with a surviving membership proof really
        // is a match, and the reported bound really bounds its GED.
        for u in &result.budget_exhausted {
            if let Some(ub) = u.known_match_ub {
                assert!(ub <= 3, "the accepting bound must be within τ");
                let truth = want.iter().find(|w| w.id == u.id);
                let truth = truth.expect("proven membership must be true membership");
                assert!(truth.ged <= ub, "ub must upper-bound the exact GED");
            }
        }
    }

    #[test]
    fn pivot_tier_preserves_exact_results_and_saves_work() {
        let ds = small_dataset(20, 63);
        let query = ds.graphs().next().unwrap().clone();
        let plain = gedgw_engine();
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let pivoted = GedEngine::builder(registry)
            .threads(1)
            .pivots(3)
            .build()
            .unwrap();
        assert_eq!(pivoted.pivot_target(), 3);
        assert_eq!(plain.pivot_target(), 0);
        assert!(plain.pivot_ids(&ds).is_empty());
        assert!(plain.pivot_bounds(&query, &ds).is_none());

        let pivots = pivoted.pivot_ids(&ds);
        assert_eq!(pivots.len(), 3);
        assert!(pivots.iter().all(|&p| ds.contains(p)));

        // The pivot bounds sandwich the true GED for every stored graph.
        let bounds = pivoted.pivot_bounds(&query, &ds).expect("pivots enabled");
        assert_eq!(bounds.len(), ds.len());
        for (id, g) in ds.iter() {
            let (lb, ub) = bounds[&id];
            let exact = crate::search::bounded_exact_ged(&query, g, usize::MAX / 2).unwrap();
            assert!(
                lb <= exact && exact <= ub,
                "[{lb}, {ub}] must contain {exact} for {id}"
            );
        }

        // RangeExact: bit-identical to the pivot-disabled plan, with the
        // pivot tiers visibly firing (the member query certifies itself).
        for tau in [0.0, 2.0, 4.0] {
            let with = pivoted.range_exact(&query, &ds, tau).unwrap();
            let without = plain.range_exact(&query, &ds, tau).unwrap();
            assert_eq!(with.matches, without.matches, "tau={tau}");
            assert_eq!(with.budget_exhausted, without.budget_exhausted);
            assert_eq!(with.stats.total(), ds.len(), "accounting closes");
            assert!(
                with.stats.pruned_pivot + with.stats.accepted_pivot > 0,
                "tau={tau}: pivot tier must fire: {:?}",
                with.stats
            );
        }
    }

    #[test]
    fn disabled_pivot_tier_never_certifies_at_infinite_tau() {
        // Regression: the vacuous (0, usize::MAX) bound of a pivot-less
        // engine must not count as a membership certificate when τ
        // saturates to usize::MAX — accepted_pivot stayed "certifying"
        // the whole store and the exact-distance recovery ran bounded by
        // usize::MAX instead of the tight GEDGW upper bound.
        let engine = gedgw_engine();
        let ds = small_dataset(12, 64);
        let query = ds.graphs().next().unwrap().clone();

        let exact = engine.range_exact(&query, &ds, f64::INFINITY).unwrap();
        assert_eq!(exact.stats.pruned_pivot, 0, "no pivot index, no tier");
        assert_eq!(exact.stats.accepted_pivot, 0, "no pivot index, no tier");
        assert_eq!(
            exact.stats.accepted_pivot + exact.stats.accepted_early + exact.stats.verified,
            ds.len(),
            "τ = ∞ still resolves every candidate through the real tiers"
        );

        let range = engine.range(&query, &ds, f64::INFINITY).unwrap();
        assert_eq!(range.stats.pruned_pivot, 0);
        assert_eq!(range.stats.accepted_pivot, 0);

        // With pivots enabled the exact table is finite, so τ = ∞ *does*
        // certify — through real bounds, not the vacuous one.
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let pivoted = GedEngine::builder(registry)
            .threads(1)
            .pivots(2)
            .build()
            .unwrap();
        let exact = pivoted.range_exact(&query, &ds, f64::INFINITY).unwrap();
        assert_eq!(exact.stats.accepted_pivot, ds.len());
        assert_eq!(exact.matches.len(), ds.len());
    }

    #[test]
    fn equal_size_pair_predictions_are_symmetric_and_cache_once() {
        // Regression: GedPair::new only swapped on node count, so
        // equal-size pairs kept caller orientation — predict(a, b) and
        // predict(b, a) could differ and occupied two cache entries.
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let engine = GedEngine::builder(registry)
            .prediction_cache(64)
            .threads(1)
            .build()
            .unwrap();

        let mut rng = SmallRng::seed_from_u64(61);
        let ds = GraphDataset::aids_like(40, &mut rng);
        let gs: Vec<&Graph> = ds.graphs().collect();
        // Sweep equal-size pairs — the regression shape: only the node
        // count used to decide the orientation, so these kept whatever
        // order the caller happened to use.
        let mut checked = 0;
        for i in 0..gs.len() {
            for j in (i + 1)..gs.len() {
                let (a, b) = (gs[i], gs[j]);
                if a.num_nodes() != b.num_nodes() || a == b {
                    continue;
                }
                checked += 1;
                let before = engine.cached_predictions().unwrap();
                let ab = engine.ged(a, b).unwrap();
                let ba = engine.ged(b, a).unwrap();
                assert_eq!(ab.ged.to_bits(), ba.ged.to_bits());
                assert_eq!(
                    engine.cached_predictions(),
                    Some(before + 1),
                    "equal-size swapped query must be one cache entry"
                );
                if checked >= 25 {
                    return;
                }
            }
        }
        assert!(checked > 5, "the sweep must exercise real pairs");
    }

    #[test]
    fn by_id_queries_resolve_and_error() {
        let engine = gedgw_engine();
        let ds = small_dataset(6, 5);
        let ids = ds.ids();

        let direct = engine.ged(&ds[ids[0]], &ds[ids[1]]).unwrap();
        let by_id = engine.ged_by_ids(&ds, ids[0], ids[1]).unwrap();
        assert_eq!(direct, by_id);

        let result = engine.top_k_by_id(&ds, ids[2], 3).unwrap();
        assert_eq!(result.neighbors[0].id, ids[2], "self-distance ranks first");

        // A foreign id comes from another store entirely.
        let foreign = small_dataset(2, 6).ids()[0];
        let err = engine.ged_by_ids(&ds, foreign, ids[1]).unwrap_err();
        assert_eq!(err, GedError::UnknownGraphId(foreign));
        let err = engine.top_k_by_id(&ds, foreign, 2).unwrap_err();
        assert_eq!(err, GedError::UnknownGraphId(foreign));

        // A removed id stops resolving.
        let mut ds = ds;
        ds.remove(ids[3]);
        let err = engine.top_k_by_id(&ds, ids[3], 2).unwrap_err();
        assert_eq!(err, GedError::UnknownGraphId(ids[3]));
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let engine = gedgw_engine();
        let ds = small_dataset(6, 11);
        let m = engine.distance_matrix(&ds).unwrap();
        assert_eq!(m.size(), 6);
        assert_eq!(m.ids(), ds.ids().as_slice());
        for i in 0..6 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..6 {
                assert_eq!(m.get(i, j).to_bits(), m.get(j, i).to_bits());
                assert_eq!(m.get_by_ids(m.ids()[i], m.ids()[j]), Some(m.get(i, j)));
            }
            assert_eq!(m.row(i).len(), 6);
        }
        let foreign = small_dataset(1, 12).ids()[0];
        assert_eq!(m.get_by_ids(foreign, m.ids()[0]), None);
    }

    #[test]
    fn prediction_cache_memoizes_without_changing_results() {
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        let cached = GedEngine::builder(registry)
            .prediction_cache(64)
            .threads(1)
            .build()
            .unwrap();
        let plain = gedgw_engine();

        let ds = small_dataset(4, 21);
        let gs: Vec<&Graph> = ds.graphs().collect();
        let pair = GedPair::new(gs[0].clone(), gs[1].clone());
        let a = cached.predict(&pair).unwrap();
        assert_eq!(cached.cached_predictions(), Some(1));
        let b = cached.predict(&pair).unwrap();
        assert_eq!(cached.cached_predictions(), Some(1), "second hit memoized");
        let reference = plain.predict(&pair).unwrap();
        assert_eq!(a.ged.to_bits(), reference.ged.to_bits());
        assert_eq!(b.ged.to_bits(), reference.ged.to_bits());
        assert_eq!(plain.cached_predictions(), None);
    }

    #[test]
    fn batch_queries_preserve_order() {
        let engine = gedgw_engine();
        let ds = small_dataset(6, 33);
        let gs: Vec<&Graph> = ds.graphs().collect();
        let pairs: Vec<GedPair> = (0..ds.len() - 1)
            .map(|i| GedPair::new(gs[i].clone(), gs[i + 1].clone()))
            .collect();
        let queries: Vec<GedQuery<'_>> =
            pairs.iter().map(|pair| GedQuery::Value { pair }).collect();
        let batch = engine.query_batch(&queries);
        assert_eq!(batch.len(), pairs.len());
        for (res, pair) in batch.into_iter().zip(&pairs) {
            let got = res.unwrap().into_value().unwrap();
            let want = engine.predict(pair).unwrap();
            assert_eq!(got.ged.to_bits(), want.ged.to_bits());
        }
    }
}
