//! The unified tiered query pipeline and the adaptive query planner.
//!
//! Every store-level plan of [`GedEngine`] — top-k, range, exact range,
//! and matrix, over flat [`GraphStore`]s and [`ShardedStore`]s alike —
//! runs through the **one** candidate pipeline of this module. A flat
//! store is simply the one-shard special case: both store kinds are
//! decomposed into `ShardUnit`s (a flat store yields a single unit with
//! aggregate lower bound 0, so its shard tier can never fire), and from
//! there the per-shape plan bodies are shared verbatim. The previous
//! eight hand-rolled plan implementations in `engine.rs` collapse into
//! the four `plan_*` functions here.
//!
//! # Filter tiers
//!
//! [`FilterTier`] names every stage a candidate can be decided by, in the
//! order the static plans apply them:
//!
//! ```text
//!            ┌──────────┐   ┌────────────────────────────┐   ┌──────────────────┐   ┌────────┐
//!  store ──▶ │  shard   │──▶│ label · degree · pivot_lb  │──▶│  pivot_ub_accept │──▶│ verify │
//!            │ aggregate│   │  (commutative discards)    │   │  gedgw_ub_accept │   │        │
//!            └──────────┘   └────────────────────────────┘   └──────────────────┘   └────────┘
//! ```
//!
//! The three middle discard tiers are *commutative*: each compares an
//! admissible lower bound against the threshold, so a candidate survives
//! if and only if **all** of them pass — the evaluation order changes
//! which tier gets the credit (and how much bound computation runs), but
//! never the survivor set. That commutativity is what the planner
//! exploits.
//!
//! # The adaptive planner
//!
//! [`QueryPlanner`] (enabled via [`GedEngineBuilder::adaptive_planner`])
//! records per-tier hit rates per query shape as deterministic EWMAs —
//! counts only, never wall-clock, so recorded state is reproducible —
//! and derives three per-query decisions, every one of which is
//! **result-invariant**:
//!
//! * **Reorder** the commutative discard tiers by observed efficiency
//!   (EWMA yield over static unit cost). Only attribution and bound
//!   evaluations change; the survivor set is identical.
//! * **Skip pivot arming** for `RangeExact` once the pivot tier's
//!   observed yield is ~0 — saving the per-query query-to-pivot distance
//!   computations ([`PivotIndex::query_cost`]). Only taken under an
//!   unlimited [`GedEngineBuilder::verify_budget`], where the engine
//!   docs prove the armed and unarmed exact plans answer identically; a
//!   finite budget could shift candidates between `matches` and
//!   `budget_exhausted`, so the planner never skips there.
//! * **Collapse verification** when a candidate's admissible interval is
//!   already tight (`lb == ub`): the clamp `max(prediction, lb).min(ub)`
//!   equals `lb` for *any* prediction, so the solver call (top-k/range)
//!   or the certificate-recovery search (exact range, unlimited budget
//!   only) is skipped and the bound is emitted directly.
//!
//! Because every decision is result-invariant, answers are bit-identical
//! to the static plan for *any* planner state — the EWMAs may evolve
//! nondeterministically under concurrent queries, yet no interleaving
//! can change an answer, only the work spent producing it
//! (property-tested in `tests/planner.rs`). [`SearchStats`] /
//! [`ExactSearchStats`] totals still close; per-tier *attribution* may
//! shift with the reordered tiers.
//!
//! [`GedEngine::explain`] reports the decision the planner would take
//! for a shape right now, plus its cumulative savings counters.
//!
//! [`GedEngineBuilder::adaptive_planner`]: crate::engine::GedEngineBuilder::adaptive_planner
//! [`GedEngineBuilder::verify_budget`]: crate::engine::GedEngineBuilder::verify_budget
//! [`PivotIndex::query_cost`]: ged_graph::PivotIndex::query_cost

use crate::engine::{
    ensure_nonempty, ensure_sharded_store_valid, ensure_store_valid, Deadline, DistanceMatrix,
    ExactNeighbor, GedEngine, JoinPair, JoinResult, Neighbor, RangeExactResult, SearchResult,
    SearchStats, UndecidedCandidate, UndecidedPair,
};
use crate::error::GedError;
use crate::lower_bound::{degree_sequence_lower_bound_sig, label_set_lower_bound_sig};
use crate::method::MethodKind;
use crate::pairs::{structural_cmp, GedPair};
use crate::search::{
    pivot_distance_in, prune_or_verify_with_pivot_in, CandidateOutcome, ExactSearchStats, JoinStats,
};
use crate::solver::{GedSolver, SolverScratch};
use crate::workspace::GedWorkspace;
use ged_graph::{
    range_distance, Graph, GraphId, GraphSignature, GraphStore, PivotDistance, PivotIndex, Shard,
    ShardedStore,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The stages of the unified filter–verify pipeline, in static plan
/// order. See the [module docs](self) for which stages apply to which
/// query shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterTier {
    /// The shard-aggregate lower bound: discards a whole [`Shard`] before
    /// any per-graph metadata is read. Vacuous (bound 0) for flat stores.
    /// Joins extend it to unit×unit *blocks*
    /// ([`Shard::block_lower_bound`]): one range-gap comparison discards
    /// every pair of a block at once.
    Shard,
    /// The size-difference band bound of the join plans: candidates
    /// stream in signature-sort (node-count) order, so `|n_a − n_b| > τ`
    /// discards a whole contiguous band of partners by arithmetic —
    /// structural and always on, never part of the commutative reorder
    /// set (it is what *generates* the per-pair candidate stream).
    Band,
    /// The label-set lower bound (signature-fed, commutative discard).
    Label,
    /// The degree-sequence lower bound (signature-fed, commutative
    /// discard).
    Degree,
    /// The pivot-table triangle-inequality lower bound (commutative
    /// discard; vacuous without an armed pivot index).
    PivotLb,
    /// The pivot-table upper bound *accept*: `ub ≤ τ` certifies
    /// membership before any solver or search runs.
    PivotUbAccept,
    /// The feasible GEDGW upper bound *accept* of the exact pipeline.
    GedgwUbAccept,
    /// The verify stage: solver estimation (top-k/range) or τ-bounded
    /// exact search (exact range).
    Verify,
}

impl FilterTier {
    /// The tier's stable wire/display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FilterTier::Shard => "shard",
            FilterTier::Band => "band",
            FilterTier::Label => "label",
            FilterTier::Degree => "degree",
            FilterTier::PivotLb => "pivot_lb",
            FilterTier::PivotUbAccept => "pivot_ub_accept",
            FilterTier::GedgwUbAccept => "gedgw_ub_accept",
            FilterTier::Verify => "verify",
        }
    }

    /// Deterministic structural cost weight of evaluating this tier for
    /// one candidate, in arbitrary units (a machine-independent stand-in
    /// for latency, so planner decisions are reproducible): the label
    /// bound is one sorted-multiset sweep, the degree bound sweeps both
    /// degree sequences, and the pivot bound scans a `p`-entry table row.
    #[must_use]
    pub fn unit_cost(self) -> f64 {
        match self {
            FilterTier::Shard => 0.0,
            // One integer comparison amortized over a whole pruned band.
            FilterTier::Band => 0.1,
            FilterTier::Label => 1.0,
            FilterTier::Degree => 1.5,
            FilterTier::PivotLb => 2.0,
            FilterTier::PivotUbAccept | FilterTier::GedgwUbAccept => 4.0,
            FilterTier::Verify => 100.0,
        }
    }
}

/// The store-level query shapes the planner tracks independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryShape {
    /// `top_k` / `top_k_sharded`.
    TopK,
    /// `range` / `range_sharded`.
    Range,
    /// `range_exact` / `range_exact_sharded`.
    RangeExact,
    /// `distance_matrix` / `distance_matrix_sharded` (verify-only: every
    /// pair must be computed, so there is nothing to plan).
    Matrix,
    /// `self_join` / `join` (flat or sharded): dataset-scale all-pairs
    /// similarity joins through the block/band/per-pair tier stack.
    Join,
}

impl QueryShape {
    /// The shape's stable wire/display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueryShape::TopK => "top_k",
            QueryShape::Range => "range",
            QueryShape::RangeExact => "range_exact",
            QueryShape::Matrix => "matrix",
            QueryShape::Join => "join",
        }
    }

    /// Parses a wire/display name back into a shape.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "top_k" => Some(QueryShape::TopK),
            "range" => Some(QueryShape::Range),
            "range_exact" => Some(QueryShape::RangeExact),
            "matrix" => Some(QueryShape::Matrix),
            "join" => Some(QueryShape::Join),
            _ => None,
        }
    }

    /// Index into the planner's per-shape slots (`Matrix` is unplanned).
    fn slot(self) -> Option<usize> {
        match self {
            QueryShape::TopK => Some(0),
            QueryShape::Range => Some(1),
            QueryShape::RangeExact => Some(2),
            QueryShape::Matrix => None,
            QueryShape::Join => Some(3),
        }
    }

    /// The static order of the commutative discard tiers for this shape —
    /// exactly the order the pre-planner plans hard-coded: approximate
    /// search checks the cheap signature bounds before the pivot table;
    /// exact search leads with the pivot bound (one table-row scan and,
    /// with good pivots, the strictest of the three).
    fn static_order(self) -> [FilterTier; 3] {
        match self {
            QueryShape::RangeExact | QueryShape::Join => {
                [FilterTier::PivotLb, FilterTier::Label, FilterTier::Degree]
            }
            _ => [FilterTier::Label, FilterTier::Degree, FilterTier::PivotLb],
        }
    }
}

/// Queries before the planner trusts its EWMAs enough to deviate from
/// the static order.
const MIN_OBSERVATIONS: u64 = 3;

/// EWMA smoothing factor for per-tier yield shares.
const EWMA_ALPHA: f64 = 0.25;

/// A pivot-tier yield share below this is "never fires" for the
/// arming-skip decision.
const SKIP_EPSILON: f64 = 1e-3;

/// Per-shape planner state: how often each discard tier fired, as EWMA
/// shares of the candidate population.
#[derive(Clone, Copy, Debug, Default)]
struct ShapeStats {
    observations: u64,
    /// EWMA share of candidates discarded per commutative tier, indexed
    /// `[label, degree, pivot_lb]`.
    discard_share: [f64; 3],
    /// EWMA share of candidates the pivot tier decided either way
    /// (discarded by its lower bound *or* accepted by its upper bound) —
    /// the arming-skip signal: if this is ~0 the per-query arming cost
    /// buys nothing.
    pivot_share: f64,
}

/// What one executed query reports back to the planner.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct TierObservation {
    pub candidates: usize,
    pub label: usize,
    pub degree: usize,
    pub pivot_pruned: usize,
    pub pivot_accepted: usize,
    pub solver_calls_saved: u64,
    pub searches_saved: u64,
    pub pivot_arms_saved: u64,
}

/// The per-query plan the (static or adaptive) planner settled on.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PlanDecision {
    /// Evaluation order of the commutative discard tiers.
    pub order: [FilterTier; 3],
    /// Whether to arm the pivot tier (compute per-query query-to-pivot
    /// distances). Only ever `false` for `RangeExact` under an unlimited
    /// verify budget.
    pub arm_pivots: bool,
    /// Whether to collapse verification when `lb == ub` (see the
    /// [module docs](self)); `false` exactly reproduces the static
    /// plans' work profile.
    pub collapse_verify: bool,
}

impl PlanDecision {
    /// The decision the pre-planner engine always took.
    fn static_for(shape: QueryShape) -> Self {
        PlanDecision {
            order: shape.static_order(),
            arm_pivots: true,
            collapse_verify: false,
        }
    }

    /// The full tier order this decision runs `shape` through, for
    /// [`PlanExplanation`].
    fn tier_names(&self, shape: QueryShape) -> Vec<&'static str> {
        let mut tiers = vec![FilterTier::Shard.name()];
        match shape {
            QueryShape::Matrix => return vec![FilterTier::Verify.name()],
            QueryShape::TopK => {
                tiers.extend(self.order.iter().map(|t| t.name()));
            }
            QueryShape::Range => {
                tiers.extend(self.order.iter().map(|t| t.name()));
                tiers.push(FilterTier::PivotUbAccept.name());
            }
            QueryShape::RangeExact | QueryShape::Join => {
                if shape == QueryShape::Join {
                    tiers.push(FilterTier::Band.name());
                }
                for tier in &self.order {
                    if self.arm_pivots || *tier != FilterTier::PivotLb {
                        tiers.push(tier.name());
                    }
                }
                if self.arm_pivots {
                    tiers.push(FilterTier::PivotUbAccept.name());
                }
                tiers.push(FilterTier::GedgwUbAccept.name());
            }
        }
        tiers.push(FilterTier::Verify.name());
        tiers
    }

    /// The tiers this decision skips entirely, for [`PlanExplanation`].
    fn skipped_names(&self, shape: QueryShape) -> Vec<&'static str> {
        let exact = matches!(shape, QueryShape::RangeExact | QueryShape::Join);
        if exact && !self.arm_pivots {
            vec![FilterTier::PivotLb.name(), FilterTier::PivotUbAccept.name()]
        } else {
            Vec::new()
        }
    }
}

/// The adaptive planner a [`GedEngine`] owns when
/// [`GedEngineBuilder::adaptive_planner`](crate::engine::GedEngineBuilder::adaptive_planner)
/// is on: per-shape, per-tier EWMA hit rates plus cumulative savings
/// counters. All state is derived from deterministic per-query counts —
/// never wall-clock — and every decision it makes is result-invariant
/// (see the [module docs](self)).
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryPlanner {
    /// `[TopK, Range, RangeExact, Join]` slots.
    shapes: [ShapeStats; 4],
    solver_calls_saved: u64,
    searches_saved: u64,
    pivot_arms_saved: u64,
}

impl QueryPlanner {
    pub(crate) fn new() -> Self {
        QueryPlanner::default()
    }

    /// How many queries of `shape` have been observed.
    #[must_use]
    pub fn observations(&self, shape: QueryShape) -> u64 {
        shape
            .slot()
            .map_or(0, |slot| self.shapes[slot].observations)
    }

    /// Solver invocations skipped by collapsed (`lb == ub`) verification.
    #[must_use]
    pub fn solver_calls_saved(&self) -> u64 {
        self.solver_calls_saved
    }

    /// Bounded exact searches skipped by collapsed certificate recovery.
    #[must_use]
    pub fn searches_saved(&self) -> u64 {
        self.searches_saved
    }

    /// Query-to-pivot distance computations skipped by un-armed pivot
    /// tiers.
    #[must_use]
    pub fn pivot_arms_saved(&self) -> u64 {
        self.pivot_arms_saved
    }

    pub(crate) fn observe(&mut self, shape: QueryShape, obs: TierObservation) {
        self.solver_calls_saved += obs.solver_calls_saved;
        self.searches_saved += obs.searches_saved;
        self.pivot_arms_saved += obs.pivot_arms_saved;
        let Some(slot) = shape.slot() else { return };
        let stats = &mut self.shapes[slot];
        stats.observations += 1;
        if obs.candidates == 0 {
            return;
        }
        let n = obs.candidates as f64;
        let fired = [obs.label, obs.degree, obs.pivot_pruned];
        for (share, count) in stats.discard_share.iter_mut().zip(fired) {
            *share += EWMA_ALPHA * (count as f64 / n - *share);
        }
        let pivot_total = (obs.pivot_pruned + obs.pivot_accepted) as f64 / n;
        stats.pivot_share += EWMA_ALPHA * (pivot_total - stats.pivot_share);
    }

    pub(crate) fn decision(&self, shape: QueryShape, budget_unlimited: bool) -> PlanDecision {
        let mut decision = PlanDecision::static_for(shape);
        // Collapsing lb == ub verification is result-invariant for every
        // prediction (the clamp pins the output), so it needs no warmup.
        decision.collapse_verify = true;
        let Some(slot) = shape.slot() else {
            return decision;
        };
        let stats = &self.shapes[slot];
        if stats.observations < MIN_OBSERVATIONS {
            return decision;
        }
        // Reorder the commutative discards by observed efficiency (EWMA
        // yield per unit cost), descending. The sort is stable, so equal
        // efficiencies keep the static order.
        let share_of = |tier: FilterTier| match tier {
            FilterTier::Label => stats.discard_share[0],
            FilterTier::Degree => stats.discard_share[1],
            _ => stats.discard_share[2],
        };
        decision.order.sort_by(|&a, &b| {
            let ea = share_of(a) / a.unit_cost();
            let eb = share_of(b) / b.unit_cost();
            eb.partial_cmp(&ea).unwrap_or(std::cmp::Ordering::Equal)
        });
        let exact_shape = matches!(shape, QueryShape::RangeExact | QueryShape::Join);
        if exact_shape && budget_unlimited && stats.pivot_share < SKIP_EPSILON {
            // The pivot tier has not been earning its per-query arming
            // cost. Under an unlimited budget the armed and unarmed
            // exact plans are provably bit-identical (engine docs), so
            // skipping is safe; under a finite budget it is not taken.
            decision.arm_pivots = false;
        }
        decision
    }
}

/// The decision [`GedEngine::explain`] reports: the tier order the
/// (static or adaptive) planner would run a query shape through right
/// now, plus the planner's cumulative savings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanExplanation {
    /// The query shape explained.
    pub shape: QueryShape,
    /// Whether the adaptive planner is enabled on this engine.
    pub adaptive: bool,
    /// The tier order a query of this shape would run through, first to
    /// last ([`FilterTier::name`] values).
    pub tiers: Vec<&'static str>,
    /// Tiers the current decision skips entirely (empty for the static
    /// planner).
    pub skipped: Vec<&'static str>,
    /// Queries of this shape observed so far (0 without the planner).
    pub observations: u64,
    /// Solver invocations skipped so far, across all shapes.
    pub solver_calls_saved: u64,
    /// Bounded exact searches skipped so far, across all shapes.
    pub searches_saved: u64,
    /// Query-to-pivot distance computations skipped so far.
    pub pivot_arms_saved: u64,
}

/// Cumulative savings of an engine's adaptive planner (see
/// [`GedEngine::planner_counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerCounters {
    /// Solver invocations skipped by collapsed verification.
    pub solver_calls_saved: u64,
    /// Bounded exact searches skipped by collapsed certificate recovery.
    pub searches_saved: u64,
    /// Query-to-pivot distance computations skipped by un-armed pivot
    /// tiers.
    pub pivot_arms_saved: u64,
}

/// One filter-phase survivor: a candidate id plus its per-tier lower
/// bounds (label-set, combined signature, combined-with-pivot) and the
/// pivot-table upper bound (`usize::MAX` when no pivot index is active).
#[derive(Clone, Copy)]
pub(crate) struct Candidate {
    id: GraphId,
    lb_label: usize,
    lb_sig: usize,
    lb: usize,
    ub: usize,
}

/// How many candidates each verification round hands to the parallel
/// runner between top-k threshold re-checks. Machine-independent so
/// [`SearchStats`] are reproducible everywhere.
pub(crate) const VERIFY_BLOCK: usize = 16;

/// An exact-range filter survivor: the id, the pivot-ub membership
/// certificate (if any), and — adaptive planner only — the collapsed
/// exact distance when the pivot interval was already tight.
struct ExactSurvivor {
    id: GraphId,
    certificate: Option<usize>,
    collapsed_ged: Option<usize>,
}

/// One unit of a join plan: a flat store, or one shard of a sharded
/// store, carrying the aggregate node/edge ranges the block tier
/// compares and its entries pre-sorted in signature band order (the
/// band tier's input).
struct JoinUnit<'s> {
    store: &'s GraphStore,
    nodes: (usize, usize),
    edges: (usize, usize),
    pivot: JoinPivot<'s>,
    /// `(id, graph, signature)` ascending by node count (id tie-break) —
    /// [`GraphStore::entries_by_size`]'s band order.
    entries: Vec<(GraphId, &'s Graph, &'s GraphSignature)>,
}

/// Where a join unit's pivot tier reads from (`None` = tier vacuous).
enum JoinPivot<'s> {
    None,
    /// The engine's flat-store index, already synced — its
    /// [`PivotIndex::member_bounds`] rows serve every same-unit pair
    /// with zero per-row arming (the build *is* the arming).
    Flat(Arc<PivotIndex>),
    /// A shard's own pivot block (sharded self-join diagonal, or the
    /// right side of a cross-store join).
    Shard(&'s PivotIndex),
}

impl JoinUnit<'_> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn index(&self) -> Option<&PivotIndex> {
        match &self.pivot {
            JoinPivot::None => None,
            JoinPivot::Flat(ix) => Some(ix),
            JoinPivot::Shard(ix) => Some(ix),
        }
    }

    /// The block-tier lower bound between this unit and `other`: the
    /// node-range gap plus the edge-range gap — identical to
    /// [`Shard::block_lower_bound`], generalized to flat units.
    /// Admissible for every member pair, and 0 whenever the ranges
    /// overlap — in particular for a unit against itself, so diagonal
    /// blocks are never block-pruned.
    fn block_bound(&self, other: &JoinUnit<'_>) -> usize {
        range_distance(self.nodes, other.nodes) + range_distance(self.edges, other.edges)
    }
}

/// A join-filter survivor: the reported id pair (`a < b` for a
/// self-join; left/right for a cross-store join), the canonical
/// verification orientation as graph refs, the pivot-ub membership
/// certificate, and — adaptive planner only — the collapsed exact
/// distance when the pivot interval was already tight.
struct JoinSurvivor<'s> {
    a: GraphId,
    b: GraphId,
    qa: &'s Graph,
    qb: &'s Graph,
    certificate: Option<usize>,
    collapsed_ged: Option<usize>,
}

/// Which kind of unit×unit block a cross-block filter call works.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CrossKind {
    /// Off-diagonal block of a (sharded) self-join: both ids live in one
    /// store, so pairs canonicalize to ascending id, and the pivot tier
    /// stays vacuous — the two shards own disjoint pivot blocks, and
    /// arming one shard's block per foreign row would cost more
    /// distance computations than the tier saves.
    SameStore,
    /// A cross-store block: `(left id, right id)` pairs as-is; the right
    /// unit's pivot block is armed lazily, once per left row.
    TwoStores,
}

/// How one pair fared against the commutative discard tiers.
enum PairVerdict {
    Discarded,
    Survived {
        certificate: Option<usize>,
        collapsed_ged: Option<usize>,
    },
}

/// Runs one candidate pair through the commutative discard tiers in
/// `decision.order`, lazily — each bound is computed at most once, and
/// only when the order reaches its tier — then forces the pivot bounds
/// for the survivor's certificate (`ub ≤ τ`, real bounds only) and, with
/// `collapse`, the pinned distance of a tight `lb == ub` interval.
fn filter_join_pair(
    decision: &PlanDecision,
    collapse: bool,
    sa: &GraphSignature,
    sb: &GraphSignature,
    pivot: &mut dyn FnMut() -> (usize, usize),
    tau: usize,
    discards: &mut DiscardCounts,
) -> PairVerdict {
    let mut label = None;
    let mut degree = None;
    let mut pv: Option<(usize, usize)> = None;
    for tier in decision.order {
        let lb = match tier {
            FilterTier::Label => *label.get_or_insert_with(|| label_set_lower_bound_sig(sa, sb)),
            FilterTier::Degree => {
                *degree.get_or_insert_with(|| degree_sequence_lower_bound_sig(sa, sb))
            }
            _ => pv.get_or_insert_with(&mut *pivot).0,
        };
        if lb > tau {
            discards.record(tier);
            return PairVerdict::Discarded;
        }
    }
    // Forcing the pivot bounds here mirrors the exact-range plan: a
    // surviving pair always knows its `[lb, ub]` interval, which is what
    // the certificate and the collapse read. The `usize::MAX` guard keeps
    // a vacuous no-pivot bound from counting as a certificate when τ
    // itself saturates (see `plan_range_exact`).
    let (lb_pivot, ub_pivot) = *pv.get_or_insert_with(&mut *pivot);
    let certificate = (ub_pivot != usize::MAX && ub_pivot <= tau).then_some(ub_pivot);
    let collapsed_ged = if collapse {
        certificate.filter(|&ub| ub == lb_pivot)
    } else {
        None
    };
    PairVerdict::Survived {
        certificate,
        collapsed_ged,
    }
}

/// The canonical verification orientation of a join pair — exactly
/// [`GedPair::new`]'s rule (node count, then the total structural order
/// for equal sizes) on references. Verifying every survivor in canonical
/// orientation makes the outcome a deterministic function of the pair's
/// *structure* alone, which is what lets structurally identical pairs
/// share one verification (the `cache_hits` tier) without any risk of
/// orientation-dependent divergence under a finite budget.
fn canonical_refs<'g>(ga: &'g Graph, gb: &'g Graph) -> (&'g Graph, &'g Graph) {
    use std::cmp::Ordering;
    let keep = match ga.num_nodes().cmp(&gb.num_nodes()) {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => structural_cmp(ga, gb) != Ordering::Greater,
    };
    if keep {
        (ga, gb)
    } else {
        (gb, ga)
    }
}

/// Structural fingerprint of a canonically oriented pair (same scheme as
/// the engine's prediction cache). Collisions are harmless: the dedup
/// tier exact-compares graphs within each bucket.
fn join_pair_fingerprint(qa: &Graph, qb: &Graph) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    qa.hash(&mut h);
    qb.hash(&mut h);
    h.finish()
}

/// Filters one unit's *diagonal* self-join block: all unordered
/// same-unit pairs, streamed in band order. The pivot tier reads the
/// unit's own index rows via [`PivotIndex::member_bounds`] — no per-row
/// distance computations at all.
#[allow(clippy::too_many_arguments)]
fn filter_self_block<'s>(
    unit: &JoinUnit<'s>,
    tau: usize,
    decision: &PlanDecision,
    collapse: bool,
    discards: &mut DiscardCounts,
    stats: &mut JoinStats,
    searches_saved: &mut u64,
    survivors: &mut Vec<JoinSurvivor<'s>>,
) {
    let entries = &unit.entries;
    for (i, &(ia, ga, sa)) in entries.iter().enumerate() {
        for (j, &(ib, gb, sb)) in entries.iter().enumerate().skip(i + 1) {
            // Band tier: entries ascend by node count, so the first
            // partner past the size-difference bound proves every later
            // one is past it too — the rest of the row is discarded by
            // arithmetic.
            if sb.num_nodes() - sa.num_nodes() > tau {
                stats.pruned_band += entries.len() - j;
                break;
            }
            let mut pivot = || {
                unit.index()
                    .and_then(|ix| ix.member_bounds(ia, ib))
                    .unwrap_or((0, usize::MAX))
            };
            match filter_join_pair(decision, collapse, sa, sb, &mut pivot, tau, discards) {
                PairVerdict::Discarded => {}
                PairVerdict::Survived {
                    certificate,
                    collapsed_ged,
                } => {
                    if collapsed_ged.is_some() {
                        *searches_saved += 1;
                    }
                    // One store: ascending-id orientation is canonical.
                    let (a, b) = if ia <= ib { (ia, ib) } else { (ib, ia) };
                    let (qa, qb) = canonical_refs(ga, gb);
                    survivors.push(JoinSurvivor {
                        a,
                        b,
                        qa,
                        qb,
                        certificate,
                        collapsed_ged,
                    });
                }
            }
        }
    }
}

/// Either store kind, as the plans see it. Flat stores become the
/// one-shard special case of sharded ones in [`GedEngine::shard_units`].
#[derive(Clone, Copy)]
pub(crate) enum PlanStore<'a> {
    Flat(&'a GraphStore),
    Sharded(&'a ShardedStore),
}

impl<'a> PlanStore<'a> {
    fn len(self) -> usize {
        match self {
            PlanStore::Flat(s) => s.len(),
            PlanStore::Sharded(s) => s.len(),
        }
    }

    fn graph(self, id: GraphId) -> Option<&'a Graph> {
        match self {
            PlanStore::Flat(s) => s.get(id),
            PlanStore::Sharded(s) => s.get(id),
        }
    }

    fn validate(self) -> Result<(), GedError> {
        match self {
            PlanStore::Flat(s) => ensure_store_valid(s),
            PlanStore::Sharded(s) => ensure_sharded_store_valid(s),
        }
    }

    /// Every graph in globally ascending id order (the matrix kernel's
    /// input order).
    fn graphs(self) -> Vec<(GraphId, &'a Graph)> {
        match self {
            PlanStore::Flat(s) => s.iter().collect(),
            PlanStore::Sharded(s) => s.iter().collect(),
        }
    }
}

/// The per-unit pivot state: a flat store's engine-cached bounds map, or
/// a shard's own pivot block plus this query's distances to it. `None`
/// payloads mean the tier is disabled/un-armed and bounds are vacuous.
enum UnitPivot<'s> {
    Flat(Option<BTreeMap<GraphId, (usize, usize)>>),
    Shard {
        shard: &'s Shard,
        qdists: Option<Vec<PivotDistance>>,
    },
}

/// One shard of the unified plan: the backing [`GraphStore`], the
/// aggregate lower bound the shard tier compares against the threshold
/// (0 for the flat one-shard case, so it can never fire there), and the
/// pivot state per-candidate bounds are read from.
pub(crate) struct ShardUnit<'s> {
    store: &'s GraphStore,
    lb: usize,
    bucket: usize,
    pivot: UnitPivot<'s>,
}

impl<'s> ShardUnit<'s> {
    fn len(&self) -> usize {
        self.store.len()
    }

    /// The pivot `[lb, ub]` bounds of `id`, or the vacuous
    /// `(0, usize::MAX)` when the tier is off — uniform across both
    /// store kinds so every plan treats bounds as unconditionally
    /// present.
    fn pivot_bounds_for(&self, id: GraphId) -> (usize, usize) {
        match &self.pivot {
            UnitPivot::Flat(bounds) => bounds
                .as_ref()
                .and_then(|m| m.get(&id).copied())
                .unwrap_or((0, usize::MAX)),
            UnitPivot::Shard { shard, qdists } => match qdists {
                Some(qdists) => shard
                    .pivot_index()
                    .expect("qdists imply a synced index")
                    .bounds(qdists, id)
                    .expect("index is synced with the shard store"),
                None => (0, usize::MAX),
            },
        }
    }
}

/// Lazily evaluated per-candidate tier bounds: each bound is computed at
/// most once, and only when the evaluation order actually reaches its
/// tier — so a reordered plan spends exactly the bound computations its
/// order implies, and the static order reproduces the legacy plans'
/// short-circuit work profile.
struct LazyTiers<'a, 's> {
    unit: &'a ShardUnit<'s>,
    qsig: &'a GraphSignature,
    sig: &'a GraphSignature,
    id: GraphId,
    label: Option<usize>,
    degree: Option<usize>,
    pivot: Option<(usize, usize)>,
}

impl<'a, 's> LazyTiers<'a, 's> {
    fn new(
        unit: &'a ShardUnit<'s>,
        qsig: &'a GraphSignature,
        id: GraphId,
        sig: &'a GraphSignature,
    ) -> Self {
        LazyTiers {
            unit,
            qsig,
            sig,
            id,
            label: None,
            degree: None,
            pivot: None,
        }
    }

    fn label(&mut self) -> usize {
        *self
            .label
            .get_or_insert_with(|| label_set_lower_bound_sig(self.qsig, self.sig))
    }

    fn degree(&mut self) -> usize {
        *self
            .degree
            .get_or_insert_with(|| degree_sequence_lower_bound_sig(self.qsig, self.sig))
    }

    fn pivot(&mut self) -> (usize, usize) {
        let unit = self.unit;
        let id = self.id;
        *self.pivot.get_or_insert_with(|| unit.pivot_bounds_for(id))
    }

    /// This candidate's lower bound at one commutative discard tier.
    fn lower_bound(&mut self, tier: FilterTier) -> usize {
        match tier {
            FilterTier::Label => self.label(),
            FilterTier::Degree => self.degree(),
            _ => self.pivot().0,
        }
    }

    /// Forces every bound and assembles the full [`Candidate`] record
    /// (what the verify phase's clamp and the top-k sort need).
    fn candidate(&mut self) -> Candidate {
        let lb_label = self.label();
        let lb_sig = lb_label.max(self.degree());
        let (lb_pivot, ub) = self.pivot();
        Candidate {
            id: self.id,
            lb_label,
            lb_sig,
            lb: lb_sig.max(lb_pivot),
            ub,
        }
    }
}

/// Per-discard-tier fire counts of one query, accumulated into both the
/// [`SearchStats`]/[`ExactSearchStats`] attribution and the planner's
/// observation.
#[derive(Default, Clone, Copy)]
struct DiscardCounts {
    label: usize,
    degree: usize,
    pivot: usize,
}

impl DiscardCounts {
    fn record(&mut self, tier: FilterTier) {
        match tier {
            FilterTier::Label => self.label += 1,
            FilterTier::Degree => self.degree += 1,
            _ => self.pivot += 1,
        }
    }
}

impl GedEngine {
    /// The per-query decision: static when the planner is off, adaptive
    /// otherwise.
    fn plan_decision(&self, shape: QueryShape) -> PlanDecision {
        match &self.planner {
            None => PlanDecision::static_for(shape),
            Some(p) => p
                .lock()
                .expect("planner lock")
                .decision(shape, self.verify_budget == usize::MAX),
        }
    }

    /// Feeds one executed query's tier counts back into the planner (a
    /// no-op when the planner is off).
    fn plan_observe(&self, shape: QueryShape, obs: TierObservation) {
        if let Some(p) = &self.planner {
            p.lock().expect("planner lock").observe(shape, obs);
        }
    }

    /// Whether the adaptive planner is enabled.
    #[must_use]
    pub fn planner_enabled(&self) -> bool {
        self.planner.is_some()
    }

    /// The planner's cumulative savings counters, or `None` when the
    /// adaptive planner is off.
    #[must_use]
    pub fn planner_counters(&self) -> Option<PlannerCounters> {
        self.planner.as_ref().map(|p| {
            let p = p.lock().expect("planner lock");
            PlannerCounters {
                solver_calls_saved: p.solver_calls_saved(),
                searches_saved: p.searches_saved(),
                pivot_arms_saved: p.pivot_arms_saved(),
            }
        })
    }

    /// Explains the plan a query of `shape` would run right now: the
    /// tier order, any skipped tiers, and the planner's observation and
    /// savings counters. With the planner off this is the static plan
    /// (and the counters are zero).
    #[must_use]
    pub fn explain(&self, shape: QueryShape) -> PlanExplanation {
        let decision = self.plan_decision(shape);
        let (observations, counters) = match &self.planner {
            Some(p) => {
                let p = p.lock().expect("planner lock");
                (
                    p.observations(shape),
                    PlannerCounters {
                        solver_calls_saved: p.solver_calls_saved(),
                        searches_saved: p.searches_saved(),
                        pivot_arms_saved: p.pivot_arms_saved(),
                    },
                )
            }
            None => (0, PlannerCounters::default()),
        };
        PlanExplanation {
            shape,
            adaptive: self.planner.is_some(),
            tiers: decision.tier_names(shape),
            skipped: decision.skipped_names(shape),
            observations,
            solver_calls_saved: counters.solver_calls_saved,
            searches_saved: counters.searches_saved,
            pivot_arms_saved: counters.pivot_arms_saved,
        }
    }

    /// Decomposes either store kind into the unified plan's
    /// [`ShardUnit`]s, armed or not, sorted ascending by aggregate bound
    /// (bucket as the deterministic tie-break) so the most promising
    /// units are visited first. A flat store is one unit with bound 0 —
    /// its shard tier can never fire and `pruned_shard` stays 0, exactly
    /// the legacy flat plans.
    ///
    /// `arm_pivots: false` (planner, `RangeExact` only) skips the
    /// per-query pivot arming entirely: no query-to-pivot distances are
    /// computed, per-candidate bounds are vacuous, and sharded aggregate
    /// bounds fall back to signatures alone.
    fn shard_units<'s>(
        &self,
        query: &Graph,
        qsig: &GraphSignature,
        store: PlanStore<'s>,
        arm_pivots: bool,
    ) -> Vec<ShardUnit<'s>> {
        match store {
            PlanStore::Flat(flat) => {
                let pivot = if arm_pivots {
                    self.pivot_bounds(query, flat)
                } else {
                    None
                };
                vec![ShardUnit {
                    store: flat,
                    lb: 0,
                    bucket: 0,
                    pivot: UnitPivot::Flat(pivot),
                }]
            }
            PlanStore::Sharded(sharded) => {
                let pivots_on = arm_pivots && sharded.pivots_ready(self.pivot_target);
                let mut ws = GedWorkspace::new();
                let mut oracle =
                    |a: &Graph, b: &Graph| pivot_distance_in(a, b, self.verify_budget, &mut ws);
                let mut units: Vec<ShardUnit<'s>> = sharded
                    .shards()
                    .map(|shard| {
                        let mut lb = shard.signature_lower_bound(qsig);
                        let qdists = if pivots_on {
                            let index = shard.pivot_index().expect("pivots_ready");
                            let qd = index.query_distances(shard.store(), query, &mut oracle);
                            lb = lb.max(shard.pivot_lower_bound(&qd));
                            Some(qd)
                        } else {
                            None
                        };
                        ShardUnit {
                            store: shard.store(),
                            lb,
                            bucket: shard.bucket(),
                            pivot: UnitPivot::Shard { shard, qdists },
                        }
                    })
                    .collect();
                units.sort_by_key(|u| (u.lb, u.bucket));
                units
            }
        }
    }

    /// How many query-to-pivot distance computations an un-armed query
    /// skipped — [`PivotIndex::query_cost`](ged_graph::PivotIndex::query_cost)
    /// summed over the store's pivot blocks (the flat store's engine-side
    /// index is deliberately not synced here — syncing is the cost being
    /// skipped — so its target stands in for its size).
    fn pivot_arm_cost(&self, store: PlanStore<'_>) -> u64 {
        match store {
            PlanStore::Flat(flat) => self.pivot_target.min(flat.len()) as u64,
            PlanStore::Sharded(sharded) => {
                sharded.shards().map(|s| s.pivot_query_cost() as u64).sum()
            }
        }
    }

    /// The unified top-k plan (flat = one-shard case). The planner's only
    /// lever here is collapsed verification: the lb-ascending processing
    /// order already forces every bound, so tier reordering buys nothing,
    /// and skipping pivot arming would change the clamped estimates.
    pub(crate) fn plan_top_k(
        &self,
        method: MethodKind,
        query: &Graph,
        store: PlanStore<'_>,
        k: usize,
        deadline: Deadline,
    ) -> Result<SearchResult, GedError> {
        if k == 0 {
            return Err(GedError::InvalidK { what: "top-k" });
        }
        ensure_nonempty(query, "query")?;
        let solver = self.solver(method)?;
        store.validate()?;

        let decision = self.plan_decision(QueryShape::TopK);
        let qsig = GraphSignature::of(query);
        let units = self.shard_units(query, &qsig, store, true);
        let k = k.min(store.len());
        let mut stats = SearchStats {
            candidates: store.len(),
            ..SearchStats::default()
        };
        let mut best: Vec<Neighbor> = Vec::new();
        let block = k.max(VERIFY_BLOCK);
        let mut solver_calls_saved = 0u64;
        for unit in &units {
            // Shard tier: an aggregate bound over the k-th best proves
            // every member ranks after the current top k.
            if best.len() >= k && (unit.lb as f64) > best[k - 1].ged {
                stats.pruned_shard += unit.len();
                continue;
            }
            let mut candidates: Vec<Candidate> = unit
                .store
                .entries()
                .map(|(id, _, sig)| LazyTiers::new(unit, &qsig, id, sig).candidate())
                .collect();
            // Ascending lower bounds: the most promising candidates are
            // verified first, which tightens the k-th-best threshold as
            // early as possible. Sorted order also means the first
            // candidate over the threshold proves every later one is
            // over it too.
            candidates.sort_by(|a, b| a.lb.cmp(&b.lb).then(a.id.cmp(&b.id)));
            let mut i = 0;
            while i < candidates.len() {
                // Re-read the pruning threshold between rounds: it
                // tightens monotonically as verified candidates
                // accumulate.
                if best.len() >= k {
                    let kth = best[k - 1].ged;
                    if (candidates[i].lb as f64) > kth {
                        for c in &candidates[i..] {
                            if (c.lb_label as f64) > kth {
                                stats.pruned_label += 1;
                            } else if (c.lb_sig as f64) > kth {
                                stats.pruned_degree += 1;
                            } else {
                                stats.pruned_pivot += 1;
                            }
                        }
                        break;
                    }
                }
                // Cooperative checkpoint between verification rounds: a
                // top-k round is already a bounded block of solver calls.
                deadline.check()?;
                let hi = (i + block).min(candidates.len());
                let round = &candidates[i..hi];
                if decision.collapse_verify {
                    solver_calls_saved += collapsible(round);
                }
                let verified = self.verify(
                    method,
                    solver,
                    query,
                    unit.store,
                    round,
                    decision.collapse_verify,
                );
                stats.verified += verified.len();
                best.extend(verified);
                best.sort_by(|a, b| a.ged.total_cmp(&b.ged).then(a.id.cmp(&b.id)));
                i = hi;
            }
            // Bounded merge: only the current top k cross a shard
            // boundary — anything beyond rank k can never re-enter.
            best.truncate(k);
        }
        self.plan_observe(
            QueryShape::TopK,
            TierObservation {
                candidates: stats.candidates,
                label: stats.pruned_label,
                degree: stats.pruned_degree,
                pivot_pruned: stats.pruned_pivot,
                solver_calls_saved,
                ..TierObservation::default()
            },
        );
        Ok(SearchResult {
            neighbors: best,
            stats,
        })
    }

    /// The unified range plan (flat = one-shard case). The planner may
    /// reorder the commutative discard tiers and collapse `lb == ub`
    /// verification; the pivot tier stays armed because verified
    /// estimates clamp into its `[lb, ub]` interval (un-arming would
    /// change reported values, not just work).
    pub(crate) fn plan_range(
        &self,
        method: MethodKind,
        query: &Graph,
        store: PlanStore<'_>,
        tau: f64,
        deadline: Deadline,
    ) -> Result<SearchResult, GedError> {
        if tau.is_nan() {
            return Err(GedError::Config(
                "range threshold must not be NaN".to_string(),
            ));
        }
        ensure_nonempty(query, "query")?;
        let solver = self.solver(method)?;
        store.validate()?;

        let decision = self.plan_decision(QueryShape::Range);
        let qsig = GraphSignature::of(query);
        let units = self.shard_units(query, &qsig, store, true);
        let mut stats = SearchStats {
            candidates: store.len(),
            ..SearchStats::default()
        };
        let mut discards = DiscardCounts::default();
        let mut solver_calls_saved = 0u64;
        let mut neighbors: Vec<Neighbor> = Vec::new();
        for unit in &units {
            if (unit.lb as f64) > tau {
                stats.pruned_shard += unit.len();
                continue;
            }
            let mut survivors: Vec<Candidate> = Vec::new();
            'candidates: for (id, _, sig) in unit.store.entries() {
                let mut tiers = LazyTiers::new(unit, &qsig, id, sig);
                for tier in decision.order {
                    if (tiers.lower_bound(tier) as f64) > tau {
                        discards.record(tier);
                        continue 'candidates;
                    }
                }
                let c = tiers.candidate();
                if c.ub != usize::MAX && (c.ub as f64) <= tau {
                    // The pivot table proves this candidate's exact GED
                    // is within τ: membership is decided before the
                    // solver runs (the solver still supplies the
                    // reported estimate, which the ub-clamp keeps ≤ τ).
                    // The `usize::MAX` guard keeps the vacuous no-pivot
                    // bound from counting as a certificate when τ itself
                    // is unbounded.
                    stats.accepted_pivot += 1;
                }
                survivors.push(c);
            }
            if decision.collapse_verify {
                solver_calls_saved += collapsible(&survivors);
            }
            // With a deadline set, the per-unit verify batch is chunked
            // with a cooperative checkpoint between blocks (per-candidate
            // verification is independent, so chunking cannot change a
            // value).
            let verified = if deadline.is_set() {
                let mut out = Vec::with_capacity(survivors.len());
                for chunk in survivors.chunks(self.verify_block_len()) {
                    deadline.check()?;
                    out.extend(self.verify(
                        method,
                        solver,
                        query,
                        unit.store,
                        chunk,
                        decision.collapse_verify,
                    ));
                }
                out
            } else {
                self.verify(
                    method,
                    solver,
                    query,
                    unit.store,
                    &survivors,
                    decision.collapse_verify,
                )
            };
            stats.verified += verified.len();
            neighbors.extend(verified.into_iter().filter(|n| n.ged <= tau));
        }
        stats.pruned_label = discards.label;
        stats.pruned_degree = discards.degree;
        stats.pruned_pivot = discards.pivot;
        neighbors.sort_by(|a, b| a.ged.total_cmp(&b.ged).then(a.id.cmp(&b.id)));
        self.plan_observe(
            QueryShape::Range,
            TierObservation {
                candidates: stats.candidates,
                label: discards.label,
                degree: discards.degree,
                pivot_pruned: discards.pivot,
                pivot_accepted: stats.accepted_pivot,
                solver_calls_saved,
                ..TierObservation::default()
            },
        );
        Ok(SearchResult { neighbors, stats })
    }

    /// The unified exact range plan (flat = one-shard case). The planner
    /// may reorder the commutative discards, skip pivot arming once the
    /// tier's yield is ~0, and collapse certificate recovery when the
    /// pivot interval is already tight — the latter two only under an
    /// unlimited verify budget, where they are provably bit-identical.
    pub(crate) fn plan_range_exact(
        &self,
        method: MethodKind,
        query: &Graph,
        store: PlanStore<'_>,
        tau: f64,
        deadline: Deadline,
    ) -> Result<RangeExactResult, GedError> {
        if tau.is_nan() {
            return Err(GedError::Config(
                "exact range threshold must not be NaN".to_string(),
            ));
        }
        // Exact search never consults the solver; validate the method
        // anyway so `query_as(method, ..)` behaves uniformly.
        let _ = self.solver(method)?;
        ensure_nonempty(query, "query")?;
        store.validate()?;

        let mut stats = ExactSearchStats::default();
        if tau < 0.0 {
            // Every lower bound (≥ 0) exceeds a negative τ: the filter
            // tier discards the whole store.
            stats.filtered = store.len();
            return Ok(RangeExactResult {
                matches: Vec::new(),
                budget_exhausted: Vec::new(),
                stats,
            });
        }
        // GED is integral: GED ≤ τ ⟺ GED ≤ ⌊τ⌋. `+∞` (and any τ beyond
        // usize) saturates to an effectively unbounded threshold — τ is
        // only ever compared, never added, so no overflow.
        let tau = if tau.is_infinite() {
            usize::MAX
        } else {
            tau.floor() as usize
        };

        let budget_unlimited = self.verify_budget == usize::MAX;
        let decision = self.plan_decision(QueryShape::RangeExact);
        let collapse = decision.collapse_verify && budget_unlimited;
        let qsig = GraphSignature::of(query);
        let units = self.shard_units(query, &qsig, store, decision.arm_pivots);
        let pivot_arms_saved = if decision.arm_pivots {
            0
        } else {
            self.pivot_arm_cost(store)
        };

        let mut discards = DiscardCounts::default();
        let mut searches_saved = 0u64;
        let mut survivors: Vec<ExactSurvivor> = Vec::new();
        for unit in &units {
            if unit.lb > tau {
                stats.pruned_shard += unit.len();
                continue;
            }
            'candidates: for (id, _, sig) in unit.store.entries() {
                let mut tiers = LazyTiers::new(unit, &qsig, id, sig);
                for tier in decision.order {
                    if tiers.lower_bound(tier) > tau {
                        discards.record(tier);
                        continue 'candidates;
                    }
                }
                let (lb_pivot, ub_pivot) = tiers.pivot();
                // A certificate must be a *real* pivot bound: the vacuous
                // `usize::MAX` of a disabled pivot tier would otherwise
                // "certify" everything whenever τ saturates to
                // `usize::MAX`, replacing the tight GEDGW-ub recovery
                // search with an effectively unbounded one.
                let certificate = (ub_pivot != usize::MAX && ub_pivot <= tau).then_some(ub_pivot);
                // Collapsed recovery: when the pivot interval is tight
                // (lb == ub ≤ τ) and the budget is unlimited, the
                // ub-bounded recovery search can only conclude
                // `Within(ub)` — its result is pinned, so skip it.
                let collapsed_ged = if collapse {
                    certificate.filter(|&ub| ub == lb_pivot)
                } else {
                    None
                };
                if collapsed_ged.is_some() {
                    searches_saved += 1;
                }
                survivors.push(ExactSurvivor {
                    id,
                    certificate,
                    collapsed_ged,
                });
            }
        }
        stats.pruned_pivot = discards.pivot;
        stats.filtered = discards.label + discards.degree;
        // Units were visited in bound order; restore the flat plan's
        // globally ascending id order for the verify batch.
        survivors.sort_by_key(|s| s.id);

        // Prune / verify tiers: per-candidate, embarrassingly parallel,
        // deterministic — so thread count never changes the answer and
        // input (id) order is preserved. A pivot-certified candidate
        // skips the GEDGW bound and goes straight to the
        // (pivot-ub-bounded) exact-distance recovery. With a deadline
        // set the batch is chunked with a cooperative checkpoint between
        // blocks (chunking cannot change a per-candidate outcome).
        let run = |ws: &mut GedWorkspace, s: &ExactSurvivor| {
            if let Some(ged) = s.collapsed_ged {
                return CandidateOutcome::AcceptedByPivot { ged };
            }
            let cand = store
                .graph(s.id)
                .expect("survivor ids come from this store");
            prune_or_verify_with_pivot_in(query, cand, tau, self.verify_budget, s.certificate, ws)
        };
        let outcomes = if deadline.is_set() {
            let mut out = Vec::with_capacity(survivors.len());
            for chunk in survivors.chunks(self.verify_block_len()) {
                deadline.check()?;
                out.extend(self.runner.map_init(chunk, GedWorkspace::new, run));
            }
            out
        } else {
            self.runner.map_init(&survivors, GedWorkspace::new, run)
        };

        let mut matches = Vec::new();
        let mut budget_exhausted = Vec::new();
        for (s, outcome) in survivors.iter().zip(outcomes) {
            stats.record(&outcome);
            match outcome {
                crate::search::CandidateOutcome::AcceptedByPivot { ged }
                | crate::search::CandidateOutcome::AcceptedEarly { ged }
                | crate::search::CandidateOutcome::Verified { ged } => {
                    matches.push(ExactNeighbor { id: s.id, ged });
                }
                crate::search::CandidateOutcome::Rejected => {}
                crate::search::CandidateOutcome::BudgetExhausted { accepted_ub } => {
                    budget_exhausted.push(UndecidedCandidate {
                        id: s.id,
                        known_match_ub: accepted_ub,
                    });
                }
            }
        }
        debug_assert_eq!(
            stats.total(),
            store.len(),
            "every candidate lands in one tier"
        );
        self.plan_observe(
            QueryShape::RangeExact,
            TierObservation {
                candidates: store.len(),
                label: discards.label,
                degree: discards.degree,
                pivot_pruned: discards.pivot,
                pivot_accepted: stats.accepted_pivot,
                searches_saved,
                pivot_arms_saved,
                ..TierObservation::default()
            },
        );
        Ok(RangeExactResult {
            matches,
            budget_exhausted,
            stats,
        })
    }

    /// The unified matrix plan: validation plus the shared
    /// upper-triangle kernel over the globally id-ordered graph
    /// sequence, so flat and sharded matrices are bit-identical over the
    /// same graphs. (No filter tiers — every pair must be computed.)
    pub(crate) fn plan_matrix(
        &self,
        method: MethodKind,
        store: PlanStore<'_>,
        deadline: Deadline,
    ) -> Result<DistanceMatrix, GedError> {
        let solver = self.solver(method)?;
        store.validate()?;
        self.matrix_of(method, solver, store.graphs(), deadline)
    }

    /// Decomposes either store kind into the join plan's band-ordered
    /// [`JoinUnit`]s. A flat store is one unit whose aggregate ranges
    /// come from an O(n) signature sweep (its block tier can only fire
    /// against *other* units); a sharded store yields one unit per shard
    /// with the shard's maintained aggregates. `arm_pivots: false`
    /// (planner, or the left side of a cross-store join) disables the
    /// pivot tier entirely: no index syncing, no member/query bounds.
    fn join_units<'s>(&self, store: PlanStore<'s>, arm_pivots: bool) -> Vec<JoinUnit<'s>> {
        match store {
            PlanStore::Flat(flat) => {
                let entries = flat.entries_by_size();
                let mut nodes = (usize::MAX, 0);
                let mut edges = (usize::MAX, 0);
                for &(_, _, sig) in &entries {
                    nodes = (nodes.0.min(sig.num_nodes()), nodes.1.max(sig.num_nodes()));
                    edges = (edges.0.min(sig.num_edges()), edges.1.max(sig.num_edges()));
                }
                let pivot = if arm_pivots {
                    self.synced_pivot_index(flat)
                        .map_or(JoinPivot::None, JoinPivot::Flat)
                } else {
                    JoinPivot::None
                };
                vec![JoinUnit {
                    store: flat,
                    nodes,
                    edges,
                    pivot,
                    entries,
                }]
            }
            PlanStore::Sharded(sharded) => {
                let pivots_on = arm_pivots && sharded.pivots_ready(self.pivot_target);
                sharded
                    .shards()
                    .map(|shard| JoinUnit {
                        store: shard.store(),
                        nodes: (shard.min_nodes(), shard.max_nodes()),
                        edges: (shard.min_edges(), shard.max_edges()),
                        pivot: match shard.pivot_index() {
                            Some(ix) if pivots_on => JoinPivot::Shard(ix),
                            _ => JoinPivot::None,
                        },
                        entries: shard.store().entries_by_size(),
                    })
                    .collect()
            }
        }
    }

    /// Filters one off-diagonal `left-unit × right-unit` block: for each
    /// left row, the band tier narrows the right entries to the one
    /// contiguous window within the size-difference bound
    /// (`partition_point` on the band order), then the window runs the
    /// commutative per-pair tiers. `TwoStores` blocks arm the right
    /// unit's pivot block lazily — once per left row, and only if some
    /// pair of that row actually reaches the pivot tier.
    #[allow(clippy::too_many_arguments)]
    fn filter_cross_block<'s>(
        &self,
        left: &JoinUnit<'s>,
        right: &JoinUnit<'s>,
        kind: CrossKind,
        tau: usize,
        decision: &PlanDecision,
        collapse: bool,
        discards: &mut DiscardCounts,
        stats: &mut JoinStats,
        searches_saved: &mut u64,
        survivors: &mut Vec<JoinSurvivor<'s>>,
    ) {
        let mut ws = GedWorkspace::new();
        for &(ia, ga, sa) in &left.entries {
            let na = sa.num_nodes();
            let lo = right
                .entries
                .partition_point(|&(_, _, s)| s.num_nodes() < na.saturating_sub(tau));
            let hi = right
                .entries
                .partition_point(|&(_, _, s)| s.num_nodes() <= na.saturating_add(tau));
            stats.pruned_band += right.entries.len() - (hi - lo);
            let mut qdists: Option<Vec<PivotDistance>> = None;
            for &(ib, gb, sb) in &right.entries[lo..hi] {
                let mut pivot = || -> (usize, usize) {
                    match (kind, right.index()) {
                        (CrossKind::TwoStores, Some(ix)) => {
                            let budget = self.verify_budget;
                            let qd = qdists.get_or_insert_with(|| {
                                let mut oracle =
                                    |x: &Graph, y: &Graph| pivot_distance_in(x, y, budget, &mut ws);
                                ix.query_distances(right.store, ga, &mut oracle)
                            });
                            ix.bounds(qd, ib)
                                .expect("index is synced with its unit store")
                        }
                        // Same-store off-diagonal blocks keep the tier
                        // vacuous (see [`CrossKind::SameStore`]).
                        _ => (0, usize::MAX),
                    }
                };
                match filter_join_pair(decision, collapse, sa, sb, &mut pivot, tau, discards) {
                    PairVerdict::Discarded => {}
                    PairVerdict::Survived {
                        certificate,
                        collapsed_ged,
                    } => {
                        if collapsed_ged.is_some() {
                            *searches_saved += 1;
                        }
                        let (a, b) = match kind {
                            CrossKind::SameStore if ib < ia => (ib, ia),
                            _ => (ia, ib),
                        };
                        let (qa, qb) = canonical_refs(ga, gb);
                        survivors.push(JoinSurvivor {
                            a,
                            b,
                            qa,
                            qb,
                            certificate,
                            collapsed_ged,
                        });
                    }
                }
            }
        }
    }

    /// The unified self-join plan (flat = one-unit case): every
    /// unordered pair of stored graphs with exact GED ≤ τ, through the
    /// block → band → commutative-discard → dedup → verify tier stack.
    /// τ semantics follow [`crate::engine::GedQuery::SelfJoin`];
    /// [`JoinStats::total`] always closes to `n·(n−1)/2`.
    pub(crate) fn plan_self_join(
        &self,
        method: MethodKind,
        store: PlanStore<'_>,
        tau: f64,
        deadline: Deadline,
    ) -> Result<JoinResult, GedError> {
        if tau.is_nan() {
            return Err(GedError::Config(
                "join threshold must not be NaN".to_string(),
            ));
        }
        // Joins never consult the solver; validate the method anyway so
        // `query_as(method, ..)` behaves uniformly.
        let _ = self.solver(method)?;
        store.validate()?;
        let n = store.len();
        let total_pairs = n * (n - 1) / 2;
        if tau < 0.0 {
            return Ok(negative_tau_join(total_pairs));
        }
        let tau = saturate_tau(tau);
        let budget_unlimited = self.verify_budget == usize::MAX;
        let decision = self.plan_decision(QueryShape::Join);
        let collapse = decision.collapse_verify && budget_unlimited;
        let units = self.join_units(store, decision.arm_pivots);
        let pivot_arms_saved = if decision.arm_pivots {
            0
        } else {
            self.pivot_arm_cost(store)
        };

        let mut stats = JoinStats::default();
        let mut discards = DiscardCounts::default();
        let mut searches_saved = 0u64;
        let mut survivors: Vec<JoinSurvivor<'_>> = Vec::new();
        for (i, unit) in units.iter().enumerate() {
            deadline.check()?;
            // A unit's diagonal block can never be block-pruned (its
            // ranges overlap themselves, bound 0), so it goes straight
            // to the band tier.
            filter_self_block(
                unit,
                tau,
                &decision,
                collapse,
                &mut discards,
                &mut stats,
                &mut searches_saved,
                &mut survivors,
            );
            for other in &units[i + 1..] {
                deadline.check()?;
                // Block tier: one aggregate comparison discards the
                // whole shard×shard block of pairs.
                if unit.block_bound(other) > tau {
                    stats.pruned_block += unit.len() * other.len();
                    continue;
                }
                self.filter_cross_block(
                    unit,
                    other,
                    CrossKind::SameStore,
                    tau,
                    &decision,
                    collapse,
                    &mut discards,
                    &mut stats,
                    &mut searches_saved,
                    &mut survivors,
                );
            }
        }
        let result = self.verify_join(tau, deadline, survivors, stats, discards, total_pairs)?;
        self.plan_observe(
            QueryShape::Join,
            TierObservation {
                candidates: total_pairs,
                label: discards.label,
                degree: discards.degree,
                pivot_pruned: discards.pivot,
                pivot_accepted: result.stats.accepted_pivot,
                searches_saved,
                pivot_arms_saved,
                ..TierObservation::default()
            },
        );
        Ok(result)
    }

    /// The unified cross-store join plan: every `(a, b)` pair with `a`
    /// from `left` and `b` from `right` and exact GED ≤ τ — the same
    /// tier stack as [`Self::plan_self_join`] over the
    /// `left-unit × right-unit` block grid. Only the right side arms
    /// pivots (lazily, once per left row per unit). `join(s, s)` is the
    /// *ordered* product — all `n·m` pairs including the diagonal;
    /// symmetric duplicates resolve through the dedup tier as
    /// `cache_hits`. [`JoinStats::total`] always closes to `n·m`.
    pub(crate) fn plan_join<'s>(
        &self,
        method: MethodKind,
        left: PlanStore<'s>,
        right: PlanStore<'s>,
        tau: f64,
        deadline: Deadline,
    ) -> Result<JoinResult, GedError> {
        if tau.is_nan() {
            return Err(GedError::Config(
                "join threshold must not be NaN".to_string(),
            ));
        }
        let _ = self.solver(method)?;
        left.validate()?;
        right.validate()?;
        let total_pairs = left.len() * right.len();
        if tau < 0.0 {
            return Ok(negative_tau_join(total_pairs));
        }
        let tau = saturate_tau(tau);
        let budget_unlimited = self.verify_budget == usize::MAX;
        let decision = self.plan_decision(QueryShape::Join);
        let collapse = decision.collapse_verify && budget_unlimited;
        // Only the right side serves the pivot tier (armed per left
        // row), so left units are always built bare.
        let left_units = self.join_units(left, false);
        let right_units = self.join_units(right, decision.arm_pivots);
        let pivot_arms_saved = if decision.arm_pivots {
            0
        } else {
            self.pivot_arm_cost(right)
        };

        let mut stats = JoinStats::default();
        let mut discards = DiscardCounts::default();
        let mut searches_saved = 0u64;
        let mut survivors: Vec<JoinSurvivor<'s>> = Vec::new();
        for lu in &left_units {
            deadline.check()?;
            for ru in &right_units {
                if lu.block_bound(ru) > tau {
                    stats.pruned_block += lu.len() * ru.len();
                    continue;
                }
                self.filter_cross_block(
                    lu,
                    ru,
                    CrossKind::TwoStores,
                    tau,
                    &decision,
                    collapse,
                    &mut discards,
                    &mut stats,
                    &mut searches_saved,
                    &mut survivors,
                );
            }
        }
        let result = self.verify_join(tau, deadline, survivors, stats, discards, total_pairs)?;
        self.plan_observe(
            QueryShape::Join,
            TierObservation {
                candidates: total_pairs,
                label: discards.label,
                degree: discards.degree,
                pivot_pruned: discards.pivot,
                pivot_accepted: result.stats.accepted_pivot,
                searches_saved,
                pivot_arms_saved,
                ..TierObservation::default()
            },
        );
        Ok(result)
    }

    /// The shared verify tail of both join plans: survivors are put in
    /// ascending `(a, b)` order, deduplicated so each structurally
    /// identical `(pair, certificate, collapsed)` class verifies once
    /// (dupes land in the `cache_hits` tier), representatives run the
    /// τ-bounded prune/verify tiers in parallel (chunked with
    /// cooperative checkpoints under a deadline), and every survivor is
    /// assembled from its class outcome.
    fn verify_join(
        &self,
        tau: usize,
        deadline: Deadline,
        mut survivors: Vec<JoinSurvivor<'_>>,
        mut stats: JoinStats,
        discards: DiscardCounts,
        total_pairs: usize,
    ) -> Result<JoinResult, GedError> {
        stats.filtered += discards.label + discards.degree;
        stats.pruned_pivot += discards.pivot;
        // Blocks were visited in unit order; report pairs in ascending
        // (a, b) id order (the brute-force nested-loop order).
        survivors.sort_by_key(|s| (s.a, s.b));

        // Dedup tier: two survivors whose canonical graphs are
        // structurally identical — and whose certificate and collapsed
        // distance agree, so the verify input is bit-identical — share
        // one deterministic outcome. Keyed by fingerprint with exact
        // graph comparison inside each bucket, so a hash collision can
        // never share a wrong outcome. The first occurrence (smallest
        // (a, b)) is the representative.
        let mut reps: Vec<usize> = Vec::new();
        let mut rep_of: Vec<usize> = Vec::with_capacity(survivors.len());
        let mut classes: HashMap<(u64, Option<usize>, Option<usize>), Vec<usize>> = HashMap::new();
        for (si, s) in survivors.iter().enumerate() {
            let key = (
                join_pair_fingerprint(s.qa, s.qb),
                s.certificate,
                s.collapsed_ged,
            );
            let bucket = classes.entry(key).or_default();
            match bucket.iter().copied().find(|&ri| {
                let r = &survivors[reps[ri]];
                r.qa == s.qa && r.qb == s.qb
            }) {
                Some(ri) => rep_of.push(ri),
                None => {
                    bucket.push(reps.len());
                    rep_of.push(reps.len());
                    reps.push(si);
                }
            }
        }

        // Verify tier: representatives only, per-pair, embarrassingly
        // parallel and deterministic (canonical orientation), so thread
        // count never changes an answer. A pivot-certified pair skips
        // the GEDGW bound and goes straight to the (ub-bounded)
        // exact-distance recovery; a collapsed pair skips the search
        // entirely.
        let rep_rows: Vec<&JoinSurvivor<'_>> = reps.iter().map(|&si| &survivors[si]).collect();
        let run = |ws: &mut GedWorkspace, s: &&JoinSurvivor<'_>| {
            if let Some(ged) = s.collapsed_ged {
                return CandidateOutcome::AcceptedByPivot { ged };
            }
            prune_or_verify_with_pivot_in(s.qa, s.qb, tau, self.verify_budget, s.certificate, ws)
        };
        let outcomes = if deadline.is_set() {
            let mut out = Vec::with_capacity(rep_rows.len());
            for chunk in rep_rows.chunks(self.verify_block_len()) {
                deadline.check()?;
                out.extend(self.runner.map_init(chunk, GedWorkspace::new, run));
            }
            out
        } else {
            self.runner.map_init(&rep_rows, GedWorkspace::new, run)
        };

        let mut pairs = Vec::new();
        let mut budget_exhausted = Vec::new();
        for (si, s) in survivors.iter().enumerate() {
            let ri = rep_of[si];
            let outcome = &outcomes[ri];
            if reps[ri] == si {
                stats.record(outcome);
            } else {
                stats.cache_hits += 1;
            }
            match *outcome {
                CandidateOutcome::AcceptedByPivot { ged }
                | CandidateOutcome::AcceptedEarly { ged }
                | CandidateOutcome::Verified { ged } => {
                    pairs.push(JoinPair {
                        a: s.a,
                        b: s.b,
                        ged,
                    });
                }
                CandidateOutcome::Rejected => {}
                CandidateOutcome::BudgetExhausted { accepted_ub } => {
                    budget_exhausted.push(UndecidedPair {
                        a: s.a,
                        b: s.b,
                        known_match_ub: accepted_ub,
                    });
                }
            }
        }
        debug_assert_eq!(
            stats.total(),
            total_pairs,
            "every pair lands in exactly one tier"
        );
        Ok(JoinResult {
            pairs,
            budget_exhausted,
            stats,
        })
    }

    /// The verify phase shared by `TopK` and `Range`: runs the solver on
    /// every candidate in parallel and refines each prediction into the
    /// candidate's admissible `[lb, ub]` interval
    /// (`min(max(prediction, lb), ub)`). The interval provably contains
    /// the true GED, so clamping only ever moves an estimate *toward* it
    /// — and it is what makes bound-based pruning (and pivot-ub range
    /// acceptance) exactly consistent with a full scan applying the same
    /// refinement. Without a pivot index `ub` is `usize::MAX` and this is
    /// the classic one-sided `max(prediction, lb)` of the signature
    /// tiers.
    ///
    /// With `collapse` on (adaptive planner), a candidate whose interval
    /// is already tight (`lb == ub`) skips the solver: the clamp pins the
    /// output to `lb` for any prediction (`f64::max` ignores NaN), so the
    /// emitted neighbor is bit-identical either way.
    fn verify(
        &self,
        method: MethodKind,
        solver: &dyn GedSolver,
        query: &Graph,
        store: &GraphStore,
        candidates: &[Candidate],
        collapse: bool,
    ) -> Vec<Neighbor> {
        self.runner
            .map_init(candidates, SolverScratch::new, |scratch, c| {
                if collapse && c.ub != usize::MAX && c.lb == c.ub {
                    return Neighbor {
                        id: c.id,
                        ged: c.lb as f64,
                    };
                }
                let graph = store.get(c.id).expect("candidate ids come from this store");
                let pair = GedPair::new(query.clone(), graph.clone());
                let prediction = self.predict_cached(method, solver, &pair, scratch);
                Neighbor {
                    id: c.id,
                    // f64::max ignores a NaN prediction, keeping the no-panic,
                    // no-NaN contract of the ranking; lb ≤ ub always (both
                    // bound the same exact GED), so the clamp is well formed.
                    ged: prediction.max(c.lb as f64).min(c.ub as f64),
                }
            })
    }
}

/// GED is integral: `GED ≤ τ ⟺ GED ≤ ⌊τ⌋`. `+∞` (and any τ beyond
/// `usize`) saturates to an effectively unbounded threshold — τ is only
/// ever compared, never added, so no overflow.
fn saturate_tau(tau: f64) -> usize {
    if tau.is_infinite() {
        usize::MAX
    } else {
        tau.floor() as usize
    }
}

/// The join answer for a negative τ: every lower bound (≥ 0) exceeds
/// it, so the signature tier accounts every pair and nothing matches.
fn negative_tau_join(total_pairs: usize) -> JoinResult {
    JoinResult {
        pairs: Vec::new(),
        budget_exhausted: Vec::new(),
        stats: JoinStats {
            filtered: total_pairs,
            ..JoinStats::default()
        },
    }
}

/// How many of `candidates` collapsed verification will answer from
/// their tight `lb == ub` interval without a solver call.
fn collapsible(candidates: &[Candidate]) -> u64 {
    candidates
        .iter()
        .filter(|c| c.ub != usize::MAX && c.lb == c.ub)
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_names_round_trip() {
        for shape in [
            QueryShape::TopK,
            QueryShape::Range,
            QueryShape::RangeExact,
            QueryShape::Matrix,
            QueryShape::Join,
        ] {
            assert_eq!(QueryShape::from_name(shape.name()), Some(shape));
        }
        assert_eq!(QueryShape::from_name("nope"), None);
    }

    #[test]
    fn static_decision_matches_legacy_orders() {
        let d = PlanDecision::static_for(QueryShape::Range);
        assert_eq!(
            d.order,
            [FilterTier::Label, FilterTier::Degree, FilterTier::PivotLb]
        );
        assert!(d.arm_pivots);
        assert!(!d.collapse_verify);
        let d = PlanDecision::static_for(QueryShape::RangeExact);
        assert_eq!(
            d.order,
            [FilterTier::PivotLb, FilterTier::Label, FilterTier::Degree]
        );
    }

    #[test]
    fn planner_reorders_only_after_warmup_and_by_efficiency() {
        let mut planner = QueryPlanner::new();
        // Degree does all the work; label and pivot never fire.
        let obs = TierObservation {
            candidates: 100,
            degree: 90,
            ..TierObservation::default()
        };
        for fired in 0..MIN_OBSERVATIONS {
            let d = planner.decision(QueryShape::Range, true);
            assert_eq!(
                d.order,
                QueryShape::Range.static_order(),
                "static until warmed ({fired} observations)"
            );
            planner.observe(QueryShape::Range, obs);
        }
        let d = planner.decision(QueryShape::Range, true);
        assert_eq!(d.order[0], FilterTier::Degree, "highest yield first");
        assert!(d.arm_pivots, "range never skips arming");
        assert!(d.collapse_verify);
    }

    #[test]
    fn pivot_arming_skip_requires_unlimited_budget_and_zero_yield() {
        let mut planner = QueryPlanner::new();
        let dead_pivot = TierObservation {
            candidates: 50,
            label: 40,
            ..TierObservation::default()
        };
        for _ in 0..MIN_OBSERVATIONS + 1 {
            planner.observe(QueryShape::RangeExact, dead_pivot);
        }
        assert!(!planner.decision(QueryShape::RangeExact, true).arm_pivots);
        assert!(
            planner.decision(QueryShape::RangeExact, false).arm_pivots,
            "a finite budget must keep the tier armed"
        );
        // Once the pivot tier shows yield, the skip is withdrawn.
        let firing = TierObservation {
            candidates: 50,
            pivot_pruned: 25,
            ..TierObservation::default()
        };
        for _ in 0..MIN_OBSERVATIONS {
            planner.observe(QueryShape::RangeExact, firing);
        }
        assert!(planner.decision(QueryShape::RangeExact, true).arm_pivots);
    }

    #[test]
    fn explanation_tier_lists_cover_all_shapes() {
        let d = PlanDecision::static_for(QueryShape::RangeExact);
        assert_eq!(
            d.tier_names(QueryShape::RangeExact),
            vec![
                "shard",
                "pivot_lb",
                "label",
                "degree",
                "pivot_ub_accept",
                "gedgw_ub_accept",
                "verify"
            ]
        );
        assert!(d.skipped_names(QueryShape::RangeExact).is_empty());

        let skipping = PlanDecision {
            arm_pivots: false,
            ..d
        };
        assert_eq!(
            skipping.tier_names(QueryShape::RangeExact),
            vec!["shard", "label", "degree", "gedgw_ub_accept", "verify"]
        );
        assert_eq!(
            skipping.skipped_names(QueryShape::RangeExact),
            vec!["pivot_lb", "pivot_ub_accept"]
        );
        assert_eq!(
            PlanDecision::static_for(QueryShape::Matrix).tier_names(QueryShape::Matrix),
            vec!["verify"]
        );
    }
}
