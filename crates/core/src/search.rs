//! Threshold-based graph similarity search (the application of Section 2
//! of the paper).
//!
//! Given a query graph and a threshold `τ`, retrieve every database graph
//! whose GED to the query is `≤ τ`. The classical pipeline is
//! *filter-then-verify*:
//!
//! 1. **filter** — cheap lower bounds (label-set, degree-sequence) discard
//!    candidates whose bound already exceeds `τ`;
//! 2. **prune** — a fast feasible upper bound (best-matching rounding of a
//!    GEDGW coupling) *accepts* candidates whose upper bound is `≤ τ`;
//! 3. **verify** — the surviving candidates run a τ-bounded exact A\*
//!    that aborts as soon as the optimum provably exceeds `τ`.
//!
//! Setting `τ = ∞` degrades to exact GED computation, exactly as the paper
//! notes for Nass / AStar-BMao; the engine's
//! [`crate::engine::GedQuery::RangeExact`] accepts `τ = +∞` with exactly
//! that full-scan meaning.
//!
//! The tiers are exposed individually — [`label_set_lower_bound`] /
//! [`degree_sequence_lower_bound`] (re-exported from
//! [`crate::lower_bound`]), [`fast_upper_bound`], and
//! [`bounded_exact_ged_with_budget`] — and composed twice:
//!
//! * [`similarity_search`] — the per-pair, slice-of-graphs form. Its
//!   [`Verdict`]s accept by upper bound *without* any exact search, so
//!   accepted candidates report a feasible bound, not an exact distance.
//! * [`prune_or_verify`] — the per-candidate form the store-level
//!   [`crate::engine::GedQuery::RangeExact`] plan runs after its
//!   signature-fed filter tier. Its [`CandidateOutcome`]s always carry
//!   exact distances: an upper-bound accept decides *membership* without
//!   τ-bounded search, then recovers the exact distance with a search
//!   bounded by the (tighter) feasible bound itself.
//!
//! [`label_set_lower_bound`]: crate::lower_bound::label_set_lower_bound
//! [`degree_sequence_lower_bound`]: crate::lower_bound::degree_sequence_lower_bound

use crate::gedgw::Gedgw;
use crate::lower_bound::{
    degree_sequence_lower_bound, label_set_lower_bound, sorted_multiset_surplus,
};
use crate::pairs::ordered;
use crate::workspace::{reset, GedWorkspace};
use ged_graph::{CsrView, Graph, NodeMapping, PivotDistance};
use ged_linalg::lsap_min_in;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Outcome of one candidate in a similarity search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Discarded by a lower bound (`bound > τ` proves `GED > τ`).
    FilteredOut {
        /// The lower bound that exceeded the threshold.
        bound: usize,
    },
    /// Accepted by an upper bound without exact verification.
    AcceptedByUpperBound {
        /// The feasible upper bound (`≤ τ`).
        bound: usize,
    },
    /// Exact verification concluded `GED ≤ τ`.
    VerifiedMatch {
        /// The exact GED.
        ged: usize,
    },
    /// Exact verification concluded `GED > τ`.
    VerifiedNonMatch,
}

/// Statistics of the τ-exact filter–prune–verify pipeline (how much work
/// each stage saved). Every candidate lands in exactly one tier, so
/// [`ExactSearchStats::total`] always equals the number of candidates
/// examined (for a store-level query, the store size). The engine's
/// approximate store search reports the analogous
/// [`crate::engine::SearchStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactSearchStats {
    /// Candidates discarded wholesale at the shard tier: their entire
    /// shard's aggregate lower bound already exceeded `τ`, so no
    /// per-graph metadata was touched. Always zero for flat-store plans
    /// (see [`ged_graph::shard::ShardedStore`]).
    pub pruned_shard: usize,
    /// Candidates discarded by the pivot-table lower bound
    /// (`|d(q,p) − d(p,g)| > τ` for some pivot `p`) before the signature
    /// bounds were even consulted. Always zero when the engine has no
    /// pivot index ([`crate::engine::GedEngineBuilder::pivots`]).
    pub pruned_pivot: usize,
    /// Candidates discarded by the signature lower bounds.
    pub filtered: usize,
    /// Candidates whose membership the pivot-table upper bound
    /// (`d(q,p) + d(p,g) ≤ τ`) certified before the GEDGW upper bound ran
    /// (the exact distance is then recovered by a search bounded by that
    /// pivot bound). Always zero without a pivot index.
    pub accepted_pivot: usize,
    /// Candidates accepted by the GEDGW upper bound.
    pub accepted_early: usize,
    /// Candidates that required bounded exact verification.
    pub verified: usize,
    /// Candidates whose bounded search exhausted its node-expansion
    /// budget before reaching a decision (see
    /// [`crate::engine::GedEngineBuilder::verify_budget`]). Always zero
    /// when the budget is unlimited.
    pub budget_exceeded: usize,
}

impl ExactSearchStats {
    /// Total candidates accounted for — the per-tier counts always close
    /// to the number of candidates examined, whether or not the pivot
    /// tiers fired.
    #[must_use]
    pub fn total(&self) -> usize {
        self.pruned_shard
            + self.pruned_pivot
            + self.filtered
            + self.accepted_pivot
            + self.accepted_early
            + self.verified
            + self.budget_exceeded
    }

    /// Accounts one prune/verify-phase [`CandidateOutcome`] to its tier —
    /// the single outcome→tier mapping every store-level exact plan uses,
    /// so accounting cannot drift between plans. (`Rejected` still counts
    /// as `verified`: the candidate consumed a bounded exact search.)
    pub fn record(&mut self, outcome: &CandidateOutcome) {
        match outcome {
            CandidateOutcome::AcceptedByPivot { .. } => self.accepted_pivot += 1,
            CandidateOutcome::AcceptedEarly { .. } => self.accepted_early += 1,
            CandidateOutcome::Verified { .. } | CandidateOutcome::Rejected => self.verified += 1,
            CandidateOutcome::BudgetExhausted { .. } => self.budget_exceeded += 1,
        }
    }
}

impl fmt::Display for ExactSearchStats {
    /// One-line tier breakdown, filter order left to right:
    /// `shard=.. pivot=.. filtered=.. accept_pivot=.. accept_ub=..
    /// verified=.. budget=.. total=..`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard={} pivot={} filtered={} accept_pivot={} accept_ub={} verified={} budget={} total={}",
            self.pruned_shard,
            self.pruned_pivot,
            self.filtered,
            self.accepted_pivot,
            self.accepted_early,
            self.verified,
            self.budget_exceeded,
            self.total()
        )
    }
}

/// Statistics of one GED join ([`crate::engine::GedQuery::SelfJoin`] /
/// [`crate::engine::GedQuery::Join`]): which tier settled each candidate
/// pair. Every pair of the join's candidate matrix lands in exactly one
/// tier, so [`JoinStats::total`] always equals the exact pair count —
/// `n·(n−1)/2` for a self-join over `n` graphs, `n·m` for a cross-store
/// join — whatever the planner decided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Pairs discarded wholesale at the block tier: the aggregate bound
    /// between their two units (shard×shard, or flat-store size ranges)
    /// already exceeded `τ`, so the block's pairs were counted off
    /// without touching any per-graph metadata.
    pub pruned_block: usize,
    /// Pairs discarded wholesale at the band tier: candidates are
    /// generated in signature-sort (node-count) order, so once one
    /// pair's size difference exceeds `τ` the whole remaining
    /// contiguous band of larger partners is discarded by arithmetic.
    pub pruned_band: usize,
    /// Pairs discarded one-by-one by the signature lower bounds
    /// (label multiset, degree sequence). Negative-`τ` joins account
    /// every pair here (nothing can match).
    pub filtered: usize,
    /// Pairs discarded by the pivot-table triangle lower bound. Always
    /// zero without a pivot index.
    pub pruned_pivot: usize,
    /// Pairs answered from an already-verified structurally identical
    /// pair: symmetric/duplicate pairs canonicalize to the same
    /// representative (same orientation the prediction cache keys on),
    /// which is verified once and its outcome shared.
    pub cache_hits: usize,
    /// Pairs whose membership the pivot-table upper bound certified
    /// before exact verification (the exact distance is then recovered
    /// by a search bounded by that certificate).
    pub accepted_pivot: usize,
    /// Pairs accepted by the GEDGW feasible upper bound.
    pub accepted_early: usize,
    /// Pairs that required bounded exact verification (including pairs
    /// the verification rejected).
    pub verified: usize,
    /// Pairs whose bounded search exhausted its node-expansion budget
    /// undecided (surfaced in the join result, not silently dropped).
    /// Always zero when the budget is unlimited.
    pub budget_exceeded: usize,
}

impl JoinStats {
    /// Total pairs accounted for — always the join's exact candidate
    /// pair count (`n·(n−1)/2` resp. `n·m`), whichever tiers fired.
    #[must_use]
    pub fn total(&self) -> usize {
        self.pruned_block
            + self.pruned_band
            + self.filtered
            + self.pruned_pivot
            + self.cache_hits
            + self.accepted_pivot
            + self.accepted_early
            + self.verified
            + self.budget_exceeded
    }

    /// Accounts one verify-phase [`CandidateOutcome`] to its tier — the
    /// same outcome→tier mapping as [`ExactSearchStats::record`], so
    /// join and per-query accounting cannot drift. (`Rejected` still
    /// counts as `verified`: the pair consumed a bounded exact search.)
    pub fn record(&mut self, outcome: &CandidateOutcome) {
        match outcome {
            CandidateOutcome::AcceptedByPivot { .. } => self.accepted_pivot += 1,
            CandidateOutcome::AcceptedEarly { .. } => self.accepted_early += 1,
            CandidateOutcome::Verified { .. } | CandidateOutcome::Rejected => self.verified += 1,
            CandidateOutcome::BudgetExhausted { .. } => self.budget_exceeded += 1,
        }
    }
}

impl fmt::Display for JoinStats {
    /// One-line tier breakdown, filter order left to right:
    /// `block=.. band=.. filtered=.. pivot=.. cache=.. accept_pivot=..
    /// accept_ub=.. verified=.. budget=.. total=..`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block={} band={} filtered={} pivot={} cache={} accept_pivot={} accept_ub={} \
             verified={} budget={} total={}",
            self.pruned_block,
            self.pruned_band,
            self.filtered,
            self.pruned_pivot,
            self.cache_hits,
            self.accepted_pivot,
            self.accepted_early,
            self.verified,
            self.budget_exceeded,
            self.total()
        )
    }
}

/// The result of a budgeted τ-bounded exact search
/// ([`bounded_exact_ged_with_budget`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundedSearch {
    /// `GED(g1, g2) = ged ≤ τ`, proven exactly.
    Within(
        /// The exact GED.
        usize,
    ),
    /// `GED(g1, g2) > τ`, proven exactly.
    Exceeds,
    /// The node-expansion budget ran out before either proof: the pair is
    /// undecided. Never produced by an (effectively) unlimited budget.
    BudgetExhausted,
}

/// τ-bounded exact GED: returns `Some(ged)` if `GED(g1,g2) <= tau`, `None`
/// otherwise. A* with the admissible heuristic, aborting any branch whose
/// `f`-value exceeds `tau` — far cheaper than unbounded exact search for
/// small thresholds. Candidate pairs are pre-filtered with *both*
/// admissible lower bounds (label-set and degree-sequence), so a provably
/// distant pair never starts a search at all.
#[must_use]
pub fn bounded_exact_ged(g1: &Graph, g2: &Graph, tau: usize) -> Option<usize> {
    match bounded_exact_ged_with_budget(g1, g2, tau, usize::MAX) {
        BoundedSearch::Within(ged) => Some(ged),
        // A `usize::MAX` expansion budget can never actually exhaust.
        BoundedSearch::Exceeds | BoundedSearch::BudgetExhausted => None,
    }
}

/// [`bounded_exact_ged`] with a node-expansion budget: the search gives up
/// with [`BoundedSearch::BudgetExhausted`] after popping `budget` states
/// from the open list, so one pathological pair cannot blow up a
/// store-level query. `budget = usize::MAX` is effectively unlimited and
/// recovers [`bounded_exact_ged`] exactly.
#[must_use]
pub fn bounded_exact_ged_with_budget(
    g1: &Graph,
    g2: &Graph,
    tau: usize,
    budget: usize,
) -> BoundedSearch {
    bounded_exact_ged_with_budget_in(g1, g2, tau, budget, &mut GedWorkspace::new())
}

/// [`bounded_exact_ged_with_budget`] with the pre-filter bounds and the
/// per-expansion mark/label scratch drawn from `ws`, and both graphs read
/// through flat [`CsrView`]s rebuilt into the workspace. The state
/// traversal (expansion order, heap tie-breaks, budget accounting) is
/// identical to the allocating version, so results match for any
/// (possibly dirty) workspace.
#[must_use]
pub fn bounded_exact_ged_with_budget_in(
    g1: &Graph,
    g2: &Graph,
    tau: usize,
    budget: usize,
    ws: &mut GedWorkspace,
) -> BoundedSearch {
    let (a, b, _) = ordered(g1, g2);
    let GedWorkspace {
        csr1,
        csr2,
        used,
        matched,
        rest1,
        rest2,
        deg1,
        deg2,
        ..
    } = ws;
    csr1.rebuild_from(a);
    csr2.rebuild_from(b);
    let n1 = csr1.num_nodes();
    let n2 = csr2.num_nodes();

    // Both admissible bounds: each can dominate the other, and a bound
    // above τ proves GED > τ without expanding a single state. The label
    // surplus is shared by both, so it is merged once.
    rest1.clear();
    rest1.extend_from_slice(csr1.labels());
    rest1.sort_unstable();
    rest2.clear();
    rest2.extend_from_slice(csr2.labels());
    rest2.sort_unstable();
    let (o1, o2) = sorted_multiset_surplus(rest1, rest2);
    let node_term = o1.max(o2);
    if node_term + csr1.num_edges().abs_diff(csr2.num_edges()) > tau {
        return BoundedSearch::Exceeds;
    }
    let n = n1.max(n2);
    deg1.clear();
    deg1.extend((0..n1 as u32).map(|u| csr1.degree(u)));
    deg1.resize(n, 0);
    deg1.sort_unstable();
    deg2.clear();
    deg2.extend((0..n2 as u32).map(|u| csr2.degree(u)));
    deg2.resize(n, 0);
    deg2.sort_unstable();
    let diff: usize = deg1.iter().zip(&*deg2).map(|(&x, &y)| x.abs_diff(y)).sum();
    if node_term + diff.div_ceil(2) > tau {
        return BoundedSearch::Exceeds;
    }

    #[derive(Clone)]
    struct State {
        mapping: Vec<u32>,
        g: usize,
    }
    let mut heap: BinaryHeap<Reverse<(usize, usize, usize)>> = BinaryHeap::new();
    let mut states = vec![State {
        mapping: Vec::new(),
        g: 0,
    }];
    heap.push(Reverse((0, n1, 0)));

    let mut expanded = 0usize;
    while let Some(Reverse((f, _, idx))) = heap.pop() {
        if f > tau {
            return BoundedSearch::Exceeds; // smallest f exceeds τ => GED > τ
        }
        if expanded >= budget {
            return BoundedSearch::BudgetExhausted;
        }
        expanded += 1;
        let state = states[idx].clone();
        if state.mapping.len() == n1 {
            let total = state.g + closing_cost(csr2, &state.mapping, matched);
            if total <= tau {
                return BoundedSearch::Within(total);
            }
            continue;
        }
        reset(used, n2, false);
        for &v in &state.mapping {
            used[v as usize] = true;
        }
        let u = state.mapping.len() as u32;
        for v in 0..n2 as u32 {
            if used[v as usize] {
                continue;
            }
            let mut delta = 0;
            if csr1.label(u) != csr2.label(v) {
                delta += 1;
            }
            for (w, &mw) in state.mapping.iter().enumerate() {
                if csr1.has_edge(u, w as u32) != csr2.has_edge(v, mw) {
                    delta += 1;
                }
            }
            let mut mapping = state.mapping.clone();
            mapping.push(v);
            let g = state.g + delta;
            let f = if mapping.len() == n1 {
                g + closing_cost(csr2, &mapping, matched)
            } else {
                // `used` + v is exactly the mark set of the extended
                // mapping; undone right after the bound.
                used[v as usize] = true;
                let bound = remainder_bound(csr1, csr2, &mapping, used, rest1, rest2);
                used[v as usize] = false;
                g + bound
            };
            if f > tau {
                continue;
            }
            let depth = mapping.len();
            states.push(State { mapping, g });
            heap.push(Reverse((f, n1 - depth, states.len() - 1)));
        }
    }
    BoundedSearch::Exceeds
}

fn closing_cost(csr2: &CsrView, mapping: &[u32], matched: &mut Vec<bool>) -> usize {
    reset(matched, csr2.num_nodes(), false);
    for &v in mapping {
        matched[v as usize] = true;
    }
    let mut cost = csr2.num_nodes() - mapping.len();
    for (v, w) in csr2.edges() {
        if !matched[v as usize] || !matched[w as usize] {
            cost += 1;
        }
    }
    cost
}

fn remainder_bound(
    csr1: &CsrView,
    csr2: &CsrView,
    mapping: &[u32],
    used: &[bool],
    rest1: &mut Vec<ged_graph::Label>,
    rest2: &mut Vec<ged_graph::Label>,
) -> usize {
    let depth = mapping.len();
    rest1.clear();
    rest1.extend_from_slice(&csr1.labels()[depth..]);
    rest2.clear();
    rest2.extend(
        csr2.labels()
            .iter()
            .enumerate()
            .filter(|&(v, _)| !used[v])
            .map(|(_, &l)| l),
    );
    rest1.sort_unstable();
    rest2.sort_unstable();
    let (o1, o2) = sorted_multiset_surplus(rest1, rest2);
    let e1 = csr1
        .edges()
        .filter(|&(x, y)| (x as usize) >= depth || (y as usize) >= depth)
        .count();
    let e2 = csr2
        .edges()
        .filter(|&(x, y)| !used[x as usize] || !used[y as usize])
        .count();
    o1.max(o2) + e1.abs_diff(e2)
}

/// Fast feasible upper bound: round a (cheap) GEDGW coupling to a matching
/// and take the induced cost.
#[must_use]
pub fn fast_upper_bound(g1: &Graph, g2: &Graph) -> usize {
    fast_upper_bound_in(g1, g2, &mut GedWorkspace::new())
}

/// [`fast_upper_bound`] with the GEDGW solve and the rounding LSAP drawn
/// from `ws`. Bit-identical to the allocating version for any (possibly
/// dirty) workspace.
#[must_use]
pub fn fast_upper_bound_in(g1: &Graph, g2: &Graph, ws: &mut GedWorkspace) -> usize {
    let (a, b, _) = ordered(g1, g2);
    let solve = Gedgw::new(a, b)
        .with_options(crate::gedgw::GedgwOptions {
            max_iter: 15,
            tol: 1e-7,
        })
        .solve_in(ws);
    let (rows, cols) = solve.coupling.shape();
    ws.neg.resize_zeroed(rows, cols);
    for (o, &x) in ws
        .neg
        .as_mut_slice()
        .iter_mut()
        .zip(solve.coupling.as_slice())
    {
        // Sign flip, bit-identical to the `scale(-1.0)` of the allocating
        // path (IEEE-754 negation for every finite or zero value).
        *o = -x;
    }
    let assignment = lsap_min_in(&ws.neg, &mut ws.ot.lsap);
    let mapping = NodeMapping::new(assignment.row_to_col.iter().map(|&c| c as u32).collect());
    mapping.induced_cost(a, b)
}

/// Outcome of one candidate in the store-level exact pipeline
/// ([`prune_or_verify`]): unlike [`Verdict`], matching outcomes always
/// carry the **exact** GED.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateOutcome {
    /// The pivot-table upper bound proved membership (`ub_pivot ≤ τ`)
    /// before the GEDGW upper bound was even computed; the exact distance
    /// was then recovered by a search bounded by that pivot bound.
    AcceptedByPivot {
        /// The exact GED (`≤ τ`).
        ged: usize,
    },
    /// The feasible upper bound proved membership (`ub ≤ τ`) without any
    /// τ-bounded search; the exact distance was then recovered by a
    /// search bounded by the (tighter) upper bound itself.
    AcceptedEarly {
        /// The exact GED (`≤ τ`).
        ged: usize,
    },
    /// τ-bounded exact verification concluded `GED = ged ≤ τ`.
    Verified {
        /// The exact GED (`≤ τ`).
        ged: usize,
    },
    /// τ-bounded exact verification concluded `GED > τ`.
    Rejected,
    /// The node-expansion budget ran out before the candidate could be
    /// fully resolved. When the prune tier had already proven membership
    /// (`ub ≤ τ`) and only the exact-distance recovery was cut short,
    /// `accepted_ub` carries that feasible bound — the proof is
    /// preserved, not discarded; `None` means membership is genuinely
    /// unknown.
    BudgetExhausted {
        /// `Some(ub)` when `GED ≤ ub ≤ τ` is already proven (the
        /// candidate *is* a match, only its exact distance is unknown);
        /// `None` when the τ-bounded verification itself ran out.
        accepted_ub: Option<usize>,
    },
}

/// Tiers 2 + 3 of the exact pipeline for one filter survivor: the prune
/// tier computes the feasible [`fast_upper_bound`] and accepts when it is
/// `≤ tau` (recovering the exact distance with an `ub`-bounded search —
/// strictly cheaper than a τ-bounded one, and never wasted because
/// membership is already proven); otherwise the verify tier runs the
/// τ-bounded exact search. `budget` caps the node expansions of either
/// search (`usize::MAX` = unlimited).
///
/// This is the per-candidate unit [`crate::engine::GedQuery::RangeExact`]
/// parallelizes over a store; callers are expected to have already run
/// the lower-bound filter tier (the searches re-check the bounds, so
/// skipping the filter costs speed, never correctness).
#[must_use]
pub fn prune_or_verify(query: &Graph, cand: &Graph, tau: usize, budget: usize) -> CandidateOutcome {
    prune_or_verify_in(query, cand, tau, budget, &mut GedWorkspace::new())
}

/// [`prune_or_verify`] with both tiers running out of `ws` — the unit the
/// engine's store-level exact plan hands each worker thread.
#[must_use]
pub fn prune_or_verify_in(
    query: &Graph,
    cand: &Graph,
    tau: usize,
    budget: usize,
    ws: &mut GedWorkspace,
) -> CandidateOutcome {
    let ub = fast_upper_bound_in(query, cand, ws);
    if ub <= tau {
        // Membership is decided search-free; `GED ≤ ub` makes the
        // ub-bounded recovery search guaranteed to succeed (modulo budget).
        return match bounded_exact_ged_with_budget_in(query, cand, ub, budget, ws) {
            BoundedSearch::Within(ged) => CandidateOutcome::AcceptedEarly { ged },
            BoundedSearch::Exceeds => unreachable!("feasible bound: GED ≤ ub always holds"),
            BoundedSearch::BudgetExhausted => CandidateOutcome::BudgetExhausted {
                accepted_ub: Some(ub),
            },
        };
    }
    match bounded_exact_ged_with_budget_in(query, cand, tau, budget, ws) {
        BoundedSearch::Within(ged) => CandidateOutcome::Verified { ged },
        BoundedSearch::Exceeds => CandidateOutcome::Rejected,
        BoundedSearch::BudgetExhausted => CandidateOutcome::BudgetExhausted { accepted_ub: None },
    }
}

/// [`prune_or_verify`] with a triangle-inequality head start: when the
/// caller's pivot table already proved membership (`pivot_ub ≤ τ`,
/// [`ged_graph::PivotIndex::bounds`]), the GEDGW upper bound is skipped
/// entirely and the exact distance is recovered by a search bounded by
/// `pivot_ub` ([`CandidateOutcome::AcceptedByPivot`]); a budget
/// exhaustion during that recovery keeps the membership proof
/// (`accepted_ub = Some(pivot_ub)`). `pivot_ub = None` (or a bound above
/// τ, which the caller should not pass) falls back to [`prune_or_verify`]
/// unchanged.
#[must_use]
pub fn prune_or_verify_with_pivot(
    query: &Graph,
    cand: &Graph,
    tau: usize,
    budget: usize,
    pivot_ub: Option<usize>,
) -> CandidateOutcome {
    prune_or_verify_with_pivot_in(query, cand, tau, budget, pivot_ub, &mut GedWorkspace::new())
}

/// [`prune_or_verify_with_pivot`] running out of `ws` (see
/// [`prune_or_verify_in`]).
#[must_use]
pub fn prune_or_verify_with_pivot_in(
    query: &Graph,
    cand: &Graph,
    tau: usize,
    budget: usize,
    pivot_ub: Option<usize>,
    ws: &mut GedWorkspace,
) -> CandidateOutcome {
    if let Some(ub) = pivot_ub.filter(|&ub| ub <= tau) {
        return match bounded_exact_ged_with_budget_in(query, cand, ub, budget, ws) {
            BoundedSearch::Within(ged) => CandidateOutcome::AcceptedByPivot { ged },
            // A sound pivot table makes `GED ≤ ub` a theorem, so this arm
            // is unreachable; fall back to the regular tiers rather than
            // trusting a table the caller may have corrupted.
            BoundedSearch::Exceeds => prune_or_verify_in(query, cand, tau, budget, ws),
            BoundedSearch::BudgetExhausted => CandidateOutcome::BudgetExhausted {
                accepted_ub: Some(ub),
            },
        };
    }
    prune_or_verify_in(query, cand, tau, budget, ws)
}

/// The pivot-table distance oracle ([`ged_graph::PivotIndex`]): the exact
/// GED of the pair when an exact search fits the node-expansion `budget`,
/// otherwise the admissible `[lb, ub]` interval built from the signature
/// lower bounds and the feasible GEDGW upper bound.
///
/// The exact search is bounded by the feasible upper bound itself —
/// `GED ≤ ub` always holds, so the search can only return the optimum or
/// run out of budget; it is never cut off by a too-small threshold.
#[must_use]
pub fn pivot_distance(g1: &Graph, g2: &Graph, budget: usize) -> PivotDistance {
    pivot_distance_in(g1, g2, budget, &mut GedWorkspace::new())
}

/// [`pivot_distance`] running out of `ws`, so the engine's pivot-table
/// (re)builds reuse one workspace across every oracle call.
#[must_use]
pub fn pivot_distance_in(
    g1: &Graph,
    g2: &Graph,
    budget: usize,
    ws: &mut GedWorkspace,
) -> PivotDistance {
    let lb = label_set_lower_bound(g1, g2).max(degree_sequence_lower_bound(g1, g2));
    if lb == 0 && g1 == g2 {
        return PivotDistance::exact(0);
    }
    let ub = fast_upper_bound_in(g1, g2, ws);
    match bounded_exact_ged_with_budget_in(g1, g2, ub, budget, ws) {
        BoundedSearch::Within(ged) => PivotDistance::exact(ged),
        // `Exceeds` cannot happen for a feasible bound; treat it like an
        // exhausted budget instead of unwinding a store-level query.
        BoundedSearch::Exceeds | BoundedSearch::BudgetExhausted => PivotDistance::interval(lb, ub),
    }
}

/// Runs the filter–prune–verify pipeline over a database. Returns the
/// per-candidate verdicts (indexed like `database`) and stage statistics.
/// Upper-bound accepts carry the feasible bound, not an exact distance —
/// see [`prune_or_verify`] for the exact-distance form the engine's
/// store-level [`crate::engine::GedQuery::RangeExact`] uses.
///
/// One [`GedWorkspace`] is reused across the whole scan; loops issuing
/// many scans should hold their own and call [`similarity_search_in`].
pub fn similarity_search(
    database: &[Graph],
    query: &Graph,
    tau: usize,
) -> (Vec<Verdict>, ExactSearchStats) {
    similarity_search_in(database, query, tau, &mut GedWorkspace::new())
}

/// [`similarity_search`] with the GEDGW upper-bound and τ-bounded-search
/// scratch drawn from `ws`. Bit-identical to the allocating version for
/// any (possibly dirty) workspace.
pub fn similarity_search_in(
    database: &[Graph],
    query: &Graph,
    tau: usize,
    ws: &mut GedWorkspace,
) -> (Vec<Verdict>, ExactSearchStats) {
    let mut stats = ExactSearchStats::default();
    let verdicts = database
        .iter()
        .map(|cand| {
            let lb =
                label_set_lower_bound(query, cand).max(degree_sequence_lower_bound(query, cand));
            if lb > tau {
                stats.filtered += 1;
                return Verdict::FilteredOut { bound: lb };
            }
            let ub = fast_upper_bound_in(query, cand, ws);
            if ub <= tau {
                stats.accepted_early += 1;
                return Verdict::AcceptedByUpperBound { bound: ub };
            }
            stats.verified += 1;
            match bounded_exact_ged_with_budget_in(query, cand, tau, usize::MAX, ws) {
                BoundedSearch::Within(ged) => Verdict::VerifiedMatch { ged },
                // A `usize::MAX` expansion budget can never actually exhaust.
                BoundedSearch::Exceeds | BoundedSearch::BudgetExhausted => {
                    Verdict::VerifiedNonMatch
                }
            }
        })
        .collect();
    (verdicts, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::generate;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn exact(g1: &Graph, g2: &Graph) -> usize {
        // τ-bounded search with an infinite budget is plain exact A*.
        bounded_exact_ged(g1, g2, usize::MAX / 2).expect("unbounded always succeeds")
    }

    #[test]
    fn bounded_matches_exact_within_threshold() {
        let mut rng = SmallRng::seed_from_u64(201);
        for _ in 0..25 {
            let g1 = generate::random_connected(rng.gen_range(3..=6), 1, &[0.5, 0.5], &mut rng);
            let g2 = generate::random_connected(rng.gen_range(3..=6), 1, &[0.5, 0.5], &mut rng);
            let d = exact(&g1, &g2);
            assert_eq!(bounded_exact_ged(&g1, &g2, d), Some(d));
            if d > 0 {
                assert_eq!(bounded_exact_ged(&g1, &g2, d - 1), None);
            }
            assert_eq!(bounded_exact_ged(&g1, &g2, d + 3), Some(d));
        }
    }

    #[test]
    fn upper_bound_is_feasible() {
        let mut rng = SmallRng::seed_from_u64(202);
        for _ in 0..15 {
            let g1 = generate::random_connected(5, 1, &[0.5, 0.5], &mut rng);
            let g2 = generate::random_connected(6, 2, &[0.5, 0.5], &mut rng);
            assert!(fast_upper_bound(&g1, &g2) >= exact(&g1, &g2));
        }
    }

    #[test]
    fn search_agrees_with_exhaustive_verification() {
        let mut rng = SmallRng::seed_from_u64(203);
        let db: Vec<Graph> = (0..20)
            .map(|_| {
                generate::random_connected(rng.gen_range(4..=7), 1, &[0.5, 0.3, 0.2], &mut rng)
            })
            .collect();
        let query = generate::random_connected(5, 1, &[0.5, 0.3, 0.2], &mut rng);
        for tau in [1usize, 3, 5, 8] {
            let (verdicts, stats) = similarity_search(&db, &query, tau);
            assert_eq!(
                stats.filtered + stats.accepted_early + stats.verified,
                db.len()
            );
            for (cand, verdict) in db.iter().zip(&verdicts) {
                let truth = exact(&query, cand) <= tau;
                let claimed = matches!(
                    verdict,
                    Verdict::AcceptedByUpperBound { .. } | Verdict::VerifiedMatch { .. }
                );
                assert_eq!(claimed, truth, "tau={tau}: verdict {verdict:?}");
            }
        }
    }

    #[test]
    fn budget_caps_expansions_and_unlimited_budget_matches_unbudgeted() {
        let mut rng = SmallRng::seed_from_u64(205);
        for _ in 0..10 {
            let g1 = generate::random_connected(rng.gen_range(4..=6), 1, &[0.5, 0.5], &mut rng);
            let g2 = generate::random_connected(rng.gen_range(4..=6), 1, &[0.5, 0.5], &mut rng);
            let d = exact(&g1, &g2);
            assert_eq!(
                bounded_exact_ged_with_budget(&g1, &g2, d, usize::MAX),
                BoundedSearch::Within(d)
            );
            if d > 0 {
                assert_eq!(
                    bounded_exact_ged_with_budget(&g1, &g2, d - 1, usize::MAX),
                    BoundedSearch::Exceeds
                );
                // A one-expansion budget cannot decide a nonzero-GED pair
                // whose bounds don't already settle it.
                let one = bounded_exact_ged_with_budget(&g1, &g2, d, 1);
                assert!(
                    matches!(one, BoundedSearch::BudgetExhausted | BoundedSearch::Exceeds),
                    "one expansion can at most prove Exceeds via bounds, got {one:?}"
                );
            }
        }
    }

    #[test]
    fn degree_bound_prefilters_without_search() {
        // Star vs path: label-set bound is 0, degree bound is ≥ 2 — the
        // pre-filter must prove Exceeds for τ = 1 with zero expansions
        // (observable through a zero budget still returning Exceeds).
        let star = Graph::unlabeled_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let path = Graph::unlabeled_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(
            crate::lower_bound::label_set_lower_bound(&star, &path),
            0,
            "label bound must be blind to this pair"
        );
        assert_eq!(
            bounded_exact_ged_with_budget(&star, &path, 1, 0),
            BoundedSearch::Exceeds,
            "degree bound must reject before any expansion"
        );
        assert_eq!(bounded_exact_ged(&star, &path, 1), None);
    }

    #[test]
    fn prune_or_verify_outcomes_carry_exact_distances() {
        let mut rng = SmallRng::seed_from_u64(206);
        for _ in 0..20 {
            let g1 =
                generate::random_connected(rng.gen_range(4..=6), 1, &[0.5, 0.3, 0.2], &mut rng);
            let g2 =
                generate::random_connected(rng.gen_range(4..=6), 1, &[0.5, 0.3, 0.2], &mut rng);
            let d = exact(&g1, &g2);
            for tau in [d.saturating_sub(1), d, d + 2] {
                match prune_or_verify(&g1, &g2, tau, usize::MAX) {
                    CandidateOutcome::AcceptedByPivot { .. } => {
                        unreachable!("no pivot certificate was supplied")
                    }
                    CandidateOutcome::AcceptedEarly { ged }
                    | CandidateOutcome::Verified { ged } => {
                        assert_eq!(ged, d, "matching outcomes must be exact");
                        assert!(d <= tau, "a match implies GED ≤ τ");
                    }
                    CandidateOutcome::Rejected => {
                        assert!(d > tau, "rejection implies GED > τ");
                    }
                    CandidateOutcome::BudgetExhausted { .. } => {
                        unreachable!("unlimited budget never exhausts")
                    }
                }
            }
        }
    }

    #[test]
    fn prune_or_verify_accepts_identical_graphs_early() {
        let mut rng = SmallRng::seed_from_u64(207);
        let g = generate::random_connected(6, 1, &[0.5, 0.5], &mut rng);
        // GED(g, g) = 0 and the rounded GEDGW bound of an identical pair
        // is 0, so the prune tier fires with the exact distance.
        assert_eq!(
            prune_or_verify(&g, &g, 3, usize::MAX),
            CandidateOutcome::AcceptedEarly { ged: 0 }
        );
        // A zero budget surfaces as BudgetExhausted — never a wrong
        // answer — and the prune tier's membership proof survives it.
        assert_eq!(
            prune_or_verify(&g, &g, 3, 0),
            CandidateOutcome::BudgetExhausted {
                accepted_ub: Some(0)
            }
        );
    }

    #[test]
    fn stats_total_closes() {
        let stats = ExactSearchStats {
            pruned_shard: 7,
            pruned_pivot: 5,
            filtered: 3,
            accepted_pivot: 6,
            accepted_early: 2,
            verified: 4,
            budget_exceeded: 1,
        };
        assert_eq!(stats.total(), 28, "every tier participates in total()");
        let line = stats.to_string();
        assert!(!line.contains('\n'), "one-line breakdown");
        for field in [
            "shard=7",
            "pivot=5",
            "filtered=3",
            "accept_pivot=6",
            "accept_ub=2",
            "verified=4",
            "budget=1",
            "total=28",
        ] {
            assert!(line.contains(field), "{line} is missing {field}");
        }
    }

    #[test]
    fn pivot_distance_is_exact_until_the_budget_bites() {
        let mut rng = SmallRng::seed_from_u64(208);
        for _ in 0..15 {
            let g1 =
                generate::random_connected(rng.gen_range(4..=6), 1, &[0.5, 0.3, 0.2], &mut rng);
            let g2 =
                generate::random_connected(rng.gen_range(4..=6), 1, &[0.5, 0.3, 0.2], &mut rng);
            let d = exact(&g1, &g2);

            let unlimited = pivot_distance(&g1, &g2, usize::MAX);
            assert!(unlimited.is_exact(), "unlimited budgets compute exactly");
            assert_eq!(unlimited.lb(), d);

            // A zero budget degrades to the admissible [lb, ub] interval.
            let strangled = pivot_distance(&g1, &g2, 0);
            assert!(
                strangled.lb() <= d && d <= strangled.ub(),
                "interval [{}, {}] must contain {d}",
                strangled.lb(),
                strangled.ub()
            );
        }
        // Identical graphs short-circuit to exact 0 at any budget.
        let g = generate::random_connected(5, 1, &[0.5, 0.5], &mut rng);
        assert_eq!(pivot_distance(&g, &g, 0), PivotDistance::exact(0));
    }

    #[test]
    fn pivot_accept_recovers_the_exact_distance() {
        let mut rng = SmallRng::seed_from_u64(209);
        for _ in 0..15 {
            let g1 =
                generate::random_connected(rng.gen_range(4..=6), 1, &[0.5, 0.3, 0.2], &mut rng);
            let g2 =
                generate::random_connected(rng.gen_range(4..=6), 1, &[0.5, 0.3, 0.2], &mut rng);
            let d = exact(&g1, &g2);
            let tau = d + 2;
            // A (sound) pivot certificate: any ub with d ≤ ub ≤ τ.
            match prune_or_verify_with_pivot(&g1, &g2, tau, usize::MAX, Some(d + 1)) {
                CandidateOutcome::AcceptedByPivot { ged } => {
                    assert_eq!(ged, d, "the recovery search must return the optimum");
                }
                other => panic!("a within-τ pivot ub must accept, got {other:?}"),
            }
            // Without a certificate the regular tiers decide, identically
            // to prune_or_verify.
            assert_eq!(
                prune_or_verify_with_pivot(&g1, &g2, tau, usize::MAX, None),
                prune_or_verify(&g1, &g2, tau, usize::MAX)
            );
            // A zero budget surfaces the preserved membership proof.
            assert_eq!(
                prune_or_verify_with_pivot(&g1, &g2, tau, 0, Some(d + 1)),
                CandidateOutcome::BudgetExhausted {
                    accepted_ub: Some(d + 1)
                }
            );
        }
    }

    #[test]
    fn filtering_saves_work_for_tight_thresholds() {
        let mut rng = SmallRng::seed_from_u64(204);
        // Query with a distinctive label multiset vs a varied database.
        let db: Vec<Graph> = (0..30)
            .map(|_| generate::random_connected(rng.gen_range(4..=9), 2, &[0.2; 5], &mut rng))
            .collect();
        let query = generate::random_connected(5, 1, &[0.2; 5], &mut rng);
        let (_, tight) = similarity_search(&db, &query, 1);
        let (_, loose) = similarity_search(&db, &query, 12);
        assert!(
            tight.filtered > loose.filtered,
            "tight {tight:?} loose {loose:?}"
        );
    }
}
