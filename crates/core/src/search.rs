//! Threshold-based graph similarity search (the application of Section 2
//! of the paper).
//!
//! Given a query graph and a threshold `τ`, retrieve every database graph
//! whose GED to the query is `≤ τ`. The classical pipeline is
//! *filter-then-verify*:
//!
//! 1. **filter** — cheap lower bounds (label-set, degree-sequence) discard
//!    candidates whose bound already exceeds `τ`;
//! 2. **prune** — a fast feasible upper bound (best-matching rounding of a
//!    GEDGW coupling) *accepts* candidates whose upper bound is `≤ τ`;
//! 3. **verify** — the surviving candidates run a τ-bounded exact A\*
//!    that aborts as soon as the optimum provably exceeds `τ`.
//!
//! Setting `τ = ∞` degrades to exact GED computation, exactly as the paper
//! notes for Nass / AStar-BMao.

use crate::gedgw::Gedgw;
use crate::lower_bound::{degree_sequence_lower_bound, label_set_lower_bound};
use crate::pairs::ordered;
use ged_graph::{Graph, NodeMapping};
use ged_linalg::lsap_min;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of one candidate in a similarity search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Discarded by a lower bound (`bound > τ` proves `GED > τ`).
    FilteredOut {
        /// The lower bound that exceeded the threshold.
        bound: usize,
    },
    /// Accepted by an upper bound without exact verification.
    AcceptedByUpperBound {
        /// The feasible upper bound (`≤ τ`).
        bound: usize,
    },
    /// Exact verification concluded `GED ≤ τ`.
    VerifiedMatch {
        /// The exact GED.
        ged: usize,
    },
    /// Exact verification concluded `GED > τ`.
    VerifiedNonMatch,
}

/// Statistics of the τ-exact filter–prune–verify pipeline (how much work
/// each stage saved). The engine's approximate store search reports the
/// analogous [`crate::engine::SearchStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactSearchStats {
    /// Candidates discarded by lower bounds.
    pub filtered: usize,
    /// Candidates accepted by the upper bound.
    pub accepted_early: usize,
    /// Candidates that required bounded exact verification.
    pub verified: usize,
}

/// τ-bounded exact GED: returns `Some(ged)` if `GED(g1,g2) <= tau`, `None`
/// otherwise. A* with the admissible heuristic, aborting any branch whose
/// `f`-value exceeds `tau` — far cheaper than unbounded exact search for
/// small thresholds.
#[must_use]
pub fn bounded_exact_ged(g1: &Graph, g2: &Graph, tau: usize) -> Option<usize> {
    let (a, b, _) = ordered(g1, g2);
    let n1 = a.num_nodes();
    if label_set_lower_bound(a, b) > tau {
        return None;
    }

    #[derive(Clone)]
    struct State {
        mapping: Vec<u32>,
        g: usize,
    }
    let mut heap: BinaryHeap<Reverse<(usize, usize, usize)>> = BinaryHeap::new();
    let mut states = vec![State {
        mapping: Vec::new(),
        g: 0,
    }];
    heap.push(Reverse((0, n1, 0)));

    while let Some(Reverse((f, _, idx))) = heap.pop() {
        if f > tau {
            return None; // smallest f already exceeds τ => GED > τ
        }
        let state = states[idx].clone();
        if state.mapping.len() == n1 {
            let total = state.g + closing_cost(b, &state.mapping);
            if total <= tau {
                return Some(total);
            }
            continue;
        }
        let mut used = vec![false; b.num_nodes()];
        for &v in &state.mapping {
            used[v as usize] = true;
        }
        let u = state.mapping.len() as u32;
        for v in 0..b.num_nodes() as u32 {
            if used[v as usize] {
                continue;
            }
            let mut delta = 0;
            if a.label(u) != b.label(v) {
                delta += 1;
            }
            for (w, &mw) in state.mapping.iter().enumerate() {
                if a.has_edge(u, w as u32) != b.has_edge(v, mw) {
                    delta += 1;
                }
            }
            let mut mapping = state.mapping.clone();
            mapping.push(v);
            let g = state.g + delta;
            let f = if mapping.len() == n1 {
                g + closing_cost(b, &mapping)
            } else {
                g + remainder_bound(a, b, &mapping)
            };
            if f > tau {
                continue;
            }
            let depth = mapping.len();
            states.push(State { mapping, g });
            heap.push(Reverse((f, n1 - depth, states.len() - 1)));
        }
    }
    None
}

fn closing_cost(g2: &Graph, mapping: &[u32]) -> usize {
    let mut matched = vec![false; g2.num_nodes()];
    for &v in mapping {
        matched[v as usize] = true;
    }
    let mut cost = g2.num_nodes() - mapping.len();
    for (v, w) in g2.edges() {
        if !matched[v as usize] || !matched[w as usize] {
            cost += 1;
        }
    }
    cost
}

fn remainder_bound(g1: &Graph, g2: &Graph, mapping: &[u32]) -> usize {
    let depth = mapping.len();
    let mut used = vec![false; g2.num_nodes()];
    for &v in mapping {
        used[v as usize] = true;
    }
    let mut rest1: Vec<_> = (depth..g1.num_nodes())
        .map(|u| g1.label(u as u32))
        .collect();
    let mut rest2: Vec<_> = (0..g2.num_nodes())
        .filter(|&v| !used[v])
        .map(|v| g2.label(v as u32))
        .collect();
    rest1.sort_unstable();
    rest2.sort_unstable();
    let (mut i, mut j, mut o1, mut o2) = (0, 0, 0usize, 0usize);
    while i < rest1.len() && j < rest2.len() {
        match rest1[i].cmp(&rest2[j]) {
            std::cmp::Ordering::Less => {
                o1 += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                o2 += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    o1 += rest1.len() - i;
    o2 += rest2.len() - j;
    let e1 = g1
        .edges()
        .filter(|&(x, y)| (x as usize) >= depth || (y as usize) >= depth)
        .count();
    let e2 = g2
        .edges()
        .filter(|&(x, y)| !used[x as usize] || !used[y as usize])
        .count();
    o1.max(o2) + e1.abs_diff(e2)
}

/// Fast feasible upper bound: round a (cheap) GEDGW coupling to a matching
/// and take the induced cost.
#[must_use]
pub fn fast_upper_bound(g1: &Graph, g2: &Graph) -> usize {
    let (a, b, _) = ordered(g1, g2);
    let solve = Gedgw::new(a, b)
        .with_options(crate::gedgw::GedgwOptions {
            max_iter: 15,
            tol: 1e-7,
        })
        .solve();
    let neg = solve.coupling.scale(-1.0);
    let assignment = lsap_min(&neg);
    let mapping = NodeMapping::new(assignment.row_to_col.iter().map(|&c| c as u32).collect());
    mapping.induced_cost(a, b)
}

/// Runs the filter–prune–verify pipeline over a database. Returns the
/// per-candidate verdicts (indexed like `database`) and stage statistics.
pub fn similarity_search(
    database: &[Graph],
    query: &Graph,
    tau: usize,
) -> (Vec<Verdict>, ExactSearchStats) {
    let mut stats = ExactSearchStats::default();
    let verdicts = database
        .iter()
        .map(|cand| {
            let lb =
                label_set_lower_bound(query, cand).max(degree_sequence_lower_bound(query, cand));
            if lb > tau {
                stats.filtered += 1;
                return Verdict::FilteredOut { bound: lb };
            }
            let ub = fast_upper_bound(query, cand);
            if ub <= tau {
                stats.accepted_early += 1;
                return Verdict::AcceptedByUpperBound { bound: ub };
            }
            stats.verified += 1;
            match bounded_exact_ged(query, cand, tau) {
                Some(ged) => Verdict::VerifiedMatch { ged },
                None => Verdict::VerifiedNonMatch,
            }
        })
        .collect();
    (verdicts, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::generate;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn exact(g1: &Graph, g2: &Graph) -> usize {
        // τ-bounded search with an infinite budget is plain exact A*.
        bounded_exact_ged(g1, g2, usize::MAX / 2).expect("unbounded always succeeds")
    }

    #[test]
    fn bounded_matches_exact_within_threshold() {
        let mut rng = SmallRng::seed_from_u64(201);
        for _ in 0..25 {
            let g1 = generate::random_connected(rng.gen_range(3..=6), 1, &[0.5, 0.5], &mut rng);
            let g2 = generate::random_connected(rng.gen_range(3..=6), 1, &[0.5, 0.5], &mut rng);
            let d = exact(&g1, &g2);
            assert_eq!(bounded_exact_ged(&g1, &g2, d), Some(d));
            if d > 0 {
                assert_eq!(bounded_exact_ged(&g1, &g2, d - 1), None);
            }
            assert_eq!(bounded_exact_ged(&g1, &g2, d + 3), Some(d));
        }
    }

    #[test]
    fn upper_bound_is_feasible() {
        let mut rng = SmallRng::seed_from_u64(202);
        for _ in 0..15 {
            let g1 = generate::random_connected(5, 1, &[0.5, 0.5], &mut rng);
            let g2 = generate::random_connected(6, 2, &[0.5, 0.5], &mut rng);
            assert!(fast_upper_bound(&g1, &g2) >= exact(&g1, &g2));
        }
    }

    #[test]
    fn search_agrees_with_exhaustive_verification() {
        let mut rng = SmallRng::seed_from_u64(203);
        let db: Vec<Graph> = (0..20)
            .map(|_| {
                generate::random_connected(rng.gen_range(4..=7), 1, &[0.5, 0.3, 0.2], &mut rng)
            })
            .collect();
        let query = generate::random_connected(5, 1, &[0.5, 0.3, 0.2], &mut rng);
        for tau in [1usize, 3, 5, 8] {
            let (verdicts, stats) = similarity_search(&db, &query, tau);
            assert_eq!(
                stats.filtered + stats.accepted_early + stats.verified,
                db.len()
            );
            for (cand, verdict) in db.iter().zip(&verdicts) {
                let truth = exact(&query, cand) <= tau;
                let claimed = matches!(
                    verdict,
                    Verdict::AcceptedByUpperBound { .. } | Verdict::VerifiedMatch { .. }
                );
                assert_eq!(claimed, truth, "tau={tau}: verdict {verdict:?}");
            }
        }
    }

    #[test]
    fn filtering_saves_work_for_tight_thresholds() {
        let mut rng = SmallRng::seed_from_u64(204);
        // Query with a distinctive label multiset vs a varied database.
        let db: Vec<Graph> = (0..30)
            .map(|_| generate::random_connected(rng.gen_range(4..=9), 2, &[0.2; 5], &mut rng))
            .collect();
        let query = generate::random_connected(5, 1, &[0.2; 5], &mut rng);
        let (_, tight) = similarity_search(&db, &query, 1);
        let (_, loose) = similarity_search(&db, &query, 12);
        assert!(
            tight.filtered > loose.filtered,
            "tight {tight:?} loose {loose:?}"
        );
    }
}
