//! GEDGW: unsupervised GED via optimal transport + Gromov–Wasserstein
//! discrepancy (Section 5 of the paper).
//!
//! The smaller graph is padded with `n2 - n1` label-less, edge-less dummy
//! nodes so that both graphs have `n` nodes, and GED computation becomes the
//! quadratic program of Eq. (17):
//!
//! ```text
//! min_{π ∈ Π(1_n, 1_n)}  ⟨π, M⟩ + ½ ⟨π, L(A1, A2) ⊗ π⟩
//! ```
//!
//! * the linear term (`M` = node-label mismatch costs, dummies always
//!   mismatch) prices node relabelings and insertions — an OT problem;
//! * the quadratic term prices edge insertions/deletions — a GW problem.
//!
//! For a binary permutation `π` the objective is *exactly* the edit cost of
//! the corresponding node matching (Invariant B in DESIGN.md, tested below);
//! relaxing to the Birkhoff polytope and running conditional gradient
//! (Algorithm 2) yields a fractional coupling whose objective approximates
//! GED and whose entries rank node-matching confidence for GEP generation.

use crate::kbest::{kbest_edit_path, KBestResult};
use crate::pairs::ordered;
use crate::workspace::GedWorkspace;
use ged_graph::Graph;
use ged_linalg::Matrix;
use ged_ot::cg::{conditional_gradient_in, CgOptions};

/// Options for the GEDGW solver.
#[derive(Clone, Copy, Debug)]
pub struct GedgwOptions {
    /// Maximum conditional-gradient iterations (paper's `K`).
    pub max_iter: usize,
    /// Convergence tolerance on the objective.
    pub tol: f64,
}

impl Default for GedgwOptions {
    fn default() -> Self {
        GedgwOptions {
            max_iter: 50,
            tol: 1e-9,
        }
    }
}

/// Result of a GEDGW solve.
#[derive(Clone, Debug)]
pub struct GedgwResult {
    /// The GED estimate (objective value at the final coupling; generally
    /// fractional).
    pub ged: f64,
    /// Coupling restricted to real nodes of the smaller graph
    /// (`n1 x n2`, rows = smaller graph in the *ordered* orientation).
    pub coupling: Matrix,
    /// Whether the input pair was swapped to enforce `n1 <= n2`.
    pub swapped: bool,
    /// Conditional-gradient iterations performed.
    pub iterations: usize,
}

/// The GEDGW solver for one graph pair.
pub struct Gedgw<'a> {
    g1: &'a Graph,
    g2: &'a Graph,
    swapped: bool,
    options: GedgwOptions,
}

impl<'a> Gedgw<'a> {
    /// Prepares a solver for `(g1, g2)` (order-insensitive).
    #[must_use]
    pub fn new(g1: &'a Graph, g2: &'a Graph) -> Self {
        let (a, b, swapped) = ordered(g1, g2);
        Gedgw {
            g1: a,
            g2: b,
            swapped,
            options: GedgwOptions::default(),
        }
    }

    /// Overrides the solver options.
    #[must_use]
    pub fn with_options(mut self, options: GedgwOptions) -> Self {
        self.options = options;
        self
    }

    /// Builds the node-cost matrix `M` (`n x n`, dummy rows cost 1 against
    /// every real node: matching them is a node insertion).
    #[must_use]
    pub fn node_cost_matrix(&self) -> Matrix {
        let n1 = self.g1.num_nodes();
        let n = self.g2.num_nodes();
        Matrix::from_fn(n, n, |i, k| {
            if i >= n1 {
                1.0 // dummy node of G1 matched to v_k: insertion of v_k
            } else if self.g1.label(i as u32) == self.g2.label(k as u32) {
                0.0
            } else {
                1.0 // relabel
            }
        })
    }

    /// Runs conditional gradient and returns the GED estimate and coupling.
    #[must_use]
    pub fn solve(&self) -> GedgwResult {
        self.solve_in(&mut GedWorkspace::new())
    }

    /// [`Self::solve`] with every problem matrix and solver buffer drawn
    /// from `ws`, so batched callers allocate per thread instead of per
    /// pair. Bit-identical to [`Self::solve`] for any (possibly dirty)
    /// workspace.
    #[must_use]
    pub fn solve_in(&self, ws: &mut GedWorkspace) -> GedgwResult {
        let n1 = self.g1.num_nodes();
        let n = self.g2.num_nodes();
        if n == 0 {
            return GedgwResult {
                ged: 0.0,
                coupling: Matrix::zeros(0, 0),
                swapped: self.swapped,
                iterations: 0,
            };
        }
        let GedWorkspace {
            ot,
            m,
            a1,
            a2,
            pi,
            csr1,
            csr2,
            ..
        } = ws;
        csr1.rebuild_from(self.g1);
        csr2.rebuild_from(self.g2);

        // Node-cost matrix M over the flat label arenas (dummy rows of the
        // padded G1 always mismatch: matching them is a node insertion).
        let (l1, l2) = (csr1.labels(), csr2.labels());
        m.resize_zeroed(n, n);
        for i in 0..n {
            let row = m.row_mut(i);
            let li = l1.get(i);
            for (k, lk) in l2.iter().enumerate() {
                row[k] = if li != Some(lk) { 1.0 } else { 0.0 };
            }
        }
        // Padded adjacencies straight from the flat neighbor arenas
        // (dummy nodes of G1 are edge-less, so their rows stay zero).
        a1.resize_zeroed(n, n);
        for u in 0..n1 {
            let row = a1.row_mut(u);
            for &v in csr1.neighbors(u as u32) {
                row[v as usize] = 1.0;
            }
        }
        a2.resize_zeroed(n, n);
        for u in 0..n {
            let row = a2.row_mut(u);
            for &v in csr2.neighbors(u as u32) {
                row[v as usize] = 1.0;
            }
        }

        // Uniform doubly-stochastic start (the barycenter of the polytope).
        pi.resize_zeroed(n, n);
        pi.as_mut_slice().fill(1.0 / n as f64);
        let opts = CgOptions {
            max_iter: self.options.max_iter,
            tol: self.options.tol,
            quad_weight: 1.0,
        };
        let run = conditional_gradient_in(m, a1, a2, pi, &opts, ot);

        // Keep only the real (non-dummy) rows for downstream GEP generation.
        let coupling = Matrix::from_fn(n1, n, |i, k| pi[(i, k)]);
        GedgwResult {
            ged: run.objective,
            coupling,
            swapped: self.swapped,
            iterations: run.iterations,
        }
    }

    /// Full objective value at an arbitrary padded coupling (exposed for
    /// tests and the ensemble).
    #[must_use]
    pub fn objective_at(&self, padded_coupling: &Matrix) -> f64 {
        let n = self.g2.num_nodes();
        let m = self.node_cost_matrix();
        let a1 = Matrix::from_vec(n, n, self.g1.adjacency_matrix_padded(n));
        let a2 = Matrix::from_vec(n, n, self.g2.adjacency_matrix());
        ged_ot::cg::qp_objective(&m, &a1, &a2, 1.0, padded_coupling)
    }

    /// Solves and generates a feasible edit path with the k-best matching
    /// framework. Returns the solve result plus the path result (path is in
    /// the ordered orientation: smaller graph -> larger graph).
    #[must_use]
    pub fn solve_with_path(&self, k: usize) -> (GedgwResult, KBestResult) {
        let res = self.solve();
        let path = kbest_edit_path(self.g1, self.g2, &res.coupling, k);
        (res, path)
    }

    /// The ordered graphs `(smaller, larger)` this solver works on.
    #[must_use]
    pub fn graphs(&self) -> (&Graph, &Graph) {
        (self.g1, self.g2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::{generate, Label, NodeMapping};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn figure1() -> (Graph, Graph) {
        let g1 = Graph::from_edges(
            vec![Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 2)],
        );
        let g2 = Graph::from_edges(
            vec![Label(1), Label(1), Label(3), Label(4)],
            &[(0, 1), (0, 2), (2, 3)],
        );
        (g1, g2)
    }

    /// Extends a mapping of `g1`'s real nodes into a full padded permutation
    /// (dummies take the remaining columns) and returns its binary coupling.
    fn padded_permutation(mapping: &NodeMapping, n: usize) -> Matrix {
        let mut used = vec![false; n];
        let mut pi = Matrix::zeros(n, n);
        for (u, &v) in mapping.as_slice().iter().enumerate() {
            pi[(u, v as usize)] = 1.0;
            used[v as usize] = true;
        }
        let mut next = mapping.len();
        for v in 0..n {
            if !used[v] {
                pi[(next, v)] = 1.0;
                next += 1;
            }
        }
        pi
    }

    #[test]
    fn invariant_b_objective_equals_edit_cost() {
        // For every injective mapping of the Figure 1 pair, the GEDGW
        // objective at the padded permutation equals the induced edit cost.
        let (g1, g2) = figure1();
        let solver = Gedgw::new(&g1, &g2);
        for a in 0..4u32 {
            for b in 0..4u32 {
                for c in 0..4u32 {
                    if a != b && a != c && b != c {
                        let m = NodeMapping::new(vec![a, b, c]);
                        let pi = padded_permutation(&m, 4);
                        let obj = solver.objective_at(&pi);
                        let cost = m.induced_cost(&g1, &g2) as f64;
                        assert!(
                            (obj - cost).abs() < 1e-9,
                            "mapping {m:?}: objective {obj} vs cost {cost}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn invariant_b_random_pairs() {
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..30 {
            let n1 = rng.gen_range(2..=5);
            let n2 = rng.gen_range(n1..=6);
            let g1 = generate::random_connected(n1, 1, &[0.4, 0.3, 0.3], &mut rng);
            let g2 = generate::random_connected(n2, 1, &[0.4, 0.3, 0.3], &mut rng);
            let solver = Gedgw::new(&g1, &g2);
            // Random injective mapping.
            let mut cols: Vec<u32> = (0..n2 as u32).collect();
            use rand::seq::SliceRandom;
            cols.shuffle(&mut rng);
            let m = NodeMapping::new(cols[..n1].to_vec());
            let pi = padded_permutation(&m, n2);
            let obj = solver.objective_at(&pi);
            assert!((obj - m.induced_cost(&g1, &g2) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn identical_graphs_yield_zero() {
        let (g1, _) = figure1();
        let res = Gedgw::new(&g1, &g1).solve();
        assert!(res.ged.abs() < 1e-9, "ged {}", res.ged);
    }

    #[test]
    fn figure1_estimate_close_to_exact() {
        let (g1, g2) = figure1();
        let res = Gedgw::new(&g1, &g2).solve();
        // Exact GED is 4; the CG local optimum lands at (or near) it.
        assert!(res.ged <= 6.0 && res.ged >= 2.0, "ged {}", res.ged);
        let (_, path) = Gedgw::new(&g1, &g2).solve_with_path(20);
        assert_eq!(path.ged, 4, "k-best rounding should recover the exact GED");
    }

    #[test]
    fn swap_is_detected_and_symmetric() {
        let (g1, g2) = figure1();
        let fwd = Gedgw::new(&g1, &g2).solve();
        let bwd = Gedgw::new(&g2, &g1).solve();
        assert!(!fwd.swapped);
        assert!(bwd.swapped);
        assert!((fwd.ged - bwd.ged).abs() < 1e-9);
    }

    #[test]
    fn coupling_shape_is_unpadded() {
        let (g1, g2) = figure1();
        let res = Gedgw::new(&g1, &g2).solve();
        assert_eq!(res.coupling.shape(), (3, 4));
    }

    #[test]
    fn perturbed_pairs_track_delta() {
        // GEDGW on (G, perturb(G, Δ)) should land near Δ for small Δ.
        let mut rng = SmallRng::seed_from_u64(32);
        let mut total_err = 0.0;
        let trials = 15;
        for _ in 0..trials {
            let g = generate::random_connected(7, 2, &[0.5, 0.3, 0.2], &mut rng);
            let p = generate::perturb_with_edits(&g, 3, 3, &mut rng);
            let (_, path) = Gedgw::new(&g, &p.graph).solve_with_path(20);
            // Feasible estimate: path length >= true GED, and true GED <= applied.
            assert!(
                path.ged <= p.applied + 4,
                "way off: {} vs {}",
                path.ged,
                p.applied
            );
            total_err += (path.ged as f64 - p.applied as f64).abs();
        }
        assert!(
            total_err / trials as f64 <= 1.5,
            "avg err {}",
            total_err / trials as f64
        );
    }
}
