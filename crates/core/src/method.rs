//! Typed identifiers for every GED method in the system.
//!
//! [`MethodKind`] is the registry key and selection handle of the query
//! API: engines are built "for" a method, registries map each kind to a
//! [`crate::solver::GedSolver`], and CLIs parse user input into a kind via
//! [`FromStr`] (case-insensitive on the paper's display names). The
//! variant order follows Table 3 of the paper, which the experiment
//! harness relies on for row ordering.

use crate::error::GedError;
use std::fmt;
use std::str::FromStr;

/// One of the nine GED methods of the paper's evaluation (Tables 3-4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MethodKind {
    /// SimGNN regressor.
    SimGnn,
    /// GPN stand-in (GCN-flavored regressor).
    Gpn,
    /// TaGSim type-count regressor.
    TaGSim,
    /// GEDGNN comparator.
    GedGnn,
    /// The paper's supervised inverse-OT model.
    Gediot,
    /// Hungarian+VJ classical combination.
    Classic,
    /// The paper's unsupervised OT/GW solver.
    Gedgw,
    /// Noah-like guided beam search.
    Noah,
    /// The paper's ensemble (better of GEDIOT and GEDGW).
    Gedhot,
}

impl MethodKind {
    /// All nine methods, in the paper's Table-3 row order.
    pub const ALL: [MethodKind; 9] = [
        MethodKind::SimGnn,
        MethodKind::Gpn,
        MethodKind::TaGSim,
        MethodKind::GedGnn,
        MethodKind::Gediot,
        MethodKind::Classic,
        MethodKind::Gedgw,
        MethodKind::Noah,
        MethodKind::Gedhot,
    ];

    /// Display name as in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MethodKind::SimGnn => "SimGNN",
            MethodKind::Gpn => "GPN",
            MethodKind::TaGSim => "TaGSim",
            MethodKind::GedGnn => "GEDGNN",
            MethodKind::Gediot => "GEDIOT",
            MethodKind::Classic => "Classic",
            MethodKind::Gedgw => "GEDGW",
            MethodKind::Noah => "Noah",
            MethodKind::Gedhot => "GEDHOT",
        }
    }

    /// Whether the method can realize a concrete edit path (the Table-4
    /// subset). Pure value regressors return `false`.
    #[must_use]
    pub fn path_capable(self) -> bool {
        !matches!(
            self,
            MethodKind::SimGnn | MethodKind::Gpn | MethodKind::TaGSim
        )
    }

    /// All Table-3 methods in the paper's row order.
    #[must_use]
    pub fn table3() -> Vec<MethodKind> {
        Self::ALL.to_vec()
    }

    /// Table-4 methods (those that can generate edit paths), in the
    /// paper's row order.
    #[must_use]
    pub fn table4() -> Vec<MethodKind> {
        vec![
            MethodKind::Classic,
            MethodKind::Noah,
            MethodKind::GedGnn,
            MethodKind::Gediot,
            MethodKind::Gedgw,
            MethodKind::Gedhot,
        ]
    }
}

impl fmt::Display for MethodKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.name())
    }
}

impl FromStr for MethodKind {
    type Err = GedError;

    /// Parses a display name, case-insensitively (`"GEDIOT"`, `"gediot"`,
    /// `"GedIot"` all work). Surrounding whitespace is ignored.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let needle = s.trim();
        MethodKind::ALL
            .into_iter()
            .find(|m| m.name().eq_ignore_ascii_case(needle))
            .ok_or_else(|| GedError::UnknownMethod(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_from_str() {
        for m in MethodKind::ALL {
            assert_eq!(m.name().parse::<MethodKind>().unwrap(), m);
            assert_eq!(m.name().to_lowercase().parse::<MethodKind>().unwrap(), m);
            assert_eq!(format!(" {} ", m.name()).parse::<MethodKind>().unwrap(), m);
        }
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let err = "GEDX".parse::<MethodKind>().unwrap_err();
        assert_eq!(err, GedError::UnknownMethod("GEDX".into()));
    }

    #[test]
    fn display_matches_table_names_and_pads() {
        assert_eq!(MethodKind::Gediot.to_string(), "GEDIOT");
        assert_eq!(format!("{:<9}", MethodKind::Gpn), "GPN      ");
    }

    #[test]
    fn table4_is_exactly_the_path_capable_subset() {
        let t4 = MethodKind::table4();
        for m in MethodKind::ALL {
            assert_eq!(t4.contains(&m), m.path_capable(), "{m:?}");
        }
    }
}
