//! The label-set GED lower bound (Eq. 22 of the paper, after [Chang et al.
//! 2020]):
//!
//! ```text
//! GED_LB(G1, G2) = |L(V1) ⊕ L(V2)| + | |E1| - |E2| |
//! ```
//!
//! where `⊕` is the multiset symmetric difference. Computable in linear
//! time; used by the k-best matching framework to prune unpromising
//! subspaces, and — in the [`GraphSignature`]-based variants
//! ([`label_set_lower_bound_sig`], [`degree_sequence_lower_bound_sig`]) —
//! by the engine's filter–verify similarity search, where the sorted
//! multisets the bounds consume are precomputed once per stored graph
//! instead of re-derived per pair.

use ged_graph::{Graph, GraphSignature, Label};

/// Surplus counts of two sorted multisets: `(|A \ B|, |B \ A|)`, via one
/// merge pass. Shared with the allocation-free bound evaluation inside
/// [`crate::search`].
pub(crate) fn sorted_multiset_surplus(a: &[Label], b: &[Label]) -> (usize, usize) {
    let (mut i, mut j) = (0usize, 0usize);
    let (mut only1, mut only2) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                only1 += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                only2 += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    (only1 + a.len() - i, only2 + b.len() - j)
}

/// [`label_set_lower_bound`] evaluated on precomputed signatures — the
/// form the filter stage of the engine's similarity search consumes
/// (identical value, no per-pair sorting).
#[must_use]
pub fn label_set_lower_bound_sig(a: &GraphSignature, b: &GraphSignature) -> usize {
    let (only1, only2) = sorted_multiset_surplus(a.labels(), b.labels());
    only1.max(only2) + a.num_edges().abs_diff(b.num_edges())
}

/// [`degree_sequence_lower_bound`] evaluated on precomputed signatures
/// (identical value, no per-pair sorting).
#[must_use]
pub fn degree_sequence_lower_bound_sig(a: &GraphSignature, b: &GraphSignature) -> usize {
    let n = a.num_nodes().max(b.num_nodes());
    // Zero-padding the shorter sorted sequence puts the zeros up front, so
    // aligned position `i` reads from sequence position `i - pad`.
    let (d1, d2) = (a.degrees(), b.degrees());
    let (pad1, pad2) = (n - d1.len(), n - d2.len());
    let mut diff = 0usize;
    for i in 0..n {
        let x = if i < pad1 { 0 } else { d1[i - pad1] };
        let y = if i < pad2 { 0 } else { d2[i - pad2] };
        diff += x.abs_diff(y);
    }
    let (only1, only2) = sorted_multiset_surplus(a.labels(), b.labels());
    only1.max(only2) + diff.div_ceil(2)
}

/// The label-multiset + edge-count lower bound on `GED(g1, g2)`.
///
/// The node term counts the label relabels/insertions any edit path must
/// perform. The multiset symmetric difference `|A ⊕ B|` overcounts by
/// pairing a surplus label in `G1` with a surplus label in `G2` as *two*
/// entries while one relabel fixes both, so the node term is
/// `max(surplus1, surplus2)` = `max(|A\B|, |B\A|)` — the standard tight
/// variant used for uniform costs.
#[must_use]
pub fn label_set_lower_bound(g1: &Graph, g2: &Graph) -> usize {
    let (only1, only2) = sorted_multiset_surplus(&g1.label_multiset(), &g2.label_multiset());
    only1.max(only2) + g1.num_edges().abs_diff(g2.num_edges())
}

/// Lower bound refined with a partial (forced) matching: forced pairs
/// contribute their exact label mismatch; the label-set bound applies to the
/// remaining nodes. Used by the k-best framework's subspace pruning.
#[must_use]
pub fn partial_matching_lower_bound(g1: &Graph, g2: &Graph, forced: &[(usize, usize)]) -> usize {
    let mut fixed_cost = 0usize;
    let mut used1 = vec![false; g1.num_nodes()];
    let mut used2 = vec![false; g2.num_nodes()];
    for &(u, v) in forced {
        used1[u] = true;
        used2[v] = true;
        if g1.label(u as u32) != g2.label(v as u32) {
            fixed_cost += 1;
        }
    }
    // Label multiset bound on unmatched nodes.
    let mut rest1: Vec<_> = (0..g1.num_nodes())
        .filter(|&u| !used1[u])
        .map(|u| g1.label(u as u32))
        .collect();
    let mut rest2: Vec<_> = (0..g2.num_nodes())
        .filter(|&v| !used2[v])
        .map(|v| g2.label(v as u32))
        .collect();
    rest1.sort_unstable();
    rest2.sort_unstable();
    let (only1, only2) = sorted_multiset_surplus(&rest1, &rest2);

    fixed_cost + only1.max(only2) + g1.num_edges().abs_diff(g2.num_edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::{Graph, Label};

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        Graph::from_edges(labels.iter().map(|&l| Label(l)).collect(), edges)
    }

    #[test]
    fn identical_graphs_have_zero_bound() {
        let a = g(&[1, 2, 3], &[(0, 1), (1, 2)]);
        assert_eq!(label_set_lower_bound(&a, &a), 0);
    }

    #[test]
    fn counts_label_surplus_and_edge_gap() {
        let a = g(&[1, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
        let b = g(&[1, 3, 3, 4], &[(0, 1)]);
        // a-only labels: {1, 2}; b-only: {3, 3, 4} -> node term max(2,3)=3.
        // Edge gap |3-1| = 2. Total 5.
        assert_eq!(label_set_lower_bound(&a, &b), 5);
    }

    #[test]
    fn bound_is_admissible_on_figure1() {
        // The Figure 1 pair has exact GED 4; the bound must not exceed it.
        let g1 = g(&[1, 1, 2], &[(0, 1), (0, 2), (1, 2)]);
        let g2 = g(&[1, 1, 3, 4], &[(0, 1), (0, 2), (2, 3)]);
        let lb = label_set_lower_bound(&g1, &g2);
        assert!(lb <= 4, "lb = {lb}");
        assert!(lb >= 2);
    }

    #[test]
    fn symmetric() {
        let a = g(&[1, 2], &[(0, 1)]);
        let b = g(&[3, 3, 3], &[]);
        assert_eq!(label_set_lower_bound(&a, &b), label_set_lower_bound(&b, &a));
    }

    #[test]
    fn partial_bound_dominates_base_bound() {
        let a = g(&[1, 1, 2], &[(0, 1), (1, 2)]);
        let b = g(&[2, 1, 1], &[(0, 1)]);
        let base = label_set_lower_bound(&a, &b);
        // Forcing a label-mismatched pair can only raise the bound.
        let forced = vec![(0usize, 0usize)]; // labels 1 vs 2: mismatch
        let refined = partial_matching_lower_bound(&a, &b, &forced);
        assert!(refined >= base, "refined {refined} < base {base}");
    }

    #[test]
    fn partial_bound_with_empty_forced_equals_base() {
        let a = g(&[1, 5, 2], &[(0, 1)]);
        let b = g(&[2, 1], &[(0, 1)]);
        assert_eq!(
            partial_matching_lower_bound(&a, &b, &[]),
            label_set_lower_bound(&a, &b)
        );
    }
}

/// Degree-sequence GED lower bound.
///
/// The label-multiset term counts node operations as in
/// [`label_set_lower_bound`]; the edge term observes that one edge edit
/// changes the degrees of exactly two nodes by one each, so the number of
/// edge operations is at least `⌈D/2⌉` where `D` is the minimum L1
/// distance between the (zero-padded) degree sequences over all node
/// alignments — attained by the sorted order (rearrangement inequality).
/// Neither bound dominates the other: combine with
/// `max(label_set_lower_bound, degree_sequence_lower_bound)`.
#[must_use]
pub fn degree_sequence_lower_bound(g1: &Graph, g2: &Graph) -> usize {
    let n = g1.num_nodes().max(g2.num_nodes());
    let mut d1: Vec<usize> = (0..g1.num_nodes() as u32).map(|u| g1.degree(u)).collect();
    let mut d2: Vec<usize> = (0..g2.num_nodes() as u32).map(|u| g2.degree(u)).collect();
    d1.resize(n, 0);
    d2.resize(n, 0);
    d1.sort_unstable();
    d2.sort_unstable();
    let diff: usize = d1.iter().zip(&d2).map(|(&a, &b)| a.abs_diff(b)).sum();
    let edge_term = diff.div_ceil(2);

    // Node term: same label-multiset argument as the label-set bound.
    let (o1, o2) = sorted_multiset_surplus(&g1.label_multiset(), &g2.label_multiset());
    o1.max(o2) + edge_term
}

#[cfg(test)]
mod degree_bound_tests {
    use super::*;
    use ged_graph::{generate, NodeMapping};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn brute_ged(g1: &Graph, g2: &Graph) -> usize {
        fn rec(
            g1: &Graph,
            g2: &Graph,
            u: usize,
            used: &mut Vec<bool>,
            map: &mut Vec<u32>,
            best: &mut usize,
        ) {
            if u == g1.num_nodes() {
                *best = (*best).min(NodeMapping::new(map.clone()).induced_cost(g1, g2));
                return;
            }
            for v in 0..g2.num_nodes() {
                if !used[v] {
                    used[v] = true;
                    map.push(v as u32);
                    rec(g1, g2, u + 1, used, map, best);
                    map.pop();
                    used[v] = false;
                }
            }
        }
        let mut best = usize::MAX;
        rec(
            g1,
            g2,
            0,
            &mut vec![false; g2.num_nodes()],
            &mut Vec::new(),
            &mut best,
        );
        best
    }

    #[test]
    fn degree_bound_is_admissible() {
        let mut rng = SmallRng::seed_from_u64(301);
        for _ in 0..40 {
            let n1 = rng.gen_range(2..=5);
            let n2 = rng.gen_range(n1..=6);
            let g1 = generate::random_connected(n1, 1, &[0.5, 0.5], &mut rng);
            let g2 = generate::random_connected(n2, 2, &[0.5, 0.5], &mut rng);
            let exact = brute_ged(&g1, &g2);
            let lb = degree_sequence_lower_bound(&g1, &g2);
            assert!(lb <= exact, "lb {lb} > exact {exact} for {g1:?} / {g2:?}");
        }
    }

    #[test]
    fn bounded_search_prefilter_stays_admissible() {
        // `bounded_exact_ged` pre-filters with BOTH bounds; if either were
        // inadmissible the search would wrongly reject a pair whose true
        // GED is within τ. Sweep random pairs: τ = exact must succeed with
        // the exact value, τ = exact - 1 must reject.
        use crate::search::bounded_exact_ged;
        let mut rng = SmallRng::seed_from_u64(303);
        for _ in 0..40 {
            let n1 = rng.gen_range(2..=5);
            let n2 = rng.gen_range(n1..=6);
            let g1 = generate::random_connected(n1, 1, &[0.5, 0.5], &mut rng);
            let g2 = generate::random_connected(n2, 2, &[0.5, 0.5], &mut rng);
            let exact = brute_ged(&g1, &g2);
            let lb = label_set_lower_bound(&g1, &g2).max(degree_sequence_lower_bound(&g1, &g2));
            assert!(lb <= exact, "combined pre-filter bound must be admissible");
            assert_eq!(
                bounded_exact_ged(&g1, &g2, exact),
                Some(exact),
                "pre-filter must never reject a pair with GED ≤ τ: {g1:?} / {g2:?}"
            );
            if exact > 0 {
                assert_eq!(bounded_exact_ged(&g1, &g2, exact - 1), None);
            }
        }
    }

    #[test]
    fn degree_bound_can_beat_label_bound() {
        // Same label multisets and edge counts, very different degrees:
        // star K1,4 vs path P5 (both unlabeled, 4 edges).
        let star = Graph::unlabeled_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let path = Graph::unlabeled_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(label_set_lower_bound(&star, &path), 0);
        // degrees star: [1,1,1,1,4], path: [1,1,2,2,2] -> D = 1+1+3 = 5?
        // sorted: star [1,1,1,1,4], path [1,1,2,2,2]: |1-2|+|1-2|+|4-2| = 4
        // edge term = 2.
        assert!(degree_sequence_lower_bound(&star, &path) >= 2);
    }

    #[test]
    fn identical_graphs_zero() {
        let g = Graph::unlabeled_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(degree_sequence_lower_bound(&g, &g), 0);
    }

    #[test]
    fn signature_bounds_equal_graph_bounds() {
        let mut rng = SmallRng::seed_from_u64(302);
        for _ in 0..60 {
            let n1 = rng.gen_range(1..=8);
            let n2 = rng.gen_range(1..=8);
            let g1 = generate::random_connected(n1, 1, &[0.4, 0.3, 0.3], &mut rng);
            let g2 = generate::random_connected(n2, 2, &[0.4, 0.3, 0.3], &mut rng);
            let (s1, s2) = (GraphSignature::of(&g1), GraphSignature::of(&g2));
            assert_eq!(
                label_set_lower_bound_sig(&s1, &s2),
                label_set_lower_bound(&g1, &g2),
                "{g1:?} / {g2:?}"
            );
            assert_eq!(
                degree_sequence_lower_bound_sig(&s1, &s2),
                degree_sequence_lower_bound(&g1, &g2),
                "{g1:?} / {g2:?}"
            );
        }
    }
}
