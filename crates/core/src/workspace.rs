//! The per-thread scratch state of the GED hot path.
//!
//! A [`GedWorkspace`] owns every reusable buffer one thread needs to run
//! GEDGW solves ([`crate::gedgw::Gedgw::solve_in`]), feasible upper
//! bounds ([`crate::search::fast_upper_bound_in`]), and τ-bounded exact
//! verification ([`crate::search::bounded_exact_ged_with_budget_in`])
//! back to back: the OT/Frank–Wolfe buffers of
//! [`ged_ot::OtWorkspace`], the GEDGW problem matrices, a pair of
//! [`ged_graph::CsrView`]s the search and cost-matrix readers iterate,
//! and the mark/label scratch of the A\* bounds.
//!
//! Batched drivers keep one workspace per worker thread
//! (`BatchRunner::map_init`) so a store-level query allocates
//! `O(threads)` instead of `O(pairs)`. Every `_in` entry point fully
//! re-initializes the state it reads, so a workspace left dirty by any
//! previous call — including one over differently-sized graphs — is
//! always safe to reuse, and the results are bit-identical to the
//! allocating entry points.

use ged_graph::{CsrView, Label};
use ged_linalg::Matrix;
use ged_ot::OtWorkspace;

/// Reusable scratch for the GEDGW + exact-search hot path. See the
/// [module docs](self).
#[derive(Clone, Debug, Default)]
pub struct GedWorkspace {
    /// Scratch for the Sinkhorn / conditional-gradient / LSAP kernels.
    pub ot: OtWorkspace,
    // GEDGW problem state: cost matrix, padded adjacencies, coupling,
    // negated coupling (for the best-matching rounding LSAP).
    pub(crate) m: Matrix,
    pub(crate) a1: Matrix,
    pub(crate) a2: Matrix,
    pub(crate) pi: Matrix,
    pub(crate) neg: Matrix,
    // Flat adjacency views of the current (ordered) pair.
    pub(crate) csr1: CsrView,
    pub(crate) csr2: CsrView,
    // A* bound scratch: node marks and sorted label/degree multisets.
    pub(crate) used: Vec<bool>,
    pub(crate) matched: Vec<bool>,
    pub(crate) rest1: Vec<Label>,
    pub(crate) rest2: Vec<Label>,
    pub(crate) deg1: Vec<usize>,
    pub(crate) deg2: Vec<usize>,
}

impl GedWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Resets `buf` to `len` copies of `value`, reusing its capacity.
pub(crate) fn reset<T: Copy>(buf: &mut Vec<T>, len: usize, value: T) {
    buf.clear();
    buf.resize(len, value);
}
