//! Graph-pair plumbing shared by all solvers.
//!
//! The paper assumes `n1 <= n2` throughout (GED is symmetric, so the pair is
//! swapped otherwise). [`GedPair`] carries a normalized pair together with
//! optional ground truth (exact GED and node matching) for training and
//! evaluation.

use ged_graph::{Graph, NodeMapping};
use std::cmp::Ordering;

/// Returns `(smaller, larger, swapped)` so that
/// `smaller.num_nodes() <= larger.num_nodes()`.
#[must_use]
pub fn ordered<'a>(g1: &'a Graph, g2: &'a Graph) -> (&'a Graph, &'a Graph, bool) {
    if g1.num_nodes() <= g2.num_nodes() {
        (g1, g2, false)
    } else {
        (g2, g1, true)
    }
}

/// A total, representation-level order on graphs: node count, then edge
/// count, then the label vector, then the sorted edge list. Used by
/// [`GedPair::new`] to canonicalize equal-size pairs — two structurally
/// identical graphs compare `Equal`, and for any `a != b` exactly one of
/// the two orientations is canonical, so the orientation never depends on
/// argument order.
pub(crate) fn structural_cmp(a: &Graph, b: &Graph) -> Ordering {
    a.num_nodes()
        .cmp(&b.num_nodes())
        .then_with(|| a.num_edges().cmp(&b.num_edges()))
        .then_with(|| a.labels().cmp(b.labels()))
        .then_with(|| a.edges().cmp(b.edges()))
}

/// A normalized graph pair (`g1.num_nodes() <= g2.num_nodes()`, with a
/// deterministic structural tie-break when the node counts are equal)
/// with optional supervision.
#[derive(Clone, Debug)]
pub struct GedPair {
    /// The smaller graph.
    pub g1: Graph,
    /// The larger graph.
    pub g2: Graph,
    /// Ground-truth GED, if known.
    pub ged: Option<f64>,
    /// Ground-truth node matching `V1 -> V2`, if known.
    pub mapping: Option<NodeMapping>,
}

impl GedPair {
    /// Builds an unsupervised pair, swapping so `n1 <= n2`.
    ///
    /// Equal-size pairs are canonicalized with a deterministic structural
    /// tie-break (edge count, then labels, then edge lists), so
    /// `new(a, b)` and `new(b, a)` always produce the *same* orientation.
    /// GED is symmetric but individual solvers need not be, and the
    /// engine's prediction cache keys on the normalized pair — without
    /// the tie-break, the "same" equal-size pair could be predicted (and
    /// cached) twice with two different values.
    #[must_use]
    pub fn new(g1: Graph, g2: Graph) -> Self {
        let keep = match g1.num_nodes().cmp(&g2.num_nodes()) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => structural_cmp(&g1, &g2) != Ordering::Greater,
        };
        if keep {
            GedPair {
                g1,
                g2,
                ged: None,
                mapping: None,
            }
        } else {
            GedPair {
                g1: g2,
                g2: g1,
                ged: None,
                mapping: None,
            }
        }
    }

    /// Builds an unsupervised pair preserving the caller's orientation
    /// whenever the node counts allow it (`n1 <= n2`), swapping only when
    /// they force it.
    ///
    /// Use this for direction-sensitive workloads — edit paths transform
    /// `g1` *into* `g2`, and [`Self::new`]'s equal-size canonicalization
    /// would silently invert the requested direction. Value workloads
    /// should prefer [`Self::new`], whose canonical orientation makes
    /// symmetric queries share one prediction (and one cache entry).
    #[must_use]
    pub fn directed(g1: Graph, g2: Graph) -> Self {
        let (g1, g2) = if g1.num_nodes() <= g2.num_nodes() {
            (g1, g2)
        } else {
            (g2, g1)
        };
        GedPair {
            g1,
            g2,
            ged: None,
            mapping: None,
        }
    }

    /// Builds a supervised pair. The mapping must map the smaller graph into
    /// the larger one; the caller is responsible for providing it in that
    /// orientation (swap before calling if needed). Unlike [`Self::new`],
    /// equal-size pairs keep the caller's orientation — the mapping pins
    /// it, so a structural tie-break would silently invert supervision.
    ///
    /// # Panics
    /// Panics if `g1` has more nodes than `g2` (supervised pairs cannot be
    /// auto-swapped because the mapping orientation would silently break) or
    /// if the mapping size is inconsistent.
    #[must_use]
    pub fn supervised(g1: Graph, g2: Graph, ged: f64, mapping: NodeMapping) -> Self {
        assert!(
            g1.num_nodes() <= g2.num_nodes(),
            "supervised pairs must already be ordered (n1 <= n2)"
        );
        assert_eq!(mapping.len(), g1.num_nodes(), "mapping must cover g1");
        GedPair {
            g1,
            g2,
            ged: Some(ged),
            mapping: Some(mapping),
        }
    }

    /// The normalized ground-truth GED (`nGED`, Section 4.4), if supervised.
    #[must_use]
    pub fn normalized_ged(&self) -> Option<f64> {
        self.ged
            .map(|g| ged_graph::normalized_ged(g, &self.g1, &self.g2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::Label;

    #[test]
    fn ordering() {
        let small = Graph::from_edges(vec![Label(0)], &[]);
        let big = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]);
        let (a, b, swapped) = ordered(&big, &small);
        assert!(swapped);
        assert_eq!(a.num_nodes(), 1);
        assert_eq!(b.num_nodes(), 2);

        let pair = GedPair::new(big.clone(), small.clone());
        assert!(pair.g1.num_nodes() <= pair.g2.num_nodes());
    }

    #[test]
    fn equal_size_pairs_canonicalize_independently_of_argument_order() {
        // Same node count, different structure: the orientation must be a
        // property of the pair, not of the call.
        let a = Graph::from_edges(vec![Label(1), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        let b = Graph::from_edges(
            vec![Label(1), Label(1), Label(3)],
            &[(0, 1), (0, 2), (1, 2)],
        );
        let ab = GedPair::new(a.clone(), b.clone());
        let ba = GedPair::new(b.clone(), a.clone());
        assert_eq!(ab.g1, ba.g1, "canonical smaller side must agree");
        assert_eq!(ab.g2, ba.g2, "canonical larger side must agree");

        // Ties deeper in the comparison chain (same n and m) still break.
        let c = Graph::from_edges(vec![Label(5), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        let ac = GedPair::new(a.clone(), c.clone());
        let ca = GedPair::new(c, a.clone());
        assert_eq!(ac.g1, ca.g1);
        assert_eq!(ac.g2, ca.g2);

        // Identical graphs: both orientations are the same pair anyway.
        let aa = GedPair::new(a.clone(), a.clone());
        assert_eq!(aa.g1, aa.g2);
    }

    #[test]
    fn unequal_size_pairs_still_order_by_node_count() {
        let small = Graph::from_edges(vec![Label(9)], &[]);
        let big = Graph::from_edges(vec![Label(0), Label(0)], &[(0, 1)]);
        for pair in [
            GedPair::new(small.clone(), big.clone()),
            GedPair::new(big, small),
        ] {
            assert_eq!(pair.g1.num_nodes(), 1);
            assert_eq!(pair.g2.num_nodes(), 2);
        }
    }

    #[test]
    fn directed_pairs_keep_caller_orientation_for_equal_sizes() {
        let a = Graph::from_edges(vec![Label(1), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        let b = Graph::from_edges(
            vec![Label(1), Label(1), Label(3)],
            &[(0, 1), (0, 2), (1, 2)],
        );
        let ab = GedPair::directed(a.clone(), b.clone());
        let ba = GedPair::directed(b.clone(), a.clone());
        assert_eq!(ab.g1, a, "equal sizes: g1 stays the first argument");
        assert_eq!(ba.g1, b);

        // Node counts still force the swap when they must.
        let small = Graph::from_edges(vec![Label(9)], &[]);
        let forced = GedPair::directed(b.clone(), small.clone());
        assert_eq!(forced.g1, small);
    }

    #[test]
    fn supervised_equal_size_pairs_keep_caller_orientation() {
        // The mapping pins the orientation; no tie-break may apply.
        let a = Graph::from_edges(vec![Label(7), Label(8)], &[(0, 1)]);
        let b = Graph::from_edges(vec![Label(1), Label(2)], &[(0, 1)]);
        let pair = GedPair::supervised(a.clone(), b, 2.0, NodeMapping::identity(2));
        assert_eq!(pair.g1, a, "supervised pairs are never swapped");
    }

    #[test]
    fn normalized_ged_uses_max_ops() {
        let g1 = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]);
        let g2 = Graph::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let pair = GedPair::supervised(g1, g2, 2.0, NodeMapping::identity(2));
        // max(n1,n2) + max(m1,m2) = 3 + 2 = 5.
        assert!((pair.normalized_ged().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already be ordered")]
    fn supervised_rejects_misordered() {
        let g1 = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]);
        let g2 = Graph::from_edges(vec![Label(0)], &[]);
        let _ = GedPair::supervised(g1, g2, 1.0, NodeMapping::identity(2));
    }
}
