//! Graph-pair plumbing shared by all solvers.
//!
//! The paper assumes `n1 <= n2` throughout (GED is symmetric, so the pair is
//! swapped otherwise). [`GedPair`] carries a normalized pair together with
//! optional ground truth (exact GED and node matching) for training and
//! evaluation.

use ged_graph::{Graph, NodeMapping};

/// Returns `(smaller, larger, swapped)` so that
/// `smaller.num_nodes() <= larger.num_nodes()`.
#[must_use]
pub fn ordered<'a>(g1: &'a Graph, g2: &'a Graph) -> (&'a Graph, &'a Graph, bool) {
    if g1.num_nodes() <= g2.num_nodes() {
        (g1, g2, false)
    } else {
        (g2, g1, true)
    }
}

/// A normalized graph pair (`g1.num_nodes() <= g2.num_nodes()`) with
/// optional supervision.
#[derive(Clone, Debug)]
pub struct GedPair {
    /// The smaller graph.
    pub g1: Graph,
    /// The larger graph.
    pub g2: Graph,
    /// Ground-truth GED, if known.
    pub ged: Option<f64>,
    /// Ground-truth node matching `V1 -> V2`, if known.
    pub mapping: Option<NodeMapping>,
}

impl GedPair {
    /// Builds an unsupervised pair, swapping so `n1 <= n2`.
    #[must_use]
    pub fn new(g1: Graph, g2: Graph) -> Self {
        if g1.num_nodes() <= g2.num_nodes() {
            GedPair {
                g1,
                g2,
                ged: None,
                mapping: None,
            }
        } else {
            GedPair {
                g1: g2,
                g2: g1,
                ged: None,
                mapping: None,
            }
        }
    }

    /// Builds a supervised pair. The mapping must map the smaller graph into
    /// the larger one; the caller is responsible for providing it in that
    /// orientation (swap before calling if needed).
    ///
    /// # Panics
    /// Panics if `g1` has more nodes than `g2` (supervised pairs cannot be
    /// auto-swapped because the mapping orientation would silently break) or
    /// if the mapping size is inconsistent.
    #[must_use]
    pub fn supervised(g1: Graph, g2: Graph, ged: f64, mapping: NodeMapping) -> Self {
        assert!(
            g1.num_nodes() <= g2.num_nodes(),
            "supervised pairs must already be ordered (n1 <= n2)"
        );
        assert_eq!(mapping.len(), g1.num_nodes(), "mapping must cover g1");
        GedPair {
            g1,
            g2,
            ged: Some(ged),
            mapping: Some(mapping),
        }
    }

    /// The normalized ground-truth GED (`nGED`, Section 4.4), if supervised.
    #[must_use]
    pub fn normalized_ged(&self) -> Option<f64> {
        self.ged
            .map(|g| ged_graph::normalized_ged(g, &self.g1, &self.g2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_graph::Label;

    #[test]
    fn ordering() {
        let small = Graph::from_edges(vec![Label(0)], &[]);
        let big = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]);
        let (a, b, swapped) = ordered(&big, &small);
        assert!(swapped);
        assert_eq!(a.num_nodes(), 1);
        assert_eq!(b.num_nodes(), 2);

        let pair = GedPair::new(big.clone(), small.clone());
        assert!(pair.g1.num_nodes() <= pair.g2.num_nodes());
    }

    #[test]
    fn normalized_ged_uses_max_ops() {
        let g1 = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]);
        let g2 = Graph::from_edges(vec![Label(0), Label(1), Label(2)], &[(0, 1), (1, 2)]);
        let pair = GedPair::supervised(g1, g2, 2.0, NodeMapping::identity(2));
        // max(n1,n2) + max(m1,m2) = 3 + 2 = 5.
        assert!((pair.normalized_ged().unwrap() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "already be ordered")]
    fn supervised_rejects_misordered() {
        let g1 = Graph::from_edges(vec![Label(0), Label(1)], &[(0, 1)]);
        let g2 = Graph::from_edges(vec![Label(0)], &[]);
        let _ = GedPair::supervised(g1, g2, 1.0, NodeMapping::identity(2));
    }
}
