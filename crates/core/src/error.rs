//! The unified error type of the query API.
//!
//! Every fallible entry point of [`crate::engine::GedEngine`] (and the
//! configuration plumbing feeding it) returns [`GedError`] instead of
//! panicking: unknown method names, methods missing from a registry,
//! structurally invalid inputs (empty graphs, zero search budgets, empty
//! stores, foreign or removed [`GraphId`]s) and malformed environment
//! configuration all surface as matchable variants.

use crate::method::MethodKind;
use ged_graph::{GraphId, ParseError};
use std::fmt;

/// Everything that can go wrong answering a GED query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GedError {
    /// A method name failed to parse (see [`MethodKind::from_str`]).
    ///
    /// [`MethodKind::from_str`]: std::str::FromStr::from_str
    UnknownMethod(String),
    /// The method is valid but has no solver in the engine's registry.
    MethodNotRegistered(MethodKind),
    /// The method cannot generate edit paths (pure value regressors such
    /// as SimGNN or TaGSim).
    PathsUnsupported(MethodKind),
    /// An input graph has no nodes. The payload names which input
    /// (`"g1"`, `"g2"`, `"query"`, or a dataset position).
    EmptyGraph(String),
    /// A search budget or result size of zero was requested where at
    /// least one is required (edit-path beam width, top-k size, exact
    /// verification budget).
    InvalidK {
        /// What the `k` parameterizes (`"beam width"` / `"top-k"` /
        /// `"verify budget"`).
        what: &'static str,
    },
    /// A store-level query (`TopK` / `Range` / `Matrix`) was issued
    /// against an empty [`ged_graph::GraphStore`].
    EmptyStore,
    /// A [`GraphId`] did not resolve in the queried store — it was minted
    /// by a different store or its graph has been removed.
    UnknownGraphId(GraphId),
    /// Malformed configuration (e.g. an unparsable `GED_THREADS` value,
    /// or a NaN range-search threshold — note `τ = +∞` is *valid* and
    /// means a full scan).
    Config(String),
    /// A graph or dataset payload failed to parse (malformed JSON or a
    /// violated graph invariant). Wraps the codec's structured
    /// [`ParseError`] with its byte/line/column position.
    Parse(ParseError),
    /// A cooperative execution deadline expired mid-query. Store-level
    /// plans check the deadline between verification blocks and abandon
    /// the remaining work instead of occupying the worker pool until an
    /// answer nobody is waiting for completes.
    DeadlineExceeded,
}

impl From<ParseError> for GedError {
    fn from(e: ParseError) -> Self {
        GedError::Parse(e)
    }
}

impl fmt::Display for GedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GedError::UnknownMethod(s) => write!(
                f,
                "unknown GED method {s:?} (expected one of: SimGNN, GPN, TaGSim, GEDGNN, \
                 GEDIOT, Classic, GEDGW, Noah, GEDHOT)"
            ),
            GedError::MethodNotRegistered(m) => {
                write!(f, "method {m} has no solver in this engine's registry")
            }
            GedError::PathsUnsupported(m) => {
                write!(f, "method {m} cannot generate edit paths")
            }
            GedError::EmptyGraph(which) => write!(f, "graph {which} has no nodes"),
            GedError::InvalidK { what } => write!(f, "{what} must be at least 1, got 0"),
            GedError::EmptyStore => write!(f, "store-level query against an empty store"),
            GedError::UnknownGraphId(id) => write!(
                f,
                "graph id {id} does not resolve in this store (foreign or removed)"
            ),
            GedError::Config(msg) => write!(f, "configuration error: {msg}"),
            GedError::Parse(e) => write!(f, "{e}"),
            GedError::DeadlineExceeded => {
                write!(f, "query deadline exceeded during execution")
            }
        }
    }
}

impl std::error::Error for GedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let mut store = ged_graph::GraphStore::new();
        let id = store.insert(ged_graph::Graph::unlabeled_from_edges(1, &[]));
        let cases: Vec<(GedError, &str)> = vec![
            (GedError::UnknownGraphId(id), "does not resolve"),
            (GedError::UnknownMethod("GEDX".into()), "GEDX"),
            (GedError::MethodNotRegistered(MethodKind::Gediot), "GEDIOT"),
            (GedError::PathsUnsupported(MethodKind::TaGSim), "TaGSim"),
            (GedError::EmptyGraph("g1".into()), "g1"),
            (GedError::InvalidK { what: "top-k" }, "top-k"),
            (GedError::EmptyStore, "empty store"),
            (GedError::Config("bad".into()), "bad"),
            (
                GedError::Parse(ged_graph::io::graph_from_json("nope").unwrap_err()),
                "parse error",
            ),
            (GedError::DeadlineExceeded, "deadline exceeded"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
    }
}
