//! GED computation on **edge-labeled** graphs (Appendix H.1 of the paper).
//!
//! The paper's extension: for GEDGW, replace the squared-difference tensor
//! `L(A1,A2)` with a label-aware mismatch tensor
//!
//! ```text
//! L_{i,j,k,l} = 1  if ℓ(u_i, u_j) ≠ ℓ(v_k, v_l),   0 otherwise
//! ```
//!
//! where `ℓ(u, v) = null` when the edge is absent — so an edge whose
//! counterpart is missing *or* carries a different label costs one edit
//! (edge deletion+insertion is counted as a single relabeling, the uniform
//! edge-relabel model of Appendix H.1).
//!
//! The mismatch tensor factorizes over the label alphabet: with
//! `B^λ_{i,j} = 1` iff edge `(i,j)` has label `λ` (absence is one more
//! pseudo-label), `L ⊗ π = Σ_λ (B1^λ row-mass + B2^λ col-mass − 2 B1^λ π
//! B2^λ)` — i.e. one `O(n³)` GW application per *used* label, keeping the
//! overall solve polynomial.

use crate::kbest::KBestResult;
use ged_graph::{EditOp, EditPath, Graph, Label, NodeMapping};
use ged_linalg::{lsap_min, Matrix};
use std::collections::BTreeMap;

/// An undirected graph whose edges carry labels (on top of node labels).
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeLabeledGraph {
    graph: Graph,
    edge_labels: BTreeMap<(u32, u32), Label>,
}

impl EdgeLabeledGraph {
    /// Builds an edge-labeled graph from node labels and labeled edges.
    ///
    /// # Panics
    /// Panics on invalid edges (see [`Graph::add_edge`]).
    #[must_use]
    pub fn from_edges(node_labels: Vec<Label>, edges: &[(u32, u32, Label)]) -> Self {
        let mut graph = Graph::from_edges(node_labels, &[]);
        let mut edge_labels = BTreeMap::new();
        for &(u, v, l) in edges {
            graph.add_edge(u, v);
            edge_labels.insert((u.min(v), u.max(v)), l);
        }
        EdgeLabeledGraph { graph, edge_labels }
    }

    /// The underlying node-labeled graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The label of edge `(u, v)`, or `None` if the edge is absent.
    #[must_use]
    pub fn edge_label(&self, u: u32, v: u32) -> Option<Label> {
        self.edge_labels.get(&(u.min(v), u.max(v))).copied()
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The distinct edge labels used.
    #[must_use]
    pub fn used_edge_labels(&self) -> Vec<Label> {
        let mut ls: Vec<Label> = self.edge_labels.values().copied().collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    }
}

/// Edit cost induced by a node matching on an edge-labeled pair: node
/// relabels + node insertions + edge mismatches, where two matched edge
/// slots mismatch iff their labels (with `null` = absent) differ.
///
/// # Panics
/// Panics if the mapping does not cover `g1` or `n1 > n2`.
#[must_use]
pub fn induced_cost_edge_labeled(
    g1: &EdgeLabeledGraph,
    g2: &EdgeLabeledGraph,
    mapping: &NodeMapping,
) -> usize {
    let n1 = g1.num_nodes();
    let n2 = g2.num_nodes();
    assert!(n1 <= n2 && mapping.len() == n1);
    let mut cost = n2 - n1;
    for u in 0..n1 as u32 {
        if g1.graph.label(u) != g2.graph.label(mapping.image(u)) {
            cost += 1;
        }
    }
    // Every unordered node pair of the padded graphs, compared through the
    // extended mapping (dummy nodes of G1 have no edges).
    let inv = mapping.inverse(n2);
    for k in 0..n2 as u32 {
        for l in (k + 1)..n2 as u32 {
            let lab2 = g2.edge_label(k, l);
            let lab1 = match (inv[k as usize], inv[l as usize]) {
                (Some(u), Some(v)) => g1.edge_label(u, v),
                _ => None,
            };
            if lab1 != lab2 {
                cost += 1;
            }
        }
    }
    // Edges of G1 whose both endpoints exist always map somewhere, so the
    // loop above covers deletions too (lab2 = None) — except pairs where
    // both images fall outside... impossible: the mapping is total. Done.
    cost
}

/// Result of the edge-labeled GEDGW solve.
#[derive(Clone, Debug)]
pub struct EdgeLabeledResult {
    /// Objective value at the final coupling (GED estimate).
    pub ged: f64,
    /// Coupling over real `G1` nodes (`n1 x n2`).
    pub coupling: Matrix,
    /// Feasible GED from rounding the coupling to a matching.
    pub rounded: KBestResult,
}

/// Per-label indicator matrices over the padded node set; absence is the
/// implicit complement and handled via the identity
/// `mismatch = 1 - Σ_λ B1^λ(i,j) B2^λ(k,l) - absent1(i,j) absent2(k,l)`.
fn label_indicators(g: &EdgeLabeledGraph, n: usize, labels: &[Label]) -> Vec<Matrix> {
    labels
        .iter()
        .map(|&lab| {
            let mut b = Matrix::zeros(n, n);
            for (&(u, v), &l) in &g.edge_labels {
                if l == lab {
                    b[(u as usize, v as usize)] = 1.0;
                    b[(v as usize, u as usize)] = 1.0;
                }
            }
            b
        })
        .collect()
}

/// `(L ⊗ π)` for the edge-label mismatch tensor, in `O(|Λ| n³)`.
fn mismatch_tensor_apply(
    b1: &[Matrix],
    b2: &[Matrix],
    a1: &Matrix,
    a2: &Matrix,
    pi: &Matrix,
) -> Matrix {
    let n = pi.rows();
    let total_mass: f64 = pi.sum();
    // Agreement on a pair (i,j)/(k,l) happens when both slots carry the
    // same label λ, or both are absent. mismatch = 1 − agree.
    // (1 ⊗ π)_{i,k} = Σ_{j,l} π_{j,l} = total mass (uniform marginals).
    let mut agree = Matrix::zeros(n, n);
    for (m1, m2) in b1.iter().zip(b2) {
        // Σ_{j,l} B1_{i,j} B2_{k,l} π_{j,l} = (B1 π B2ᵀ)_{i,k}
        let t = m1.matmul(pi).matmul_transpose_b(m2);
        agree.add_scaled_assign(&t, 1.0);
    }
    // Absent-absent agreement: (1−A1) π (1−A2)ᵀ, expanded to avoid
    // materializing the dense complement off-diagonal issues:
    // (J − A1) π (J − A2) = J π J − A1 π J − J π A2 + A1 π A2, where J is
    // all-ones without the diagonal. Self-pairs (i=j or k=l) never carry
    // edges; the paper's objective sums over all index quadruples and the
    // diagonal contributes identically for both graphs, so using full J
    // keeps the permutation-objective identity (verified in tests).
    let a1pi = a1.matmul(pi); // Σ_j A1_{i,j} π_{j,l}
    let pia2 = pi.matmul(a2); // Σ_l π_{j,l} A2_{l,k} (A2 symmetric)
    let a1pia2 = a1.matmul(&pia2);
    let absent = Matrix::from_fn(n, n, |i, k| {
        let api_row: f64 = a1pi.row(i).iter().sum();
        let pia_col: f64 = (0..n).map(|j| pia2[(j, k)]).sum();
        total_mass - api_row - pia_col + a1pia2[(i, k)]
    });
    agree.add_scaled_assign(&absent, 1.0);
    Matrix::from_fn(n, n, |i, k| total_mass - agree[(i, k)])
}

/// Edge-labeled GEDGW: conditional gradient on the label-aware objective
/// `⟨π, M⟩ + ½⟨π, L_mismatch ⊗ π⟩` over dummy-padded graphs.
///
/// # Panics
/// Panics if either graph is empty.
#[must_use]
pub fn gedgw_edge_labeled(
    g1: &EdgeLabeledGraph,
    g2: &EdgeLabeledGraph,
    max_iter: usize,
) -> EdgeLabeledResult {
    let (a, b) = if g1.num_nodes() <= g2.num_nodes() {
        (g1, g2)
    } else {
        (g2, g1)
    };
    let n1 = a.num_nodes();
    let n = b.num_nodes();
    assert!(n > 0, "empty graphs");

    // Node cost matrix (dummies mismatch everything).
    let m = Matrix::from_fn(n, n, |i, k| {
        if i >= n1 {
            1.0
        } else if a.graph.label(i as u32) == b.graph.label(k as u32) {
            0.0
        } else {
            1.0
        }
    });

    let mut labels = a.used_edge_labels();
    labels.extend(b.used_edge_labels());
    labels.sort_unstable();
    labels.dedup();
    let b1 = label_indicators(a, n, &labels);
    let b2 = label_indicators(b, n, &labels);
    let a1 = Matrix::from_vec(n, n, a.graph.adjacency_matrix_padded(n));
    let a2 = Matrix::from_vec(n, n, b.graph.adjacency_matrix());

    let objective = |pi: &Matrix| -> f64 {
        pi.dot(&m) + 0.5 * pi.dot(&mismatch_tensor_apply(&b1, &b2, &a1, &a2, pi))
    };

    let mut pi = Matrix::filled(n, n, 1.0 / n as f64);
    let mut obj = objective(&pi);
    for _ in 0..max_iter {
        let lpi = mismatch_tensor_apply(&b1, &b2, &a1, &a2, &pi);
        let grad = Matrix::from_fn(n, n, |i, k| m[(i, k)] + lpi[(i, k)]);
        let sol = lsap_min(&grad);
        let mut dir = Matrix::zeros(n, n);
        for (r, &c) in sol.row_to_col.iter().enumerate() {
            dir[(r, c)] = 1.0;
        }
        let delta = dir.sub(&pi);
        let b_coef = delta.dot(&m) + delta.dot(&lpi);
        let a_coef = 0.5 * delta.dot(&mismatch_tensor_apply(&b1, &b2, &a1, &a2, &delta));
        let gamma = if a_coef > 0.0 {
            (-b_coef / (2.0 * a_coef)).clamp(0.0, 1.0)
        } else if a_coef + b_coef < 0.0 {
            1.0
        } else {
            0.0
        };
        if gamma <= 0.0 {
            break;
        }
        pi.add_scaled_assign(&delta, gamma);
        let new_obj = objective(&pi);
        if (obj - new_obj).abs() < 1e-9 {
            obj = new_obj;
            break;
        }
        obj = new_obj;
    }

    // Round to a matching and realize a feasible edit sequence length.
    let coupling = Matrix::from_fn(n1, n, |i, k| pi[(i, k)]);
    let neg = coupling.scale(-1.0);
    let assignment = lsap_min(&neg);
    let mapping = NodeMapping::new(assignment.row_to_col.iter().map(|&c| c as u32).collect());
    let cost = induced_cost_edge_labeled(a, b, &mapping);
    // A concrete (node-level) path for the rounded mapping; edge-label
    // relabels are represented as delete+insert at the EditOp level.
    let path = edge_labeled_path(a, b, &mapping);
    let rounded = KBestResult {
        ged: cost,
        path,
        mapping,
        candidates: 1,
    };
    EdgeLabeledResult {
        ged: obj,
        coupling,
        rounded,
    }
}

/// Realizes the rounded mapping as node-level edit operations (an edge
/// relabel appears as delete+insert but is *counted* as one edit in
/// [`induced_cost_edge_labeled`], matching Appendix H.1's cost model).
fn edge_labeled_path(
    g1: &EdgeLabeledGraph,
    g2: &EdgeLabeledGraph,
    mapping: &NodeMapping,
) -> EditPath {
    let mut path = mapping.edit_path(g1.graph(), g2.graph());
    // Edge relabels: both edges exist but labels differ — emit the pair of
    // ops for transparency (cost accounting stays with induced_cost).
    let extra: Vec<EditOp> = g1
        .graph
        .edges()
        .filter_map(|(u, v)| {
            let (k, l) = (mapping.image(u), mapping.image(v));
            match (g1.edge_label(u, v), g2.edge_label(k, l)) {
                (Some(l1), Some(l2)) if l1 != l2 => {
                    Some([EditOp::DeleteEdge { u, v }, EditOp::InsertEdge { u, v }])
                }
                _ => None,
            }
        })
        .flatten()
        .collect();
    for op in extra {
        path.push(op);
    }
    path
}

/// Brute-force exact edge-labeled GED for tiny graphs (test reference).
#[must_use]
pub fn exact_edge_labeled(g1: &EdgeLabeledGraph, g2: &EdgeLabeledGraph) -> usize {
    let (a, b) = if g1.num_nodes() <= g2.num_nodes() {
        (g1, g2)
    } else {
        (g2, g1)
    };
    fn rec(
        a: &EdgeLabeledGraph,
        b: &EdgeLabeledGraph,
        depth: usize,
        used: &mut Vec<bool>,
        map: &mut Vec<u32>,
        best: &mut usize,
    ) {
        if depth == a.num_nodes() {
            let m = NodeMapping::new(map.clone());
            *best = (*best).min(induced_cost_edge_labeled(a, b, &m));
            return;
        }
        for v in 0..b.num_nodes() {
            if !used[v] {
                used[v] = true;
                map.push(v as u32);
                rec(a, b, depth + 1, used, map, best);
                map.pop();
                used[v] = false;
            }
        }
    }
    let mut best = usize::MAX;
    rec(
        a,
        b,
        0,
        &mut vec![false; b.num_nodes()],
        &mut Vec::new(),
        &mut best,
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn bond(l: u32) -> Label {
        Label(l)
    }

    fn random_elg(n: usize, rng: &mut SmallRng) -> EdgeLabeledGraph {
        let nodes: Vec<Label> = (0..n).map(|_| Label(rng.gen_range(0..3))).collect();
        let mut edges = Vec::new();
        for i in 1..n as u32 {
            let j = rng.gen_range(0..i);
            edges.push((i, j, bond(rng.gen_range(0..2))));
        }
        if n >= 3 && rng.gen_bool(0.6) {
            // one extra edge
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if !edges
                        .iter()
                        .any(|&(a, b, _)| (a.min(b), a.max(b)) == (u, v))
                    {
                        edges.push((u, v, bond(rng.gen_range(0..2))));
                        break;
                    }
                }
                if edges.len() >= n {
                    break;
                }
            }
        }
        EdgeLabeledGraph::from_edges(nodes, &edges)
    }

    /// Extends a real-node mapping with dummy rows into a padded
    /// permutation coupling.
    fn padded_permutation(mapping: &NodeMapping, n: usize) -> Matrix {
        let mut pi = Matrix::zeros(n, n);
        let mut used = vec![false; n];
        for (u, &v) in mapping.as_slice().iter().enumerate() {
            pi[(u, v as usize)] = 1.0;
            used[v as usize] = true;
        }
        let mut next = mapping.len();
        for v in 0..n {
            if !used[v] {
                pi[(next, v)] = 1.0;
                next += 1;
            }
        }
        pi
    }

    #[test]
    fn identical_graphs_cost_zero() {
        let g = EdgeLabeledGraph::from_edges(
            vec![Label(1), Label(2), Label(3)],
            &[(0, 1, bond(0)), (1, 2, bond(1))],
        );
        assert_eq!(exact_edge_labeled(&g, &g), 0);
        let res = gedgw_edge_labeled(&g, &g, 40);
        assert!(res.ged.abs() < 1e-9);
        assert_eq!(res.rounded.ged, 0);
    }

    #[test]
    fn edge_relabel_costs_one() {
        let g1 = EdgeLabeledGraph::from_edges(vec![Label(1), Label(1)], &[(0, 1, bond(0))]);
        let g2 = EdgeLabeledGraph::from_edges(vec![Label(1), Label(1)], &[(0, 1, bond(1))]);
        assert_eq!(exact_edge_labeled(&g1, &g2), 1);
    }

    #[test]
    fn objective_at_permutation_equals_cost() {
        // Invariant B, edge-labeled version: for permutation couplings the
        // mismatch objective equals the induced cost exactly.
        let mut rng = SmallRng::seed_from_u64(131);
        for _ in 0..20 {
            let n1 = rng.gen_range(2..=4);
            let n2 = rng.gen_range(n1..=5);
            let g1 = random_elg(n1, &mut rng);
            let g2 = random_elg(n2, &mut rng);
            // Random injective mapping.
            use rand::seq::SliceRandom;
            let mut cols: Vec<u32> = (0..n2 as u32).collect();
            cols.shuffle(&mut rng);
            let mapping = NodeMapping::new(cols[..n1].to_vec());

            // Evaluate the mismatch objective at the padded permutation.
            let n = n2;
            let mut labels = g1.used_edge_labels();
            labels.extend(g2.used_edge_labels());
            labels.sort_unstable();
            labels.dedup();
            let b1 = label_indicators(&g1, n, &labels);
            let b2 = label_indicators(&g2, n, &labels);
            let a1 = Matrix::from_vec(n, n, g1.graph().adjacency_matrix_padded(n));
            let a2 = Matrix::from_vec(n, n, g2.graph().adjacency_matrix());
            let m = Matrix::from_fn(n, n, |i, k| {
                if i >= n1 {
                    1.0
                } else if g1.graph().label(i as u32) == g2.graph().label(k as u32) {
                    0.0
                } else {
                    1.0
                }
            });
            let pi = padded_permutation(&mapping, n);
            let obj = pi.dot(&m) + 0.5 * pi.dot(&mismatch_tensor_apply(&b1, &b2, &a1, &a2, &pi));
            let cost = induced_cost_edge_labeled(&g1, &g2, &mapping) as f64;
            assert!((obj - cost).abs() < 1e-9, "objective {obj} vs cost {cost}");
        }
    }

    #[test]
    fn solver_upper_bounded_by_rounding_and_tracks_exact() {
        let mut rng = SmallRng::seed_from_u64(132);
        for _ in 0..12 {
            let g1 = random_elg(rng.gen_range(2..=4), &mut rng);
            let g2 = random_elg(rng.gen_range(2..=5), &mut rng);
            let exact = exact_edge_labeled(&g1, &g2);
            let res = gedgw_edge_labeled(&g1, &g2, 40);
            assert!(res.rounded.ged >= exact, "rounded below exact");
            assert!(
                res.rounded.ged <= exact + 4,
                "rounded {} far from exact {exact}",
                res.rounded.ged
            );
        }
    }

    #[test]
    fn label_blind_pairs_match_plain_gedgw_costs() {
        // With a single edge label the model degenerates to the plain GED
        // cost: cross-check induced costs against the unlabeled formula.
        let mut rng = SmallRng::seed_from_u64(133);
        for _ in 0..15 {
            let n1 = rng.gen_range(2..=4);
            let n2 = rng.gen_range(n1..=5);
            let g1 = {
                let g = ged_graph::generate::random_connected(n1, 1, &[0.5, 0.5], &mut rng);
                let edges: Vec<(u32, u32, Label)> =
                    g.edges().map(|(u, v)| (u, v, bond(0))).collect();
                EdgeLabeledGraph::from_edges(g.labels().to_vec(), &edges)
            };
            let g2 = {
                let g = ged_graph::generate::random_connected(n2, 1, &[0.5, 0.5], &mut rng);
                let edges: Vec<(u32, u32, Label)> =
                    g.edges().map(|(u, v)| (u, v, bond(0))).collect();
                EdgeLabeledGraph::from_edges(g.labels().to_vec(), &edges)
            };
            use rand::seq::SliceRandom;
            let mut cols: Vec<u32> = (0..n2 as u32).collect();
            cols.shuffle(&mut rng);
            let mapping = NodeMapping::new(cols[..n1].to_vec());
            let labeled = induced_cost_edge_labeled(&g1, &g2, &mapping);
            let plain = mapping.induced_cost(g1.graph(), g2.graph());
            assert_eq!(labeled, plain);
        }
    }
}
