//! The `ged-served` wire protocol: typed request and response messages.
//!
//! The protocol is line-delimited JSON — exactly one request object per
//! line in, one response object per line out, over stdin/stdout or a Unix
//! domain socket. Like the rest of the workspace the codec is hand-rolled
//! ([`crate::codec`], extending `ged_graph::io`): the grammar is the fixed
//! shape documented here, with fields in the exact order written below,
//! not general JSON.
//!
//! Every request carries the protocol version `"v"` (currently
//! [`PROTOCOL_VERSION`]), a client-chosen `"id"` echoed verbatim in the
//! response, and an `"op"`. Every response echoes `"v"` and `"id"` and
//! adds `"ok"`, the server's mutation counter `"rev"` (see
//! [`Response::rev`]), and a `"type"`-tagged payload.
//!
//! ```text
//! request  := {"v":1,"id":STR,"op":OP ...op fields...}
//! response := {"v":1,"id":STR,"ok":BOOL,"rev":U64,"type":TYPE ...}
//! graphref := STR | graph            (stored name, or inline graph)
//! graph    := {"labels":[U32,...],"edges":[[U32,U32],...]}
//! ```
//!
//! Requests (op fields in order; `deadline_ms` is optional and always
//! last):
//!
//! ```text
//! {"v":1,"id":I,"op":"ping"}
//! {"v":1,"id":I,"op":"stats"}
//! {"v":1,"id":I,"op":"explain","shape":STR}
//! {"v":1,"id":I,"op":"shutdown"}
//! {"v":1,"id":I,"op":"insert_graph","graph":GRAPH}
//! {"v":1,"id":I,"op":"remove_graph","name":STR}
//! {"v":1,"id":I,"op":"predict","g1":REF,"g2":REF[,"deadline_ms":U64]}
//! {"v":1,"id":I,"op":"edit_path","g1":REF,"g2":REF[,"k":U64][,"deadline_ms":U64]}
//! {"v":1,"id":I,"op":"top_k","query":REF,"k":U64[,"deadline_ms":U64]}
//! {"v":1,"id":I,"op":"range","query":REF,"tau":F64[,"deadline_ms":U64]}
//! {"v":1,"id":I,"op":"range_exact","query":REF,"tau":F64[,"deadline_ms":U64]}
//! {"v":1,"id":I,"op":"matrix"[,"deadline_ms":U64]}
//! {"v":1,"id":I,"op":"self_join","tau":F64[,"deadline_ms":U64]}
//! {"v":1,"id":I,"op":"join","graphs":[GRAPH,...],"tau":F64[,"deadline_ms":U64]}
//! {"v":1,"id":I,"op":"snapshot"[,"path":STR]}
//! {"v":1,"id":I,"op":"load"[,"path":STR]}
//! ```
//!
//! Stored graphs are addressed by server-assigned names `"g0"`, `"g1"`,
//! ... (monotonic, never reused), minted by `insert_graph` and returned
//! in its response. Raw [`ged_graph::GraphId`]s are process-local and
//! never cross the wire.
//!
//! `snapshot` persists the sharded store (plus the name table) to disk
//! and `load` replaces the store from such a file; both default to the
//! path the daemon was started with (`ged-served --store PATH`) when the
//! request carries no `"path"`. The on-disk shape wraps the
//! `ged_graph::shard::ShardedStore` snapshot grammar:
//!
//! ```text
//! server-snapshot := {"schema":1,"rev":U64,"next_name":U64,
//!                     "names":[STR,...],"store":SNAPSHOT}
//! ```
//!
//! with `"names"` listing every stored graph's protocol name in
//! ascending id order (one per store entry, zipped back on load).

use ged_graph::Graph;
use std::fmt;

/// The protocol version this build speaks. Requests with any other
/// version are rejected with [`ErrorCode::Protocol`].
pub const PROTOCOL_VERSION: u64 = 1;

/// Hard cap on the byte length of one request line (newline excluded).
/// Longer lines are rejected with [`ErrorCode::Oversized`] without being
/// parsed, bounding per-request memory.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// A graph argument of a query: either the name of a stored graph or an
/// inline graph payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphRef {
    /// A server-assigned stored-graph name (`"g0"`, `"g1"`, ...).
    Name(String),
    /// An inline graph, parsed by the `ged_graph::io` grammar.
    Inline(Graph),
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Client-chosen id, echoed in the response.
        id: String,
    },
    /// Server introspection snapshot.
    Stats {
        /// Client-chosen id, echoed in the response.
        id: String,
    },
    /// Explain the tier plan a query shape would run right now (see
    /// [`ged_core::plan::PlanExplanation`]).
    Explain {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// The query shape to explain: `"top_k"`, `"range"`,
        /// `"range_exact"`, or `"matrix"`.
        shape: String,
    },
    /// Drain in-flight requests, answer, and stop serving.
    Shutdown {
        /// Client-chosen id, echoed in the response.
        id: String,
    },
    /// Insert a graph into the store; the response carries its name.
    InsertGraph {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// The graph to insert.
        graph: Graph,
    },
    /// Remove a stored graph by name.
    RemoveGraph {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// Name of the graph to remove.
        name: String,
    },
    /// Estimate the GED of two graphs.
    Predict {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// First graph.
        g1: GraphRef,
        /// Second graph.
        g2: GraphRef,
        /// Optional per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Produce a feasible edit path for two graphs.
    EditPath {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// Source graph.
        g1: GraphRef,
        /// Target graph.
        g2: GraphRef,
        /// Optional search effort (beam width / k-best candidates).
        k: Option<u64>,
        /// Optional per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// The `k` stored graphs nearest to `query`.
    TopK {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// The query graph.
        query: GraphRef,
        /// How many neighbors to return.
        k: u64,
        /// Optional per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Every stored graph with estimated GED ≤ τ.
    Range {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// The query graph.
        query: GraphRef,
        /// The GED threshold τ.
        tau: f64,
        /// Optional per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Every stored graph with **exact** GED ≤ τ.
    RangeExact {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// The query graph.
        query: GraphRef,
        /// The GED threshold τ.
        tau: f64,
        /// Optional per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// The full pairwise distance matrix of the store.
    Matrix {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// Optional per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Every unordered pair of stored graphs with **exact** GED ≤ τ —
    /// the GED self-join ([`ged_core::engine::GedQuery::SelfJoin`]).
    SelfJoin {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// The GED threshold τ.
        tau: f64,
        /// Optional per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Every (query graph, stored graph) pair with **exact** GED ≤ τ —
    /// a cross-store join of an inline query batch against the store
    /// ([`ged_core::engine::GedQuery::Join`]).
    Join {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// The inline query batch (the join's left side), addressed in
        /// responses by position as `"q0"`, `"q1"`, ...
        graphs: Vec<Graph>,
        /// The GED threshold τ.
        tau: f64,
        /// Optional per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Persist the store (and name table) to a snapshot file.
    Snapshot {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// Target path; defaults to the daemon's `--store` path.
        path: Option<String>,
    },
    /// Replace the store (and name table) from a snapshot file.
    Load {
        /// Client-chosen id, echoed in the response.
        id: String,
        /// Source path; defaults to the daemon's `--store` path.
        path: Option<String>,
    },
}

impl Request {
    /// The client-chosen id of this request.
    #[must_use]
    pub fn id(&self) -> &str {
        match self {
            Request::Ping { id }
            | Request::Stats { id }
            | Request::Explain { id, .. }
            | Request::Shutdown { id }
            | Request::InsertGraph { id, .. }
            | Request::RemoveGraph { id, .. }
            | Request::Predict { id, .. }
            | Request::EditPath { id, .. }
            | Request::TopK { id, .. }
            | Request::Range { id, .. }
            | Request::RangeExact { id, .. }
            | Request::Matrix { id, .. }
            | Request::SelfJoin { id, .. }
            | Request::Join { id, .. }
            | Request::Snapshot { id, .. }
            | Request::Load { id, .. } => id,
        }
    }
}

/// Typed protocol error codes (the `"code"` field of an error response).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line failed to parse.
    Parse,
    /// Structurally valid JSON that violates the protocol (wrong
    /// version, unknown op).
    Protocol,
    /// The request line exceeded [`MAX_LINE_BYTES`].
    Oversized,
    /// A graph name did not resolve in the store.
    UnknownGraph,
    /// An input graph has no nodes.
    EmptyGraph,
    /// A zero `k` / search budget.
    InvalidK,
    /// A store-level query against an empty store.
    EmptyStore,
    /// The request is valid but the engine cannot serve it (e.g. edit
    /// paths from a value-only method).
    Unsupported,
    /// Engine-side configuration failure.
    Config,
    /// The per-request deadline elapsed before the result was ready.
    DeadlineExceeded,
    /// Admission control rejected the request: too many in flight.
    Overloaded,
    /// The server is draining after a `shutdown` request.
    ShuttingDown,
    /// A snapshot file could not be read, written, or parsed.
    Io,
}

impl ErrorCode {
    /// The wire spelling of the code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Oversized => "oversized",
            ErrorCode::UnknownGraph => "unknown_graph",
            ErrorCode::EmptyGraph => "empty_graph",
            ErrorCode::InvalidK => "invalid_k",
            ErrorCode::EmptyStore => "empty_store",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Config => "config",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Io => "io",
        }
    }

    /// Parses the wire spelling back into the code.
    #[must_use]
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Some(match s {
            "parse" => ErrorCode::Parse,
            "protocol" => ErrorCode::Protocol,
            "oversized" => ErrorCode::Oversized,
            "unknown_graph" => ErrorCode::UnknownGraph,
            "empty_graph" => ErrorCode::EmptyGraph,
            "invalid_k" => ErrorCode::InvalidK,
            "empty_store" => ErrorCode::EmptyStore,
            "unsupported" => ErrorCode::Unsupported,
            "config" => ErrorCode::Config,
            "deadline_exceeded" => ErrorCode::DeadlineExceeded,
            "overloaded" => ErrorCode::Overloaded,
            "shutting_down" => ErrorCode::ShuttingDown,
            "io" => ErrorCode::Io,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One canonical edit operation on the wire
/// (mirrors [`ged_graph::CanonicalOp`]).
///
/// ```text
/// ["relabel",u] | ["insert_node",v] | ["delete_edge",u,v] | ["insert_edge",v,v']
/// ```
pub type WireOp = ged_graph::CanonicalOp;

/// A ranked neighbor on the wire: stored-graph name plus GED estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct WireNeighbor {
    /// Stored-graph name.
    pub name: String,
    /// Bound-refined GED estimate.
    pub ged: f64,
}

/// An exact match on the wire: stored-graph name plus exact GED.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireExactNeighbor {
    /// Stored-graph name.
    pub name: String,
    /// Exact GED (≤ τ).
    pub ged: u64,
}

/// A budget-undecided candidate of a `range_exact` query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireUndecided {
    /// Stored-graph name.
    pub name: String,
    /// `Some(ub)` when membership is proven with feasible bound `ub`;
    /// `None` when membership is unknown.
    pub known_match_ub: Option<u64>,
}

/// One join match on the wire: two graph names plus the pair's exact
/// GED. Self-join names are both stored graphs (`"g{n}"`, `a` always
/// the smaller id); in a cross join `a` addresses a position of the
/// request's query batch (`"q{i}"`) and `b` a stored graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireJoinPair {
    /// First graph of the pair.
    pub a: String,
    /// Second graph of the pair.
    pub b: String,
    /// Exact GED (≤ τ).
    pub ged: u64,
}

/// A budget-undecided join pair — same naming convention as
/// [`WireJoinPair`], carrying the membership evidence that survived
/// instead of an exact distance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireJoinUndecided {
    /// First graph of the pair.
    pub a: String,
    /// Second graph of the pair.
    pub b: String,
    /// `Some(ub)` when membership is proven with feasible bound `ub`;
    /// `None` when membership is unknown.
    pub known_match_ub: Option<u64>,
}

/// The server introspection snapshot (`stats` response payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsBody {
    /// Number of stored graphs.
    pub graphs: u64,
    /// The engine's default method, wire-spelled (e.g. `"GEDGW"`).
    pub method: String,
    /// The engine's pivot-table target size.
    pub pivots: u64,
    /// Entries currently in the prediction cache, if caching is on.
    pub cached_predictions: Option<u64>,
    /// Requests currently admitted and executing.
    pub inflight: u64,
    /// The admission-control cap ([`crate::ServerConfig::max_inflight`]).
    pub max_inflight: u64,
    /// Whether the engine's adaptive query planner is on.
    pub adaptive: bool,
    /// Total operations the planner has skipped so far (solver calls +
    /// bounded searches + pivot arms); `0` when the planner is off.
    pub planner_saved: u64,
}

/// The payload of a response, tagged by the wire `"type"` field.
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// `ping` answer.
    Pong,
    /// `stats` answer.
    Stats(StatsBody),
    /// `explain` answer: the tier plan a query shape would run right
    /// now (mirrors [`ged_core::plan::PlanExplanation`]).
    Plan {
        /// The explained query shape's wire name.
        shape: String,
        /// Whether the adaptive planner produced this plan.
        adaptive: bool,
        /// Tier names in execution order, first to last.
        tiers: Vec<String>,
        /// Tiers the current decision skips entirely.
        skipped: Vec<String>,
        /// Queries of this shape observed so far.
        observations: u64,
        /// Solver invocations skipped so far, across all shapes.
        solver_calls_saved: u64,
        /// Bounded exact searches skipped so far, across all shapes.
        searches_saved: u64,
        /// Query-to-pivot distance computations skipped so far.
        pivot_arms_saved: u64,
    },
    /// `shutdown` answer: the server has drained and is exiting.
    ShutdownComplete,
    /// `insert_graph` answer: the assigned name.
    Inserted {
        /// The server-assigned name of the new graph.
        name: String,
    },
    /// `remove_graph` answer.
    Removed {
        /// The name that was removed.
        name: String,
    },
    /// `predict` answer.
    Ged {
        /// The GED estimate.
        ged: f64,
    },
    /// `edit_path` answer.
    Path {
        /// The realized path length (feasible upper bound).
        ged: u64,
        /// The node mapping `V1 -> V2` inducing the path.
        mapping: Vec<u32>,
        /// The path as canonical operations.
        ops: Vec<WireOp>,
    },
    /// `top_k` / `range` answer: ranked neighbors.
    Neighbors {
        /// Matches sorted by ascending GED (ties by insertion order).
        neighbors: Vec<WireNeighbor>,
    },
    /// `range_exact` answer.
    ExactMatches {
        /// Every match with its exact GED, in id order.
        matches: Vec<WireExactNeighbor>,
        /// Candidates the verify budget could not resolve.
        undecided: Vec<WireUndecided>,
    },
    /// `matrix` answer.
    Matrix {
        /// Stored-graph names, in matrix position order.
        names: Vec<String>,
        /// The symmetric distance matrix, row-major, one row per name.
        rows: Vec<Vec<f64>>,
    },
    /// `self_join` answer: every stored pair within τ.
    SelfJoin {
        /// Matches in ascending `(a, b)` id order, exact distances.
        pairs: Vec<WireJoinPair>,
        /// Pairs the verify budget could not resolve.
        undecided: Vec<WireJoinUndecided>,
        /// Exact candidate pair count (`n·(n−1)/2`).
        candidates: u64,
        /// Pairs that needed a bounded exact verification — the join
        /// plan's shared work keeps this far below `candidates`.
        verified: u64,
    },
    /// `join` answer: every (query, stored) pair within τ.
    Join {
        /// Matches in ascending (query position, stored id) order.
        pairs: Vec<WireJoinPair>,
        /// Pairs the verify budget could not resolve.
        undecided: Vec<WireJoinUndecided>,
        /// Exact candidate pair count (`batch × store`).
        candidates: u64,
        /// Pairs that needed a bounded exact verification.
        verified: u64,
    },
    /// `snapshot` answer: where the store was written.
    Snapshotted {
        /// The path the snapshot was written to.
        path: String,
        /// Number of graphs persisted.
        graphs: u64,
    },
    /// `load` answer: what the store was replaced with.
    Loaded {
        /// The path the snapshot was read from.
        path: String,
        /// Number of graphs restored.
        graphs: u64,
    },
    /// Any failure: a typed code plus a human-readable message.
    Error {
        /// The typed error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// A response line: the echoed id, the server's mutation counter at the
/// time the request executed, and the payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// The client-chosen id of the request this answers. Empty when the
    /// request line was too malformed to recover an id.
    pub id: String,
    /// The server's mutation counter: the number of store mutations
    /// applied before this request executed. Mutation responses report
    /// the counter *after* applying themselves, so replaying mutations
    /// in `rev` order against a fresh store and re-running each read
    /// against the state at its `rev` reproduces every response exactly.
    pub rev: u64,
    /// The payload.
    pub body: ResponseBody,
}

impl Response {
    /// `true` iff the body is not an [`ResponseBody::Error`].
    #[must_use]
    pub fn is_ok(&self) -> bool {
        !matches!(self.body, ResponseBody::Error { .. })
    }

    /// Convenience constructor for an error response.
    #[must_use]
    pub fn error(id: &str, rev: u64, code: ErrorCode, message: impl Into<String>) -> Self {
        Response {
            id: id.to_string(),
            rev,
            body: ResponseBody::Error {
                code,
                message: message.into(),
            },
        }
    }
}
