//! GED-as-a-service: a long-running daemon over the `ot-ged` engine.
//!
//! The `ged-served` binary (and the embeddable [`Server`] it is built
//! on) owns a mutable [`ged_graph::GraphStore`], the engine's cached
//! pivot index, and the prediction cache, and speaks a versioned
//! line-delimited JSON protocol — one request object in, one response
//! object out, per line — over stdin/stdout and an optional Unix
//! domain socket.
//!
//! The crate splits into three layers:
//!
//! * [`protocol`] — the typed request/response model and error codes
//!   (the wire schema, independent of any transport);
//! * [`codec`] — the hand-rolled encoder/parser between those types
//!   and wire lines, extending the `ged_graph::io` JSON grammar;
//! * [`server`] — the daemon itself: engine + store behind a
//!   reader–writer lock, admission control, per-request deadlines,
//!   and graceful drain-then-exit shutdown.
//!
//! ```
//! use ged_server::{Server, ServerConfig};
//!
//! let server = Server::new(&ServerConfig::default()).unwrap();
//! let (line, close) = server.handle_line(r#"{"v":1,"id":"1","op":"ping"}"#);
//! assert_eq!(line, r#"{"v":1,"id":"1","ok":true,"rev":0,"type":"pong"}"#);
//! assert!(!close);
//! ```

pub mod codec;
pub mod protocol;
pub mod server;

pub use codec::{encode_request, encode_response, parse_request, parse_response};
pub use protocol::{
    ErrorCode, GraphRef, Request, Response, ResponseBody, StatsBody, MAX_LINE_BYTES,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig};
