//! Hand-rolled wire codec for the [`crate::protocol`] messages.
//!
//! Both directions are covered — requests and responses, encode and
//! parse — so the same codec serves the daemon and its clients (and lets
//! property tests round-trip every message variant). The parser is the
//! same fixed-grammar recursive descent as `ged_graph::io` (which it
//! delegates inline graph payloads to via
//! [`ged_graph::io::graph_from_json_prefix`]), and reports the same
//! structured [`ParseError`]s.

use crate::protocol::{
    ErrorCode, GraphRef, Request, Response, ResponseBody, StatsBody, WireExactNeighbor,
    WireJoinPair, WireJoinUndecided, WireNeighbor, WireUndecided, PROTOCOL_VERSION,
};
use ged_graph::io::{graph_from_json_prefix, graph_to_json, ParseError, ParseErrorKind};
use ged_graph::{CanonicalOp, ShardedStore};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a finite `f64` in Rust's shortest round-trip decimal form
/// (valid JSON for finite values; the protocol carries finite numbers
/// only).
fn push_f64(out: &mut String, x: f64) {
    debug_assert!(x.is_finite(), "protocol numbers must be finite");
    let _ = write!(out, "{x}");
}

fn push_graph_ref(out: &mut String, r: &GraphRef) {
    match r {
        GraphRef::Name(n) => push_json_string(out, n),
        GraphRef::Inline(g) => out.push_str(&graph_to_json(g)),
    }
}

fn push_deadline(out: &mut String, deadline_ms: Option<u64>) {
    if let Some(ms) = deadline_ms {
        let _ = write!(out, ",\"deadline_ms\":{ms}");
    }
}

/// Encodes a request as one JSON line (no trailing newline).
#[must_use]
pub fn encode_request(req: &Request) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"v\":{PROTOCOL_VERSION},\"id\":");
    push_json_string(&mut s, req.id());
    s.push_str(",\"op\":");
    match req {
        Request::Ping { .. } => s.push_str("\"ping\""),
        Request::Stats { .. } => s.push_str("\"stats\""),
        Request::Explain { shape, .. } => {
            s.push_str("\"explain\",\"shape\":");
            push_json_string(&mut s, shape);
        }
        Request::Shutdown { .. } => s.push_str("\"shutdown\""),
        Request::InsertGraph { graph, .. } => {
            s.push_str("\"insert_graph\",\"graph\":");
            s.push_str(&graph_to_json(graph));
        }
        Request::RemoveGraph { name, .. } => {
            s.push_str("\"remove_graph\",\"name\":");
            push_json_string(&mut s, name);
        }
        Request::Predict {
            g1,
            g2,
            deadline_ms,
            ..
        } => {
            s.push_str("\"predict\",\"g1\":");
            push_graph_ref(&mut s, g1);
            s.push_str(",\"g2\":");
            push_graph_ref(&mut s, g2);
            push_deadline(&mut s, *deadline_ms);
        }
        Request::EditPath {
            g1,
            g2,
            k,
            deadline_ms,
            ..
        } => {
            s.push_str("\"edit_path\",\"g1\":");
            push_graph_ref(&mut s, g1);
            s.push_str(",\"g2\":");
            push_graph_ref(&mut s, g2);
            if let Some(k) = k {
                let _ = write!(s, ",\"k\":{k}");
            }
            push_deadline(&mut s, *deadline_ms);
        }
        Request::TopK {
            query,
            k,
            deadline_ms,
            ..
        } => {
            s.push_str("\"top_k\",\"query\":");
            push_graph_ref(&mut s, query);
            let _ = write!(s, ",\"k\":{k}");
            push_deadline(&mut s, *deadline_ms);
        }
        Request::Range {
            query,
            tau,
            deadline_ms,
            ..
        } => {
            s.push_str("\"range\",\"query\":");
            push_graph_ref(&mut s, query);
            s.push_str(",\"tau\":");
            push_f64(&mut s, *tau);
            push_deadline(&mut s, *deadline_ms);
        }
        Request::RangeExact {
            query,
            tau,
            deadline_ms,
            ..
        } => {
            s.push_str("\"range_exact\",\"query\":");
            push_graph_ref(&mut s, query);
            s.push_str(",\"tau\":");
            push_f64(&mut s, *tau);
            push_deadline(&mut s, *deadline_ms);
        }
        Request::Matrix { deadline_ms, .. } => {
            s.push_str("\"matrix\"");
            push_deadline(&mut s, *deadline_ms);
        }
        Request::SelfJoin {
            tau, deadline_ms, ..
        } => {
            s.push_str("\"self_join\",\"tau\":");
            push_f64(&mut s, *tau);
            push_deadline(&mut s, *deadline_ms);
        }
        Request::Join {
            graphs,
            tau,
            deadline_ms,
            ..
        } => {
            s.push_str("\"join\",\"graphs\":[");
            for (i, g) in graphs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&graph_to_json(g));
            }
            s.push_str("],\"tau\":");
            push_f64(&mut s, *tau);
            push_deadline(&mut s, *deadline_ms);
        }
        Request::Snapshot { path, .. } => {
            s.push_str("\"snapshot\"");
            if let Some(p) = path {
                s.push_str(",\"path\":");
                push_json_string(&mut s, p);
            }
        }
        Request::Load { path, .. } => {
            s.push_str("\"load\"");
            if let Some(p) = path {
                s.push_str(",\"path\":");
                push_json_string(&mut s, p);
            }
        }
    }
    s.push('}');
    s
}

fn push_ops(out: &mut String, ops: &[CanonicalOp]) {
    out.push('[');
    for (i, op) in ops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match op {
            CanonicalOp::Relabel(u) => {
                let _ = write!(out, "[\"relabel\",{u}]");
            }
            CanonicalOp::InsertNode(v) => {
                let _ = write!(out, "[\"insert_node\",{v}]");
            }
            CanonicalOp::DeleteEdge(u, v) => {
                let _ = write!(out, "[\"delete_edge\",{u},{v}]");
            }
            CanonicalOp::InsertEdge(u, v) => {
                let _ = write!(out, "[\"insert_edge\",{u},{v}]");
            }
        }
    }
    out.push(']');
}

/// The shared tail of the `self_join` / `join` response payloads.
fn push_join_body(
    s: &mut String,
    pairs: &[WireJoinPair],
    undecided: &[WireJoinUndecided],
    candidates: u64,
    verified: u64,
) {
    s.push_str(",\"pairs\":[");
    for (i, p) in pairs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"a\":");
        push_json_string(s, &p.a);
        s.push_str(",\"b\":");
        push_json_string(s, &p.b);
        let _ = write!(s, ",\"ged\":{}}}", p.ged);
    }
    s.push_str("],\"undecided\":[");
    for (i, u) in undecided.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"a\":");
        push_json_string(s, &u.a);
        s.push_str(",\"b\":");
        push_json_string(s, &u.b);
        s.push_str(",\"known_match_ub\":");
        match u.known_match_ub {
            Some(ub) => {
                let _ = write!(s, "{ub}");
            }
            None => s.push_str("null"),
        }
        s.push('}');
    }
    let _ = write!(s, "],\"candidates\":{candidates},\"verified\":{verified}");
}

/// Encodes a response as one JSON line (no trailing newline).
#[must_use]
pub fn encode_response(resp: &Response) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"v\":{PROTOCOL_VERSION},\"id\":");
    push_json_string(&mut s, &resp.id);
    let _ = write!(s, ",\"ok\":{},\"rev\":{},\"type\":", resp.is_ok(), resp.rev);
    match &resp.body {
        ResponseBody::Pong => s.push_str("\"pong\""),
        ResponseBody::ShutdownComplete => s.push_str("\"shutdown_complete\""),
        ResponseBody::Stats(b) => {
            let _ = write!(s, "\"stats\",\"graphs\":{},\"method\":", b.graphs);
            push_json_string(&mut s, &b.method);
            let _ = write!(s, ",\"pivots\":{},\"cached_predictions\":", b.pivots);
            match b.cached_predictions {
                Some(n) => {
                    let _ = write!(s, "{n}");
                }
                None => s.push_str("null"),
            }
            let _ = write!(
                s,
                ",\"inflight\":{},\"max_inflight\":{},\"adaptive\":{},\"planner_saved\":{}",
                b.inflight, b.max_inflight, b.adaptive, b.planner_saved
            );
        }
        ResponseBody::Plan {
            shape,
            adaptive,
            tiers,
            skipped,
            observations,
            solver_calls_saved,
            searches_saved,
            pivot_arms_saved,
        } => {
            s.push_str("\"plan\",\"shape\":");
            push_json_string(&mut s, shape);
            let _ = write!(s, ",\"adaptive\":{adaptive},\"tiers\":[");
            for (i, t) in tiers.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_json_string(&mut s, t);
            }
            s.push_str("],\"skipped\":[");
            for (i, t) in skipped.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_json_string(&mut s, t);
            }
            let _ = write!(
                s,
                "],\"observations\":{observations},\"solver_calls_saved\":{solver_calls_saved},\
                 \"searches_saved\":{searches_saved},\"pivot_arms_saved\":{pivot_arms_saved}"
            );
        }
        ResponseBody::Inserted { name } => {
            s.push_str("\"inserted\",\"name\":");
            push_json_string(&mut s, name);
        }
        ResponseBody::Removed { name } => {
            s.push_str("\"removed\",\"name\":");
            push_json_string(&mut s, name);
        }
        ResponseBody::Ged { ged } => {
            s.push_str("\"ged\",\"ged\":");
            push_f64(&mut s, *ged);
        }
        ResponseBody::Path { ged, mapping, ops } => {
            let _ = write!(s, "\"path\",\"ged\":{ged},\"mapping\":[");
            for (i, v) in mapping.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{v}");
            }
            s.push_str("],\"ops\":");
            push_ops(&mut s, ops);
        }
        ResponseBody::Neighbors { neighbors } => {
            s.push_str("\"neighbors\",\"neighbors\":[");
            for (i, n) in neighbors.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str("{\"name\":");
                push_json_string(&mut s, &n.name);
                s.push_str(",\"ged\":");
                push_f64(&mut s, n.ged);
                s.push('}');
            }
            s.push(']');
        }
        ResponseBody::ExactMatches { matches, undecided } => {
            s.push_str("\"exact\",\"matches\":[");
            for (i, m) in matches.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str("{\"name\":");
                push_json_string(&mut s, &m.name);
                let _ = write!(s, ",\"ged\":{}}}", m.ged);
            }
            s.push_str("],\"undecided\":[");
            for (i, u) in undecided.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str("{\"name\":");
                push_json_string(&mut s, &u.name);
                s.push_str(",\"known_match_ub\":");
                match u.known_match_ub {
                    Some(ub) => {
                        let _ = write!(s, "{ub}");
                    }
                    None => s.push_str("null"),
                }
                s.push('}');
            }
            s.push(']');
        }
        ResponseBody::SelfJoin {
            pairs,
            undecided,
            candidates,
            verified,
        } => {
            s.push_str("\"self_join\"");
            push_join_body(&mut s, pairs, undecided, *candidates, *verified);
        }
        ResponseBody::Join {
            pairs,
            undecided,
            candidates,
            verified,
        } => {
            s.push_str("\"join\"");
            push_join_body(&mut s, pairs, undecided, *candidates, *verified);
        }
        ResponseBody::Matrix { names, rows } => {
            s.push_str("\"matrix\",\"names\":[");
            for (i, n) in names.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_json_string(&mut s, n);
            }
            s.push_str("],\"rows\":[");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('[');
                for (j, x) in row.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    push_f64(&mut s, *x);
                }
                s.push(']');
            }
            s.push(']');
        }
        ResponseBody::Snapshotted { path, graphs } => {
            s.push_str("\"snapshotted\",\"path\":");
            push_json_string(&mut s, path);
            let _ = write!(s, ",\"graphs\":{graphs}");
        }
        ResponseBody::Loaded { path, graphs } => {
            s.push_str("\"loaded\",\"path\":");
            push_json_string(&mut s, path);
            let _ = write!(s, ",\"graphs\":{graphs}");
        }
        ResponseBody::Error { code, message } => {
            s.push_str("\"error\",\"code\":");
            push_json_string(&mut s, code.as_str());
            s.push_str(",\"message\":");
            push_json_string(&mut s, message);
        }
    }
    s.push('}');
    s
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Recursive-descent parser over one wire line (same style as the
/// `ged_graph::io` parser; wire lines contain no raw newlines, so error
/// positions are always line 1).
struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            input: s,
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, at: usize, kind: ParseErrorKind) -> ParseError {
        ParseError {
            at,
            line: 1,
            column: at + 1,
            kind,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, token: &'static str) -> Result<(), ParseError> {
        self.skip_ws();
        let end = self.pos + token.len();
        if end <= self.bytes.len() && &self.bytes[self.pos..end] == token.as_bytes() {
            self.pos = end;
            Ok(())
        } else {
            Err(self.err(self.pos, ParseErrorKind::Expected(token)))
        }
    }

    /// Consumes `token` if it is next; leaves the position alone if not.
    fn try_token(&mut self, token: &str) -> bool {
        self.skip_ws();
        let end = self.pos + token.len();
        if end <= self.bytes.len() && &self.bytes[self.pos..end] == token.as_bytes() {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn u64(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err(start, ParseErrorKind::ExpectedNumber));
        }
        self.input[start..self.pos]
            .parse::<u64>()
            .map_err(|_| self.err(start, ParseErrorKind::NumberOverflow))
    }

    fn u32(&mut self) -> Result<u32, ParseError> {
        let start = {
            self.skip_ws();
            self.pos
        };
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| self.err(start, ParseErrorKind::NumberOverflow))
    }

    fn f64(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err(start, ParseErrorKind::ExpectedNumber));
        }
        self.input[start..self.pos]
            .parse::<f64>()
            .map_err(|_| self.err(start, ParseErrorKind::ExpectedNumber))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect("\"")?;
        let mut out = String::new();
        loop {
            let at = self.pos;
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err(at, ParseErrorKind::Expected("\"")));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(self.err(self.pos, ParseErrorKind::Invalid("string escape")));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            let code = self
                                .input
                                .get(self.pos..end)
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| {
                                    self.err(at, ParseErrorKind::Invalid("unicode escape"))
                                })?;
                            self.pos = end;
                            out.push(code);
                        }
                        _ => return Err(self.err(at, ParseErrorKind::Invalid("string escape"))),
                    }
                }
                _ => {
                    // Copy the full UTF-8 scalar starting at `at`.
                    let ch_end = (at + 1..=self.bytes.len())
                        .find(|&e| self.input.is_char_boundary(e))
                        .expect("input is valid UTF-8");
                    out.push_str(&self.input[at..ch_end]);
                    self.pos = ch_end;
                }
            }
        }
    }

    /// An inline graph object, delegated to the `ged_graph::io` grammar.
    fn graph(&mut self) -> Result<ged_graph::Graph, ParseError> {
        self.skip_ws();
        let base = self.pos;
        let (g, used) = graph_from_json_prefix(&self.input[base..]).map_err(|e| ParseError {
            at: base + e.at,
            line: 1,
            column: base + e.at + 1,
            kind: e.kind,
        })?;
        self.pos = base + used;
        Ok(g)
    }

    fn graph_ref(&mut self) -> Result<GraphRef, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(GraphRef::Name(self.string()?)),
            Some(b'{') => Ok(GraphRef::Inline(self.graph()?)),
            _ => Err(self.err(self.pos, ParseErrorKind::Invalid("graph reference"))),
        }
    }

    /// `,"name":<u64>` if present.
    fn opt_u64_field(&mut self, comma_name_colon: &str) -> Result<Option<u64>, ParseError> {
        if self.try_token(comma_name_colon) {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }

    fn bool(&mut self) -> Result<bool, ParseError> {
        if self.try_token("true") {
            Ok(true)
        } else if self.try_token("false") {
            Ok(false)
        } else {
            Err(self.err(self.pos, ParseErrorKind::Invalid("boolean")))
        }
    }

    fn end(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.err(self.pos, ParseErrorKind::TrailingInput))
        }
    }

    fn envelope(&mut self) -> Result<String, ParseError> {
        self.expect("{")?;
        self.expect("\"v\"")?;
        self.expect(":")?;
        let at = {
            self.skip_ws();
            self.pos
        };
        let v = self.u64()?;
        if v != PROTOCOL_VERSION {
            return Err(self.err(at, ParseErrorKind::Invalid("protocol version")));
        }
        self.expect(",")?;
        self.expect("\"id\"")?;
        self.expect(":")?;
        self.string()
    }

    fn request(&mut self) -> Result<Request, ParseError> {
        let id = self.envelope()?;
        self.expect(",")?;
        self.expect("\"op\"")?;
        self.expect(":")?;
        let op_at = {
            self.skip_ws();
            self.pos
        };
        let op = self.string()?;
        let req = match op.as_str() {
            "ping" => Request::Ping { id },
            "stats" => Request::Stats { id },
            "explain" => {
                self.expect(",")?;
                self.expect("\"shape\"")?;
                self.expect(":")?;
                let shape = self.string()?;
                Request::Explain { id, shape }
            }
            "shutdown" => Request::Shutdown { id },
            "insert_graph" => {
                self.expect(",")?;
                self.expect("\"graph\"")?;
                self.expect(":")?;
                let graph = self.graph()?;
                Request::InsertGraph { id, graph }
            }
            "remove_graph" => {
                self.expect(",")?;
                self.expect("\"name\"")?;
                self.expect(":")?;
                let name = self.string()?;
                Request::RemoveGraph { id, name }
            }
            "predict" | "edit_path" => {
                self.expect(",")?;
                self.expect("\"g1\"")?;
                self.expect(":")?;
                let g1 = self.graph_ref()?;
                self.expect(",")?;
                self.expect("\"g2\"")?;
                self.expect(":")?;
                let g2 = self.graph_ref()?;
                if op == "predict" {
                    let deadline_ms = self.opt_u64_field(",\"deadline_ms\":")?;
                    Request::Predict {
                        id,
                        g1,
                        g2,
                        deadline_ms,
                    }
                } else {
                    let k = self.opt_u64_field(",\"k\":")?;
                    let deadline_ms = self.opt_u64_field(",\"deadline_ms\":")?;
                    Request::EditPath {
                        id,
                        g1,
                        g2,
                        k,
                        deadline_ms,
                    }
                }
            }
            "top_k" => {
                self.expect(",")?;
                self.expect("\"query\"")?;
                self.expect(":")?;
                let query = self.graph_ref()?;
                self.expect(",")?;
                self.expect("\"k\"")?;
                self.expect(":")?;
                let k = self.u64()?;
                let deadline_ms = self.opt_u64_field(",\"deadline_ms\":")?;
                Request::TopK {
                    id,
                    query,
                    k,
                    deadline_ms,
                }
            }
            "range" | "range_exact" => {
                self.expect(",")?;
                self.expect("\"query\"")?;
                self.expect(":")?;
                let query = self.graph_ref()?;
                self.expect(",")?;
                self.expect("\"tau\"")?;
                self.expect(":")?;
                let tau = self.f64()?;
                let deadline_ms = self.opt_u64_field(",\"deadline_ms\":")?;
                if op == "range" {
                    Request::Range {
                        id,
                        query,
                        tau,
                        deadline_ms,
                    }
                } else {
                    Request::RangeExact {
                        id,
                        query,
                        tau,
                        deadline_ms,
                    }
                }
            }
            "matrix" => {
                let deadline_ms = self.opt_u64_field(",\"deadline_ms\":")?;
                Request::Matrix { id, deadline_ms }
            }
            "self_join" => {
                self.expect(",")?;
                self.expect("\"tau\"")?;
                self.expect(":")?;
                let tau = self.f64()?;
                let deadline_ms = self.opt_u64_field(",\"deadline_ms\":")?;
                Request::SelfJoin {
                    id,
                    tau,
                    deadline_ms,
                }
            }
            "join" => {
                self.expect(",")?;
                self.expect("\"graphs\"")?;
                self.expect(":")?;
                let graphs = self.list(Self::graph)?;
                self.expect(",")?;
                self.expect("\"tau\"")?;
                self.expect(":")?;
                let tau = self.f64()?;
                let deadline_ms = self.opt_u64_field(",\"deadline_ms\":")?;
                Request::Join {
                    id,
                    graphs,
                    tau,
                    deadline_ms,
                }
            }
            "snapshot" | "load" => {
                let path = if self.try_token(",\"path\":") {
                    Some(self.string()?)
                } else {
                    None
                };
                if op == "snapshot" {
                    Request::Snapshot { id, path }
                } else {
                    Request::Load { id, path }
                }
            }
            _ => return Err(self.err(op_at, ParseErrorKind::Invalid("op"))),
        };
        self.expect("}")?;
        self.end()?;
        Ok(req)
    }

    /// `{"name":S,"ged":<num>}`-shaped entries.
    fn named_f64(&mut self) -> Result<WireNeighbor, ParseError> {
        self.expect("{")?;
        self.expect("\"name\"")?;
        self.expect(":")?;
        let name = self.string()?;
        self.expect(",")?;
        self.expect("\"ged\"")?;
        self.expect(":")?;
        let ged = self.f64()?;
        self.expect("}")?;
        Ok(WireNeighbor { name, ged })
    }

    /// `[item, item, ...]` with `item` produced by `f`.
    fn list<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, ParseError>,
    ) -> Result<Vec<T>, ParseError> {
        self.expect("[")?;
        let mut out = Vec::new();
        if self.try_token("]") {
            return Ok(out);
        }
        loop {
            out.push(f(self)?);
            if !self.try_token(",") {
                self.expect("]")?;
                return Ok(out);
            }
        }
    }

    fn op(&mut self) -> Result<CanonicalOp, ParseError> {
        self.expect("[")?;
        let at = {
            self.skip_ws();
            self.pos
        };
        let kind = self.string()?;
        self.expect(",")?;
        let a = self.u32()?;
        let op = match kind.as_str() {
            "relabel" => CanonicalOp::Relabel(a),
            "insert_node" => CanonicalOp::InsertNode(a),
            "delete_edge" | "insert_edge" => {
                self.expect(",")?;
                let b = self.u32()?;
                if kind == "delete_edge" {
                    CanonicalOp::DeleteEdge(a, b)
                } else {
                    CanonicalOp::InsertEdge(a, b)
                }
            }
            _ => return Err(self.err(at, ParseErrorKind::Invalid("edit op"))),
        };
        self.expect("]")?;
        Ok(op)
    }

    fn response(&mut self) -> Result<Response, ParseError> {
        let id = self.envelope()?;
        self.expect(",")?;
        self.expect("\"ok\"")?;
        self.expect(":")?;
        let ok = if self.try_token("true") {
            true
        } else if self.try_token("false") {
            false
        } else {
            return Err(self.err(self.pos, ParseErrorKind::Invalid("ok flag")));
        };
        self.expect(",")?;
        self.expect("\"rev\"")?;
        self.expect(":")?;
        let rev = self.u64()?;
        self.expect(",")?;
        self.expect("\"type\"")?;
        self.expect(":")?;
        let ty_at = {
            self.skip_ws();
            self.pos
        };
        let ty = self.string()?;
        let body = match ty.as_str() {
            "pong" => ResponseBody::Pong,
            "shutdown_complete" => ResponseBody::ShutdownComplete,
            "stats" => {
                self.expect(",")?;
                self.expect("\"graphs\"")?;
                self.expect(":")?;
                let graphs = self.u64()?;
                self.expect(",")?;
                self.expect("\"method\"")?;
                self.expect(":")?;
                let method = self.string()?;
                self.expect(",")?;
                self.expect("\"pivots\"")?;
                self.expect(":")?;
                let pivots = self.u64()?;
                self.expect(",")?;
                self.expect("\"cached_predictions\"")?;
                self.expect(":")?;
                let cached_predictions = if self.try_token("null") {
                    None
                } else {
                    Some(self.u64()?)
                };
                self.expect(",")?;
                self.expect("\"inflight\"")?;
                self.expect(":")?;
                let inflight = self.u64()?;
                self.expect(",")?;
                self.expect("\"max_inflight\"")?;
                self.expect(":")?;
                let max_inflight = self.u64()?;
                self.expect(",")?;
                self.expect("\"adaptive\"")?;
                self.expect(":")?;
                let adaptive = self.bool()?;
                self.expect(",")?;
                self.expect("\"planner_saved\"")?;
                self.expect(":")?;
                let planner_saved = self.u64()?;
                ResponseBody::Stats(StatsBody {
                    graphs,
                    method,
                    pivots,
                    cached_predictions,
                    inflight,
                    max_inflight,
                    adaptive,
                    planner_saved,
                })
            }
            "plan" => {
                self.expect(",")?;
                self.expect("\"shape\"")?;
                self.expect(":")?;
                let shape = self.string()?;
                self.expect(",")?;
                self.expect("\"adaptive\"")?;
                self.expect(":")?;
                let adaptive = self.bool()?;
                self.expect(",")?;
                self.expect("\"tiers\"")?;
                self.expect(":")?;
                let tiers = self.list(Self::string)?;
                self.expect(",")?;
                self.expect("\"skipped\"")?;
                self.expect(":")?;
                let skipped = self.list(Self::string)?;
                self.expect(",")?;
                self.expect("\"observations\"")?;
                self.expect(":")?;
                let observations = self.u64()?;
                self.expect(",")?;
                self.expect("\"solver_calls_saved\"")?;
                self.expect(":")?;
                let solver_calls_saved = self.u64()?;
                self.expect(",")?;
                self.expect("\"searches_saved\"")?;
                self.expect(":")?;
                let searches_saved = self.u64()?;
                self.expect(",")?;
                self.expect("\"pivot_arms_saved\"")?;
                self.expect(":")?;
                let pivot_arms_saved = self.u64()?;
                ResponseBody::Plan {
                    shape,
                    adaptive,
                    tiers,
                    skipped,
                    observations,
                    solver_calls_saved,
                    searches_saved,
                    pivot_arms_saved,
                }
            }
            "inserted" | "removed" => {
                self.expect(",")?;
                self.expect("\"name\"")?;
                self.expect(":")?;
                let name = self.string()?;
                if ty == "inserted" {
                    ResponseBody::Inserted { name }
                } else {
                    ResponseBody::Removed { name }
                }
            }
            "ged" => {
                self.expect(",")?;
                self.expect("\"ged\"")?;
                self.expect(":")?;
                ResponseBody::Ged { ged: self.f64()? }
            }
            "path" => {
                self.expect(",")?;
                self.expect("\"ged\"")?;
                self.expect(":")?;
                let ged = self.u64()?;
                self.expect(",")?;
                self.expect("\"mapping\"")?;
                self.expect(":")?;
                let mapping = self.list(Self::u32)?;
                self.expect(",")?;
                self.expect("\"ops\"")?;
                self.expect(":")?;
                let ops = self.list(Self::op)?;
                ResponseBody::Path { ged, mapping, ops }
            }
            "neighbors" => {
                self.expect(",")?;
                self.expect("\"neighbors\"")?;
                self.expect(":")?;
                let neighbors = self.list(Self::named_f64)?;
                ResponseBody::Neighbors { neighbors }
            }
            "exact" => {
                self.expect(",")?;
                self.expect("\"matches\"")?;
                self.expect(":")?;
                let matches = self.list(|p| {
                    p.expect("{")?;
                    p.expect("\"name\"")?;
                    p.expect(":")?;
                    let name = p.string()?;
                    p.expect(",")?;
                    p.expect("\"ged\"")?;
                    p.expect(":")?;
                    let ged = p.u64()?;
                    p.expect("}")?;
                    Ok(WireExactNeighbor { name, ged })
                })?;
                self.expect(",")?;
                self.expect("\"undecided\"")?;
                self.expect(":")?;
                let undecided = self.list(|p| {
                    p.expect("{")?;
                    p.expect("\"name\"")?;
                    p.expect(":")?;
                    let name = p.string()?;
                    p.expect(",")?;
                    p.expect("\"known_match_ub\"")?;
                    p.expect(":")?;
                    let known_match_ub = if p.try_token("null") {
                        None
                    } else {
                        Some(p.u64()?)
                    };
                    p.expect("}")?;
                    Ok(WireUndecided {
                        name,
                        known_match_ub,
                    })
                })?;
                ResponseBody::ExactMatches { matches, undecided }
            }
            "self_join" | "join" => {
                self.expect(",")?;
                self.expect("\"pairs\"")?;
                self.expect(":")?;
                let pairs = self.list(|p| {
                    p.expect("{")?;
                    p.expect("\"a\"")?;
                    p.expect(":")?;
                    let a = p.string()?;
                    p.expect(",")?;
                    p.expect("\"b\"")?;
                    p.expect(":")?;
                    let b = p.string()?;
                    p.expect(",")?;
                    p.expect("\"ged\"")?;
                    p.expect(":")?;
                    let ged = p.u64()?;
                    p.expect("}")?;
                    Ok(WireJoinPair { a, b, ged })
                })?;
                self.expect(",")?;
                self.expect("\"undecided\"")?;
                self.expect(":")?;
                let undecided = self.list(|p| {
                    p.expect("{")?;
                    p.expect("\"a\"")?;
                    p.expect(":")?;
                    let a = p.string()?;
                    p.expect(",")?;
                    p.expect("\"b\"")?;
                    p.expect(":")?;
                    let b = p.string()?;
                    p.expect(",")?;
                    p.expect("\"known_match_ub\"")?;
                    p.expect(":")?;
                    let known_match_ub = if p.try_token("null") {
                        None
                    } else {
                        Some(p.u64()?)
                    };
                    p.expect("}")?;
                    Ok(WireJoinUndecided {
                        a,
                        b,
                        known_match_ub,
                    })
                })?;
                self.expect(",")?;
                self.expect("\"candidates\"")?;
                self.expect(":")?;
                let candidates = self.u64()?;
                self.expect(",")?;
                self.expect("\"verified\"")?;
                self.expect(":")?;
                let verified = self.u64()?;
                if ty == "self_join" {
                    ResponseBody::SelfJoin {
                        pairs,
                        undecided,
                        candidates,
                        verified,
                    }
                } else {
                    ResponseBody::Join {
                        pairs,
                        undecided,
                        candidates,
                        verified,
                    }
                }
            }
            "matrix" => {
                self.expect(",")?;
                self.expect("\"names\"")?;
                self.expect(":")?;
                let names = self.list(Self::string)?;
                self.expect(",")?;
                self.expect("\"rows\"")?;
                self.expect(":")?;
                let rows = self.list(|p| p.list(Self::f64))?;
                ResponseBody::Matrix { names, rows }
            }
            "snapshotted" | "loaded" => {
                self.expect(",")?;
                self.expect("\"path\"")?;
                self.expect(":")?;
                let path = self.string()?;
                self.expect(",")?;
                self.expect("\"graphs\"")?;
                self.expect(":")?;
                let graphs = self.u64()?;
                if ty == "snapshotted" {
                    ResponseBody::Snapshotted { path, graphs }
                } else {
                    ResponseBody::Loaded { path, graphs }
                }
            }
            "error" => {
                self.expect(",")?;
                self.expect("\"code\"")?;
                self.expect(":")?;
                let code_at = {
                    self.skip_ws();
                    self.pos
                };
                let code = self.string()?;
                let code = ErrorCode::from_str_opt(&code)
                    .ok_or_else(|| self.err(code_at, ParseErrorKind::Invalid("error code")))?;
                self.expect(",")?;
                self.expect("\"message\"")?;
                self.expect(":")?;
                let message = self.string()?;
                ResponseBody::Error { code, message }
            }
            _ => return Err(self.err(ty_at, ParseErrorKind::Invalid("response type"))),
        };
        let resp = Response { id, rev, body };
        if ok != resp.is_ok() {
            return Err(self.err(ty_at, ParseErrorKind::Invalid("ok flag")));
        }
        self.expect("}")?;
        self.end()?;
        Ok(resp)
    }
}

/// Parses one request line.
///
/// # Errors
/// Returns a [`ParseError`] if the line is not a well-formed request of
/// the current protocol version.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    Parser::new(line).request()
}

/// Parses one response line.
///
/// # Errors
/// Returns a [`ParseError`] if the line is not a well-formed response of
/// the current protocol version.
pub fn parse_response(line: &str) -> Result<Response, ParseError> {
    Parser::new(line).response()
}

// ---------------------------------------------------------------------------
// Server snapshots (the `snapshot` / `load` on-disk wrapper)
// ---------------------------------------------------------------------------

/// The parsed contents of a server snapshot file: the protocol mutation
/// counter, the next name to mint, every stored graph's name in
/// ascending id order, and the sharded store itself.
#[derive(Debug)]
pub struct ServerSnapshot {
    /// The server's mutation counter at save time.
    pub rev: u64,
    /// The next `g{n}` name to mint.
    pub next_name: u64,
    /// Protocol names, one per store entry, in ascending id order.
    pub names: Vec<String>,
    /// The store, ids and pivot blocks included.
    pub store: ShardedStore,
}

/// Encodes a server snapshot (see the [`crate::protocol`] docs for the
/// grammar). `names` must be in ascending id order — the order
/// [`ged_graph::ShardedStore::ids`] reports.
#[must_use]
pub fn encode_server_snapshot(
    rev: u64,
    next_name: u64,
    names: &[String],
    store: &ShardedStore,
) -> String {
    let mut s = format!("{{\"schema\":1,\"rev\":{rev},\"next_name\":{next_name},\"names\":[");
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_json_string(&mut s, name);
    }
    s.push_str("],\"store\":");
    s.push_str(&store.to_json());
    s.push('}');
    s
}

/// Parses a server snapshot file, delegating the `"store"` payload to
/// the `ged_graph::shard` snapshot grammar.
///
/// # Errors
/// Returns a [`ParseError`] on any grammar violation, including a name
/// table whose length disagrees with the store population.
pub fn parse_server_snapshot(s: &str) -> Result<ServerSnapshot, ParseError> {
    let mut p = Parser::new(s);
    p.expect("{")?;
    p.expect("\"schema\"")?;
    p.expect(":")?;
    let at = {
        p.skip_ws();
        p.pos
    };
    if p.u64()? != 1 {
        return Err(p.err(at, ParseErrorKind::Invalid("snapshot schema")));
    }
    p.expect(",")?;
    p.expect("\"rev\"")?;
    p.expect(":")?;
    let rev = p.u64()?;
    p.expect(",")?;
    p.expect("\"next_name\"")?;
    p.expect(":")?;
    let next_name = p.u64()?;
    p.expect(",")?;
    p.expect("\"names\"")?;
    p.expect(":")?;
    let names_at = {
        p.skip_ws();
        p.pos
    };
    let names = p.list(|p| p.string())?;
    p.expect(",")?;
    p.expect("\"store\"")?;
    p.expect(":")?;
    p.skip_ws();
    let base = p.pos;
    let (store, used) = ShardedStore::from_json_prefix(&s[base..]).map_err(|e| ParseError {
        at: base + e.at,
        line: 1,
        column: base + e.at + 1,
        kind: e.kind,
    })?;
    p.pos = base + used;
    p.expect("}")?;
    p.end()?;
    if names.len() != store.len() {
        return Err(ParseError {
            at: names_at,
            line: 1,
            column: names_at + 1,
            kind: ParseErrorKind::Invalid("name table"),
        });
    }
    Ok(ServerSnapshot {
        rev,
        next_name,
        names,
        store,
    })
}
