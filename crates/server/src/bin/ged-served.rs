//! `ged-served` — the GED-as-a-service daemon.
//!
//! Serves the line-delimited JSON protocol (see `ged_server::protocol`)
//! over stdin/stdout, and over a Unix domain socket when `--socket` is
//! given. One request object per line in, one response object per line
//! out. The process exits 0 after a `shutdown` request has drained, or
//! when stdin reaches EOF with no socket being served.
//!
//! ```text
//! ged-served [--socket PATH] [--method NAME] [--threads N]
//!            [--beam-width N] [--pivots N] [--cache N]
//!            [--verify-budget N] [--max-inflight N] [--adaptive]
//!            [--seed KIND:N] [--store PATH]
//! ```
//!
//! `--seed KIND:N` pre-populates the store with `N` deterministic
//! synthetic graphs named `g0..g{N-1}`; `KIND` is `sparse` (connected
//! labeled), `ego` (ego-net), or `powerlaw` (Barabási–Albert).
//!
//! `--store PATH` names the default snapshot file for the `snapshot` and
//! `load` ops; when the file already exists the store is restored from
//! it before serving (and `--seed` graphs are inserted on top).
//!
//! `--adaptive` turns on the engine's stats-driven query planner
//! (bit-identical results, adaptive tier ordering; inspect it with the
//! `explain` op).

use ged_core::method::MethodKind;
use ged_server::{Server, ServerConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::io::{BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: ged-served [--socket PATH] [--method NAME] [--threads N] \
[--beam-width N] [--pivots N] [--cache N] [--verify-budget N] [--max-inflight N] \
[--adaptive] [--seed KIND:N] [--store PATH]";

struct Args {
    socket: Option<PathBuf>,
    config: ServerConfig,
    seed: Option<(String, usize)>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        config: ServerConfig::default(),
        seed: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--socket" => args.socket = Some(PathBuf::from(value("--socket")?)),
            "--method" => {
                args.config.method = value("--method")?
                    .parse::<MethodKind>()
                    .map_err(|e| e.to_string())?;
            }
            "--threads" => args.config.threads = Some(usize_value(&value("--threads")?)?),
            "--beam-width" => args.config.beam_width = Some(usize_value(&value("--beam-width")?)?),
            "--pivots" => args.config.pivots = Some(usize_value(&value("--pivots")?)?),
            "--cache" => args.config.prediction_cache = Some(usize_value(&value("--cache")?)?),
            "--verify-budget" => {
                args.config.verify_budget = Some(usize_value(&value("--verify-budget")?)?);
            }
            "--max-inflight" => args.config.max_inflight = usize_value(&value("--max-inflight")?)?,
            "--adaptive" => args.config.adaptive = true,
            "--store" => args.config.store_path = Some(PathBuf::from(value("--store")?)),
            "--seed" => {
                let spec = value("--seed")?;
                let (kind, n) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--seed expects KIND:N, got {spec:?}"))?;
                args.seed = Some((kind.to_string(), usize_value(n)?));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn usize_value(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("expected a non-negative integer, got {s:?}"))
}

/// Deterministic store seeding: `N` graphs of 6–15 nodes, generator
/// chosen by `kind`, fixed RNG seed so every run serves the same data.
fn seed_store(server: &Server, kind: &str, n: usize) -> Result<(), String> {
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    use rand::Rng;
    for i in 0..n {
        let nodes = 6 + (i % 10);
        let graph = match kind {
            "sparse" => {
                ged_graph::generate::random_connected(nodes, nodes / 2, &[4.0, 2.0, 1.0], &mut rng)
            }
            "ego" => ged_graph::generate::ego_net(nodes, 2, &mut rng),
            "powerlaw" => {
                ged_graph::generate::barabasi_albert(nodes, 1 + rng.gen_range(0..2), &mut rng)
            }
            other => return Err(format!("unknown seed kind {other:?} (sparse|ego|powerlaw)")),
        };
        server.insert_local(graph);
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::new(&args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ged-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.config.store_path {
        if path.exists() {
            match server.load_local(path) {
                Ok(n) => eprintln!("ged-served: restored {n} graphs from {}", path.display()),
                Err(msg) => {
                    eprintln!("ged-served: {msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if let Some((kind, n)) = &args.seed {
        if let Err(msg) = seed_store(&server, kind, *n) {
            eprintln!("ged-served: {msg}");
            return ExitCode::FAILURE;
        }
    }

    let listener_thread = match &args.socket {
        Some(path) => {
            // A stale socket file from a previous run would make bind fail.
            let _ = std::fs::remove_file(path);
            let listener = match UnixListener::bind(path) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("ged-served: cannot bind {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            let server = server.clone();
            Some(std::thread::spawn(move || server.serve_listener(&listener)))
        }
        None => None,
    };

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    server.serve_connection(BufReader::new(stdin.lock()), stdout.lock());
    let _ = stdout.lock().flush();

    if let Some(handle) = listener_thread {
        // Stdin closed without a shutdown request: keep serving the
        // socket until some connection sends one.
        if !server.is_shutting_down() {
            server.wait_for_shutdown();
        }
        let _ = handle.join();
    }
    if let Some(path) = &args.socket {
        let _ = std::fs::remove_file(path);
    }
    ExitCode::SUCCESS
}
