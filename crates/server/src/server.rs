//! The daemon: engine + mutable store behind the wire protocol.
//!
//! One [`Server`] owns a [`GedEngine`] (whose [`ged_core::solver::BatchRunner`] pool
//! and prediction cache are shared by every connection) and a mutable
//! [`ShardedStore`] behind a reader–writer lock. Store queries run the
//! engine's sharded plans (shard-level pruning before the per-graph
//! tiers). Read queries execute under the read lock — concurrently with
//! each other, serialized against mutations — and mutations bump both
//! the store's own [`ShardedStore::revision`] and the server's
//! protocol-visible mutation counter (`rev` in every response), then
//! re-sync the per-shard pivot blocks under the same write lock (so the
//! pivot tier is armed before the next read admits).
//!
//! `snapshot` / `load` persist and restore the store — pivot blocks,
//! revisions, and the protocol name table included — via the hand-rolled
//! grammar in [`crate::codec`]; `ged-served --store PATH` restores a
//! snapshot at startup and names the default path for both ops.
//!
//! Concurrency discipline:
//!
//! * **Admission control** — at most [`ServerConfig::max_inflight`]
//!   store/engine requests execute at once; excess requests are rejected
//!   immediately with a typed `overloaded` error (never queued blind,
//!   never dropped). Introspection (`ping` / `stats` / `explain`) is
//!   always admitted.
//! * **Deadlines** — a request carrying `deadline_ms` is answered with
//!   `deadline_exceeded` if the deadline elapses before its result is
//!   ready. Store-level queries (`top_k` / `range` / `range_exact` /
//!   `matrix` / `self_join` / `join`) thread a cooperative
//!   [`ged_core::engine::Deadline`] into plan execution: the engine
//!   checks it between verification blocks and abandons the remaining
//!   work mid-plan instead of occupying the worker pool until an answer
//!   nobody is waiting for completes. Per-pair ops (`predict` /
//!   `edit_path`) are not preempted mid-solve — their deadline is
//!   checked on admission and again on completion. A deadline of `0`
//!   deterministically fails without executing.
//! * **Graceful shutdown** — `shutdown` stops admitting, waits for every
//!   in-flight request to finish and be answered, answers itself, then
//!   unblocks all connections. Requests arriving during the drain get a
//!   typed `shutting_down` error.

use crate::codec::{encode_response, encode_server_snapshot, parse_request, parse_server_snapshot};
use crate::protocol::{
    ErrorCode, GraphRef, Request, Response, ResponseBody, StatsBody, WireExactNeighbor,
    WireJoinPair, WireJoinUndecided, WireNeighbor, WireUndecided, MAX_LINE_BYTES,
};
use ged_baselines::solvers::ClassicSolver;
use ged_core::engine::{Deadline, GedEngine};
use ged_core::method::MethodKind;
use ged_core::pairs::GedPair;
use ged_core::plan::QueryShape;
use ged_core::solver::{GedgwSolver, SolverRegistry};
use ged_core::GedError;
use ged_graph::{Graph, GraphId, GraphStore, ShardedStore};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Graph-size bucket width of the daemon's [`ShardedStore`]: graphs with
/// `n / 8` equal land in the same shard — wide enough that small stores
/// stay in a few shards, narrow enough that heterogeneous stores give
/// the shard tier something to prune.
pub const DEFAULT_BUCKET_WIDTH: usize = 8;

/// Configuration of a [`Server`] (mirrors [`ged_core::engine::GedEngineBuilder`]
/// plus the serving-layer knobs).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Default GED method. The server registers the training-free
    /// solvers (GEDGW, Classic); this picks the default.
    pub method: MethodKind,
    /// Worker threads of the shared [`ged_core::solver::BatchRunner`]
    /// (`None` = builder default).
    pub threads: Option<usize>,
    /// Default edit-path search effort (`None` = builder default).
    pub beam_width: Option<usize>,
    /// Pivot-table target size (`None` = builder default).
    pub pivots: Option<usize>,
    /// Prediction-cache capacity (`None` = builder default).
    pub prediction_cache: Option<usize>,
    /// `range_exact` verification budget (`None` = unlimited).
    pub verify_budget: Option<usize>,
    /// Enables the engine's adaptive query planner
    /// ([`ged_core::engine::GedEngineBuilder::adaptive_planner`]).
    /// Results are bit-identical either way; only the work profile and
    /// the `explain` / `stats` planner counters change.
    pub adaptive: bool,
    /// Admission-control cap: maximum store/engine requests in flight.
    pub max_inflight: usize,
    /// Default snapshot path for the `snapshot` / `load` ops (the
    /// binary's `--store PATH`; also loaded at startup when it exists).
    pub store_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            method: MethodKind::Gedgw,
            threads: None,
            beam_width: None,
            pivots: None,
            prediction_cache: None,
            verify_budget: None,
            adaptive: false,
            max_inflight: 64,
            store_path: None,
        }
    }
}

/// The store plus the protocol's name table and mutation counter.
struct StoreState {
    store: ShardedStore,
    names: BTreeMap<String, GraphId>,
    ids: BTreeMap<GraphId, String>,
    next_name: u64,
    rev: u64,
}

struct Shared {
    engine: GedEngine,
    state: RwLock<StoreState>,
    /// Default snapshot path ([`ServerConfig::store_path`]).
    store_path: Option<PathBuf>,
    /// Count of admitted (executing) store/engine requests.
    inflight: Mutex<usize>,
    drained: Condvar,
    max_inflight: usize,
    shutting_down: AtomicBool,
    /// Signalled once the shutdown drain has completed.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Read-half handles of open socket connections, shut down on exit
    /// so blocked readers observe EOF.
    conns: Mutex<Vec<UnixStream>>,
}

/// Decrements the in-flight count on drop (even if a handler panics).
struct AdmitGuard<'a>(&'a Shared);

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        let mut n = self.0.inflight.lock().unwrap();
        *n -= 1;
        drop(n);
        self.0.drained.notify_all();
    }
}

/// A `ged-served` daemon instance. Cheap to clone (shared state).
#[derive(Clone)]
pub struct Server {
    shared: Arc<Shared>,
}

fn engine_error(e: &GedError) -> (ErrorCode, String) {
    let code = match e {
        GedError::UnknownMethod(_) | GedError::MethodNotRegistered(_) | GedError::Config(_) => {
            ErrorCode::Config
        }
        GedError::PathsUnsupported(_) => ErrorCode::Unsupported,
        GedError::EmptyGraph(_) => ErrorCode::EmptyGraph,
        GedError::InvalidK { .. } => ErrorCode::InvalidK,
        GedError::EmptyStore => ErrorCode::EmptyStore,
        GedError::UnknownGraphId(_) => ErrorCode::UnknownGraph,
        GedError::Parse(_) => ErrorCode::Parse,
        GedError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
    };
    (code, e.to_string())
}

/// The outcome of a store/engine op: the server's mutation counter
/// **captured under the same lock the op executed under** (so replaying
/// mutations up to that counter reproduces exactly the state the op
/// observed), plus the payload or a typed error.
type OpResult = Result<(u64, ResponseBody), (u64, ErrorCode, String)>;

impl Server {
    /// Builds a server: registry with the training-free solvers, an
    /// engine per `config`, and an empty store.
    ///
    /// # Errors
    /// Propagates [`GedError`] from the engine builder (e.g. a default
    /// method that is not training-free).
    pub fn new(config: &ServerConfig) -> Result<Self, GedError> {
        let mut registry = SolverRegistry::new();
        registry.register(MethodKind::Gedgw, Box::new(GedgwSolver));
        registry.register(MethodKind::Classic, Box::new(ClassicSolver));
        let mut builder = GedEngine::builder(registry).method(config.method);
        if let Some(t) = config.threads {
            builder = builder.threads(t);
        }
        if let Some(b) = config.beam_width {
            builder = builder.beam_width(b);
        }
        if let Some(p) = config.pivots {
            builder = builder.pivots(p);
        }
        if let Some(c) = config.prediction_cache {
            builder = builder.prediction_cache(c);
        }
        if let Some(v) = config.verify_budget {
            builder = builder.verify_budget(v);
        }
        builder = builder.adaptive_planner(config.adaptive);
        let engine = builder.build()?;
        Ok(Server {
            shared: Arc::new(Shared {
                engine,
                state: RwLock::new(StoreState {
                    store: ShardedStore::new(DEFAULT_BUCKET_WIDTH),
                    names: BTreeMap::new(),
                    ids: BTreeMap::new(),
                    next_name: 0,
                    rev: 0,
                }),
                store_path: config.store_path.clone(),
                inflight: Mutex::new(0),
                drained: Condvar::new(),
                max_inflight: config.max_inflight,
                shutting_down: AtomicBool::new(false),
                done: Mutex::new(false),
                done_cv: Condvar::new(),
                conns: Mutex::new(Vec::new()),
            }),
        })
    }

    /// Inserts `graph` directly (bypassing the wire), returning its
    /// protocol name. Used by the binary's `--seed` flag and by tests.
    ///
    /// # Panics
    /// Panics if the state lock is poisoned.
    pub fn insert_local(&self, graph: Graph) -> String {
        let mut state = self.shared.state.write().unwrap();
        let name = insert_named(&mut state, graph);
        self.shared.engine.sync_sharded_pivots(&mut state.store);
        name
    }

    /// Replaces the store from a snapshot file (bypassing the wire) —
    /// what `ged-served --store PATH` does at startup. Returns the
    /// number of graphs restored.
    ///
    /// # Errors
    /// Returns a message when the file cannot be read or parsed.
    ///
    /// # Panics
    /// Panics if the state lock is poisoned.
    pub fn load_local(&self, path: &Path) -> Result<u64, String> {
        let mut state = self.shared.state.write().unwrap();
        load_snapshot_into(&mut state, &self.shared.engine, path)
            .map_err(|(_, msg)| msg)
            .map(|n| n as u64)
    }

    /// `true` once a `shutdown` request has been received.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Blocks until a `shutdown` request has fully drained.
    ///
    /// # Panics
    /// Panics if the done lock is poisoned.
    pub fn wait_for_shutdown(&self) {
        let mut done = self.shared.done.lock().unwrap();
        while !*done {
            done = self.shared.done_cv.wait(done).unwrap();
        }
    }

    fn current_rev(&self) -> u64 {
        self.shared.state.read().unwrap().rev
    }

    /// Handles one request line and returns `(response line, close)`.
    /// `close` is `true` when the connection should be closed after
    /// writing the response (only after answering a `shutdown`).
    #[must_use]
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        let (resp, close) = self.respond(line);
        (encode_response(&resp), close)
    }

    fn respond(&self, line: &str) -> (Response, bool) {
        if line.len() > MAX_LINE_BYTES {
            let msg = format!(
                "request line of {} bytes exceeds the {MAX_LINE_BYTES}-byte cap",
                line.len()
            );
            return (
                Response::error("", self.current_rev(), ErrorCode::Oversized, msg),
                false,
            );
        }
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(e) => {
                return (
                    Response::error("", self.current_rev(), ErrorCode::Parse, e.to_string()),
                    false,
                )
            }
        };
        let id = req.id().to_string();
        if let Request::Shutdown { .. } = req {
            return self.shutdown(&id);
        }
        if self.is_shutting_down() {
            let resp = Response::error(
                &id,
                self.current_rev(),
                ErrorCode::ShuttingDown,
                "server is draining after a shutdown request",
            );
            return (resp, false);
        }
        let result = match &req {
            Request::Ping { .. } => Ok((self.current_rev(), ResponseBody::Pong)),
            Request::Stats { .. } => Ok(self.stats()),
            Request::Explain { shape, .. } => self.explain(shape),
            _ => self.admitted(&req),
        };
        let resp = match result {
            Ok((rev, body)) => Response { id, rev, body },
            Err((rev, code, message)) => Response::error(&id, rev, code, message),
        };
        (resp, false)
    }

    /// Runs a read op under the read lock, pairing its outcome with the
    /// mutation counter of the state it observed.
    fn with_read<F>(&self, f: F) -> OpResult
    where
        F: FnOnce(&StoreState, &GedEngine) -> Result<ResponseBody, (ErrorCode, String)>,
    {
        let state = self.shared.state.read().unwrap();
        let rev = state.rev;
        match f(&state, &self.shared.engine) {
            Ok(body) => Ok((rev, body)),
            Err((code, msg)) => Err((rev, code, msg)),
        }
    }

    /// Runs a mutation under the write lock; the reported counter is the
    /// post-mutation value (unchanged when the mutation fails).
    fn with_write<F>(&self, f: F) -> OpResult
    where
        F: FnOnce(&mut StoreState, &GedEngine) -> Result<ResponseBody, (ErrorCode, String)>,
    {
        let mut state = self.shared.state.write().unwrap();
        let out = f(&mut state, &self.shared.engine);
        let rev = state.rev;
        match out {
            Ok(body) => Ok((rev, body)),
            Err((code, msg)) => Err((rev, code, msg)),
        }
    }

    fn stats(&self) -> (u64, ResponseBody) {
        let state = self.shared.state.read().unwrap();
        let engine = &self.shared.engine;
        let planner_saved = engine
            .planner_counters()
            .map(|c| c.solver_calls_saved + c.searches_saved + c.pivot_arms_saved)
            .unwrap_or(0);
        let body = ResponseBody::Stats(StatsBody {
            graphs: state.store.len() as u64,
            method: engine.method().to_string(),
            pivots: engine.pivot_target() as u64,
            cached_predictions: engine.cached_predictions().map(|n| n as u64),
            inflight: *self.shared.inflight.lock().unwrap() as u64,
            max_inflight: self.shared.max_inflight as u64,
            adaptive: engine.planner_enabled(),
            planner_saved,
        });
        (state.rev, body)
    }

    /// The `explain` introspection op: the tier plan `shape` would run
    /// right now, never admission-controlled (like `ping` / `stats`).
    fn explain(&self, shape: &str) -> OpResult {
        let rev = self.current_rev();
        let Some(shape) = QueryShape::from_name(shape) else {
            return Err((
                rev,
                ErrorCode::Config,
                format!("unknown query shape {shape:?} (top_k|range|range_exact|matrix)"),
            ));
        };
        let e = self.shared.engine.explain(shape);
        Ok((
            rev,
            ResponseBody::Plan {
                shape: e.shape.name().to_string(),
                adaptive: e.adaptive,
                tiers: e.tiers.iter().map(|t| (*t).to_string()).collect(),
                skipped: e.skipped.iter().map(|t| (*t).to_string()).collect(),
                observations: e.observations,
                solver_calls_saved: e.solver_calls_saved,
                searches_saved: e.searches_saved,
                pivot_arms_saved: e.pivot_arms_saved,
            },
        ))
    }

    /// Admission-controlled store/engine ops.
    fn admitted(&self, req: &Request) -> OpResult {
        let _guard = {
            let mut n = self.shared.inflight.lock().unwrap();
            if *n >= self.shared.max_inflight {
                let msg = format!(
                    "{} requests already in flight (cap {})",
                    *n, self.shared.max_inflight
                );
                drop(n);
                return Err((self.current_rev(), ErrorCode::Overloaded, msg));
            }
            *n += 1;
            AdmitGuard(&self.shared)
        };
        let start = Instant::now();
        let deadline_ms = match req {
            Request::Predict { deadline_ms, .. }
            | Request::EditPath { deadline_ms, .. }
            | Request::TopK { deadline_ms, .. }
            | Request::Range { deadline_ms, .. }
            | Request::RangeExact { deadline_ms, .. }
            | Request::Matrix { deadline_ms, .. }
            | Request::SelfJoin { deadline_ms, .. }
            | Request::Join { deadline_ms, .. } => *deadline_ms,
            _ => None,
        };
        if deadline_ms == Some(0) {
            return Err((
                self.current_rev(),
                ErrorCode::DeadlineExceeded,
                "deadline of 0 ms elapsed before execution".to_string(),
            ));
        }
        // Store-level queries get a cooperative engine deadline: the
        // plan checks it between verification blocks and aborts
        // mid-execution rather than finishing work nobody waits for.
        let deadline = deadline_ms.map_or(Deadline::NONE, |ms| {
            Deadline::within(Duration::from_millis(ms))
        });
        let result = match req {
            Request::InsertGraph { graph, .. } => self.insert_graph(graph),
            Request::RemoveGraph { name, .. } => self.remove_graph(name),
            Request::Predict { g1, g2, .. } => self.predict(g1, g2),
            Request::EditPath { g1, g2, k, .. } => self.edit_path(g1, g2, *k),
            Request::TopK { query, k, .. } => self.top_k(query, *k, deadline),
            Request::Range { query, tau, .. } => self.range(query, *tau, false, deadline),
            Request::RangeExact { query, tau, .. } => self.range(query, *tau, true, deadline),
            Request::Matrix { .. } => self.matrix(deadline),
            Request::SelfJoin { tau, .. } => self.self_join(*tau, deadline),
            Request::Join { graphs, tau, .. } => self.join(graphs, *tau, deadline),
            Request::Snapshot { path, .. } => self.snapshot(path.as_deref()),
            Request::Load { path, .. } => self.load(path.as_deref()),
            _ => unreachable!("introspection ops are not admission-controlled"),
        };
        if let Some(ms) = deadline_ms {
            let elapsed = u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX);
            if elapsed >= ms {
                let rev = match &result {
                    Ok((rev, _)) | Err((rev, _, _)) => *rev,
                };
                return Err((
                    rev,
                    ErrorCode::DeadlineExceeded,
                    format!("deadline of {ms} ms exceeded ({elapsed} ms elapsed)"),
                ));
            }
        }
        result
    }

    fn insert_graph(&self, graph: &Graph) -> OpResult {
        self.with_write(|state, engine| {
            if graph.num_nodes() == 0 {
                return Err((
                    ErrorCode::EmptyGraph,
                    "refusing to store a graph with no nodes".to_string(),
                ));
            }
            let name = insert_named(state, graph.clone());
            engine.sync_sharded_pivots(&mut state.store);
            Ok(ResponseBody::Inserted { name })
        })
    }

    fn remove_graph(&self, name: &str) -> OpResult {
        self.with_write(|state, engine| {
            let Some(id) = state.names.remove(name) else {
                return Err((
                    ErrorCode::UnknownGraph,
                    format!("no stored graph named {name:?}"),
                ));
            };
            state.ids.remove(&id);
            state.store.remove(id);
            state.rev += 1;
            engine.sync_sharded_pivots(&mut state.store);
            Ok(ResponseBody::Removed {
                name: name.to_string(),
            })
        })
    }

    fn predict(&self, g1: &GraphRef, g2: &GraphRef) -> OpResult {
        self.with_read(|state, engine| {
            // Stored or inline, both graphs resolve to references and go
            // through `ged`, whose prediction cache keys on the pair
            // fingerprint — stored pairs still hit it.
            let a = resolve(state, g1)?;
            let b = resolve(state, g2)?;
            let estimate = engine.ged(a, b).map_err(|e| engine_error(&e))?;
            Ok(ResponseBody::Ged { ged: estimate.ged })
        })
    }

    fn edit_path(&self, g1: &GraphRef, g2: &GraphRef, k: Option<u64>) -> OpResult {
        self.with_read(|state, engine| {
            let a = resolve(state, g1)?;
            let b = resolve(state, g2)?;
            let path = match k {
                None => engine.edit_path(a, b),
                Some(k) => engine.edit_path_as(
                    engine.method(),
                    &GedPair::directed(a.clone(), b.clone()),
                    Some(usize::try_from(k).unwrap_or(usize::MAX)),
                ),
            }
            .map_err(|e| engine_error(&e))?;
            Ok(ResponseBody::Path {
                ged: path.ged as u64,
                mapping: path.mapping.as_slice().to_vec(),
                ops: path.ops,
            })
        })
    }

    fn top_k(&self, query: &GraphRef, k: u64, deadline: Deadline) -> OpResult {
        self.with_read(|state, engine| {
            let q = resolve(state, query)?;
            let result = engine
                .with_deadline(deadline)
                .top_k_sharded(q, &state.store, usize::try_from(k).unwrap_or(usize::MAX))
                .map_err(|e| engine_error(&e))?;
            Ok(ResponseBody::Neighbors {
                neighbors: named_neighbors(state, result.neighbors.iter().map(|n| (n.id, n.ged))),
            })
        })
    }

    fn range(&self, query: &GraphRef, tau: f64, exact: bool, deadline: Deadline) -> OpResult {
        self.with_read(|state, engine| {
            let q = resolve(state, query)?;
            if exact {
                let result = engine
                    .with_deadline(deadline)
                    .range_exact_sharded(q, &state.store, tau)
                    .map_err(|e| engine_error(&e))?;
                Ok(ResponseBody::ExactMatches {
                    matches: result
                        .matches
                        .iter()
                        .map(|m| WireExactNeighbor {
                            name: state.ids[&m.id].clone(),
                            ged: m.ged as u64,
                        })
                        .collect(),
                    undecided: result
                        .budget_exhausted
                        .iter()
                        .map(|u| WireUndecided {
                            name: state.ids[&u.id].clone(),
                            known_match_ub: u.known_match_ub.map(|ub| ub as u64),
                        })
                        .collect(),
                })
            } else {
                let result = engine
                    .with_deadline(deadline)
                    .range_sharded(q, &state.store, tau)
                    .map_err(|e| engine_error(&e))?;
                Ok(ResponseBody::Neighbors {
                    neighbors: named_neighbors(
                        state,
                        result.neighbors.iter().map(|n| (n.id, n.ged)),
                    ),
                })
            }
        })
    }

    fn matrix(&self, deadline: Deadline) -> OpResult {
        self.with_read(|state, engine| {
            let m = engine
                .with_deadline(deadline)
                .distance_matrix_sharded(&state.store)
                .map_err(|e| engine_error(&e))?;
            let names: Vec<String> = m.ids().iter().map(|id| state.ids[id].clone()).collect();
            let rows: Vec<Vec<f64>> = (0..m.size()).map(|i| m.row(i).to_vec()).collect();
            Ok(ResponseBody::Matrix { names, rows })
        })
    }

    fn self_join(&self, tau: f64, deadline: Deadline) -> OpResult {
        self.with_read(|state, engine| {
            let result = engine
                .with_deadline(deadline)
                .self_join_sharded(&state.store, tau)
                .map_err(|e| engine_error(&e))?;
            Ok(ResponseBody::SelfJoin {
                pairs: result
                    .pairs
                    .iter()
                    .map(|p| WireJoinPair {
                        a: state.ids[&p.a].clone(),
                        b: state.ids[&p.b].clone(),
                        ged: p.ged as u64,
                    })
                    .collect(),
                undecided: result
                    .budget_exhausted
                    .iter()
                    .map(|u| WireJoinUndecided {
                        a: state.ids[&u.a].clone(),
                        b: state.ids[&u.b].clone(),
                        known_match_ub: u.known_match_ub.map(|ub| ub as u64),
                    })
                    .collect(),
                candidates: result.stats.total() as u64,
                verified: result.stats.verified as u64,
            })
        })
    }

    fn join(&self, graphs: &[Graph], tau: f64, deadline: Deadline) -> OpResult {
        self.with_read(|state, engine| {
            // The request's inline batch becomes the join's left store;
            // its graphs are addressed by position (`"q{i}"`) on the
            // wire, so build the position map off the fresh ids.
            for (i, g) in graphs.iter().enumerate() {
                if g.num_nodes() == 0 {
                    return Err((
                        ErrorCode::EmptyGraph,
                        format!("query graph {i} of the join batch has no nodes"),
                    ));
                }
            }
            let left = GraphStore::from_graphs(graphs.iter().cloned());
            let position: BTreeMap<GraphId, usize> = left
                .ids()
                .into_iter()
                .enumerate()
                .map(|(i, id)| (id, i))
                .collect();
            let result = engine
                .with_deadline(deadline)
                .join_sharded(&left, &state.store, tau)
                .map_err(|e| engine_error(&e))?;
            Ok(ResponseBody::Join {
                pairs: result
                    .pairs
                    .iter()
                    .map(|p| WireJoinPair {
                        a: format!("q{}", position[&p.a]),
                        b: state.ids[&p.b].clone(),
                        ged: p.ged as u64,
                    })
                    .collect(),
                undecided: result
                    .budget_exhausted
                    .iter()
                    .map(|u| WireJoinUndecided {
                        a: format!("q{}", position[&u.a]),
                        b: state.ids[&u.b].clone(),
                        known_match_ub: u.known_match_ub.map(|ub| ub as u64),
                    })
                    .collect(),
                candidates: result.stats.total() as u64,
                verified: result.stats.verified as u64,
            })
        })
    }

    /// Resolves a snapshot path: the request's override, else the
    /// daemon's `--store` default.
    fn snapshot_path(&self, path: Option<&str>) -> Result<PathBuf, (ErrorCode, String)> {
        match path {
            Some(p) => Ok(PathBuf::from(p)),
            None => self.shared.store_path.clone().ok_or((
                ErrorCode::Config,
                "no snapshot path: pass \"path\" or start with --store PATH".to_string(),
            )),
        }
    }

    fn snapshot(&self, path: Option<&str>) -> OpResult {
        let path = match self.snapshot_path(path) {
            Ok(p) => p,
            Err((code, msg)) => return Err((self.current_rev(), code, msg)),
        };
        self.with_read(|state, _| {
            let names: Vec<String> = state.ids.values().cloned().collect();
            let json = encode_server_snapshot(state.rev, state.next_name, &names, &state.store);
            std::fs::write(&path, json.as_bytes()).map_err(|e| {
                (
                    ErrorCode::Io,
                    format!("cannot write snapshot {}: {e}", path.display()),
                )
            })?;
            Ok(ResponseBody::Snapshotted {
                path: path.display().to_string(),
                graphs: state.store.len() as u64,
            })
        })
    }

    fn load(&self, path: Option<&str>) -> OpResult {
        let path = match self.snapshot_path(path) {
            Ok(p) => p,
            Err((code, msg)) => return Err((self.current_rev(), code, msg)),
        };
        self.with_write(|state, engine| {
            let graphs = load_snapshot_into(state, engine, &path)?;
            Ok(ResponseBody::Loaded {
                path: path.display().to_string(),
                graphs: graphs as u64,
            })
        })
    }

    /// The shutdown sequence (see the module docs).
    fn shutdown(&self, id: &str) -> (Response, bool) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            // A concurrent shutdown is already draining.
            let resp = Response::error(
                id,
                self.current_rev(),
                ErrorCode::ShuttingDown,
                "shutdown already in progress",
            );
            return (resp, true);
        }
        // Drain: wait until every admitted request has finished (each
        // holds an AdmitGuard; its connection thread writes the response
        // before reading — and admitting — anything else).
        let mut n = self.shared.inflight.lock().unwrap();
        while *n > 0 {
            n = self.shared.drained.wait(n).unwrap();
        }
        drop(n);
        // Unblock every socket reader; buffered-but-unread pipelined
        // lines on other connections are dropped by design (documented).
        for conn in self.shared.conns.lock().unwrap().drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Read);
        }
        let mut done = self.shared.done.lock().unwrap();
        *done = true;
        drop(done);
        self.shared.done_cv.notify_all();
        let resp = Response {
            id: id.to_string(),
            rev: self.current_rev(),
            body: ResponseBody::ShutdownComplete,
        };
        (resp, true)
    }

    /// Serves one line-delimited session over arbitrary streams (the
    /// stdin/stdout transport; also what socket connections delegate
    /// to). Returns on EOF, on an unwritable response, or after
    /// answering a `shutdown`.
    pub fn serve_connection<R: BufRead, W: Write>(&self, mut reader: R, mut writer: W) {
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
            let trimmed = line.trim_end_matches(['\n', '\r']);
            if trimmed.is_empty() {
                continue;
            }
            let (resp, close) = self.handle_line(trimmed);
            if writer
                .write_all(resp.as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .is_err()
            {
                return;
            }
            if close {
                return;
            }
        }
    }

    /// Serves one Unix-socket connection, registering it so shutdown can
    /// unblock its reader.
    pub fn serve_stream(&self, stream: UnixStream) {
        if let Ok(clone) = stream.try_clone() {
            self.shared.conns.lock().unwrap().push(clone);
        }
        self.serve_connection(BufReader::new(&stream), &stream);
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }

    /// Accept loop over a Unix listener: one thread per connection,
    /// until shutdown has drained. Joins every connection thread before
    /// returning.
    ///
    /// # Panics
    /// Panics if the listener cannot be switched to non-blocking mode.
    pub fn serve_listener(&self, listener: &UnixListener) {
        listener
            .set_nonblocking(true)
            .expect("listener non-blocking mode");
        let mut handles = Vec::new();
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let server = self.clone();
                    handles.push(std::thread::spawn(move || server.serve_stream(stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if *self.shared.done.lock().unwrap() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        }
        for h in handles {
            let _ = h.join();
        }
    }
}

fn insert_named(state: &mut StoreState, graph: Graph) -> String {
    let name = format!("g{}", state.next_name);
    state.next_name += 1;
    let id = state.store.insert(graph);
    state.names.insert(name.clone(), id);
    state.ids.insert(id, name.clone());
    state.rev += 1;
    name
}

/// Replaces `state` wholesale from the snapshot at `path`: store (ids,
/// revisions, and pivot blocks included), name table, name counter, and
/// mutation counter. Re-syncs the pivot blocks afterwards so a snapshot
/// taken at a different pivot target still arms the engine's tier (an
/// O(shards) no-op when the targets agree).
fn load_snapshot_into(
    state: &mut StoreState,
    engine: &GedEngine,
    path: &Path,
) -> Result<usize, (ErrorCode, String)> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        (
            ErrorCode::Io,
            format!("cannot read snapshot {}: {e}", path.display()),
        )
    })?;
    let snap = parse_server_snapshot(&text).map_err(|e| {
        (
            ErrorCode::Io,
            format!("malformed snapshot {}: {e}", path.display()),
        )
    })?;
    let mut names = BTreeMap::new();
    let mut ids = BTreeMap::new();
    for (id, name) in snap.store.ids().into_iter().zip(&snap.names) {
        ids.insert(id, name.clone());
        names.insert(name.clone(), id);
    }
    if names.len() != snap.store.len() {
        return Err((
            ErrorCode::Io,
            format!("snapshot {} repeats graph names", path.display()),
        ));
    }
    state.store = snap.store;
    state.names = names;
    state.ids = ids;
    state.next_name = snap.next_name;
    state.rev = snap.rev;
    engine.sync_sharded_pivots(&mut state.store);
    Ok(state.store.len())
}

fn resolve_id(state: &StoreState, name: &str) -> Result<GraphId, (ErrorCode, String)> {
    state.names.get(name).copied().ok_or_else(|| {
        (
            ErrorCode::UnknownGraph,
            format!("no stored graph named {name:?}"),
        )
    })
}

fn resolve<'a>(state: &'a StoreState, r: &'a GraphRef) -> Result<&'a Graph, (ErrorCode, String)> {
    match r {
        GraphRef::Inline(g) => Ok(g),
        GraphRef::Name(name) => {
            let id = resolve_id(state, name)?;
            state
                .store
                .get(id)
                .ok_or_else(|| (ErrorCode::UnknownGraph, format!("stale name {name:?}")))
        }
    }
}

fn named_neighbors(
    state: &StoreState,
    neighbors: impl Iterator<Item = (GraphId, f64)>,
) -> Vec<WireNeighbor> {
    neighbors
        .map(|(id, ged)| WireNeighbor {
            name: state.ids[&id].clone(),
            ged,
        })
        .collect()
}
