//! Protocol codec properties: every request and response variant
//! round-trips bit-exactly through `encode_* -> parse_*`, and malformed
//! or oversized lines are rejected with typed errors, never panics.

use ged_graph::generate::random_connected;
use ged_graph::io::ParseErrorKind;
use ged_graph::{CanonicalOp, Graph, Label};
use ged_server::codec::{encode_request, encode_response, parse_request, parse_response};
use ged_server::protocol::{
    ErrorCode, GraphRef, Request, Response, ResponseBody, StatsBody, WireExactNeighbor,
    WireNeighbor, WireUndecided, MAX_LINE_BYTES,
};
use ged_server::{Server, ServerConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0x5E4; // server-suite seed stream

/// Ids and names stress the string escaper: quotes, backslashes,
/// newlines, control bytes, multi-byte UTF-8.
fn random_string(rng: &mut SmallRng) -> String {
    const POOL: &[char] = &[
        'a', 'B', '7', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', '/', 'é', '日', '{',
        '}', ':', ',', '[', ']',
    ];
    let len = rng.gen_range(0..12);
    (0..len)
        .map(|_| POOL[rng.gen_range(0..POOL.len())])
        .collect()
}

fn random_graph(rng: &mut SmallRng) -> Graph {
    let n = rng.gen_range(1..8);
    random_connected(n, rng.gen_range(0..3), &[3.0, 2.0, 1.0], rng)
}

fn random_graph_ref(rng: &mut SmallRng) -> GraphRef {
    if rng.gen_bool(0.5) {
        GraphRef::Name(random_string(rng))
    } else {
        GraphRef::Inline(random_graph(rng))
    }
}

/// Finite floats exercising the shortest-round-trip encoder: special
/// values plus random magnitudes across the exponent range.
fn random_f64(rng: &mut SmallRng) -> f64 {
    const SPECIAL: &[f64] = &[
        0.0,
        -0.0,
        1.0,
        -1.5,
        0.1,
        1e-9,
        -2.5e17,
        f64::MAX,
        f64::MIN_POSITIVE,
        123_456.789,
    ];
    if rng.gen_bool(0.4) {
        SPECIAL[rng.gen_range(0..SPECIAL.len())]
    } else {
        rng.gen_range(-1e6..1e6)
    }
}

fn random_deadline(rng: &mut SmallRng) -> Option<u64> {
    match rng.gen_range(0..3) {
        0 => None,
        1 => Some(0),
        _ => Some(rng.gen_range(1..u64::MAX)),
    }
}

/// One random request per call, cycling through every variant.
fn random_request(variant: usize, rng: &mut SmallRng) -> Request {
    let id = random_string(rng);
    match variant % 14 {
        0 => Request::Ping { id },
        1 => Request::Stats { id },
        2 => Request::Shutdown { id },
        13 => Request::Explain {
            id,
            shape: random_string(rng),
        },
        3 => Request::InsertGraph {
            id,
            graph: random_graph(rng),
        },
        4 => Request::RemoveGraph {
            id,
            name: random_string(rng),
        },
        5 => Request::Predict {
            id,
            g1: random_graph_ref(rng),
            g2: random_graph_ref(rng),
            deadline_ms: random_deadline(rng),
        },
        6 => Request::EditPath {
            id,
            g1: random_graph_ref(rng),
            g2: random_graph_ref(rng),
            k: if rng.gen_bool(0.5) {
                Some(rng.gen_range(0..1000))
            } else {
                None
            },
            deadline_ms: random_deadline(rng),
        },
        7 => Request::TopK {
            id,
            query: random_graph_ref(rng),
            k: rng.gen_range(0..u64::MAX),
            deadline_ms: random_deadline(rng),
        },
        8 => Request::Range {
            id,
            query: random_graph_ref(rng),
            tau: random_f64(rng),
            deadline_ms: random_deadline(rng),
        },
        9 => Request::RangeExact {
            id,
            query: random_graph_ref(rng),
            tau: random_f64(rng),
            deadline_ms: random_deadline(rng),
        },
        10 => Request::Matrix {
            id,
            deadline_ms: random_deadline(rng),
        },
        11 => Request::Snapshot {
            id,
            path: if rng.gen_bool(0.5) {
                Some(random_string(rng))
            } else {
                None
            },
        },
        _ => Request::Load {
            id,
            path: if rng.gen_bool(0.5) {
                Some(random_string(rng))
            } else {
                None
            },
        },
    }
}

fn random_ops(rng: &mut SmallRng) -> Vec<CanonicalOp> {
    (0..rng.gen_range(0..6))
        .map(|_| match rng.gen_range(0..4) {
            0 => CanonicalOp::Relabel(rng.gen_range(0..100)),
            1 => CanonicalOp::InsertNode(rng.gen_range(0..100)),
            2 => CanonicalOp::DeleteEdge(rng.gen_range(0..50), rng.gen_range(0..50)),
            _ => CanonicalOp::InsertEdge(rng.gen_range(0..50), rng.gen_range(0..50)),
        })
        .collect()
}

const ALL_CODES: &[ErrorCode] = &[
    ErrorCode::Parse,
    ErrorCode::Protocol,
    ErrorCode::Oversized,
    ErrorCode::UnknownGraph,
    ErrorCode::EmptyGraph,
    ErrorCode::InvalidK,
    ErrorCode::EmptyStore,
    ErrorCode::Unsupported,
    ErrorCode::Config,
    ErrorCode::DeadlineExceeded,
    ErrorCode::Overloaded,
    ErrorCode::ShuttingDown,
    ErrorCode::Io,
];

/// One random response per call, cycling through every body variant
/// (the error arm itself cycles through every code).
fn random_response(variant: usize, rng: &mut SmallRng) -> Response {
    let body = match variant % 15 {
        0 => ResponseBody::Pong,
        1 => ResponseBody::ShutdownComplete,
        2 => ResponseBody::Stats(StatsBody {
            graphs: rng.gen_range(0..u64::MAX),
            method: random_string(rng),
            pivots: rng.gen_range(0..1000),
            cached_predictions: if rng.gen_bool(0.5) {
                Some(rng.gen_range(0..1000))
            } else {
                None
            },
            inflight: rng.gen_range(0..64),
            max_inflight: rng.gen_range(0..1000),
            adaptive: rng.gen_bool(0.5),
            planner_saved: rng.gen_range(0..u64::MAX),
        }),
        3 => ResponseBody::Inserted {
            name: random_string(rng),
        },
        4 => ResponseBody::Removed {
            name: random_string(rng),
        },
        5 => ResponseBody::Ged {
            ged: random_f64(rng),
        },
        6 => ResponseBody::Path {
            ged: rng.gen_range(0..u64::MAX),
            mapping: (0..rng.gen_range(0..8))
                .map(|_| rng.gen_range(0..100))
                .collect(),
            ops: random_ops(rng),
        },
        7 => ResponseBody::Neighbors {
            neighbors: (0..rng.gen_range(0..5))
                .map(|_| WireNeighbor {
                    name: random_string(rng),
                    ged: random_f64(rng),
                })
                .collect(),
        },
        8 => ResponseBody::ExactMatches {
            matches: (0..rng.gen_range(0..5))
                .map(|_| WireExactNeighbor {
                    name: random_string(rng),
                    ged: rng.gen_range(0..u64::MAX),
                })
                .collect(),
            // The budget_exhausted payload, both proven (`Some`) and
            // unknown (`None`) membership.
            undecided: (0..rng.gen_range(0..5))
                .map(|_| WireUndecided {
                    name: random_string(rng),
                    known_match_ub: if rng.gen_bool(0.5) {
                        Some(rng.gen_range(0..u64::MAX))
                    } else {
                        None
                    },
                })
                .collect(),
        },
        9 => {
            let n = rng.gen_range(0..4);
            ResponseBody::Matrix {
                names: (0..n).map(|_| random_string(rng)).collect(),
                rows: (0..n)
                    .map(|_| (0..n).map(|_| random_f64(rng)).collect())
                    .collect(),
            }
        }
        10 => ResponseBody::Error {
            code: ALL_CODES[variant / 15 % ALL_CODES.len()],
            message: random_string(rng),
        },
        11 => ResponseBody::Snapshotted {
            path: random_string(rng),
            graphs: rng.gen_range(0..u64::MAX),
        },
        12 => ResponseBody::Loaded {
            path: random_string(rng),
            graphs: rng.gen_range(0..u64::MAX),
        },
        13 => ResponseBody::Plan {
            shape: random_string(rng),
            adaptive: rng.gen_bool(0.5),
            tiers: (0..rng.gen_range(0..6))
                .map(|_| random_string(rng))
                .collect(),
            skipped: (0..rng.gen_range(0..3))
                .map(|_| random_string(rng))
                .collect(),
            observations: rng.gen_range(0..u64::MAX),
            solver_calls_saved: rng.gen_range(0..u64::MAX),
            searches_saved: rng.gen_range(0..u64::MAX),
            pivot_arms_saved: rng.gen_range(0..u64::MAX),
        },
        _ => ResponseBody::Neighbors {
            neighbors: Vec::new(),
        },
    };
    Response {
        id: random_string(rng),
        rev: rng.gen_range(0..u64::MAX),
        body,
    }
}

/// Exact-f64 equality for round-trip checks (`PartialEq` conflates
/// `0.0` and `-0.0`; the wire must preserve the sign bit too).
fn assert_bits_equal(a: &Response, b: &Response) {
    assert_eq!(a, b);
    match (&a.body, &b.body) {
        (ResponseBody::Ged { ged: x }, ResponseBody::Ged { ged: y }) => {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        (ResponseBody::Neighbors { neighbors: xs }, ResponseBody::Neighbors { neighbors: ys }) => {
            for (x, y) in xs.iter().zip(ys) {
                assert_eq!(x.ged.to_bits(), y.ged.to_bits());
            }
        }
        (ResponseBody::Matrix { rows: xs, .. }, ResponseBody::Matrix { rows: ys, .. }) => {
            for (rx, ry) in xs.iter().zip(ys) {
                for (x, y) in rx.iter().zip(ry) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
        _ => {}
    }
}

#[test]
fn every_request_variant_round_trips() {
    let mut rng = SmallRng::seed_from_u64(SEED);
    for case in 0..600 {
        let req = random_request(case, &mut rng);
        let line = encode_request(&req);
        let back = parse_request(&line)
            .unwrap_or_else(|e| panic!("case {case}: {e}\nline: {line}\nreq: {req:?}"));
        assert_eq!(back, req, "case {case}: {line}");
        // Tau round-trips bit-exactly, not just PartialEq-equally.
        if let (
            Request::Range { tau: a, .. } | Request::RangeExact { tau: a, .. },
            Request::Range { tau: b, .. } | Request::RangeExact { tau: b, .. },
        ) = (&req, &back)
        {
            assert_eq!(a.to_bits(), b.to_bits(), "case {case}");
        }
    }
}

#[test]
fn every_response_variant_round_trips() {
    let mut rng = SmallRng::seed_from_u64(SEED + 1);
    for case in 0..600 {
        let resp = random_response(case, &mut rng);
        let line = encode_response(&resp);
        let back = parse_response(&line)
            .unwrap_or_else(|e| panic!("case {case}: {e}\nline: {line}\nresp: {resp:?}"));
        assert_bits_equal(&back, &resp);
    }
}

#[test]
fn malformed_request_lines_are_rejected() {
    for line in [
        "",
        "not json",
        "{}",
        "{\"v\":1}",
        "{\"v\":1,\"id\":\"x\"}",
        "{\"v\":1,\"id\":\"x\",\"op\":\"nope\"}",
        "{\"v\":1,\"id\":\"x\",\"op\":\"ping\"} trailing",
        "{\"v\":1,\"id\":\"x\",\"op\":\"ping\"",
        "{\"v\":1,\"id\":\"x\",\"op\":\"predict\",\"g1\":7,\"g2\":\"g0\"}",
        "{\"v\":1,\"id\":\"x\",\"op\":\"top_k\",\"query\":\"g0\",\"k\":\"many\"}",
        "{\"v\":1,\"id\":\"x\",\"op\":\"top_k\",\"query\":\"g0\",\"k\":99999999999999999999999}",
        "{\"v\":1,\"id\":\"bad escape \\q\",\"op\":\"ping\"}",
        "{\"v\":1,\"id\":\"bad unicode \\uZZZZ\",\"op\":\"ping\"}",
        "{\"v\":1,\"id\":\"x\",\"op\":\"insert_graph\",\"graph\":{\"labels\":[0],\"edges\":[[0,0]]}}",
    ] {
        assert!(parse_request(line).is_err(), "accepted: {line}");
    }
    // The version gate and unknown ops carry pinpointed kinds.
    assert_eq!(
        parse_request("{\"v\":2,\"id\":\"x\",\"op\":\"ping\"}")
            .unwrap_err()
            .kind,
        ParseErrorKind::Invalid("protocol version")
    );
    assert_eq!(
        parse_request("{\"v\":1,\"id\":\"x\",\"op\":\"nope\"}")
            .unwrap_err()
            .kind,
        ParseErrorKind::Invalid("op")
    );
    // Inline-graph errors are rebased to the position in the *request*
    // line, not the graph substring.
    let line = "{\"v\":1,\"id\":\"x\",\"op\":\"insert_graph\",\"graph\":{\"labels\":[0],\"edges\":[[0,0]]}}";
    let err = parse_request(line).unwrap_err();
    assert_eq!(err.kind, ParseErrorKind::SelfLoop(0));
    assert_eq!(&line[err.at..err.at + 1], "[", "anchored at the edge");
}

#[test]
fn malformed_response_lines_are_rejected() {
    for line in [
        "",
        "{\"v\":1,\"id\":\"x\",\"ok\":true,\"rev\":0}",
        "{\"v\":1,\"id\":\"x\",\"ok\":true,\"rev\":0,\"type\":\"nope\"}",
        "{\"v\":1,\"id\":\"x\",\"ok\":maybe,\"rev\":0,\"type\":\"pong\"}",
        "{\"v\":1,\"id\":\"x\",\"ok\":true,\"rev\":-1,\"type\":\"pong\"}",
        "{\"v\":1,\"id\":\"x\",\"ok\":true,\"rev\":0,\"type\":\"error\",\"code\":\"nope\",\"message\":\"m\"}",
        // ok flag inconsistent with the body type, both directions.
        "{\"v\":1,\"id\":\"x\",\"ok\":false,\"rev\":0,\"type\":\"pong\"}",
        "{\"v\":1,\"id\":\"x\",\"ok\":true,\"rev\":0,\"type\":\"error\",\"code\":\"parse\",\"message\":\"m\"}",
    ] {
        assert!(parse_response(line).is_err(), "accepted: {line}");
    }
}

#[test]
fn oversized_lines_get_a_typed_rejection_without_parsing() {
    let server = Server::new(&ServerConfig::default()).unwrap();
    // A syntactically valid request that is simply too long.
    let mut line = String::from("{\"v\":1,\"id\":\"");
    line.push_str(&"x".repeat(MAX_LINE_BYTES));
    line.push_str("\",\"op\":\"ping\"}");
    assert!(line.len() > MAX_LINE_BYTES);
    let (resp_line, close) = server.handle_line(&line);
    assert!(!close);
    let resp = parse_response(&resp_line).unwrap();
    assert_eq!(resp.id, "", "id is not recovered from oversized lines");
    match resp.body {
        ResponseBody::Error { code, .. } => assert_eq!(code, ErrorCode::Oversized),
        other => panic!("expected oversized error, got {other:?}"),
    }
    // A line exactly at the cap parses normally.
    let pad = MAX_LINE_BYTES - "{\"v\":1,\"id\":\"\",\"op\":\"ping\"}".len();
    let ok_line = format!("{{\"v\":1,\"id\":\"{}\",\"op\":\"ping\"}}", "y".repeat(pad));
    assert_eq!(ok_line.len(), MAX_LINE_BYTES);
    let (resp_line, _) = server.handle_line(&ok_line);
    assert!(parse_response(&resp_line).unwrap().is_ok());
}

#[test]
fn parse_errors_become_typed_error_responses() {
    let server = Server::new(&ServerConfig::default()).unwrap();
    let (line, close) = server.handle_line("garbage");
    assert!(!close);
    let resp = parse_response(&line).unwrap();
    assert!(!resp.is_ok());
    match resp.body {
        ResponseBody::Error { code, message } => {
            assert_eq!(code, ErrorCode::Parse);
            assert!(message.contains("parse error"), "{message}");
        }
        other => panic!("expected parse error, got {other:?}"),
    }
}

/// The labeled-graph JSON grammar is shared with `ged_graph::io`, so an
/// inline graph that crate can print must parse inside a request.
#[test]
fn inline_graphs_share_the_io_grammar() {
    let g = Graph::from_edges(vec![Label(1), Label(2)], &[(0, 1)]);
    let line = format!(
        "{{\"v\":1,\"id\":\"q\",\"op\":\"insert_graph\",\"graph\":{}}}",
        ged_graph::io::graph_to_json(&g)
    );
    match parse_request(&line).unwrap() {
        Request::InsertGraph { graph, .. } => assert_eq!(graph, g),
        other => panic!("unexpected {other:?}"),
    }
}

/// The `server-snapshot` wrapper (revision + name table + store
/// snapshot) round-trips bit-exactly, and a name table whose length
/// disagrees with the store is rejected with a positioned error.
#[test]
fn server_snapshot_wrapper_round_trips() {
    use ged_server::codec::{encode_server_snapshot, parse_server_snapshot};
    let mut rng = SmallRng::seed_from_u64(0x5AFE);
    let mut store = ged_graph::ShardedStore::new(3);
    let mut names = Vec::new();
    for i in 0..9 {
        store.insert(random_graph(&mut rng));
        names.push(format!("g{i}\"needs\\escaping"));
    }
    let line = encode_server_snapshot(store.revision(), 42, &names, &store);
    let snap = parse_server_snapshot(&line).expect("wrapper parses");
    assert_eq!(snap.rev, store.revision());
    assert_eq!(snap.next_name, 42);
    assert_eq!(snap.names, names);
    assert_eq!(snap.store.ids(), store.ids());
    assert_eq!(
        encode_server_snapshot(snap.rev, snap.next_name, &snap.names, &snap.store),
        line,
        "re-encoding is byte-stable"
    );

    names.pop();
    let short = encode_server_snapshot(store.revision(), 42, &names, &store);
    let err = parse_server_snapshot(&short).expect_err("name table too short");
    assert!(err.to_string().contains("name table"), "{err}");
}
