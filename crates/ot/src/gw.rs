//! Gromov–Wasserstein machinery.
//!
//! For intra-graph cost matrices `C1` (`n x n`) and `C2` (`m x m`) and a
//! coupling `π` (`n x m`), the 4th-order tensor
//! `L(C1,C2)_{i,j,k,l} = (C1_{i,j} - C2_{k,l})²` acts on `π` as
//!
//! ```text
//! (L ⊗ π)_{i,k} = Σ_{j,l} (C1_{i,j} - C2_{k,l})² π_{j,l}
//! ```
//!
//! Expanding the square decomposes this into three matrix products
//! (Peyré, Cuturi & Solomon, ICML 2016 — Proposition 1):
//!
//! ```text
//! L ⊗ π = (C1∘C1) r 1ᵀ + 1 cᵀ (C2∘C2)ᵀ − 2 C1 π C2ᵀ
//! ```
//!
//! with `r = π 1` (row sums) and `c = πᵀ 1` (column sums), which drops the
//! cost from `O(n⁴)` to `O(n³)` — the optimization Appendix E.2 of the paper
//! relies on.

use crate::workspace::{reset, GwScratch};
use ged_linalg::Matrix;

/// Computes `L(C1, C2) ⊗ π` in `O(n³)` time.
///
/// Allocates fresh scratch per call; the conditional-gradient hot loop
/// uses the workspace-backed `gw_tensor_apply_into` (crate-private)
/// instead.
///
/// # Panics
/// Panics if `c1`/`c2` are not square or `π` has mismatched shape.
#[must_use]
pub fn gw_tensor_apply(c1: &Matrix, c2: &Matrix, pi: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    gw_tensor_apply_into(c1, c2, pi, &mut out, &mut GwScratch::default());
    out
}

/// [`gw_tensor_apply`] into a caller-provided output matrix, with every
/// intermediate buffer drawn from `scratch`. Bit-identical to the
/// allocating version.
pub(crate) fn gw_tensor_apply_into(
    c1: &Matrix,
    c2: &Matrix,
    pi: &Matrix,
    out: &mut Matrix,
    scratch: &mut GwScratch,
) {
    let n = c1.rows();
    let m = c2.rows();
    assert_eq!(c1.shape(), (n, n), "c1 must be square");
    assert_eq!(c2.shape(), (m, m), "c2 must be square");
    assert_eq!(pi.shape(), (n, m), "pi shape mismatch");

    // r = π 1 (row sums), c = πᵀ 1 (column sums).
    scratch.r.clear();
    scratch
        .r
        .extend((0..n).map(|i| pi.row(i).iter().sum::<f64>()));
    reset(&mut scratch.c, m, 0.0);
    for i in 0..n {
        for (o, &x) in scratch.c.iter_mut().zip(pi.row(i)) {
            *o += x;
        }
    }

    // term1_{i,k} = Σ_j C1_{i,j}² r_j   (constant in k)
    scratch.t1.clear();
    scratch.t1.extend((0..n).map(|i| {
        c1.row(i)
            .iter()
            .zip(&scratch.r)
            .map(|(&a, &rj)| a * a * rj)
            .sum::<f64>()
    }));
    // term2_{i,k} = Σ_l C2_{k,l}² c_l   (constant in i)
    scratch.t2.clear();
    scratch.t2.extend((0..m).map(|k| {
        c2.row(k)
            .iter()
            .zip(&scratch.c)
            .map(|(&b, &cl)| b * b * cl)
            .sum::<f64>()
    }));
    // term3 = C1 π C2ᵀ
    c1.matmul_into(pi, &mut scratch.tmp);
    scratch.tmp.matmul_transpose_b_into(c2, &mut scratch.t3);

    out.resize_zeroed(n, m);
    for i in 0..n {
        let orow = out.row_mut(i);
        let trow = scratch.t3.row(i);
        for k in 0..m {
            orow[k] = scratch.t1[i] + scratch.t2[k] - 2.0 * trow[k];
        }
    }
}

/// Reference `O(n⁴)` implementation of `L ⊗ π`, used to validate
/// [`gw_tensor_apply`]. Exposed for tests and benches.
#[must_use]
pub fn gw_tensor_apply_naive(c1: &Matrix, c2: &Matrix, pi: &Matrix) -> Matrix {
    let n = c1.rows();
    let m = c2.rows();
    Matrix::from_fn(n, m, |i, k| {
        let mut acc = 0.0;
        for j in 0..n {
            for l in 0..m {
                let d = c1[(i, j)] - c2[(k, l)];
                acc += d * d * pi[(j, l)];
            }
        }
        acc
    })
}

/// The (full, un-halved) GW objective `⟨π, L(C1,C2) ⊗ π⟩`.
#[must_use]
pub fn gw_objective(c1: &Matrix, c2: &Matrix, pi: &Matrix) -> f64 {
    pi.dot(&gw_tensor_apply(c1, c2, pi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_sym(n: usize, rng: &mut SmallRng) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let v = if rng.gen_bool(0.5) { 1.0 } else { 0.0 };
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    }

    #[test]
    fn fast_matches_naive() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..30 {
            let n = rng.gen_range(2..=7);
            let m = rng.gen_range(2..=7);
            let c1 = rand_sym(n, &mut rng);
            let c2 = rand_sym(m, &mut rng);
            let pi = Matrix::from_fn(n, m, |_, _| rng.gen_range(0.0..1.0));
            let fast = gw_tensor_apply(&c1, &c2, &pi);
            let naive = gw_tensor_apply_naive(&c1, &c2, &pi);
            assert!(fast.max_abs_diff(&naive) < 1e-9);
        }
    }

    #[test]
    fn identical_graphs_identity_coupling_zero() {
        let mut rng = SmallRng::seed_from_u64(10);
        let a = rand_sym(6, &mut rng);
        let pi = Matrix::identity(6);
        assert!(gw_objective(&a, &a, &pi).abs() < 1e-12);
    }

    #[test]
    fn permutation_coupling_counts_edge_mismatch() {
        // A1 = path 0-1-2; A2 = triangle. Identity coupling: mismatched pair
        // (0,2): A1=0 vs A2=1, counted twice (i,j)/(j,i) -> objective 2.
        let a1 = Matrix::from_vec(3, 3, vec![0., 1., 0., 1., 0., 1., 0., 1., 0.]);
        let a2 = Matrix::from_vec(3, 3, vec![0., 1., 1., 1., 0., 1., 1., 1., 0.]);
        let pi = Matrix::identity(3);
        let obj = gw_objective(&a1, &a2, &pi);
        assert!((obj - 2.0).abs() < 1e-12, "obj {obj}");
    }

    #[test]
    fn objective_nonnegative() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..20 {
            let n = rng.gen_range(2..=6);
            let c1 = rand_sym(n, &mut rng);
            let c2 = rand_sym(n, &mut rng);
            let pi = Matrix::from_fn(n, n, |_, _| rng.gen_range(0.0..0.5));
            assert!(gw_objective(&c1, &c2, &pi) >= -1e-12);
        }
    }
}
