//! Reusable scratch buffers for the OT kernels.
//!
//! One GEDGW solve runs dozens of Frank–Wolfe iterations, each of which
//! evaluates `L ⊗ π` (four intermediate buffers plus two matrix
//! products), a gradient, a direction, a line-search delta, and an LSAP
//! solve — all over matrices with at most a few hundred elements, so
//! per-call allocation dominates the arithmetic. An [`OtWorkspace`] owns
//! every intermediate buffer the Sinkhorn and conditional-gradient
//! kernels need; the `_in` entry points ([`crate::sinkhorn::sinkhorn_in`],
//! [`crate::cg::conditional_gradient_in`], …) reuse them across calls and
//! are bit-identical to the allocating versions, which remain as thin
//! wrappers.
//!
//! Keep one workspace per thread (see `BatchRunner::map_init` in
//! `ged-core`) and hand it to every solve on that thread. A "dirty"
//! workspace left over from a previous call of any shape is always safe
//! to reuse — every entry point fully re-initializes the prefix it reads.

use ged_linalg::{LsapWorkspace, Matrix};

/// Scratch for one `L(C1,C2) ⊗ π` evaluation (see [`crate::gw`]).
#[derive(Clone, Debug, Default)]
pub(crate) struct GwScratch {
    /// Row sums of `π`.
    pub(crate) r: Vec<f64>,
    /// Column sums of `π`.
    pub(crate) c: Vec<f64>,
    /// `t1[i] = Σ_j C1_{i,j}² r_j`.
    pub(crate) t1: Vec<f64>,
    /// `t2[k] = Σ_l C2_{k,l}² c_l`.
    pub(crate) t2: Vec<f64>,
    /// `C1 π`.
    pub(crate) tmp: Matrix,
    /// `C1 π C2ᵀ`.
    pub(crate) t3: Matrix,
}

/// Scratch buffers for the Sinkhorn and conditional-gradient kernels.
/// See the [module docs](self).
#[derive(Clone, Debug, Default)]
pub struct OtWorkspace {
    /// Scratch for the LSAP solves inside conditional gradient; also
    /// usable directly by callers that interleave LSAP with OT kernels.
    pub lsap: LsapWorkspace,
    // Sinkhorn: kernel matrix, scaling vectors, dummy-row extension.
    pub(crate) kernel: Matrix,
    pub(crate) phi: Vec<f64>,
    pub(crate) psi: Vec<f64>,
    pub(crate) extended: Matrix,
    pub(crate) mu: Vec<f64>,
    pub(crate) nu: Vec<f64>,
    // Log-domain Sinkhorn: log-marginals, dual potentials, logsumexp buf.
    pub(crate) log_mu: Vec<f64>,
    pub(crate) log_nu: Vec<f64>,
    pub(crate) f: Vec<f64>,
    pub(crate) g: Vec<f64>,
    pub(crate) lse: Vec<f64>,
    // Conditional gradient: L⊗π, gradient, LMO direction, line-search
    // delta, and a second L⊗· buffer for the step-size/objective terms.
    pub(crate) gw: GwScratch,
    pub(crate) lpi: Matrix,
    pub(crate) grad: Matrix,
    pub(crate) dir: Matrix,
    pub(crate) delta: Matrix,
    pub(crate) ldelta: Matrix,
}

impl OtWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Resets `buf` to `len` copies of `value`, reusing its capacity.
pub(crate) fn reset<T: Copy>(buf: &mut Vec<T>, len: usize, value: T) {
    buf.clear();
    buf.resize(len, value);
}
