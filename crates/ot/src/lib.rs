//! Optimal transport kernels for `ot-ged`.
//!
//! * [`mod@sinkhorn`] — entropic OT (Algorithm 1 of the paper) in plain and
//!   log-domain form, plus the dummy-row extension of Section 4.2 that turns
//!   the inequality-constrained node-matching polytope into a standard
//!   transport polytope;
//! * [`exact`] — exact OT on the assignment polytope via LSAP (with uniform
//!   unit marginals the Birkhoff polytope has permutation vertices, so the
//!   linear program reduces to an assignment problem);
//! * [`gw`] — the Gromov–Wasserstein machinery: the 4th-order tensor product
//!   `L(C1,C2) ⊗ π` evaluated in `O(n³)` via the Peyré–Cuturi–Solomon
//!   decomposition;
//! * [`cg`] — the conditional-gradient (Frank–Wolfe) solver used by GEDGW
//!   (Algorithm 2), with exact line search for the quadratic objective;
//! * [`workspace`] — reusable scratch buffers ([`OtWorkspace`]) behind the
//!   allocation-free `_in` entry points of the kernels above.

#![warn(missing_docs)]

pub mod cg;
pub mod exact;
pub mod gw;
pub mod sinkhorn;
pub mod workspace;

pub use cg::{conditional_gradient, conditional_gradient_in, CgOptions, CgResult, CgRun};
pub use exact::exact_ot_assignment;
pub use gw::{gw_objective, gw_tensor_apply};
pub use sinkhorn::{
    sinkhorn, sinkhorn_dummy_row, sinkhorn_dummy_row_in, sinkhorn_in, sinkhorn_log,
    sinkhorn_log_in, SinkhornResult,
};
pub use workspace::OtWorkspace;
