//! Conditional gradient (Frank–Wolfe) for OT+GW quadratic programs.
//!
//! Solves problems of the form used by GEDGW (Eq. 17 of the paper):
//!
//! ```text
//! min_{π ∈ Π(1_n, 1_n)}  ⟨π, M⟩ + (q/2) ⟨π, L(C1,C2) ⊗ π⟩
//! ```
//!
//! At each iteration the gradient `G = M + q · (L ⊗ π)` is linearized, the
//! subproblem `min ⟨G, d⟩` over the Birkhoff polytope is solved exactly with
//! LSAP (see [`crate::exact`]), and the step size comes from exact line
//! search on the quadratic objective (Appendix B.4 / Eq. 21).

use crate::gw::{gw_tensor_apply, gw_tensor_apply_into};
use crate::workspace::OtWorkspace;
#[cfg(test)]
use ged_linalg::lsap_min;
use ged_linalg::{lsap_min_in, Matrix};

/// Options for the conditional-gradient solver.
#[derive(Clone, Copy, Debug)]
pub struct CgOptions {
    /// Maximum number of Frank–Wolfe iterations.
    pub max_iter: usize,
    /// Stop when the objective improves by less than this amount.
    pub tol: f64,
    /// Weight `q` of the quadratic (GW) term; the objective includes
    /// `(q/2)⟨π, L⊗π⟩`. GEDGW uses `q = 1`.
    pub quad_weight: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iter: 50,
            tol: 1e-9,
            quad_weight: 1.0,
        }
    }
}

/// Result of a conditional-gradient run.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// The final (generally fractional) coupling.
    pub coupling: Matrix,
    /// Objective value at the final coupling.
    pub objective: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Objective value after each iteration (for convergence tests/plots).
    pub history: Vec<f64>,
}

/// Result of an in-place conditional-gradient run
/// ([`conditional_gradient_in`]); the coupling lives in the caller's
/// matrix.
#[derive(Clone, Debug)]
pub struct CgRun {
    /// Objective value at the final coupling.
    pub objective: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Objective value after each iteration (for convergence tests/plots).
    pub history: Vec<f64>,
}

/// Objective `⟨π, M⟩ + (q/2)⟨π, L⊗π⟩`.
#[must_use]
pub fn qp_objective(linear: &Matrix, c1: &Matrix, c2: &Matrix, q: f64, pi: &Matrix) -> f64 {
    pi.dot(linear) + 0.5 * q * pi.dot(&gw_tensor_apply(c1, c2, pi))
}

/// Runs conditional gradient from `init` (must lie in the polytope).
///
/// # Panics
/// Panics on shape mismatches between `linear`, `c1`, `c2` and `init`.
#[must_use]
pub fn conditional_gradient(
    linear: &Matrix,
    c1: &Matrix,
    c2: &Matrix,
    init: Matrix,
    opts: &CgOptions,
) -> CgResult {
    let mut pi = init;
    let run = conditional_gradient_in(linear, c1, c2, &mut pi, opts, &mut OtWorkspace::new());
    CgResult {
        coupling: pi,
        objective: run.objective,
        iterations: run.iterations,
        history: run.history,
    }
}

/// [`conditional_gradient`] operating on the coupling in place, with all
/// per-iteration buffers drawn from `ws`. Bit-identical to the allocating
/// version for any (possibly dirty) workspace.
///
/// # Panics
/// Panics on shape mismatches between `linear`, `c1`, `c2` and `pi`.
#[must_use]
pub fn conditional_gradient_in(
    linear: &Matrix,
    c1: &Matrix,
    c2: &Matrix,
    pi: &mut Matrix,
    opts: &CgOptions,
    ws: &mut OtWorkspace,
) -> CgRun {
    let (n, m) = pi.shape();
    assert_eq!(linear.shape(), (n, m), "linear term shape");
    assert_eq!(c1.shape(), (n, n), "c1 shape");
    assert_eq!(c2.shape(), (m, m), "c2 shape");
    let q = opts.quad_weight;

    let OtWorkspace {
        lsap,
        gw,
        lpi,
        grad,
        dir,
        delta,
        ldelta,
        ..
    } = ws;

    // Objective ⟨π, M⟩ + (q/2)⟨π, L⊗π⟩ with L⊗π landing in `ldelta`.
    gw_tensor_apply_into(c1, c2, pi, ldelta, gw);
    let mut obj = pi.dot(linear) + 0.5 * q * pi.dot(ldelta);
    let mut history = vec![obj];
    let mut iters = 0;

    for _ in 0..opts.max_iter {
        iters += 1;
        // Gradient of the objective. For symmetric squared-loss L the
        // gradient of (q/2)⟨π, L⊗π⟩ is q·(L⊗π).
        gw_tensor_apply_into(c1, c2, pi, lpi, gw);
        grad.resize_zeroed(n, m);
        for i in 0..n {
            let grow = grad.row_mut(i);
            let lrow = linear.row(i);
            let prow = lpi.row(i);
            for j in 0..m {
                grow[j] = lrow[j] + q * prow[j];
            }
        }

        // Linear minimization oracle: vertex of the Birkhoff polytope.
        let a = lsap_min_in(grad, lsap);
        dir.resize_zeroed(n, m);
        for (r, &c) in a.row_to_col.iter().enumerate() {
            dir[(r, c)] = 1.0;
        }

        // Exact line search along Δ = dir − π for the quadratic
        // f(γ) = f(π) + b γ + a γ², with
        //   b = ⟨Δ, M⟩ + q ⟨Δ, L⊗π⟩,  a = (q/2) ⟨Δ, L⊗Δ⟩.
        delta.resize_zeroed(n, m);
        for (o, (&d, &p)) in delta
            .as_mut_slice()
            .iter_mut()
            .zip(dir.as_slice().iter().zip(pi.as_slice()))
        {
            *o = d - p;
        }
        let b = delta.dot(linear) + q * delta.dot(lpi);
        gw_tensor_apply_into(c1, c2, delta, ldelta, gw);
        let a_coef = 0.5 * q * delta.dot(ldelta);
        let gamma = optimal_step(a_coef, b);
        if gamma <= 0.0 {
            break;
        }
        pi.add_scaled_assign(delta, gamma);

        gw_tensor_apply_into(c1, c2, pi, ldelta, gw);
        let new_obj = pi.dot(linear) + 0.5 * q * pi.dot(ldelta);
        history.push(new_obj);
        let improved = obj - new_obj;
        obj = new_obj;
        if improved.abs() < opts.tol {
            break;
        }
    }

    CgRun {
        objective: obj,
        iterations: iters,
        history,
    }
}

/// Minimizes `a γ² + b γ` over `γ ∈ [0, 1]`.
fn optimal_step(a: f64, b: f64) -> f64 {
    if a > 0.0 {
        (-b / (2.0 * a)).clamp(0.0, 1.0)
    } else if a + b < 0.0 {
        // Concave or linear: an endpoint is optimal; f(1)-f(0) = a + b.
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_adj(n: usize, rng: &mut SmallRng) -> Matrix {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(0.4) {
                    a[(i, j)] = 1.0;
                    a[(j, i)] = 1.0;
                }
            }
        }
        a
    }

    fn uniform(n: usize) -> Matrix {
        Matrix::filled(n, n, 1.0 / n as f64)
    }

    #[test]
    fn step_minimizer() {
        assert_eq!(optimal_step(1.0, -1.0), 0.5);
        assert_eq!(optimal_step(1.0, 1.0), 0.0);
        assert_eq!(optimal_step(1.0, -4.0), 1.0);
        assert_eq!(optimal_step(-1.0, 0.5), 1.0);
        assert_eq!(optimal_step(0.0, 2.0), 0.0);
        assert_eq!(optimal_step(0.0, -2.0), 1.0);
    }

    #[test]
    fn objective_decreases_monotonically() {
        let mut rng = SmallRng::seed_from_u64(21);
        for _ in 0..10 {
            let n = rng.gen_range(3..=7);
            let a1 = rand_adj(n, &mut rng);
            let a2 = rand_adj(n, &mut rng);
            let m = Matrix::from_fn(n, n, |_, _| rng.gen_range(0.0..1.0));
            let init = uniform(n);
            let res = conditional_gradient(&m, &a1, &a2, init, &CgOptions::default());
            for w in res.history.windows(2) {
                assert!(
                    w[1] <= w[0] + 1e-9,
                    "objective increased: {:?}",
                    res.history
                );
            }
        }
    }

    #[test]
    fn stays_in_polytope() {
        let mut rng = SmallRng::seed_from_u64(22);
        let n = 6;
        let a1 = rand_adj(n, &mut rng);
        let a2 = rand_adj(n, &mut rng);
        let m = Matrix::from_fn(n, n, |_, _| rng.gen_range(0.0..1.0));
        let res = conditional_gradient(&m, &a1, &a2, uniform(n), &CgOptions::default());
        for s in res.coupling.row_sums() {
            assert!((s - 1.0).abs() < 1e-9);
        }
        for s in res.coupling.col_sums() {
            assert!((s - 1.0).abs() < 1e-9);
        }
        assert!(res.coupling.min() >= -1e-12);
    }

    #[test]
    fn identical_graphs_reach_zero() {
        // Pure GW between identical graphs: optimum 0 at a permutation.
        let mut rng = SmallRng::seed_from_u64(23);
        let n = 5;
        let a = rand_adj(n, &mut rng);
        let zero = Matrix::zeros(n, n);
        let res = conditional_gradient(&zero, &a, &a, Matrix::identity(n), &CgOptions::default());
        assert!(res.objective.abs() < 1e-12);
    }

    #[test]
    fn pure_linear_term_reaches_lsap() {
        // With no quadratic part CG must land on the LSAP optimum in one step.
        let mut rng = SmallRng::seed_from_u64(24);
        let n = 6;
        let m = Matrix::from_fn(n, n, |_, _| rng.gen_range(0.0..5.0));
        let zero = Matrix::zeros(n, n);
        let res = conditional_gradient(
            &m,
            &zero,
            &zero,
            uniform(n),
            &CgOptions {
                quad_weight: 1.0,
                ..Default::default()
            },
        );
        let want = lsap_min(&m).cost;
        assert!(
            (res.objective - want).abs() < 1e-9,
            "{} vs {want}",
            res.objective
        );
    }
}
