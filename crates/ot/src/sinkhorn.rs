//! The Sinkhorn algorithm for entropy-regularized optimal transport.
//!
//! Solves `min_{π ∈ Π(μ,ν)} ⟨C, π⟩ + ε H(π)` by alternating dual updates
//! (Algorithm 1 of the paper):
//!
//! ```text
//! K = exp(-C/ε)
//! ψ ← ν ⊘ (Kᵀ φ),   φ ← μ ⊘ (K ψ),   π = diag(φ) K diag(ψ)
//! ```
//!
//! [`sinkhorn_dummy_row`] implements the paper's Section 4.2 construction:
//! the node-matching constraint set has an *inequality* (`πᵀ1 ≤ 1`), which
//! Sinkhorn cannot handle directly, so the cost matrix is extended with a
//! zero-cost dummy row (a supernode of `G1` that absorbs the `n2 - n1`
//! unmatched nodes of `G2`) and mass `μ̃ = [1,…,1, n2-n1]`, `ν̃ = 1`.

use crate::workspace::{reset, OtWorkspace};
use ged_linalg::Matrix;

/// Smallest denominator allowed in the scaling updates; prevents division by
/// zero when `exp(-C/ε)` underflows for very small `ε`.
const TINY: f64 = 1e-300;

/// Output of a Sinkhorn run.
#[derive(Clone, Debug)]
pub struct SinkhornResult {
    /// The coupling matrix `π`.
    pub coupling: Matrix,
    /// The transport cost `⟨C, π⟩` (without the entropy term).
    pub cost: f64,
    /// Number of iterations performed.
    pub iterations: usize,
}

/// Plain Sinkhorn on cost matrix `cost` with marginals `mu` (rows) and `nu`
/// (columns), regularization `epsilon` and `max_iter` iterations.
///
/// Allocates fresh scratch per call; hot loops should hold an
/// [`OtWorkspace`] and call [`sinkhorn_in`] instead.
///
/// # Panics
/// Panics if marginal lengths do not match the matrix shape, if
/// `epsilon <= 0`, or if total row and column mass differ by more than 1e-6.
#[must_use]
pub fn sinkhorn(
    cost: &Matrix,
    mu: &[f64],
    nu: &[f64],
    epsilon: f64,
    max_iter: usize,
) -> SinkhornResult {
    sinkhorn_in(cost, mu, nu, epsilon, max_iter, &mut OtWorkspace::new())
}

/// [`sinkhorn`] with caller-provided scratch buffers. Bit-identical to
/// the allocating version for any (possibly dirty) workspace.
///
/// # Panics
/// Same contract as [`sinkhorn`].
#[must_use]
pub fn sinkhorn_in(
    cost: &Matrix,
    mu: &[f64],
    nu: &[f64],
    epsilon: f64,
    max_iter: usize,
    ws: &mut OtWorkspace,
) -> SinkhornResult {
    sinkhorn_core(
        cost,
        mu,
        nu,
        epsilon,
        max_iter,
        &mut ws.kernel,
        &mut ws.phi,
        &mut ws.psi,
    )
}

/// The shared Sinkhorn loop, with the kernel matrix and both scaling
/// vectors drawn from caller-provided buffers.
#[allow(clippy::too_many_arguments)]
fn sinkhorn_core(
    cost: &Matrix,
    mu: &[f64],
    nu: &[f64],
    epsilon: f64,
    max_iter: usize,
    k: &mut Matrix,
    phi: &mut Vec<f64>,
    psi: &mut Vec<f64>,
) -> SinkhornResult {
    let (n, m) = cost.shape();
    assert_eq!(mu.len(), n, "mu length");
    assert_eq!(nu.len(), m, "nu length");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let mass_mu: f64 = mu.iter().sum();
    let mass_nu: f64 = nu.iter().sum();
    assert!(
        (mass_mu - mass_nu).abs() < 1e-6,
        "marginal masses differ: {mass_mu} vs {mass_nu}"
    );

    k.resize_zeroed(n, m);
    for (kk, &c) in k.as_mut_slice().iter_mut().zip(cost.as_slice()) {
        *kk = (-c / epsilon).exp();
    }
    reset(phi, n, 1.0);
    reset(psi, m, 1.0);

    for _ in 0..max_iter {
        // ψ = ν ⊘ (Kᵀ φ)
        for j in 0..m {
            let mut acc = 0.0;
            for i in 0..n {
                acc += k[(i, j)] * phi[i];
            }
            psi[j] = nu[j] / acc.max(TINY);
        }
        // φ = μ ⊘ (K ψ)
        for i in 0..n {
            let mut acc = 0.0;
            let krow = k.row(i);
            for (j, &kij) in krow.iter().enumerate() {
                acc += kij * psi[j];
            }
            phi[i] = mu[i] / acc.max(TINY);
        }
    }

    let coupling = Matrix::from_fn(n, m, |i, j| phi[i] * k[(i, j)] * psi[j]);
    let cost_val = coupling.dot(cost);
    SinkhornResult {
        coupling,
        cost: cost_val,
        iterations: max_iter,
    }
}

/// Log-domain Sinkhorn: mathematically identical to [`sinkhorn`] but stable
/// for small `epsilon` (no `exp` underflow). Used to cross-check the plain
/// kernel and by the exact-OT convergence tests.
///
/// # Panics
/// Same contract as [`sinkhorn`].
#[must_use]
pub fn sinkhorn_log(
    cost: &Matrix,
    mu: &[f64],
    nu: &[f64],
    epsilon: f64,
    max_iter: usize,
) -> SinkhornResult {
    sinkhorn_log_in(cost, mu, nu, epsilon, max_iter, &mut OtWorkspace::new())
}

/// [`sinkhorn_log`] with caller-provided scratch buffers. Bit-identical
/// to the allocating version for any (possibly dirty) workspace.
///
/// # Panics
/// Same contract as [`sinkhorn`].
#[must_use]
pub fn sinkhorn_log_in(
    cost: &Matrix,
    mu: &[f64],
    nu: &[f64],
    epsilon: f64,
    max_iter: usize,
    ws: &mut OtWorkspace,
) -> SinkhornResult {
    let (n, m) = cost.shape();
    assert_eq!(mu.len(), n);
    assert_eq!(nu.len(), m);
    assert!(epsilon > 0.0);

    // Dual potentials f (rows), g (cols); π_ij = exp((f_i + g_j - C_ij)/ε) m_i n_j
    // with zero-mass marginals handled by -inf potentials.
    let OtWorkspace {
        log_mu,
        log_nu,
        f,
        g,
        lse: buf,
        ..
    } = ws;
    log_mu.clear();
    log_mu.extend(
        mu.iter()
            .map(|&x| if x > 0.0 { x.ln() } else { f64::NEG_INFINITY }),
    );
    log_nu.clear();
    log_nu.extend(
        nu.iter()
            .map(|&x| if x > 0.0 { x.ln() } else { f64::NEG_INFINITY }),
    );
    reset(f, n, 0.0);
    reset(g, m, 0.0);

    fn logsumexp(buf: &mut Vec<f64>, vals: impl Iterator<Item = f64>) -> f64 {
        buf.clear();
        buf.extend(vals);
        let mx = buf.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if mx == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        mx + buf.iter().map(|&x| (x - mx).exp()).sum::<f64>().ln()
    }

    for _ in 0..max_iter {
        for j in 0..m {
            let lse = logsumexp(buf, (0..n).map(|i| (f[i] - cost[(i, j)]) / epsilon));
            g[j] = if log_nu[j].is_finite() {
                epsilon * (log_nu[j] / 1.0 - lse)
            } else {
                f64::NEG_INFINITY
            };
        }
        for i in 0..n {
            let lse = logsumexp(buf, (0..m).map(|j| (g[j] - cost[(i, j)]) / epsilon));
            f[i] = if log_mu[i].is_finite() {
                epsilon * (log_mu[i] - lse)
            } else {
                f64::NEG_INFINITY
            };
        }
    }

    let coupling = Matrix::from_fn(n, m, |i, j| {
        let e = (f[i] + g[j] - cost[(i, j)]) / epsilon;
        if e.is_finite() {
            e.exp()
        } else {
            0.0
        }
    });
    let cost_val = coupling.dot(cost);
    SinkhornResult {
        coupling,
        cost: cost_val,
        iterations: max_iter,
    }
}

/// Sinkhorn with the paper's dummy-row extension (Section 4.2).
///
/// `cost` is the `n1 x n2` node-matching cost matrix with `n1 <= n2`. A
/// zero-cost dummy row with mass `n2 - n1` is appended, standard Sinkhorn is
/// run with unit column marginals, and the returned coupling has the dummy
/// row removed — each real row sums to 1, each column to at most 1, exactly
/// the relaxed node-matching polytope `U(1_{n1}, 1_{n2})` of Eq. (6).
///
/// # Panics
/// Panics if `n1 > n2` or `epsilon <= 0`.
#[must_use]
pub fn sinkhorn_dummy_row(cost: &Matrix, epsilon: f64, max_iter: usize) -> SinkhornResult {
    sinkhorn_dummy_row_in(cost, epsilon, max_iter, &mut OtWorkspace::new())
}

/// [`sinkhorn_dummy_row`] with caller-provided scratch buffers.
/// Bit-identical to the allocating version for any (possibly dirty)
/// workspace.
///
/// # Panics
/// Panics if `n1 > n2` or `epsilon <= 0`.
#[must_use]
pub fn sinkhorn_dummy_row_in(
    cost: &Matrix,
    epsilon: f64,
    max_iter: usize,
    ws: &mut OtWorkspace,
) -> SinkhornResult {
    let (n1, n2) = cost.shape();
    assert!(
        n1 <= n2,
        "sinkhorn_dummy_row requires n1 <= n2 (got {n1}x{n2})"
    );
    let OtWorkspace {
        kernel,
        phi,
        psi,
        extended,
        mu,
        nu,
        ..
    } = ws;
    extended.resize_zeroed(n1 + 1, n2);
    for r in 0..n1 {
        extended.row_mut(r).copy_from_slice(cost.row(r));
    }
    reset(mu, n1 + 1, 1.0);
    mu[n1] = (n2 - n1) as f64;
    reset(nu, n2, 1.0);
    let res = sinkhorn_core(extended, mu, nu, epsilon, max_iter, kernel, phi, psi);
    let coupling = res.coupling.without_last_row();
    let cost_val = coupling.dot(cost);
    SinkhornResult {
        coupling,
        cost: cost_val,
        iterations: res.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ged_linalg::lsap_min;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_cost(n: usize, m: usize, seed: u64) -> Matrix {
        let mut rng = SmallRng::seed_from_u64(seed);
        Matrix::from_fn(n, m, |_, _| rng.gen_range(0.0..3.0))
    }

    #[test]
    fn marginals_converge() {
        let c = rand_cost(5, 5, 1);
        let mu = vec![1.0; 5];
        let nu = vec![1.0; 5];
        let res = sinkhorn(&c, &mu, &nu, 0.5, 200);
        let rs = res.coupling.row_sums();
        let cs = res.coupling.col_sums();
        for i in 0..5 {
            assert!((rs[i] - 1.0).abs() < 1e-8, "row {i}: {}", rs[i]);
            assert!((cs[i] - 1.0).abs() < 1e-8, "col {i}: {}", cs[i]);
        }
        assert!(res.coupling.min() >= 0.0);
    }

    #[test]
    fn nonuniform_marginals() {
        let c = rand_cost(3, 4, 2);
        let mu = vec![0.5, 1.5, 2.0];
        let nu = vec![1.0, 1.0, 1.0, 1.0];
        let res = sinkhorn(&c, &mu, &nu, 0.3, 300);
        let rs = res.coupling.row_sums();
        for (i, &m) in mu.iter().enumerate() {
            assert!((rs[i] - m).abs() < 1e-7);
        }
    }

    #[test]
    fn small_epsilon_approaches_lsap() {
        let c = rand_cost(6, 6, 3);
        let exact = lsap_min(&c).cost;
        let res = sinkhorn_log(&c, &[1.0; 6], &[1.0; 6], 0.01, 500);
        assert!(
            (res.cost - exact).abs() < 0.05,
            "sinkhorn {} vs lsap {exact}",
            res.cost
        );
        // The finite-iteration coupling is only approximately feasible, so
        // its cost may sit slightly below the exact optimum; it must not be
        // substantially below it.
        assert!(res.cost > exact - 0.05);
    }

    #[test]
    fn log_domain_agrees_with_plain() {
        let c = rand_cost(4, 6, 4);
        let mu = vec![1.5; 4];
        let nu = vec![1.0; 6];
        let a = sinkhorn(&c, &mu, &nu, 0.4, 300);
        let b = sinkhorn_log(&c, &mu, &nu, 0.4, 300);
        assert!(a.coupling.max_abs_diff(&b.coupling) < 1e-6);
    }

    #[test]
    fn dummy_row_marginals() {
        let c = rand_cost(3, 5, 5);
        let res = sinkhorn_dummy_row(&c, 0.2, 300);
        assert_eq!(res.coupling.shape(), (3, 5));
        for (i, r) in res.coupling.row_sums().iter().enumerate() {
            assert!((r - 1.0).abs() < 1e-7, "row {i} sum {r}");
        }
        for (j, s) in res.coupling.col_sums().iter().enumerate() {
            assert!(*s <= 1.0 + 1e-7, "col {j} sum {s} exceeds 1");
        }
        // Total mass transported from real rows is n1.
        assert!((res.coupling.sum() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn dummy_row_square_case() {
        // n1 == n2: dummy mass is zero; behaves like plain balanced OT.
        let c = rand_cost(4, 4, 6);
        let res = sinkhorn_dummy_row(&c, 0.3, 300);
        for s in res.coupling.col_sums() {
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn matches_paper_toy_example() {
        // Figure 3 of the paper: hand-crafted 3x3 cost matrix whose optimal
        // couplings mix u1 -> {v1, v3}. Check the Sinkhorn cost approaches
        // the LSAP optimum (= GED proxy 2) for small epsilon.
        let c = Matrix::from_vec(3, 3, vec![1.5, 1.5, 0.0, 1.5, 0.5, 1.0, 1.5, 1.5, 0.0]);
        // LSAP optimum: rows {0,2} fight for col 2 (cost 0); best total: 2.0.
        assert_eq!(lsap_min(&c).cost, 2.0);
        let res = sinkhorn_log(&c, &[1.0; 3], &[1.0; 3], 0.02, 800);
        assert!((res.cost - 2.0).abs() < 0.05, "cost {}", res.cost);
        // The mass of row 1 concentrates on column 1 (the forced match).
        assert!(res.coupling[(1, 1)] > 0.9);
    }

    #[test]
    #[should_panic(expected = "marginal masses differ")]
    fn rejects_unbalanced() {
        let c = Matrix::zeros(2, 2);
        let _ = sinkhorn(&c, &[1.0, 1.0], &[1.0, 2.0], 0.1, 10);
    }

    #[test]
    fn tiny_epsilon_stays_finite() {
        let c = rand_cost(5, 7, 8);
        let res = sinkhorn_dummy_row(&c, 1e-4, 50);
        assert!(res.coupling.is_finite(), "coupling has NaN/inf");
    }
}
