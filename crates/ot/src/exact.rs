//! Exact optimal transport on the assignment polytope.
//!
//! With uniform unit marginals the transport polytope is the Birkhoff
//! polytope (doubly-stochastic matrices), whose vertices are permutation
//! matrices; a linear objective therefore attains its optimum at a
//! permutation, and `min ⟨C, π⟩` reduces to a linear sum assignment problem.
//! This is both the ε→0 limit of Sinkhorn and the linear-minimization oracle
//! the conditional-gradient solver needs at every iteration.

use ged_linalg::{lsap_min, Matrix};

/// Solves `min_{π ∈ Π(1_n, 1_m)} ⟨cost, π⟩` exactly (`rows <= cols`;
/// rows transport unit mass, columns receive at most unit mass when
/// rectangular). Returns the optimal vertex as a 0/1 coupling matrix plus
/// the optimal cost.
///
/// # Panics
/// Panics if `rows > cols`.
#[must_use]
pub fn exact_ot_assignment(cost: &Matrix) -> (Matrix, f64) {
    let (n, m) = cost.shape();
    assert!(n <= m, "exact_ot_assignment requires rows <= cols");
    let a = lsap_min(cost);
    let mut pi = Matrix::zeros(n, m);
    for (r, &c) in a.row_to_col.iter().enumerate() {
        pi[(r, c)] = 1.0;
    }
    (pi, a.cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinkhorn::sinkhorn_log;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn returns_permutation_vertex() {
        let mut rng = SmallRng::seed_from_u64(13);
        let c = Matrix::from_fn(5, 5, |_, _| rng.gen_range(0.0..1.0));
        let (pi, cost) = exact_ot_assignment(&c);
        for s in pi.row_sums() {
            assert_eq!(s, 1.0);
        }
        for s in pi.col_sums() {
            assert_eq!(s, 1.0);
        }
        assert!((pi.dot(&c) - cost).abs() < 1e-12);
    }

    #[test]
    fn lower_bounds_sinkhorn() {
        let mut rng = SmallRng::seed_from_u64(14);
        for _ in 0..10 {
            let n = rng.gen_range(2..=6);
            let c = Matrix::from_fn(n, n, |_, _| rng.gen_range(0.0..2.0));
            let (_, exact) = exact_ot_assignment(&c);
            let sk = sinkhorn_log(&c, &vec![1.0; n], &vec![1.0; n], 0.05, 500);
            assert!(
                sk.cost >= exact - 1e-6,
                "sinkhorn {} below exact {exact}",
                sk.cost
            );
            assert!((sk.cost - exact).abs() < 0.2);
        }
    }

    #[test]
    fn rectangular_leaves_columns_free() {
        let c = Matrix::from_vec(1, 3, vec![3.0, 1.0, 2.0]);
        let (pi, cost) = exact_ot_assignment(&c);
        assert_eq!(cost, 1.0);
        assert_eq!(pi.as_slice(), &[0.0, 1.0, 0.0]);
    }
}
