//! Evaluation metrics for GED computation and GEP generation
//! (Section 6.3 of the paper).

#![warn(missing_docs)]

pub mod metrics;

pub use metrics::{
    accuracy, feasibility, kendall_tau, mae, path_f1, path_precision_recall, precision_at_k,
    spearman_rho, GroupedRanking, PairOutcome,
};
