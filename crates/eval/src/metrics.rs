//! Metric implementations.
//!
//! Value metrics (MAE, Accuracy, Feasibility), ranking metrics (Spearman's
//! ρ, Kendall's τ-b, p@k — computed per query group and averaged, matching
//! the paper's graph-similarity-search protocol), and edit-path quality
//! metrics (Recall / Precision / F1 over canonical operation multisets).

use ged_graph::CanonicalOp;

/// One evaluated pair: predicted vs. ground-truth GED.
#[derive(Clone, Copy, Debug)]
pub struct PairOutcome {
    /// Predicted GED (possibly fractional).
    pub pred: f64,
    /// Ground-truth GED.
    pub gt: f64,
}

/// Mean absolute error `mean(|pred - gt|)`.
///
/// # Panics
/// Panics on empty input.
#[must_use]
pub fn mae(outcomes: &[PairOutcome]) -> f64 {
    assert!(!outcomes.is_empty(), "mae of empty set");
    outcomes.iter().map(|o| (o.pred - o.gt).abs()).sum::<f64>() / outcomes.len() as f64
}

/// Fraction of predictions that equal the ground truth after rounding to
/// the nearest integer.
///
/// # Panics
/// Panics on empty input.
#[must_use]
pub fn accuracy(outcomes: &[PairOutcome]) -> f64 {
    assert!(!outcomes.is_empty(), "accuracy of empty set");
    let hits = outcomes
        .iter()
        .filter(|o| (o.pred.round() - o.gt.round()).abs() < 0.5)
        .count();
    hits as f64 / outcomes.len() as f64
}

/// Fraction of predictions that are no less than the ground truth, i.e.
/// an edit path of the predicted length can exist (Section 6.3).
///
/// # Panics
/// Panics on empty input.
#[must_use]
pub fn feasibility(outcomes: &[PairOutcome]) -> f64 {
    assert!(!outcomes.is_empty(), "feasibility of empty set");
    let ok = outcomes.iter().filter(|o| o.pred + 1e-9 >= o.gt).count();
    ok as f64 / outcomes.len() as f64
}

/// Average ranks with ties resolved to the mean rank of the tied run.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman's rank correlation coefficient ρ (with tie-averaged ranks).
///
/// Returns 0 when either side is constant.
///
/// # Panics
/// Panics if lengths differ or are < 2.
#[must_use]
pub fn spearman_rho(pred: &[f64], gt: &[f64]) -> f64 {
    assert_eq!(pred.len(), gt.len());
    assert!(pred.len() >= 2, "need at least two samples");
    let rp = average_ranks(pred);
    let rg = average_ranks(gt);
    pearson(&rp, &rg)
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Kendall's τ-b rank correlation (tie-corrected).
///
/// Returns 0 when either side is constant.
///
/// # Panics
/// Panics if lengths differ or are < 2.
#[must_use]
pub fn kendall_tau(pred: &[f64], gt: &[f64]) -> f64 {
    assert_eq!(pred.len(), gt.len());
    let n = pred.len();
    assert!(n >= 2, "need at least two samples");
    let (mut concordant, mut discordant) = (0i64, 0i64);
    let (mut ties_x, mut ties_y) = (0i64, 0i64);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = pred[i] - pred[j];
            let dy = gt[i] - gt[j];
            if dx == 0.0 && dy == 0.0 {
                // tied in both: contributes to neither
            } else if dx == 0.0 {
                ties_x += 1;
            } else if dy == 0.0 {
                ties_y += 1;
            } else if dx * dy > 0.0 {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let n0 = (n * (n - 1) / 2) as i64;
    let denom = (((n0 - ties_x) as f64) * ((n0 - ties_y) as f64)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        (concordant - discordant) as f64 / denom
    }
}

/// Precision at `k`: overlap between the predicted and true top-`k` most
/// similar items (smallest GED), divided by `k`.
///
/// # Panics
/// Panics if lengths differ or `k == 0`.
#[must_use]
pub fn precision_at_k(pred: &[f64], gt: &[f64], k: usize) -> f64 {
    assert_eq!(pred.len(), gt.len());
    assert!(k >= 1, "k must be positive");
    let k = k.min(pred.len());
    let top = |vals: &[f64]| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..vals.len()).collect();
        idx.sort_by(|&a, &b| {
            vals[a]
                .partial_cmp(&vals[b])
                .expect("finite")
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    };
    let tp = top(pred);
    let tg = top(gt);
    let hits = tp.iter().filter(|i| tg.contains(i)).count();
    hits as f64 / k as f64
}

/// Per-query ranking evaluation: each group is one query graph with its
/// partner predictions, as in the paper's similarity-search protocol. The
/// reported ρ / τ / p@k are averaged over groups.
#[derive(Default)]
pub struct GroupedRanking {
    groups: Vec<(Vec<f64>, Vec<f64>)>,
}

impl GroupedRanking {
    /// Creates an empty collection.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one query group (parallel prediction / ground-truth lists).
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn push_group(&mut self, pred: Vec<f64>, gt: Vec<f64>) {
        assert_eq!(pred.len(), gt.len());
        if pred.len() >= 2 {
            self.groups.push((pred, gt));
        }
    }

    /// Number of groups.
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Mean Spearman ρ over groups.
    #[must_use]
    pub fn mean_spearman(&self) -> f64 {
        self.mean(spearman_rho)
    }

    /// Mean Kendall τ-b over groups.
    #[must_use]
    pub fn mean_kendall(&self) -> f64 {
        self.mean(kendall_tau)
    }

    /// Mean p@k over groups.
    #[must_use]
    pub fn mean_precision_at(&self, k: usize) -> f64 {
        self.mean(|p, g| precision_at_k(p, g, k))
    }

    fn mean(&self, f: impl Fn(&[f64], &[f64]) -> f64) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        self.groups.iter().map(|(p, g)| f(p, g)).sum::<f64>() / self.groups.len() as f64
    }
}

/// Multiset precision/recall of a generated edit path against the ground
/// truth, over canonical operations: `recall = |GEP ∩ GEP*| / |GEP*|`,
/// `precision = |GEP ∩ GEP*| / |GEP|` (Section 6.3). Identical empty paths
/// count as perfect.
#[must_use]
pub fn path_precision_recall(
    generated: &[CanonicalOp],
    ground_truth: &[CanonicalOp],
) -> (f64, f64) {
    if generated.is_empty() && ground_truth.is_empty() {
        return (1.0, 1.0);
    }
    let mut gen = generated.to_vec();
    let mut gt = ground_truth.to_vec();
    gen.sort_unstable();
    gt.sort_unstable();
    // Multiset intersection via merge.
    let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
    while i < gen.len() && j < gt.len() {
        match gen[i].cmp(&gt[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let precision = if gen.is_empty() {
        0.0
    } else {
        inter as f64 / gen.len() as f64
    };
    let recall = if gt.is_empty() {
        0.0
    } else {
        inter as f64 / gt.len() as f64
    };
    (precision, recall)
}

/// F1 score of a precision/recall pair.
#[must_use]
pub fn path_f1(precision: f64, recall: f64) -> f64 {
    if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(pred: f64, gt: f64) -> PairOutcome {
        PairOutcome { pred, gt }
    }

    #[test]
    fn value_metrics() {
        let xs = [o(4.0, 4.0), o(5.4, 5.0), o(2.0, 3.0)];
        assert!((mae(&xs) - (0.0 + 0.4 + 1.0) / 3.0).abs() < 1e-12);
        assert!((accuracy(&xs) - 2.0 / 3.0).abs() < 1e-12);
        assert!((feasibility(&xs) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_perfect_and_reversed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
        let c = [40.0, 30.0, 20.0, 10.0];
        assert!((spearman_rho(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman_rho(&a, &b) - 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(spearman_rho(&flat, &b), 0.0);
    }

    #[test]
    fn kendall_basics() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0];
        assert!((kendall_tau(&a, &b) - 1.0).abs() < 1e-12);
        let c = [3.0, 2.0, 1.0];
        assert!((kendall_tau(&a, &c) + 1.0).abs() < 1e-12);
        // One swap out of three pairs: tau = (2 - 1) / 3.
        let d = [1.0, 3.0, 2.0];
        assert!((kendall_tau(&a, &d) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn precision_at_k_overlap() {
        let pred = [1.0, 2.0, 3.0, 4.0, 5.0];
        let gt = [1.0, 2.0, 5.0, 4.0, 3.0];
        // Top-2 smallest: pred {0,1}, gt {0,1} -> 1.0
        assert_eq!(precision_at_k(&pred, &gt, 2), 1.0);
        // Top-3: pred {0,1,2}, gt {0,1,4} -> 2/3.
        assert!((precision_at_k(&pred, &gt, 3) - 2.0 / 3.0).abs() < 1e-12);
        // k larger than the list is clamped.
        assert_eq!(precision_at_k(&pred, &gt, 50), 1.0);
    }

    #[test]
    fn grouped_ranking_averages() {
        let mut g = GroupedRanking::new();
        g.push_group(vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 3.0]);
        g.push_group(vec![3.0, 2.0, 1.0], vec![1.0, 2.0, 3.0]);
        assert_eq!(g.len(), 2);
        assert!((g.mean_spearman() - 0.0).abs() < 1e-12);
        assert!((g.mean_kendall() - 0.0).abs() < 1e-12);
        // Degenerate single-element groups are dropped.
        g.push_group(vec![1.0], vec![1.0]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn path_overlap_metrics() {
        use CanonicalOp::*;
        let gt = vec![
            Relabel(2),
            InsertNode(3),
            DeleteEdge(1, 2),
            InsertEdge(2, 3),
        ];
        let gen = vec![
            Relabel(2),
            InsertNode(3),
            DeleteEdge(0, 1),
            InsertEdge(2, 3),
        ];
        let (p, r) = path_precision_recall(&gen, &gt);
        assert!((p - 0.75).abs() < 1e-12);
        assert!((r - 0.75).abs() < 1e-12);
        assert!((path_f1(p, r) - 0.75).abs() < 1e-12);

        let (p2, r2) = path_precision_recall(&[], &[]);
        assert_eq!((p2, r2), (1.0, 1.0));
        let (p3, r3) = path_precision_recall(&[], &gt);
        assert_eq!((p3, r3), (0.0, 0.0));
    }
}
