//! Indexed graph collections: the dataset-facing entry point of every
//! search workload.
//!
//! A [`GraphStore`] owns a collection of graphs behind stable [`GraphId`]
//! handles. At insert time the store precomputes a [`GraphSignature`] for
//! each graph — the sorted node-label multiset, the sorted degree
//! sequence, and the node/edge counts — which is exactly the data the
//! classic filter–verify GED search pipeline needs to evaluate cheap
//! lower bounds without touching the graph itself. Stores support
//! incremental [`GraphStore::insert`] / [`GraphStore::remove`], so one
//! store can live across many queries.
//!
//! Iteration order is always ascending [`GraphId`], which equals
//! insertion order (ids are never reused), so every store traversal is
//! deterministic.
//!
//! ```
//! use ged_graph::{Graph, GraphStore, Label};
//!
//! let mut store = GraphStore::new();
//! let a = store.insert(Graph::from_edges(vec![Label(1), Label(2)], &[(0, 1)]));
//! let b = store.insert(Graph::unlabeled_from_edges(3, &[(0, 1), (1, 2)]));
//! assert_eq!(store.len(), 2);
//! assert_eq!(store.signature(a).unwrap().num_nodes(), 2);
//!
//! // Removal invalidates the handle; other ids stay stable.
//! store.remove(a);
//! assert!(store.get(a).is_none());
//! assert!(store.get(b).is_some());
//! ```

use crate::csr::CsrView;
use crate::graph::{Graph, Label};
use std::fmt;
use std::ops::Index;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global id allocator: sequence numbers are unique across every
/// store (and every clone of a store), so two handles are equal only
/// when they name the same inserted graph.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

/// A stable handle to one graph inside a [`GraphStore`].
///
/// Ids are minted by [`GraphStore::insert`] and stay valid until the
/// graph is removed; they are never reused — not even across stores or
/// across clones that later diverge — so a foreign or removed id returns
/// `None` instead of ever aliasing a different graph. Ordering follows
/// insertion order, which makes id tie-breaking deterministic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GraphId {
    seq: u64,
}

impl GraphId {
    /// The raw sequence number — the persistence hook the sharded-store
    /// snapshot codec uses. Not public: sequence numbers are an
    /// allocation detail.
    pub(crate) fn seq(self) -> u64 {
        self.seq
    }

    /// Rebuilds a handle from a persisted sequence number (snapshot
    /// load only; pair with [`GraphStore::insert_with_seq`] so the id
    /// actually resolves).
    pub(crate) fn from_seq(seq: u64) -> Self {
        GraphId { seq }
    }
}

/// Ensures future [`GraphStore::insert`] calls mint sequence numbers
/// strictly above `seq` — called while loading persisted ids so a loaded
/// store can never alias a freshly inserted graph.
pub(crate) fn bump_next_seq(seq: u64) {
    NEXT_SEQ.fetch_max(seq.saturating_add(1), Ordering::Relaxed);
}

impl fmt::Display for GraphId {
    /// Renders as `g<seq>`. Sequence numbers are process-global, so the
    /// numbering of a store's ids starts wherever the previous store (or
    /// test thread) left off — compare ids, don't parse them.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.seq)
    }
}

/// The per-graph summary a [`GraphStore`] precomputes at insert time.
///
/// Signatures carry everything the label-set and degree-sequence GED
/// lower bounds consume — sorted label multiset, sorted degree sequence,
/// node and edge counts — so the filter stage of a filter–verify search
/// never re-derives them per query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphSignature {
    num_nodes: usize,
    num_edges: usize,
    labels: Vec<Label>,
    degrees: Vec<usize>,
}

impl GraphSignature {
    /// Computes the signature of `g`.
    #[must_use]
    pub fn of(g: &Graph) -> Self {
        let mut degrees: Vec<usize> = (0..g.num_nodes() as u32).map(|u| g.degree(u)).collect();
        degrees.sort_unstable();
        GraphSignature {
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
            labels: g.label_multiset(),
            degrees,
        }
    }

    /// Number of nodes of the summarized graph.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (undirected) edges of the summarized graph.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The node-label multiset, sorted ascending.
    #[must_use]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The degree sequence, sorted ascending.
    #[must_use]
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }
}

/// One stored graph plus its precomputed signature and flat CSR view.
#[derive(Clone, Debug)]
struct StoreEntry {
    graph: Graph,
    signature: GraphSignature,
    csr: CsrView,
}

/// An indexed, incrementally updatable collection of graphs.
///
/// See the [module docs](self) for the design; in short: stable
/// [`GraphId`] handles, per-graph [`GraphSignature`]s built at insert
/// time, deterministic id-ordered iteration, amortized `O(1)` insert
/// (the sorted entry table always appends because sequence numbers are
/// globally monotonic), and `O(log n)` lookup.
///
/// Cloning a store preserves every id (the clone is a snapshot in which
/// existing handles keep resolving); the clone and the original then
/// evolve independently, and ids minted after the clone never collide
/// between the two (the id space is process-global).
#[derive(Clone, Debug, Default)]
pub struct GraphStore {
    /// Sorted ascending by sequence number. Sequence numbers are minted
    /// from a process-global monotonic counter, so a plain `insert`
    /// always appends; only snapshot loading (which replays persisted
    /// seqs) ever splices into the middle.
    entries: Vec<(u64, StoreEntry)>,
    revision: u64,
}

impl GraphStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        GraphStore {
            entries: Vec::new(),
            revision: 0,
        }
    }

    /// Creates an empty store with room for `capacity` graphs before the
    /// entry table reallocates. Bulk loaders (dataset readers, shard
    /// snapshot restore) use this to avoid `O(log n)` reallocations.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        GraphStore {
            entries: Vec::with_capacity(capacity),
            revision: 0,
        }
    }

    /// Reserves room for at least `additional` more graphs.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Builds a store by inserting every graph of `graphs` in order.
    #[must_use]
    pub fn from_graphs<I: IntoIterator<Item = Graph>>(graphs: I) -> Self {
        let mut store = Self::new();
        store.insert_all(graphs);
        store
    }

    /// Inserts every graph of `graphs` in order, returning the freshly
    /// minted ids (ascending). Equivalent to repeated
    /// [`GraphStore::insert`], but reserves the entry table once and
    /// mints the whole id block with a single allocator bump, so the ids
    /// are always contiguous.
    pub fn insert_all<I: IntoIterator<Item = Graph>>(&mut self, graphs: I) -> Vec<GraphId> {
        let graphs: Vec<Graph> = graphs.into_iter().collect();
        if graphs.is_empty() {
            return Vec::new();
        }
        let first = NEXT_SEQ.fetch_add(graphs.len() as u64, Ordering::Relaxed);
        self.reserve(graphs.len());
        let mut ids = Vec::with_capacity(graphs.len());
        for (offset, graph) in graphs.into_iter().enumerate() {
            let seq = first + offset as u64;
            let signature = GraphSignature::of(&graph);
            let csr = CsrView::of(&graph);
            self.entries.push((
                seq,
                StoreEntry {
                    graph,
                    signature,
                    csr,
                },
            ));
            ids.push(GraphId { seq });
        }
        // Same revision rule as single inserts: the last minted seq + 1.
        self.revision = self.entries.last().map_or(0, |&(seq, _)| seq + 1);
        ids
    }

    /// Inserts `graph`, precomputing its [`GraphSignature`] and flat
    /// [`CsrView`], and returns the freshly minted [`GraphId`]. Ids are
    /// never reused, even after removals.
    pub fn insert(&mut self, graph: Graph) -> GraphId {
        let id = GraphId {
            seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
        };
        let signature = GraphSignature::of(&graph);
        let csr = CsrView::of(&graph);
        debug_assert!(self.entries.last().is_none_or(|&(seq, _)| seq < id.seq));
        self.entries.push((
            id.seq,
            StoreEntry {
                graph,
                signature,
                csr,
            },
        ));
        // Sequence numbers are globally unique, so `seq + 1` is a revision
        // no other mutation (of any store) can ever produce.
        self.revision = id.seq + 1;
        id
    }

    /// Re-inserts a graph under a *persisted* sequence number while
    /// loading a snapshot. Keeps the entry table sorted, advances the
    /// global allocator past `seq` (so future inserts cannot alias the
    /// restored id), and does **not** touch the revision — the loader
    /// restores the persisted revision explicitly via
    /// [`GraphStore::set_revision`].
    ///
    /// Returns the restored handle, or `None` if `seq` is already live
    /// in this store (a corrupt snapshot).
    pub(crate) fn insert_with_seq(&mut self, seq: u64, graph: Graph) -> Option<GraphId> {
        bump_next_seq(seq);
        let at = match self.entries.binary_search_by_key(&seq, |&(s, _)| s) {
            Ok(_) => return None,
            Err(at) => at,
        };
        let signature = GraphSignature::of(&graph);
        let csr = CsrView::of(&graph);
        self.entries.insert(
            at,
            (
                seq,
                StoreEntry {
                    graph,
                    signature,
                    csr,
                },
            ),
        );
        Some(GraphId { seq })
    }

    /// Restores a persisted revision value (snapshot load only).
    pub(crate) fn set_revision(&mut self, revision: u64) {
        self.revision = revision;
    }

    /// Removes the graph behind `id`, returning it, or `None` if `id` is
    /// foreign to this store or was already removed. All other ids stay
    /// valid.
    pub fn remove(&mut self, id: GraphId) -> Option<Graph> {
        let at = self
            .entries
            .binary_search_by_key(&id.seq, |&(seq, _)| seq)
            .ok()?;
        let removed = self.entries.remove(at).1.graph;
        self.revision = NEXT_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
        Some(removed)
    }

    /// A cheap content fingerprint for change detection: bumped to a
    /// globally unique value by every successful [`GraphStore::insert`] /
    /// [`GraphStore::remove`] (no-op removals of foreign or dead ids do
    /// not bump it).
    ///
    /// Because [`GraphId`]s are never reused and stored graphs are
    /// immutable, two stores reporting the same revision hold the same
    /// `id → graph` map — either both are freshly created (revision 0,
    /// both empty) or one is an unmutated clone of the other. Derived
    /// indexes (e.g. [`crate::pivot::PivotIndex`]) use this to skip
    /// re-synchronisation in `O(1)` when nothing changed.
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Resolves `id` to its entry, or `None` for a foreign or removed id.
    fn entry(&self, id: GraphId) -> Option<&StoreEntry> {
        self.entries
            .binary_search_by_key(&id.seq, |&(seq, _)| seq)
            .ok()
            .map(|at| &self.entries[at].1)
    }

    /// The graph behind `id`, or `None` for a foreign or removed id.
    #[must_use]
    pub fn get(&self, id: GraphId) -> Option<&Graph> {
        self.entry(id).map(|e| &e.graph)
    }

    /// The precomputed signature of the graph behind `id`, or `None` for
    /// a foreign or removed id.
    #[must_use]
    pub fn signature(&self, id: GraphId) -> Option<&GraphSignature> {
        self.entry(id).map(|e| &e.signature)
    }

    /// The precomputed flat CSR view of the graph behind `id`, or `None`
    /// for a foreign or removed id.
    #[must_use]
    pub fn csr(&self, id: GraphId) -> Option<&CsrView> {
        self.entry(id).map(|e| &e.csr)
    }

    /// Whether `id` currently resolves in this store.
    #[must_use]
    pub fn contains(&self, id: GraphId) -> bool {
        self.get(id).is_some()
    }

    /// Number of stored graphs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no graphs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every live id, ascending (= insertion order).
    #[must_use]
    pub fn ids(&self) -> Vec<GraphId> {
        self.entries
            .iter()
            .map(|&(seq, _)| GraphId { seq })
            .collect()
    }

    /// Iterates `(id, graph)` in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (GraphId, &Graph)> {
        self.entries
            .iter()
            .map(|&(seq, ref e)| (GraphId { seq }, &e.graph))
    }

    /// Iterates `(id, graph, signature)` in ascending id order — the
    /// traversal the filter–verify search plan consumes.
    pub fn entries(&self) -> impl Iterator<Item = (GraphId, &Graph, &GraphSignature)> {
        self.entries
            .iter()
            .map(|&(seq, ref e)| (GraphId { seq }, &e.graph, &e.signature))
    }

    /// Iterates the stored graphs in ascending id order.
    pub fn graphs(&self) -> impl Iterator<Item = &Graph> {
        self.entries.iter().map(|(_, e)| &e.graph)
    }

    /// `(id, graph, signature)` entries sorted by ascending node count
    /// (ties by ascending id) — the *signature band order*.
    ///
    /// Node-count difference is an admissible GED lower bound, so in
    /// this order the candidates compatible with any size window form
    /// one contiguous band: a join or batch plan walking the sorted
    /// entries can discard everything past the first entry whose size
    /// gap exceeds τ wholesale, without touching the remaining pairs.
    #[must_use]
    pub fn entries_by_size(&self) -> Vec<(GraphId, &Graph, &GraphSignature)> {
        let mut out: Vec<(GraphId, &Graph, &GraphSignature)> = self.entries().collect();
        out.sort_by_key(|&(id, _, sig)| (sig.num_nodes(), id));
        out
    }
}

impl Index<GraphId> for GraphStore {
    type Output = Graph;

    /// Direct access for callers that know the id is live (e.g. the
    /// experiment harness walking its own split lists). Query layers
    /// should use [`GraphStore::get`] and surface a typed error instead.
    ///
    /// # Panics
    /// Panics if `id` is foreign to this store or was removed.
    fn index(&self, id: GraphId) -> &Graph {
        self.get(id)
            .unwrap_or_else(|| panic!("GraphStore: no graph with id {id} (foreign or removed)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        Graph::from_edges(labels.iter().map(|&l| Label(l)).collect(), edges)
    }

    #[test]
    fn insert_get_contains_roundtrip() {
        let mut store = GraphStore::new();
        let ga = g(&[1, 2, 3], &[(0, 1), (1, 2)]);
        let a = store.insert(ga.clone());
        assert_eq!(store.get(a), Some(&ga));
        assert!(store.contains(a));
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn signatures_are_sorted_summaries() {
        let mut store = GraphStore::new();
        let id = store.insert(g(&[5, 1, 5], &[(0, 1), (0, 2)]));
        let sig = store.signature(id).unwrap();
        assert_eq!(sig.num_nodes(), 3);
        assert_eq!(sig.num_edges(), 2);
        assert_eq!(sig.labels(), &[Label(1), Label(5), Label(5)]);
        assert_eq!(sig.degrees(), &[1, 1, 2]); // node 0 has degree 2
    }

    #[test]
    fn removal_invalidates_only_the_removed_id() {
        let mut store = GraphStore::new();
        let a = store.insert(g(&[1], &[]));
        let b = store.insert(g(&[2], &[]));
        let removed = store.remove(a).expect("live id");
        assert_eq!(removed.labels(), &[Label(1)]);
        assert!(store.get(a).is_none());
        assert!(store.signature(a).is_none());
        assert!(store.remove(a).is_none(), "double remove is a no-op");
        assert!(store.contains(b));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn ids_are_never_reused_and_iteration_is_insertion_ordered() {
        let mut store = GraphStore::new();
        let a = store.insert(g(&[1], &[]));
        let b = store.insert(g(&[2], &[]));
        store.remove(a);
        let c = store.insert(g(&[3], &[]));
        assert!(a < b && b < c, "ids ascend in insertion order");
        assert_eq!(store.ids(), vec![b, c]);
        let labels: Vec<u32> = store.graphs().map(|g| g.labels()[0].0).collect();
        assert_eq!(labels, vec![2, 3]);
        let via_iter: Vec<GraphId> = store.iter().map(|(id, _)| id).collect();
        let via_entries: Vec<GraphId> = store.entries().map(|(id, _, _)| id).collect();
        assert_eq!(via_iter, store.ids());
        assert_eq!(via_entries, store.ids());
    }

    #[test]
    fn csr_views_are_built_at_insert() {
        let mut store = GraphStore::new();
        let graph = g(&[5, 1, 5], &[(0, 1), (0, 2)]);
        let id = store.insert(graph.clone());
        let csr = store.csr(id).expect("live id");
        assert_eq!(*csr, CsrView::of(&graph));
        store.remove(id);
        assert!(store.csr(id).is_none());
    }

    #[test]
    fn foreign_ids_do_not_resolve() {
        let mut a = GraphStore::new();
        let mut b = GraphStore::new();
        let id_a = a.insert(g(&[1], &[]));
        let id_b = b.insert(g(&[2], &[]));
        assert!(b.get(id_a).is_none());
        assert!(b.remove(id_a).is_none());
        assert!(a.get(id_b).is_none());
        assert_ne!(id_a, id_b);
    }

    #[test]
    fn clones_are_snapshots_preserving_ids() {
        let mut store = GraphStore::new();
        let a = store.insert(g(&[7], &[]));
        let snapshot = store.clone();
        store.remove(a);
        assert!(store.get(a).is_none());
        assert_eq!(snapshot.get(a).map(|g| g.labels()[0]), Some(Label(7)));
    }

    #[test]
    fn diverging_clones_never_mint_aliasing_ids() {
        let mut a = GraphStore::new();
        let mut b = a.clone();
        let id_a = a.insert(g(&[1], &[]));
        let id_b = b.insert(g(&[2], &[]));
        assert_ne!(id_a, id_b, "post-clone inserts mint distinct ids");
        assert!(b.get(id_a).is_none(), "a's id must not alias b's graph");
        assert!(a.get(id_b).is_none(), "b's id must not alias a's graph");
    }

    #[test]
    fn index_panics_on_dead_ids() {
        let mut store = GraphStore::new();
        let a = store.insert(g(&[1], &[]));
        assert_eq!(store[a].num_nodes(), 1);
        store.remove(a);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| store[a].num_nodes()));
        assert!(res.is_err());
    }

    #[test]
    fn revision_bumps_only_on_real_mutations() {
        let mut store = GraphStore::new();
        assert_eq!(store.revision(), 0, "fresh stores start at revision 0");
        let a = store.insert(g(&[1], &[]));
        let r1 = store.revision();
        assert_ne!(r1, 0);
        let _b = store.insert(g(&[2], &[]));
        let r2 = store.revision();
        assert_ne!(r2, r1, "insert bumps");
        store.remove(a);
        let r3 = store.revision();
        assert_ne!(r3, r2, "remove bumps");
        store.remove(a);
        assert_eq!(store.revision(), r3, "no-op remove does not bump");

        // A clone shares the revision until either side mutates; the two
        // diverging mutations mint distinct revisions.
        let mut clone = store.clone();
        assert_eq!(clone.revision(), store.revision());
        store.insert(g(&[3], &[]));
        clone.insert(g(&[4], &[]));
        assert_ne!(store.revision(), clone.revision());
    }

    #[test]
    fn insert_all_matches_repeated_insert_and_mints_contiguous_ids() {
        let mut bulk = GraphStore::with_capacity(3);
        let ids = bulk.insert_all(vec![g(&[1], &[]), g(&[2], &[]), g(&[3, 4], &[(0, 1)])]);
        assert_eq!(ids.len(), 3);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(bulk.ids(), ids);
        assert_eq!(bulk.revision(), ids[2].seq() + 1, "same rule as insert");
        let labels: Vec<u32> = bulk.graphs().map(|g| g.labels()[0].0).collect();
        assert_eq!(labels, vec![1, 2, 3]);
        // Signatures and CSR views are precomputed exactly as insert does.
        assert_eq!(bulk.signature(ids[2]).unwrap().num_edges(), 1);
        assert_eq!(bulk.csr(ids[2]), Some(&CsrView::of(&g(&[3, 4], &[(0, 1)]))));

        // Empty bulk insert is a true no-op: no ids, no revision bump.
        let before = bulk.revision();
        assert!(bulk.insert_all(std::iter::empty()).is_empty());
        assert_eq!(bulk.revision(), before);
    }

    #[test]
    fn reserve_and_with_capacity_do_not_disturb_contents() {
        let mut store = GraphStore::with_capacity(0);
        let a = store.insert(g(&[1], &[]));
        store.reserve(100);
        assert_eq!(store.ids(), vec![a]);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn insert_with_seq_restores_ids_without_touching_revision() {
        let mut donor = GraphStore::new();
        let a = donor.insert(g(&[1], &[]));
        let b = donor.insert(g(&[2], &[]));

        let mut restored = GraphStore::with_capacity(2);
        // Splice out of order: the entry table must stay sorted.
        assert_eq!(restored.insert_with_seq(b.seq(), g(&[2], &[])), Some(b));
        assert_eq!(restored.insert_with_seq(a.seq(), g(&[1], &[])), Some(a));
        assert_eq!(restored.ids(), vec![a, b]);
        assert_eq!(restored.revision(), 0, "loader restores revision itself");
        assert_eq!(
            restored.insert_with_seq(a.seq(), g(&[9], &[])),
            None,
            "duplicate seqs are rejected"
        );
        restored.set_revision(donor.revision());
        assert_eq!(restored.revision(), donor.revision());

        // The allocator was advanced past every restored seq, so fresh
        // inserts never alias.
        let c = restored.insert(g(&[3], &[]));
        assert!(c > b);
    }

    #[test]
    fn display_is_compact_and_distinct() {
        let mut store = GraphStore::new();
        let a = store.insert(g(&[1], &[]));
        let b = store.insert(g(&[2], &[]));
        assert!(a.to_string().starts_with('g'));
        assert_ne!(a.to_string(), b.to_string());
    }
}
