//! Node-labeled undirected graphs.

use std::fmt;

/// A node label.
///
/// Labels are small integers; datasets map their label alphabet (e.g. the 29
/// chemical symbols of AIDS) onto `0..num_labels`. Unlabeled graphs use the
/// single label [`Label::UNLABELED`] on every node, which matches the paper's
/// "constant initial node feature" convention for LINUX and IMDB.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub u32);

impl Label {
    /// The label carried by every node of an unlabeled graph.
    pub const UNLABELED: Label = Label(0);
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<u32> for Label {
    fn from(v: u32) -> Self {
        Label(v)
    }
}

/// A node-labeled, undirected, simple graph (no self loops, no multi-edges).
///
/// Nodes are identified by dense indices `0..n`. Adjacency lists are kept
/// sorted so that edge membership tests are `O(log deg)` and iteration order
/// is deterministic.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Graph {
    labels: Vec<Label>,
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        struct Edges<'a>(&'a Graph);
        impl fmt::Debug for Edges<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_list().entries(self.0.edges()).finish()
            }
        }
        write!(
            f,
            "Graph(n={}, m={}, labels={:?}, edges={:?})",
            self.num_nodes(),
            self.num_edges,
            self.labels,
            Edges(self)
        )
    }
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Graph {
            labels: Vec::new(),
            adj: Vec::new(),
            num_edges: 0,
        }
    }

    /// Creates an empty graph with capacity for `n` nodes.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Graph {
            labels: Vec::with_capacity(n),
            adj: Vec::with_capacity(n),
            num_edges: 0,
        }
    }

    /// Builds a graph from a label list and an edge list.
    ///
    /// # Panics
    /// Panics if an edge references a node out of range, is a self loop, or
    /// appears twice.
    #[must_use]
    pub fn from_edges(labels: Vec<Label>, edges: &[(u32, u32)]) -> Self {
        let mut g = Graph {
            adj: vec![Vec::new(); labels.len()],
            labels,
            num_edges: 0,
        };
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Builds an unlabeled graph (every node gets [`Label::UNLABELED`]).
    #[must_use]
    pub fn unlabeled_from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        Self::from_edges(vec![Label::UNLABELED; n], edges)
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of (undirected) edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Returns `true` if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Adds a node with the given label; returns its index.
    pub fn add_node(&mut self, label: Label) -> u32 {
        self.labels.push(label);
        self.adj.push(Vec::new());
        (self.labels.len() - 1) as u32
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// # Panics
    /// Panics on self loops, out-of-range endpoints or duplicate edges.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        assert_ne!(u, v, "self loops are not allowed");
        let n = self.num_nodes() as u32;
        assert!(u < n && v < n, "edge ({u},{v}) out of range (n={n})");
        let pos_u = self.adj[u as usize].binary_search(&v);
        assert!(pos_u.is_err(), "duplicate edge ({u},{v})");
        self.adj[u as usize].insert(pos_u.unwrap_err(), v);
        let pos_v = self.adj[v as usize].binary_search(&u).unwrap_err();
        self.adj[v as usize].insert(pos_v, u);
        self.num_edges += 1;
    }

    /// Removes the undirected edge `(u, v)`; returns `true` if it existed.
    pub fn remove_edge(&mut self, u: u32, v: u32) -> bool {
        let Ok(pos_u) = self.adj[u as usize].binary_search(&v) else {
            return false;
        };
        self.adj[u as usize].remove(pos_u);
        let pos_v = self.adj[v as usize]
            .binary_search(&u)
            .expect("asymmetric adjacency");
        self.adj[v as usize].remove(pos_v);
        self.num_edges -= 1;
        true
    }

    /// Removes node `u` and all incident edges. Nodes after `u` are shifted
    /// down by one (ids stay dense).
    pub fn remove_node(&mut self, u: u32) {
        let neighbors = std::mem::take(&mut self.adj[u as usize]);
        for &v in &neighbors {
            let pos = self.adj[v as usize]
                .binary_search(&u)
                .expect("asymmetric adjacency");
            self.adj[v as usize].remove(pos);
        }
        self.num_edges -= neighbors.len();
        self.labels.remove(u as usize);
        self.adj.remove(u as usize);
        for list in &mut self.adj {
            for w in list.iter_mut() {
                if *w > u {
                    *w -= 1;
                }
            }
        }
    }

    /// Returns `true` if the undirected edge `(u, v)` is present.
    #[must_use]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj
            .get(u as usize)
            .is_some_and(|list| list.binary_search(&v).is_ok())
    }

    /// The label of node `u`.
    #[must_use]
    pub fn label(&self, u: u32) -> Label {
        self.labels[u as usize]
    }

    /// Replaces the label of node `u`.
    pub fn set_label(&mut self, u: u32, label: Label) {
        self.labels[u as usize] = label;
    }

    /// All node labels, indexed by node id.
    #[must_use]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The sorted neighbor list of node `u`.
    #[must_use]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// The degree of node `u`.
    #[must_use]
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// Iterates over edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            let u = u as u32;
            list.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Dense adjacency matrix as a flat row-major `n*n` vector of `0.0/1.0`.
    #[must_use]
    pub fn adjacency_matrix(&self) -> Vec<f64> {
        let n = self.num_nodes();
        let mut a = vec![0.0; n * n];
        for (u, v) in self.edges() {
            a[u as usize * n + v as usize] = 1.0;
            a[v as usize * n + u as usize] = 1.0;
        }
        a
    }

    /// Dense adjacency matrix padded with isolated dummy nodes up to `size`.
    ///
    /// Used by GEDGW, which pads the smaller graph with label-less, edge-less
    /// dummy nodes so both graphs have the same node count (Section 5.1).
    ///
    /// # Panics
    /// Panics if `size < n`.
    #[must_use]
    pub fn adjacency_matrix_padded(&self, size: usize) -> Vec<f64> {
        let n = self.num_nodes();
        assert!(size >= n, "padded size {size} smaller than n={n}");
        let mut a = vec![0.0; size * size];
        for (u, v) in self.edges() {
            a[u as usize * size + v as usize] = 1.0;
            a[v as usize * size + u as usize] = 1.0;
        }
        a
    }

    /// Returns `true` if the graph is connected (the empty graph counts as
    /// connected).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let n = self.num_nodes();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in self.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    /// The multiset of node labels as a sorted vector.
    #[must_use]
    pub fn label_multiset(&self) -> Vec<Label> {
        let mut ls = self.labels.clone();
        ls.sort_unstable();
        ls
    }

    /// The number of distinct labels used by this graph.
    #[must_use]
    pub fn distinct_labels(&self) -> usize {
        let mut ls = self.labels.clone();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    }

    /// Checks internal invariants (sorted symmetric adjacency, edge count).
    /// Intended for tests and debug assertions.
    ///
    /// # Panics
    /// Panics if an invariant is violated.
    pub fn validate(&self) {
        assert_eq!(self.labels.len(), self.adj.len());
        let mut m2 = 0usize;
        for (u, list) in self.adj.iter().enumerate() {
            assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "adjacency of {u} not sorted/unique"
            );
            for &v in list {
                assert_ne!(v as usize, u, "self loop at {u}");
                assert!(
                    self.adj[v as usize].binary_search(&(u as u32)).is_ok(),
                    "edge ({u},{v}) not symmetric"
                );
            }
            m2 += list.len();
        }
        assert_eq!(m2, 2 * self.num_edges, "edge count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(
            vec![Label(1), Label(2), Label(3)],
            &[(0, 1), (1, 2), (0, 2)],
        )
    }

    #[test]
    fn build_and_query() {
        let g = triangle();
        g.validate();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.label(2), Label(3));
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn add_remove_edge() {
        let mut g = triangle();
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 2);
        g.add_edge(0, 1);
        assert_eq!(g.num_edges(), 3);
        g.validate();
    }

    #[test]
    fn remove_node_shifts_ids() {
        let mut g = Graph::from_edges(
            vec![Label(0), Label(1), Label(2), Label(3)],
            &[(0, 1), (1, 2), (2, 3), (0, 3)],
        );
        g.remove_node(1);
        g.validate();
        assert_eq!(g.num_nodes(), 3);
        // Old node 2 is now node 1, old node 3 is now node 2.
        assert_eq!(g.labels(), &[Label(0), Label(2), Label(3)]);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(0, 2));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn adjacency_matrix_roundtrip() {
        let g = triangle();
        let a = g.adjacency_matrix();
        assert_eq!(a, vec![0.0, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0]);
        let ap = g.adjacency_matrix_padded(4);
        assert_eq!(ap.len(), 16);
        assert_eq!(ap[1], 1.0); // (0,1)
        assert_eq!(ap[12], 0.0); // (3,0)
        assert_eq!(ap[3], 0.0); // (0,3)
    }

    #[test]
    fn connectivity() {
        let g = triangle();
        assert!(g.is_connected());
        let mut g2 = g.clone();
        g2.add_node(Label(9));
        assert!(!g2.is_connected());
        assert!(Graph::new().is_connected());
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn rejects_self_loop() {
        let mut g = triangle();
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        let mut g = triangle();
        g.add_edge(1, 0);
    }

    #[test]
    fn label_multiset_sorted() {
        let g = Graph::from_edges(vec![Label(5), Label(1), Label(5)], &[]);
        assert_eq!(g.label_multiset(), vec![Label(1), Label(5), Label(5)]);
        assert_eq!(g.distinct_labels(), 2);
    }
}
