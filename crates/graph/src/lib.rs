//! Graph substrate for `ot-ged`.
//!
//! This crate provides everything the GED solvers need to know about graphs:
//!
//! * [`Graph`] — node-labeled undirected graphs with sorted adjacency lists;
//! * [`EditOp`] / [`EditPath`] — the five edit operations of the paper
//!   (node insertion/deletion/relabeling, edge insertion/deletion), path
//!   application and verification;
//! * [`NodeMapping`] — injective node matchings `V1 -> V2` together with
//!   `EPGen` (Algorithm 3 of the paper), which realizes any matching as a
//!   concrete edit path, and the induced-cost formula of Section 3.1;
//! * [`store::GraphStore`] — indexed graph collections with stable
//!   [`store::GraphId`] handles and per-graph search signatures plus flat
//!   [`csr::CsrView`]s precomputed at insert time (the substrate of the
//!   engine's filter–verify similarity search);
//! * [`pivot::PivotIndex`] — triangle-inequality pivot tables over a
//!   store: exact (or interval-valued) distances to a few reference
//!   graphs, maintained incrementally, from which per-candidate metric
//!   `[lb, ub]` bounds are derived at query time;
//! * [`shard::ShardedStore`] — a partitioned store: graphs bucketed by
//!   node count into shards, each with its own signature table, CSR
//!   cache, pivot block, and aggregate bounds that let search plans skip
//!   whole shards before any per-graph work; snapshots persist through
//!   [`shard::ShardedStore::save`] / [`shard::ShardedStore::load`];
//! * random graph [`generate`]-ors and the synthetic stand-ins for the
//!   AIDS / LINUX / IMDB [`dataset`]s used throughout the evaluation
//!   (each dataset is a [`store::GraphStore`] tagged with its kind);
//! * a small VF2-style [`isomorphism`] checker used by tests to prove that
//!   generated edit paths really transform `G1` into `G2`.
//!
//! Everything here is dependency-light on purpose: the heavy numerical
//! machinery lives in `ged-linalg`, `ged-ot` and `ged-nn`.

#![warn(missing_docs)]

pub mod csr;
pub mod dataset;
pub mod edit;
pub mod generate;
pub mod graph;
pub mod io;
pub mod isomorphism;
pub mod mapping;
pub mod pivot;
pub mod shard;
pub mod store;

pub use csr::CsrView;
pub use dataset::{DatasetKind, GraphDataset, Split};
pub use edit::{EditOp, EditPath};
pub use graph::{Graph, Label};
pub use io::{ParseError, ParseErrorKind};
pub use mapping::{CanonicalOp, NodeMapping};
pub use pivot::{PivotDistance, PivotIndex};
pub use shard::{range_distance, Shard, ShardedStore};
pub use store::{GraphId, GraphSignature, GraphStore};

/// The maximum number of edit operations that can possibly be needed to turn
/// `g1` into `g2`: relabel/insert every node and rewrite every edge.
///
/// This is the denominator of the paper's normalized GED
/// (`nGED = GED / (max(n1,n2) + max(m1,m2))`, Section 4.4).
#[must_use]
pub fn max_edit_ops(g1: &Graph, g2: &Graph) -> usize {
    g1.num_nodes().max(g2.num_nodes()) + g1.num_edges().max(g2.num_edges())
}

/// Normalize a raw GED value to `[0, 1]` as in Section 4.4 of the paper.
#[must_use]
pub fn normalized_ged(ged: f64, g1: &Graph, g2: &Graph) -> f64 {
    let denom = max_edit_ops(g1, g2) as f64;
    if denom == 0.0 {
        0.0
    } else {
        ged / denom
    }
}
