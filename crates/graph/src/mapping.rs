//! Node matchings between two graphs and edit path generation (`EPGen`).
//!
//! A [`NodeMapping`] is an injective total map `V1 -> V2` (the paper assumes
//! `n1 <= n2`; with uniform edit costs this convention loses no optimality).
//! Any mapping induces a concrete edit path via [`NodeMapping::edit_path`]
//! (Algorithm 3 of the paper) whose length equals
//! [`NodeMapping::induced_cost`]; the minimum over all mappings is the exact
//! GED.

use crate::edit::{EditOp, EditPath};
use crate::graph::Graph;

/// An injective total node matching from `G1` (size `n1`) into `G2`
/// (size `n2 >= n1`). `map[u] = v` means node `u` of `G1` is matched to node
/// `v` of `G2`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NodeMapping {
    map: Vec<u32>,
}

/// A canonical, graph-pair-relative identity for one edit operation.
///
/// Edit paths emitted by [`NodeMapping::edit_path`] refer to node ids of the
/// *working copy* of `G1`, which makes paths from different mappings hard to
/// compare. `CanonicalOp` names each operation by stable `G1`/`G2` ids so
/// that the path-overlap metrics of Section 6.3 (`|GEP ∩ GEP*|`) are well
/// defined: two paths share an operation iff they share its canonical form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CanonicalOp {
    /// Relabel `G1` node `u` to the label of its matched `G2` node.
    Relabel(u32),
    /// Insert a node matched to `G2` node `v`.
    InsertNode(u32),
    /// Delete the `G1` edge `(u, u')` (endpoints in `G1` ids, `u < u'`).
    DeleteEdge(u32, u32),
    /// Insert the edge matched to `G2` edge `(v, v')` (`v < v'`).
    InsertEdge(u32, u32),
}

impl NodeMapping {
    /// Wraps a raw mapping vector.
    ///
    /// # Panics
    /// Panics if the map is not injective.
    #[must_use]
    pub fn new(map: Vec<u32>) -> Self {
        let mut seen = map.clone();
        seen.sort_unstable();
        assert!(
            seen.windows(2).all(|w| w[0] != w[1]),
            "mapping not injective: {map:?}"
        );
        NodeMapping { map }
    }

    /// The identity mapping on `n` nodes.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        NodeMapping {
            map: (0..n as u32).collect(),
        }
    }

    /// The image of `G1` node `u`.
    #[must_use]
    pub fn image(&self, u: u32) -> u32 {
        self.map[u as usize]
    }

    /// The underlying map (`map[u] = v`).
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.map
    }

    /// The number of mapped nodes (`n1`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the mapping is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Inverse map of size `n2`: `inv[v] = Some(u)` iff `map[u] = v`.
    #[must_use]
    pub fn inverse(&self, n2: usize) -> Vec<Option<u32>> {
        let mut inv = vec![None; n2];
        for (u, &v) in self.map.iter().enumerate() {
            inv[v as usize] = Some(u as u32);
        }
        inv
    }

    /// Converts the mapping into a binary coupling matrix (`n1 x n2`,
    /// row-major), the ground-truth `π*` used to supervise GEDIOT.
    #[must_use]
    pub fn coupling_matrix(&self, n2: usize) -> Vec<f64> {
        let n1 = self.map.len();
        let mut pi = vec![0.0; n1 * n2];
        for (u, &v) in self.map.iter().enumerate() {
            pi[u * n2 + v as usize] = 1.0;
        }
        pi
    }

    /// The edit cost induced by this mapping (Section 3.1 of the paper):
    /// label mismatches + `(n2 - n1)` node insertions + edge deletions
    /// (edges of `G1` with no counterpart) + edge insertions (edges of `G2`
    /// with no counterpart). Runs in `O(n2 + m1 + m2)` time.
    ///
    /// # Panics
    /// Panics if the mapping does not cover exactly `G1`'s nodes or maps
    /// outside `G2`.
    #[must_use]
    pub fn induced_cost(&self, g1: &Graph, g2: &Graph) -> usize {
        let n1 = g1.num_nodes();
        let n2 = g2.num_nodes();
        assert_eq!(self.map.len(), n1, "mapping size != n1");
        assert!(n1 <= n2, "mapping requires n1 <= n2");
        let inv = self.inverse(n2);

        let mut cost = n2 - n1; // node insertions
        for u in 0..n1 as u32 {
            let v = self.image(u);
            assert!((v as usize) < n2, "mapping target {v} out of range");
            if g1.label(u) != g2.label(v) {
                cost += 1; // relabel
            }
        }
        for (u, up) in g1.edges() {
            if !g2.has_edge(self.image(u), self.image(up)) {
                cost += 1; // edge deletion
            }
        }
        for (v, vp) in g2.edges() {
            let matched = match (inv[v as usize], inv[vp as usize]) {
                (Some(u), Some(up)) => g1.has_edge(u, up),
                _ => false,
            };
            if !matched {
                cost += 1; // edge insertion
            }
        }
        cost
    }

    /// `EPGen` (Algorithm 3): realizes the mapping as a concrete edit path.
    ///
    /// The returned path applies to `G1`: relabels first, then node
    /// insertions (appended ids `n1, n1+1, ...` correspond to the unmatched
    /// `G2` nodes in increasing id order), then edge deletions, then edge
    /// insertions. Its length equals [`NodeMapping::induced_cost`], and
    /// applying it to `G1` yields a graph isomorphic to `G2` (equal up to the
    /// extended node correspondence).
    #[must_use]
    pub fn edit_path(&self, g1: &Graph, g2: &Graph) -> EditPath {
        let (path, _) = self.edit_path_with_keys(g1, g2);
        path
    }

    /// Like [`NodeMapping::edit_path`] but also returns the canonical
    /// identity of each operation (same order), for path-overlap metrics.
    #[must_use]
    pub fn edit_path_with_keys(&self, g1: &Graph, g2: &Graph) -> (EditPath, Vec<CanonicalOp>) {
        let n1 = g1.num_nodes();
        let n2 = g2.num_nodes();
        assert_eq!(self.map.len(), n1);
        assert!(n1 <= n2);
        let mut inv = self.inverse(n2);

        let mut path = EditPath::new();
        let mut keys = Vec::new();

        // Node relabelings.
        for u in 0..n1 as u32 {
            let v = self.image(u);
            if g1.label(u) != g2.label(v) {
                path.push(EditOp::RelabelNode {
                    node: u,
                    label: g2.label(v),
                });
                keys.push(CanonicalOp::Relabel(u));
            }
        }
        // Node insertions: unmatched G2 nodes, extending the mapping. The
        // working copy assigns them ids n1, n1+1, ... in increasing v order.
        let mut next_id = n1 as u32;
        for v in 0..n2 as u32 {
            if inv[v as usize].is_none() {
                path.push(EditOp::InsertNode { label: g2.label(v) });
                keys.push(CanonicalOp::InsertNode(v));
                inv[v as usize] = Some(next_id);
                next_id += 1;
            }
        }
        // Edge deletions: G1 edges without a counterpart.
        for (u, up) in g1.edges() {
            if !g2.has_edge(self.image(u), self.image(up)) {
                path.push(EditOp::DeleteEdge { u, v: up });
                keys.push(CanonicalOp::DeleteEdge(u.min(up), u.max(up)));
            }
        }
        // Edge insertions: G2 edges without a counterpart, via the extended
        // inverse mapping.
        for (v, vp) in g2.edges() {
            let u = inv[v as usize].expect("extended inverse is total");
            let up = inv[vp as usize].expect("extended inverse is total");
            let already = (u as usize) < n1 && (up as usize) < n1 && g1.has_edge(u, up);
            if !already {
                path.push(EditOp::InsertEdge { u, v: up });
                keys.push(CanonicalOp::InsertEdge(v.min(vp), v.max(vp)));
            }
        }
        (path, keys)
    }

    /// Canonical operation multiset of this mapping's edit path, sorted.
    #[must_use]
    pub fn canonical_ops(&self, g1: &Graph, g2: &Graph) -> Vec<CanonicalOp> {
        let (_, mut keys) = self.edit_path_with_keys(g1, g2);
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Label;
    use crate::isomorphism::are_isomorphic;

    fn figure1() -> (Graph, Graph) {
        // G1: triangle with labels (1,1,2); G2: path-ish with labels (1,1,3,4).
        let g1 = Graph::from_edges(
            vec![Label(1), Label(1), Label(2)],
            &[(0, 1), (0, 2), (1, 2)],
        );
        let g2 = Graph::from_edges(
            vec![Label(1), Label(1), Label(3), Label(4)],
            &[(0, 1), (0, 2), (2, 3)],
        );
        (g1, g2)
    }

    #[test]
    fn induced_cost_matches_paper_example() {
        let (g1, g2) = figure1();
        // Identity-ish matching u1->v1, u2->v2, u3->v3: relabel u3 (+1),
        // insert v4 (+1), delete (u2,u3) (+1), insert (v3,v4) (+1) = 4.
        let m = NodeMapping::identity(3);
        assert_eq!(m.induced_cost(&g1, &g2), 4);
    }

    #[test]
    fn edit_path_realizes_cost_and_target() {
        let (g1, g2) = figure1();
        let m = NodeMapping::identity(3);
        let path = m.edit_path(&g1, &g2);
        assert_eq!(path.len(), m.induced_cost(&g1, &g2));
        let result = path.apply(&g1).unwrap();
        assert!(are_isomorphic(&result, &g2));
    }

    #[test]
    fn every_mapping_path_is_valid() {
        let (g1, g2) = figure1();
        // All injective maps from 3 nodes into 4.
        for a in 0..4u32 {
            for b in 0..4u32 {
                for c in 0..4u32 {
                    if a != b && b != c && a != c {
                        let m = NodeMapping::new(vec![a, b, c]);
                        let path = m.edit_path(&g1, &g2);
                        assert_eq!(path.len(), m.induced_cost(&g1, &g2));
                        let out = path.apply(&g1).unwrap();
                        assert!(are_isomorphic(&out, &g2), "mapping {m:?} broken");
                    }
                }
            }
        }
    }

    #[test]
    fn coupling_matrix_layout() {
        let m = NodeMapping::new(vec![2, 0]);
        let pi = m.coupling_matrix(3);
        assert_eq!(pi, vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "not injective")]
    fn rejects_non_injective() {
        let _ = NodeMapping::new(vec![1, 1]);
    }

    #[test]
    fn canonical_ops_are_mapping_invariant_for_equal_paths() {
        let (g1, g2) = figure1();
        let m = NodeMapping::identity(3);
        let ops = m.canonical_ops(&g1, &g2);
        assert_eq!(
            ops,
            vec![
                CanonicalOp::Relabel(2),
                CanonicalOp::InsertNode(3),
                CanonicalOp::DeleteEdge(1, 2),
                CanonicalOp::InsertEdge(2, 3),
            ]
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect::<Vec<_>>()
        );
    }
}
