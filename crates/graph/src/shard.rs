//! Partitioned graph storage: shard-level filtering one tier above the
//! per-graph filter–verify pipeline.
//!
//! A [`ShardedStore`] buckets graphs by node count (`bucket = n /
//! bucket_width`) into [`Shard`]s. Each shard is a full [`GraphStore`] of
//! its own — signature table, CSR arena, and optionally a
//! [`PivotIndex`] column block — plus *aggregate bounds* over its
//! members:
//!
//! * node-count range `[min_nodes, max_nodes]` and edge-count range
//!   `[min_edges, max_edges]`;
//! * the label-universe union (which label values occur anywhere in the
//!   shard);
//! * per pivot column, the range `[min lb, max ub]` of stored distances.
//!
//! From these, [`Shard::signature_lower_bound`] and
//! [`Shard::pivot_lower_bound`] derive a lower bound on the GED between a
//! query and *every* member of the shard, before any per-graph work:
//!
//! ```text
//! shard_lb = max(node_gap, missing_labels) + edge_gap
//! ```
//!
//! where `node_gap`/`edge_gap` are the distances from the query's counts
//! to the shard's ranges and `missing_labels` counts query labels (with
//! multiplicity) absent from the shard's label universe. Every term
//! under-approximates the corresponding term of the per-graph label-set
//! lower bound, so `shard_lb ≤ lb(query, g)` for every member `g` — a
//! search plan may discard the whole shard once `shard_lb` exceeds its
//! threshold without changing any answer. `ged-core` stacks this as a
//! fourth filter tier: shard → pivot → signature → verify.
//!
//! [`GraphId`]s remain stable and globally unique: an id → bucket
//! directory resolves handles across shards, so a `ShardedStore` is a
//! drop-in answer-compatible replacement for one flat store.
//!
//! Snapshots ([`ShardedStore::save`] / [`ShardedStore::load`]) persist
//! graphs, ids, revisions, and the pivot tables through the hand-rolled
//! [`crate::io`] grammar (see its module docs for the exact shape), so a
//! restarted process resumes incremental [`PivotIndex::sync`] instead of
//! rebuilding — syncing a just-loaded, unchanged store is an `O(1)`
//! no-op.
//!
//! ```
//! use ged_graph::{Graph, Label, ShardedStore};
//!
//! let mut store = ShardedStore::new(4);
//! let a = store.insert(Graph::from_edges(vec![Label(1), Label(2)], &[(0, 1)]));
//! let b = store.insert(Graph::unlabeled_from_edges(9, &[(0, 1), (1, 2)]));
//! assert_eq!(store.len(), 2);
//! assert_eq!(store.shard_count(), 2, "2 and 9 nodes land in different buckets");
//! store.remove(a);
//! assert!(store.get(a).is_none());
//! assert!(store.get(b).is_some());
//! ```

use crate::csr::CsrView;
use crate::graph::{Graph, Label};
use crate::io::{ParseError, ParseErrorKind, Parser};
use crate::pivot::{PivotDistance, PivotIndex};
use crate::store::{GraphId, GraphSignature, GraphStore};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// One partition of a [`ShardedStore`]: a full [`GraphStore`] plus the
/// aggregate bounds the shard planner tier prunes with. Shards are
/// created when their first graph arrives and dropped when their last
/// one leaves, so the aggregates always describe a nonempty member set.
#[derive(Clone, Debug)]
pub struct Shard {
    bucket: usize,
    store: GraphStore,
    pivots: Option<PivotIndex>,
    /// Per pivot column, `(min lb, max ub)` over all member rows.
    pivot_aggregates: Vec<(usize, usize)>,
    min_nodes: usize,
    max_nodes: usize,
    min_edges: usize,
    max_edges: usize,
    /// Label → number of occurrences across all members. The key set is
    /// the shard's label universe; counts make removal maintenance O(L).
    label_counts: BTreeMap<Label, usize>,
}

impl Shard {
    fn new(bucket: usize) -> Self {
        Shard {
            bucket,
            store: GraphStore::new(),
            pivots: None,
            pivot_aggregates: Vec::new(),
            min_nodes: usize::MAX,
            max_nodes: 0,
            min_edges: usize::MAX,
            max_edges: 0,
            label_counts: BTreeMap::new(),
        }
    }

    /// The bucket index this shard holds (`num_nodes / bucket_width`).
    #[must_use]
    pub fn bucket(&self) -> usize {
        self.bucket
    }

    /// The shard's member store (read access; mutate via the owning
    /// [`ShardedStore`] so directory and aggregates stay consistent).
    #[must_use]
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// Number of member graphs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the shard holds no graphs (never true for a shard reached
    /// through [`ShardedStore::shards`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Smallest member node count.
    #[must_use]
    pub fn min_nodes(&self) -> usize {
        self.min_nodes
    }

    /// Largest member node count.
    #[must_use]
    pub fn max_nodes(&self) -> usize {
        self.max_nodes
    }

    /// Smallest member edge count.
    #[must_use]
    pub fn min_edges(&self) -> usize {
        self.min_edges
    }

    /// Largest member edge count.
    #[must_use]
    pub fn max_edges(&self) -> usize {
        self.max_edges
    }

    /// The shard's pivot column block, if one has been built via
    /// [`ShardedStore::sync_pivots`].
    #[must_use]
    pub fn pivot_index(&self) -> Option<&PivotIndex> {
        self.pivots.as_ref()
    }

    /// Per pivot column, the `(min lb, max ub)` aggregate over all member
    /// rows — the inputs of [`Shard::pivot_lower_bound`].
    #[must_use]
    pub fn pivot_aggregates(&self) -> &[(usize, usize)] {
        &self.pivot_aggregates
    }

    /// The per-query arming cost of this shard's pivot tier, in
    /// query-to-pivot distance computations ([`PivotIndex::query_cost`];
    /// 0 when no pivot block is built) — the shard-level tier-cost hook
    /// query planners weigh the tier's observed yield against.
    #[must_use]
    pub fn pivot_query_cost(&self) -> usize {
        self.pivots.as_ref().map_or(0, PivotIndex::query_cost)
    }

    /// A lower bound on `GED(query, g)` valid for **every** member `g`,
    /// from the aggregate bounds alone.
    ///
    /// Admissibility: the label-set lower bound between two graphs is
    /// `max(only_q, only_g) + |e_q − e_g|`, where `only_q` counts query
    /// labels unmatched in `g`. For any member, `only_q` is at least the
    /// number of query labels absent from the entire shard, and also at
    /// least `n_q − max_nodes`; `only_g ≥ min_nodes − n_q`; and
    /// `|e_q − e_g|` is at least the gap from `e_q` to the shard's edge
    /// range. Hence the returned value never exceeds the per-graph
    /// label-set bound (itself a GED lower bound) of any member.
    #[must_use]
    pub fn signature_lower_bound(&self, query: &GraphSignature) -> usize {
        let node_gap = range_gap(query.num_nodes(), self.min_nodes, self.max_nodes);
        let edge_gap = range_gap(query.num_edges(), self.min_edges, self.max_edges);
        let missing = query
            .labels()
            .iter()
            .filter(|l| !self.label_counts.contains_key(l))
            .count();
        node_gap.max(missing) + edge_gap
    }

    /// A lower bound on `GED(query, g)` valid for every member `g`, from
    /// the pivot column aggregates: per pivot `i`, every member's
    /// triangle bound `max(q_i.lb − g_i.ub, g_i.lb − q_i.ub)` is at least
    /// `max(q_i.lb − max_ub_i, min_lb_i − q_i.ub)`. Vacuously 0 when no
    /// pivot block is built. Call only with query distances computed
    /// against this shard's own [`Shard::pivot_index`].
    #[must_use]
    pub fn pivot_lower_bound(&self, query_dists: &[PivotDistance]) -> usize {
        debug_assert_eq!(query_dists.len(), self.pivot_aggregates.len());
        query_dists
            .iter()
            .zip(&self.pivot_aggregates)
            .map(|(q, &(min_lb, max_ub))| {
                q.lb()
                    .saturating_sub(max_ub)
                    .max(min_lb.saturating_sub(q.ub()))
            })
            .max()
            .unwrap_or(0)
    }

    /// A lower bound on `GED(a, b)` valid for **every** pair with `a`
    /// a member of `self` and `b` a member of `other`, from the two
    /// shards' size aggregates alone — the block bound a join plan uses
    /// to discard an entire shard×shard block before any per-graph
    /// work.
    ///
    /// Admissibility: the label-set lower bound between two graphs is
    /// `max(only_a, only_b) + |e_a − e_b|`, which is at least
    /// `|n_a − n_b| + |e_a − e_b|`; over all member pairs, `|n_a − n_b|`
    /// is at least the gap between the two shards' node-count ranges
    /// and `|e_a − e_b|` at least the gap between their edge-count
    /// ranges, so the returned value never exceeds any member pair's
    /// per-graph signature bound.
    #[must_use]
    pub fn block_lower_bound(&self, other: &Shard) -> usize {
        let node_gap = range_distance(
            (self.min_nodes, self.max_nodes),
            (other.min_nodes, other.max_nodes),
        );
        let edge_gap = range_distance(
            (self.min_edges, self.max_edges),
            (other.min_edges, other.max_edges),
        );
        node_gap + edge_gap
    }

    fn insert(&mut self, graph: Graph) -> GraphId {
        let id = self.store.insert(graph);
        let sig = self.store.signature(id).expect("just inserted");
        self.min_nodes = self.min_nodes.min(sig.num_nodes());
        self.max_nodes = self.max_nodes.max(sig.num_nodes());
        self.min_edges = self.min_edges.min(sig.num_edges());
        self.max_edges = self.max_edges.max(sig.num_edges());
        for &label in sig.labels() {
            *self.label_counts.entry(label).or_insert(0) += 1;
        }
        id
    }

    fn remove(&mut self, id: GraphId) -> Option<Graph> {
        let removed = self.store.remove(id)?;
        for label in removed.label_multiset() {
            match self.label_counts.get_mut(&label) {
                Some(1) => {
                    self.label_counts.remove(&label);
                }
                Some(count) => *count -= 1,
                None => debug_assert!(false, "label counts out of sync"),
            }
        }
        // Count ranges can only shrink from one side per removal, but a
        // full rescan keeps them tight and is O(shard), matching the
        // store's own O(shard) removal splice.
        self.min_nodes = usize::MAX;
        self.max_nodes = 0;
        self.min_edges = usize::MAX;
        self.max_edges = 0;
        for (_, _, sig) in self.store.entries() {
            self.min_nodes = self.min_nodes.min(sig.num_nodes());
            self.max_nodes = self.max_nodes.max(sig.num_nodes());
            self.min_edges = self.min_edges.min(sig.num_edges());
            self.max_edges = self.max_edges.max(sig.num_edges());
        }
        Some(removed)
    }

    fn sync_pivots<F>(&mut self, target: usize, oracle: &mut F)
    where
        F: FnMut(&Graph, &Graph) -> PivotDistance,
    {
        if target == 0 {
            self.pivots = None;
            self.pivot_aggregates.clear();
            return;
        }
        match &mut self.pivots {
            Some(index) if index.target() == target => index.sync(&self.store, oracle),
            slot => *slot = Some(PivotIndex::build(&self.store, target, oracle)),
        }
        self.recompute_pivot_aggregates();
    }

    fn recompute_pivot_aggregates(&mut self) {
        self.pivot_aggregates.clear();
        let Some(index) = &self.pivots else {
            return;
        };
        self.pivot_aggregates
            .resize(index.pivot_count(), (usize::MAX, 0));
        for id in self.store.ids() {
            let row = index.distances(id).expect("index is synced");
            for (agg, d) in self.pivot_aggregates.iter_mut().zip(row) {
                agg.0 = agg.0.min(d.lb());
                agg.1 = agg.1.max(d.ub());
            }
        }
    }

    /// Rebuilds every aggregate from the member signatures (snapshot
    /// load, where members arrive pre-assembled rather than one by one).
    fn recompute_aggregates(&mut self) {
        self.min_nodes = usize::MAX;
        self.max_nodes = 0;
        self.min_edges = usize::MAX;
        self.max_edges = 0;
        self.label_counts.clear();
        for (_, _, sig) in self.store.entries() {
            self.min_nodes = self.min_nodes.min(sig.num_nodes());
            self.max_nodes = self.max_nodes.max(sig.num_nodes());
            self.min_edges = self.min_edges.min(sig.num_edges());
            self.max_edges = self.max_edges.max(sig.num_edges());
            for &label in sig.labels() {
                *self.label_counts.entry(label).or_insert(0) += 1;
            }
        }
        self.recompute_pivot_aggregates();
    }
}

/// Distance from `x` to the closed range `[lo, hi]` (0 when inside).
fn range_gap(x: usize, lo: usize, hi: usize) -> usize {
    if x < lo {
        lo - x
    } else {
        x.saturating_sub(hi)
    }
}

/// Distance between two closed ranges `[a.0, a.1]` and `[b.0, b.1]`
/// (0 when they overlap): the smallest `|x − y|` over `x ∈ a, y ∈ b`.
/// The aggregate primitive behind [`Shard::block_lower_bound`], public
/// so join plans can apply the same bound to non-sharded (flat) unit
/// aggregates.
#[must_use]
pub fn range_distance(a: (usize, usize), b: (usize, usize)) -> usize {
    b.0.saturating_sub(a.1).max(a.0.saturating_sub(b.1))
}

/// A graph store partitioned into size-bucketed [`Shard`]s. See the
/// [module docs](self) for the design; the flat-store API surface
/// ([`ShardedStore::insert`] / [`ShardedStore::remove`] / lookups /
/// id-ordered iteration) carries over unchanged, and ids stay globally
/// unique and stable.
#[derive(Clone, Debug)]
pub struct ShardedStore {
    bucket_width: usize,
    shards: BTreeMap<usize, Shard>,
    /// id → bucket, for O(log n) cross-shard handle resolution. Also the
    /// source of globally id-ordered iteration.
    directory: BTreeMap<GraphId, usize>,
    revision: u64,
}

impl ShardedStore {
    /// Creates an empty store whose shards each hold graphs of
    /// `bucket_width` consecutive node counts (`bucket = n /
    /// bucket_width`). Width 1 gives one shard per node count;
    /// `usize::MAX` collapses everything into a single shard (the flat
    /// layout, useful as a baseline).
    ///
    /// # Panics
    /// Panics if `bucket_width` is 0.
    #[must_use]
    pub fn new(bucket_width: usize) -> Self {
        assert!(bucket_width != 0, "ShardedStore: bucket width must be ≥ 1");
        ShardedStore {
            bucket_width,
            shards: BTreeMap::new(),
            directory: BTreeMap::new(),
            revision: 0,
        }
    }

    /// Builds a store by inserting every graph of `graphs` in order.
    #[must_use]
    pub fn from_graphs<I: IntoIterator<Item = Graph>>(bucket_width: usize, graphs: I) -> Self {
        let mut store = Self::new(bucket_width);
        for g in graphs {
            store.insert(g);
        }
        store
    }

    /// The configured bucket width.
    #[must_use]
    pub fn bucket_width(&self) -> usize {
        self.bucket_width
    }

    /// The bucket a graph with `num_nodes` nodes belongs to.
    #[must_use]
    pub fn bucket_of(&self, num_nodes: usize) -> usize {
        num_nodes / self.bucket_width
    }

    /// Inserts `graph` into its size bucket and returns the freshly
    /// minted, globally unique [`GraphId`].
    pub fn insert(&mut self, graph: Graph) -> GraphId {
        let bucket = self.bucket_of(graph.num_nodes());
        let shard = self
            .shards
            .entry(bucket)
            .or_insert_with(|| Shard::new(bucket));
        let id = shard.insert(graph);
        self.directory.insert(id, bucket);
        // Shard store revisions are minted from the global allocator, so
        // adopting one keeps "same revision ⇒ same content" across
        // sharded and flat stores alike.
        self.revision = shard.store.revision();
        id
    }

    /// Removes the graph behind `id`, returning it, or `None` for a
    /// foreign or removed id. A shard losing its last graph is dropped.
    pub fn remove(&mut self, id: GraphId) -> Option<Graph> {
        let bucket = *self.directory.get(&id)?;
        let shard = self.shards.get_mut(&bucket).expect("directory in sync");
        let removed = shard.remove(id)?;
        self.revision = shard.store.revision();
        if shard.is_empty() {
            self.shards.remove(&bucket);
        }
        self.directory.remove(&id);
        Some(removed)
    }

    /// A change-detection fingerprint with the same contract as
    /// [`GraphStore::revision`]: bumped to a globally unique value by
    /// every successful mutation, equal only for identical contents.
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The graph behind `id`, or `None` for a foreign or removed id.
    #[must_use]
    pub fn get(&self, id: GraphId) -> Option<&Graph> {
        self.shard_of(id)?.store.get(id)
    }

    /// The precomputed signature behind `id`, or `None`.
    #[must_use]
    pub fn signature(&self, id: GraphId) -> Option<&GraphSignature> {
        self.shard_of(id)?.store.signature(id)
    }

    /// The precomputed CSR view behind `id`, or `None`.
    #[must_use]
    pub fn csr(&self, id: GraphId) -> Option<&CsrView> {
        self.shard_of(id)?.store.csr(id)
    }

    /// Whether `id` currently resolves in this store.
    #[must_use]
    pub fn contains(&self, id: GraphId) -> bool {
        self.directory.contains_key(&id)
    }

    /// The shard holding `id`, or `None` for a foreign or removed id.
    #[must_use]
    pub fn shard_of(&self, id: GraphId) -> Option<&Shard> {
        self.shards.get(self.directory.get(&id)?)
    }

    /// Number of stored graphs across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// Whether the store holds no graphs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Number of (nonempty) shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Iterates the shards in ascending bucket order.
    pub fn shards(&self) -> impl Iterator<Item = &Shard> {
        self.shards.values()
    }

    /// Every live id, ascending across all shards (= insertion order).
    #[must_use]
    pub fn ids(&self) -> Vec<GraphId> {
        self.directory.keys().copied().collect()
    }

    /// Iterates `(id, graph)` in globally ascending id order — the same
    /// deterministic traversal a flat [`GraphStore`] provides.
    pub fn iter(&self) -> impl Iterator<Item = (GraphId, &Graph)> {
        self.directory.iter().map(|(&id, &bucket)| {
            let graph = self.shards[&bucket]
                .store
                .get(id)
                .expect("directory in sync");
            (id, graph)
        })
    }

    /// Iterates `(id, graph, signature)` in globally ascending id order.
    pub fn entries(&self) -> impl Iterator<Item = (GraphId, &Graph, &GraphSignature)> {
        self.directory.iter().map(|(&id, &bucket)| {
            let store = &self.shards[&bucket].store;
            let graph = store.get(id).expect("directory in sync");
            let sig = store.signature(id).expect("directory in sync");
            (id, graph, sig)
        })
    }

    /// Iterates the stored graphs in globally ascending id order.
    pub fn graphs(&self) -> impl Iterator<Item = &Graph> {
        self.iter().map(|(_, g)| g)
    }

    /// Builds or incrementally syncs every shard's pivot block to
    /// `target` pivots per shard (0 clears them), then refreshes the
    /// pivot aggregates. Costs oracle calls only for shards whose store
    /// actually changed (or whose target changed) — a clean store syncs
    /// in `O(shards)`.
    pub fn sync_pivots<F>(&mut self, target: usize, oracle: &mut F)
    where
        F: FnMut(&Graph, &Graph) -> PivotDistance,
    {
        for shard in self.shards.values_mut() {
            shard.sync_pivots(target, oracle);
        }
    }

    /// Whether **every** shard's pivot block is built for `target` pivots
    /// and in sync with its member store. Search plans use the pivot tier
    /// all-or-nothing: mixing synced and stale shards would make answers
    /// depend on mutation history.
    #[must_use]
    pub fn pivots_ready(&self, target: usize) -> bool {
        target > 0
            && self.shards.values().all(|s| {
                s.pivots.as_ref().is_some_and(|idx| {
                    idx.target() == target && idx.revision() == s.store.revision()
                })
            })
    }

    /// Serializes the store (graphs, ids, revisions, pivot tables) to the
    /// snapshot grammar documented in [`crate::io`].
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"schema\":1,\"bucket_width\":{},\"revision\":{},\"shards\":[",
            self.bucket_width, self.revision
        );
        for (i, shard) in self.shards.values().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"bucket\":{},\"revision\":{},\"entries\":[",
                shard.bucket,
                shard.store.revision()
            ));
            for (j, (id, graph)) in shard.store.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{{\"seq\":{},\"graph\":", id.seq()));
                s.push_str(&crate::io::graph_to_json(graph));
                s.push('}');
            }
            s.push_str("],\"pivots\":");
            match &shard.pivots {
                None => s.push_str("null"),
                Some(index) => {
                    s.push_str(&format!(
                        "{{\"target\":{},\"revision\":{},\"ids\":[",
                        index.target(),
                        index.revision()
                    ));
                    for (j, p) in index.pivots().iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&p.seq().to_string());
                    }
                    s.push_str("],\"rows\":[");
                    for (j, id) in shard.store.ids().into_iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&format!("{{\"seq\":{},\"dists\":[", id.seq()));
                        let row = index.distances(id).expect("index covers the store");
                        for (c, d) in row.iter().enumerate() {
                            if c > 0 {
                                s.push(',');
                            }
                            s.push_str(&format!("[{},{}]", d.lb(), d.ub()));
                        }
                        s.push_str("]}");
                    }
                    s.push_str("]}");
                }
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Parses a snapshot from a JSON string.
    ///
    /// # Errors
    /// Returns a [`ParseError`] if the JSON is malformed or internally
    /// inconsistent (duplicate ids, graphs in the wrong bucket, pivot
    /// tables not matching the member set).
    pub fn from_json(s: &str) -> Result<Self, ParseError> {
        let mut p = Parser::new(s);
        let store = Self::parse(&mut p)?;
        p.end()?;
        Ok(store)
    }

    /// Parses a snapshot from the *front* of `s`, returning the store and
    /// the number of bytes consumed — the hook outer grammars (the
    /// `ged-server` daemon snapshot) use to embed store snapshots.
    ///
    /// # Errors
    /// Returns a [`ParseError`] (positions relative to `s`) if the prefix
    /// is not a valid snapshot.
    pub fn from_json_prefix(s: &str) -> Result<(Self, usize), ParseError> {
        let mut p = Parser::new(s);
        let store = Self::parse(&mut p)?;
        Ok((store, p.pos))
    }

    fn parse(p: &mut Parser<'_>) -> Result<Self, ParseError> {
        p.expect("{")?;
        p.expect("\"schema\"")?;
        p.expect(":")?;
        let at = p.pos;
        if p.u64()? != 1 {
            return Err(p.err(at, ParseErrorKind::Invalid("snapshot schema")));
        }
        p.expect(",")?;
        p.expect("\"bucket_width\"")?;
        p.expect(":")?;
        let at = p.pos;
        let bucket_width = usize::try_from(p.u64()?)
            .ok()
            .filter(|&w| w >= 1)
            .ok_or_else(|| p.err(at, ParseErrorKind::Invalid("bucket width")))?;
        p.expect(",")?;
        p.expect("\"revision\"")?;
        p.expect(":")?;
        let revision = p.u64()?;
        p.expect(",")?;
        p.expect("\"shards\"")?;
        p.expect(":")?;
        let mut out = ShardedStore::new(bucket_width);
        out.revision = revision;
        p.list(|p| Self::parse_shard(p, &mut out))?;
        p.expect("}")?;
        Ok(out)
    }

    fn parse_shard(p: &mut Parser<'_>, out: &mut ShardedStore) -> Result<(), ParseError> {
        let shard_at = {
            p.skip_ws();
            p.pos
        };
        p.expect("{")?;
        p.expect("\"bucket\"")?;
        p.expect(":")?;
        let at = p.pos;
        let bucket = usize::try_from(p.u64()?)
            .map_err(|_| p.err(at, ParseErrorKind::Invalid("bucket index")))?;
        if out.shards.contains_key(&bucket) {
            return Err(p.err(shard_at, ParseErrorKind::Invalid("duplicate bucket")));
        }
        p.expect(",")?;
        p.expect("\"revision\"")?;
        p.expect(":")?;
        let revision = p.u64()?;
        p.expect(",")?;
        p.expect("\"entries\"")?;
        p.expect(":")?;
        let mut shard = Shard::new(bucket);
        p.list(|p| {
            let at = {
                p.skip_ws();
                p.pos
            };
            p.expect("{")?;
            p.expect("\"seq\"")?;
            p.expect(":")?;
            let seq = p.u64()?;
            p.expect(",")?;
            p.expect("\"graph\"")?;
            p.expect(":")?;
            let graph = p.graph()?;
            p.expect("}")?;
            if out.bucket_of(graph.num_nodes()) != bucket {
                return Err(p.err(at, ParseErrorKind::Invalid("graph outside its bucket")));
            }
            let id = shard
                .store
                .insert_with_seq(seq, graph)
                .ok_or_else(|| p.err(at, ParseErrorKind::Invalid("duplicate sequence number")))?;
            if out.directory.insert(id, bucket).is_some() {
                return Err(p.err(at, ParseErrorKind::Invalid("duplicate sequence number")));
            }
            Ok(())
        })?;
        shard.store.set_revision(revision);
        p.expect(",")?;
        p.expect("\"pivots\"")?;
        p.expect(":")?;
        if p.peek_is(b'n') {
            p.expect("null")?;
        } else {
            let at = {
                p.skip_ws();
                p.pos
            };
            p.expect("{")?;
            p.expect("\"target\"")?;
            p.expect(":")?;
            let target_at = p.pos;
            let target = usize::try_from(p.u64()?)
                .map_err(|_| p.err(target_at, ParseErrorKind::Invalid("pivot target")))?;
            p.expect(",")?;
            p.expect("\"revision\"")?;
            p.expect(":")?;
            let pivot_revision = p.u64()?;
            p.expect(",")?;
            p.expect("\"ids\"")?;
            p.expect(":")?;
            let pivot_ids: Vec<GraphId> = p.list(|p| p.u64().map(GraphId::from_seq))?;
            p.expect(",")?;
            p.expect("\"rows\"")?;
            p.expect(":")?;
            let mut rows: BTreeMap<GraphId, Vec<PivotDistance>> = BTreeMap::new();
            p.list(|p| {
                let row_at = {
                    p.skip_ws();
                    p.pos
                };
                p.expect("{")?;
                p.expect("\"seq\"")?;
                p.expect(":")?;
                let id = GraphId::from_seq(p.u64()?);
                p.expect(",")?;
                p.expect("\"dists\"")?;
                p.expect(":")?;
                let dists = p.list(|p| {
                    let d_at = {
                        p.skip_ws();
                        p.pos
                    };
                    p.expect("[")?;
                    let lb = usize::try_from(p.u64()?)
                        .map_err(|_| p.err(d_at, ParseErrorKind::Invalid("pivot distance")))?;
                    p.expect(",")?;
                    let ub = usize::try_from(p.u64()?)
                        .map_err(|_| p.err(d_at, ParseErrorKind::Invalid("pivot distance")))?;
                    p.expect("]")?;
                    if lb > ub {
                        return Err(p.err(d_at, ParseErrorKind::Invalid("pivot interval")));
                    }
                    Ok(PivotDistance::interval(lb, ub))
                })?;
                p.expect("}")?;
                if dists.len() != pivot_ids.len() {
                    return Err(p.err(row_at, ParseErrorKind::Invalid("pivot row width")));
                }
                if !shard.store.contains(id) || rows.insert(id, dists).is_some() {
                    return Err(p.err(row_at, ParseErrorKind::Invalid("pivot row id")));
                }
                Ok(())
            })?;
            p.expect("}")?;
            if rows.len() != shard.store.len() || pivot_ids.iter().any(|p| !rows.contains_key(p)) {
                return Err(p.err(at, ParseErrorKind::Invalid("pivot table")));
            }
            shard.pivots = Some(PivotIndex::from_parts(
                target,
                pivot_revision,
                pivot_ids,
                rows,
            ));
        }
        p.expect("}")?;
        shard.recompute_aggregates();
        out.shards.insert(bucket, shard);
        Ok(())
    }

    /// Writes the snapshot to `path`.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        fs::write(path, self.to_json())
    }

    /// Reads a snapshot from `path`. The restored store resolves exactly
    /// the ids the saved one did, carries its revisions (so
    /// [`PivotIndex::sync`] against the unchanged store is an `O(1)`
    /// no-op), and advances the global id allocator past every restored
    /// id.
    ///
    /// # Errors
    /// Propagates I/O errors and reports malformed or inconsistent
    /// snapshots as [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let s = fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn g(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        Graph::from_edges(labels.iter().map(|&l| Label(l)).collect(), edges)
    }

    /// The per-graph label-set lower bound the shard aggregate bound
    /// must under-approximate: `max(only_q, only_g) + |e_q − e_g|`.
    fn label_lb(q: &GraphSignature, g: &GraphSignature) -> usize {
        let (mut i, mut j, mut common) = (0, 0, 0usize);
        let (ql, gl) = (q.labels(), g.labels());
        while i < ql.len() && j < gl.len() {
            match ql[i].cmp(&gl[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    common += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let only_q = ql.len() - common;
        let only_g = gl.len() - common;
        only_q.max(only_g) + q.num_edges().abs_diff(g.num_edges())
    }

    fn random_store(width: usize, count: usize, seed: u64) -> ShardedStore {
        let mut rng = SmallRng::seed_from_u64(seed);
        let weights = [1.0; 5];
        ShardedStore::from_graphs(
            width,
            (0..count)
                .map(|i| generate::random_connected(3 + i % 9, 2, &weights, &mut rng))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn graphs_land_in_their_buckets_and_ids_stay_global() {
        let mut store = ShardedStore::new(4);
        let small = store.insert(g(&[1, 2], &[(0, 1)]));
        let large = store.insert(g(&[1; 9], &[(0, 1), (1, 2)]));
        assert_eq!(store.shard_count(), 2);
        assert_eq!(store.shard_of(small).unwrap().bucket(), 0);
        assert_eq!(store.shard_of(large).unwrap().bucket(), 2);
        assert_eq!(store.ids(), vec![small, large]);
        assert_eq!(store.get(small).unwrap().num_nodes(), 2);
        assert!(small < large, "insertion order is global id order");

        store.remove(large);
        assert_eq!(store.shard_count(), 1, "empty shards are dropped");
        assert!(!store.contains(large));
        assert!(store.contains(small));
    }

    #[test]
    fn zero_width_is_rejected() {
        let res = std::panic::catch_unwind(|| ShardedStore::new(0));
        assert!(res.is_err());
    }

    #[test]
    fn max_width_collapses_to_one_shard() {
        let store = random_store(usize::MAX, 20, 7);
        assert_eq!(store.shard_count(), 1);
        assert_eq!(store.len(), 20);
    }

    #[test]
    fn aggregates_track_inserts_and_removals() {
        let mut store = ShardedStore::new(usize::MAX);
        let a = store.insert(g(&[1, 2], &[(0, 1)]));
        let _b = store.insert(g(&[3, 3, 3], &[(0, 1), (1, 2), (0, 2)]));
        {
            let shard = store.shards().next().unwrap();
            assert_eq!((shard.min_nodes(), shard.max_nodes()), (2, 3));
            assert_eq!((shard.min_edges(), shard.max_edges()), (1, 3));
        }
        store.remove(a);
        let shard = store.shards().next().unwrap();
        assert_eq!((shard.min_nodes(), shard.max_nodes()), (3, 3));
        assert_eq!((shard.min_edges(), shard.max_edges()), (3, 3));
        // Label 1 and 2 left with graph `a`: a query made of them now
        // pays the missing-label term.
        let q = GraphSignature::of(&g(&[1, 2], &[]));
        assert!(shard.signature_lower_bound(&q) >= 2);
    }

    #[test]
    fn signature_lower_bound_never_exceeds_any_member_bound() {
        let store = random_store(4, 40, 11);
        let mut rng = SmallRng::seed_from_u64(99);
        let weights = [1.0; 5];
        for i in 0..10 {
            let query = generate::random_connected(2 + i, 1, &weights, &mut rng);
            let qsig = GraphSignature::of(&query);
            for shard in store.shards() {
                let shard_lb = shard.signature_lower_bound(&qsig);
                for (_, _, sig) in shard.store().entries() {
                    assert!(
                        shard_lb <= label_lb(&qsig, sig),
                        "aggregate bound {shard_lb} exceeds member bound"
                    );
                }
            }
        }
    }

    #[test]
    fn range_distance_is_the_min_pointwise_gap() {
        assert_eq!(range_distance((1, 3), (2, 5)), 0, "overlap");
        assert_eq!(range_distance((1, 3), (3, 5)), 0, "touching");
        assert_eq!(range_distance((1, 3), (7, 9)), 4);
        assert_eq!(range_distance((7, 9), (1, 3)), 4, "symmetric");
        assert_eq!(range_distance((5, 5), (5, 5)), 0);
    }

    #[test]
    fn block_lower_bound_never_exceeds_any_member_pair_bound() {
        let store = random_store(2, 40, 21);
        for a in store.shards() {
            for b in store.shards() {
                let block_lb = a.block_lower_bound(b);
                assert_eq!(block_lb, b.block_lower_bound(a), "symmetric");
                for (_, _, sa) in a.store().entries() {
                    for (_, _, sb) in b.store().entries() {
                        assert!(
                            block_lb <= label_lb(sa, sb),
                            "block bound {block_lb} exceeds member pair bound"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pivot_lower_bound_never_exceeds_any_member_bound() {
        // Cheap true metric: node-count difference.
        let mut oracle =
            |a: &Graph, b: &Graph| PivotDistance::exact(a.num_nodes().abs_diff(b.num_nodes()));
        let mut store = random_store(4, 30, 13);
        store.sync_pivots(2, &mut oracle);
        assert!(store.pivots_ready(2));
        let query = g(&[1; 20], &[]);
        for shard in store.shards() {
            let index = shard.pivot_index().unwrap();
            let qd = index.query_distances(shard.store(), &query, &mut oracle);
            let shard_lb = shard.pivot_lower_bound(&qd);
            for id in shard.store().ids() {
                let (lb, _) = index.bounds(&qd, id).unwrap();
                assert!(shard_lb <= lb, "aggregate pivot bound exceeds member lb");
            }
        }
    }

    #[test]
    fn pivots_ready_demands_every_shard_in_sync() {
        let mut oracle =
            |a: &Graph, b: &Graph| PivotDistance::exact(a.num_nodes().abs_diff(b.num_nodes()));
        let mut store = random_store(4, 20, 17);
        assert!(!store.pivots_ready(2), "nothing built yet");
        store.sync_pivots(2, &mut oracle);
        assert!(store.pivots_ready(2));
        assert!(!store.pivots_ready(3), "different target");
        assert!(!store.pivots_ready(0), "0 pivots is the disabled tier");
        store.insert(g(&[1, 2, 3], &[(0, 1)]));
        assert!(!store.pivots_ready(2), "mutation staled one shard");
        store.sync_pivots(2, &mut oracle);
        assert!(store.pivots_ready(2));
    }

    #[test]
    fn snapshot_roundtrips_bit_for_bit() {
        let mut oracle =
            |a: &Graph, b: &Graph| PivotDistance::exact(a.num_nodes().abs_diff(b.num_nodes()));
        let mut store = random_store(4, 25, 23);
        store.remove(store.ids()[3]);
        store.sync_pivots(2, &mut oracle);

        let json = store.to_json();
        let loaded = ShardedStore::from_json(&json).unwrap();
        assert_eq!(loaded.bucket_width(), store.bucket_width());
        assert_eq!(loaded.revision(), store.revision());
        assert_eq!(loaded.ids(), store.ids());
        assert_eq!(loaded.shard_count(), store.shard_count());
        for (a, b) in loaded.iter().zip(store.iter()) {
            assert_eq!(a, b);
        }
        for (sa, sb) in loaded.shards().zip(store.shards()) {
            assert_eq!(sa.store().revision(), sb.store().revision());
            assert_eq!(
                (
                    sa.min_nodes(),
                    sa.max_nodes(),
                    sa.min_edges(),
                    sa.max_edges()
                ),
                (
                    sb.min_nodes(),
                    sb.max_nodes(),
                    sb.min_edges(),
                    sb.max_edges()
                )
            );
            assert_eq!(sa.pivot_aggregates(), sb.pivot_aggregates());
            let (ia, ib) = (sa.pivot_index().unwrap(), sb.pivot_index().unwrap());
            assert_eq!(ia.pivots(), ib.pivots());
            assert_eq!(ia.revision(), ib.revision());
            assert_eq!(ia.target(), ib.target());
            for id in sa.store().ids() {
                assert_eq!(ia.distances(id), ib.distances(id));
            }
        }
        // The loaded store serializes to the identical bytes.
        assert_eq!(loaded.to_json(), json);
        // Syncing the loaded store costs zero oracle calls.
        let calls = std::cell::Cell::new(0usize);
        let mut counting = |a: &Graph, b: &Graph| {
            calls.set(calls.get() + 1);
            PivotDistance::exact(a.num_nodes().abs_diff(b.num_nodes()))
        };
        let mut loaded = loaded;
        loaded.sync_pivots(2, &mut counting);
        assert_eq!(calls.get(), 0, "revision carried through the snapshot");
        // And fresh inserts never alias restored ids.
        let fresh = loaded.insert(g(&[9], &[]));
        assert!(!store.contains(fresh));
    }

    #[test]
    fn snapshot_rejects_inconsistencies() {
        let kind = |s: &str| ShardedStore::from_json(s).unwrap_err().kind;
        assert_eq!(
            kind("{\"schema\":2,\"bucket_width\":4,\"revision\":0,\"shards\":[]}"),
            ParseErrorKind::Invalid("snapshot schema")
        );
        assert_eq!(
            kind("{\"schema\":1,\"bucket_width\":0,\"revision\":0,\"shards\":[]}"),
            ParseErrorKind::Invalid("bucket width")
        );
        // A 9-node graph in bucket 0 of a width-4 store.
        let wrong_bucket = "{\"schema\":1,\"bucket_width\":4,\"revision\":1,\"shards\":[\
            {\"bucket\":0,\"revision\":1,\"entries\":[\
            {\"seq\":0,\"graph\":{\"labels\":[0,0,0,0,0,0,0,0,0],\"edges\":[]}}\
            ],\"pivots\":null}]}";
        assert_eq!(
            kind(wrong_bucket),
            ParseErrorKind::Invalid("graph outside its bucket")
        );
        // A pivot table missing a member row.
        let short_table = "{\"schema\":1,\"bucket_width\":4,\"revision\":1,\"shards\":[\
            {\"bucket\":0,\"revision\":1,\"entries\":[\
            {\"seq\":0,\"graph\":{\"labels\":[0],\"edges\":[]}},\
            {\"seq\":1,\"graph\":{\"labels\":[1],\"edges\":[]}}\
            ],\"pivots\":{\"target\":1,\"revision\":1,\"ids\":[0],\"rows\":[\
            {\"seq\":0,\"dists\":[[0,0]]}\
            ]}}]}";
        assert_eq!(kind(short_table), ParseErrorKind::Invalid("pivot table"));
        // An empty pivot interval.
        let bad_interval = "{\"schema\":1,\"bucket_width\":4,\"revision\":1,\"shards\":[\
            {\"bucket\":0,\"revision\":1,\"entries\":[\
            {\"seq\":0,\"graph\":{\"labels\":[0],\"edges\":[]}}\
            ],\"pivots\":{\"target\":1,\"revision\":1,\"ids\":[0],\"rows\":[\
            {\"seq\":0,\"dists\":[[3,1]]}\
            ]}}]}";
        assert_eq!(
            kind(bad_interval),
            ParseErrorKind::Invalid("pivot interval")
        );
    }

    #[test]
    fn save_load_file_roundtrip() {
        let store = random_store(1, 12, 29);
        let dir = std::env::temp_dir().join("ot_ged_shard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        store.save(&path).unwrap();
        let loaded = ShardedStore::load(&path).unwrap();
        assert_eq!(loaded.ids(), store.ids());
        assert!(loaded.iter().eq(store.iter()));
        std::fs::remove_file(&path).ok();
    }
}
