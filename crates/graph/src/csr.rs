//! Flat CSR (compressed sparse row) view of a [`Graph`].
//!
//! [`Graph`] keeps a `Vec<Vec<u32>>` adjacency, which is convenient for
//! edits but scatters the hot read loops (successor expansion, lower
//! bounds, cost matrices) across one heap allocation per node. A
//! [`CsrView`] packs the same data into three flat arenas — offsets,
//! neighbors, labels — built once per graph and cached per store entry,
//! so per-pair readers touch two contiguous slices instead of `n`
//! pointer-chased lists.
//!
//! The view is a *snapshot*: it does not track later mutations of the
//! source graph. [`crate::GraphStore`] rebuilds it on insert, which is
//! the only mutation point for stored graphs.

use crate::graph::{Graph, Label};

/// A flat, read-only adjacency view: `neighbors(u)` is the slice
/// `neighbors[offsets[u]..offsets[u + 1]]`, sorted ascending.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CsrView {
    /// `n + 1` prefix offsets into `neighbors` (empty graph: `[0]`).
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists, length `2m`.
    neighbors: Vec<u32>,
    /// Node labels, indexed by node id.
    labels: Vec<Label>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl CsrView {
    /// Builds the flat view of `g`.
    #[must_use]
    pub fn of(g: &Graph) -> Self {
        let mut view = CsrView::default();
        view.rebuild_from(g);
        view
    }

    /// Rebuilds this view from `g`, reusing the existing buffers.
    pub fn rebuild_from(&mut self, g: &Graph) {
        let n = g.num_nodes();
        self.offsets.clear();
        self.neighbors.clear();
        self.labels.clear();
        self.offsets.reserve(n + 1);
        self.neighbors.reserve(2 * g.num_edges());
        self.offsets.push(0);
        for u in 0..n as u32 {
            self.neighbors.extend_from_slice(g.neighbors(u));
            self.offsets.push(self.neighbors.len() as u32);
        }
        self.labels.extend_from_slice(g.labels());
        self.num_edges = g.num_edges();
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of (undirected) edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The label of node `u`.
    #[must_use]
    pub fn label(&self, u: u32) -> Label {
        self.labels[u as usize]
    }

    /// All node labels, indexed by node id.
    #[must_use]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The sorted neighbor list of node `u`.
    #[must_use]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// The degree of node `u`.
    #[must_use]
    pub fn degree(&self, u: u32) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Returns `true` if the undirected edge `(u, v)` is present.
    #[must_use]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        (u as usize) < self.num_nodes() && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over edges as `(u, v)` pairs with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_nodes() as u32).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(
            vec![Label(3), Label(1), Label(1), Label(7)],
            &[(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)],
        )
    }

    #[test]
    fn matches_graph_accessors() {
        let g = sample();
        let v = CsrView::of(&g);
        assert_eq!(v.num_nodes(), g.num_nodes());
        assert_eq!(v.num_edges(), g.num_edges());
        assert_eq!(v.labels(), g.labels());
        for u in 0..g.num_nodes() as u32 {
            assert_eq!(v.neighbors(u), g.neighbors(u));
            assert_eq!(v.degree(u), g.degree(u));
            assert_eq!(v.label(u), g.label(u));
            for w in 0..=g.num_nodes() as u32 {
                assert_eq!(v.has_edge(u, w), g.has_edge(u, w));
            }
        }
        assert_eq!(v.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn empty_graph() {
        let v = CsrView::of(&Graph::new());
        assert_eq!(v.num_nodes(), 0);
        assert_eq!(v.num_edges(), 0);
        assert_eq!(v.edges().count(), 0);
    }

    #[test]
    fn rebuild_reuses_buffers() {
        let mut v = CsrView::of(&sample());
        let small = Graph::from_edges(vec![Label(0), Label(2)], &[(0, 1)]);
        v.rebuild_from(&small);
        assert_eq!(v, CsrView::of(&small));
        assert_eq!(v.neighbors(0), &[1]);
        assert_eq!(v.neighbors(1), &[0]);
    }
}
