//! Dataset and graph serialization.
//!
//! A small JSON-based format so that experiment runs can snapshot the exact
//! synthetic datasets they used (graphs, splits, ground truth) and be
//! replayed later. The writer and parser are hand-rolled (the build
//! environment is offline, so no serde): the grammar is the fixed shape
//! below, not general JSON.
//!
//! ```text
//! graph   := {"labels":[u32,...],"edges":[[u32,u32],...]}
//! dataset := {"kind":"AIDS"|"Linux"|"IMDB","graphs":[graph,...]}
//! ```

use crate::dataset::{DatasetKind, GraphDataset};
use crate::graph::{Graph, Label};
use std::fs;
use std::io;
use std::path::Path;

/// Serializes a graph to a JSON string.
#[must_use]
pub fn graph_to_json(g: &Graph) -> String {
    let mut s = String::from("{\"labels\":[");
    for (i, l) in g.labels().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&l.0.to_string());
    }
    s.push_str("],\"edges\":[");
    for (i, (u, v)) in g.edges().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("[{u},{v}]"));
    }
    s.push_str("]}");
    s
}

/// Parses a graph from a JSON string.
///
/// # Errors
/// Returns an error if the JSON is malformed or violates graph invariants
/// (out-of-range endpoints, self loops, duplicate edges).
pub fn graph_from_json(s: &str) -> Result<Graph, String> {
    let mut p = Parser::new(s);
    let g = p.graph()?;
    p.end()?;
    Ok(g)
}

/// Serializes a dataset to a JSON string. Graphs are written in id
/// order; [`crate::store::GraphId`]s themselves are process-local handles
/// and are not persisted (loading mints fresh ids).
#[must_use]
pub fn dataset_to_json(ds: &GraphDataset) -> String {
    let mut s = format!("{{\"kind\":\"{}\",\"graphs\":[", ds.kind.name());
    for (i, g) in ds.graphs().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&graph_to_json(g));
    }
    s.push_str("]}");
    s
}

/// Parses a dataset from a JSON string.
///
/// # Errors
/// Returns an error if the JSON is malformed or any graph is invalid.
pub fn dataset_from_json(s: &str) -> Result<GraphDataset, String> {
    let mut p = Parser::new(s);
    let ds = p.dataset()?;
    p.end()?;
    Ok(ds)
}

/// Writes a dataset to a JSON file.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_dataset(ds: &GraphDataset, path: &Path) -> io::Result<()> {
    fs::write(path, dataset_to_json(ds))
}

/// Reads a dataset from a JSON file.
///
/// # Errors
/// Propagates I/O errors and reports malformed JSON.
pub fn load_dataset(path: &Path) -> io::Result<GraphDataset> {
    let s = fs::read_to_string(path)?;
    dataset_from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Recursive-descent parser for the fixed graph/dataset grammar above.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), String> {
        self.skip_ws();
        let end = self.pos + token.len();
        if end <= self.bytes.len() && &self.bytes[self.pos..end] == token.as_bytes() {
            self.pos = end;
            Ok(())
        } else {
            Err(format!("expected `{token}` at byte {}", self.pos))
        }
    }

    fn peek_is(&mut self, byte: u8) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&byte)
    }

    fn u32(&mut self) -> Result<u32, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are valid UTF-8")
            .parse::<u32>()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    /// `[item, item, ...]` with `item` produced by `f`.
    fn list<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, String>,
    ) -> Result<Vec<T>, String> {
        self.expect("[")?;
        let mut out = Vec::new();
        if self.peek_is(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(f(self)?);
            if self.peek_is(b',') {
                self.pos += 1;
            } else {
                self.expect("]")?;
                return Ok(out);
            }
        }
    }

    fn graph(&mut self) -> Result<Graph, String> {
        self.expect("{")?;
        self.expect("\"labels\"")?;
        self.expect(":")?;
        let labels: Vec<Label> = self.list(|p| p.u32().map(Label))?;
        self.expect(",")?;
        self.expect("\"edges\"")?;
        self.expect(":")?;
        let n = labels.len() as u32;
        let mut seen = std::collections::HashSet::new();
        let edges = self.list(|p| {
            p.expect("[")?;
            let u = p.u32()?;
            p.expect(",")?;
            let v = p.u32()?;
            p.expect("]")?;
            if u == v {
                return Err(format!("self loop at node {u}"));
            }
            if u >= n || v >= n {
                return Err(format!("edge ({u},{v}) out of range (n={n})"));
            }
            if !seen.insert((u.min(v), u.max(v))) {
                return Err(format!("duplicate edge ({u},{v})"));
            }
            Ok((u, v))
        })?;
        self.expect("}")?;
        Ok(Graph::from_edges(labels, &edges))
    }

    fn dataset(&mut self) -> Result<GraphDataset, String> {
        self.expect("{")?;
        self.expect("\"kind\"")?;
        self.expect(":")?;
        let kind = if self.expect("\"AIDS\"").is_ok() {
            DatasetKind::Aids
        } else if self.expect("\"Linux\"").is_ok() {
            DatasetKind::Linux
        } else if self.expect("\"IMDB\"").is_ok() {
            DatasetKind::Imdb
        } else {
            return Err(format!("unknown dataset kind at byte {}", self.pos));
        };
        self.expect(",")?;
        self.expect("\"graphs\"")?;
        self.expect(":")?;
        let graphs = self.list(Self::graph)?;
        self.expect("}")?;
        Ok(GraphDataset::from_graphs(kind, graphs))
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("trailing garbage at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GraphDataset;
    use crate::graph::Label;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn graph_json_roundtrip() {
        let g = Graph::from_edges(vec![Label(1), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        let s = graph_to_json(&g);
        let g2 = graph_from_json(&s).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::new();
        assert_eq!(graph_from_json(&graph_to_json(&g)).unwrap(), g);
    }

    #[test]
    fn rejects_garbage() {
        assert!(graph_from_json("not json").is_err());
        assert!(graph_from_json("{\"labels\":[0,0]}").is_err());
        assert!(graph_from_json("{\"labels\":[0],\"edges\":[]} tail").is_err());
    }

    #[test]
    fn rejects_invariant_violations() {
        // Self loop.
        assert!(graph_from_json("{\"labels\":[0,0],\"edges\":[[1,1]]}").is_err());
        // Out of range.
        assert!(graph_from_json("{\"labels\":[0,0],\"edges\":[[0,2]]}").is_err());
        // Duplicate (also reversed).
        assert!(graph_from_json("{\"labels\":[0,0],\"edges\":[[0,1],[1,0]]}").is_err());
    }

    #[test]
    fn dataset_file_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(3);
        let ds = GraphDataset::linux_like(10, &mut rng);
        let dir = std::env::temp_dir().join("ot_ged_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save_dataset(&ds, &path).unwrap();
        let ds2 = load_dataset(&path).unwrap();
        assert_eq!(ds.kind, ds2.kind);
        assert_eq!(ds.len(), ds2.len());
        assert!(ds.graphs().eq(ds2.graphs()), "graphs round-trip in order");
        std::fs::remove_file(&path).ok();
    }
}
