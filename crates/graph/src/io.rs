//! Dataset and graph serialization.
//!
//! A small JSON-based format so that experiment runs can snapshot the exact
//! synthetic datasets they used (graphs, splits, ground truth) and be
//! replayed later. The format is intentionally simple: it is a direct serde
//! image of the in-memory types.

use crate::dataset::GraphDataset;
use crate::graph::Graph;
use std::fs;
use std::io;
use std::path::Path;

/// Serializes a graph to a JSON string.
///
/// # Panics
/// Never panics for valid graphs (serialization of plain vectors).
#[must_use]
pub fn graph_to_json(g: &Graph) -> String {
    serde_json::to_string(g).expect("graph serialization cannot fail")
}

/// Parses a graph from a JSON string.
///
/// # Errors
/// Returns an error if the JSON is malformed or violates graph invariants.
pub fn graph_from_json(s: &str) -> Result<Graph, String> {
    let g: Graph = serde_json::from_str(s).map_err(|e| e.to_string())?;
    // Re-validate invariants: serde bypasses the builder API.
    let labels = g.labels().to_vec();
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let rebuilt = Graph::from_edges(labels, &edges);
    if rebuilt != g {
        return Err("graph JSON violates adjacency invariants".into());
    }
    Ok(g)
}

/// Writes a dataset to a JSON file.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_dataset(ds: &GraphDataset, path: &Path) -> io::Result<()> {
    let s = serde_json::to_string(ds).expect("dataset serialization cannot fail");
    fs::write(path, s)
}

/// Reads a dataset from a JSON file.
///
/// # Errors
/// Propagates I/O errors and reports malformed JSON.
pub fn load_dataset(path: &Path) -> io::Result<GraphDataset> {
    let s = fs::read_to_string(path)?;
    serde_json::from_str(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GraphDataset;
    use crate::graph::Label;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn graph_json_roundtrip() {
        let g = Graph::from_edges(vec![Label(1), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        let s = graph_to_json(&g);
        let g2 = graph_from_json(&s).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(graph_from_json("not json").is_err());
    }

    #[test]
    fn dataset_file_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(3);
        let ds = GraphDataset::linux_like(10, &mut rng);
        let dir = std::env::temp_dir().join("ot_ged_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save_dataset(&ds, &path).unwrap();
        let ds2 = load_dataset(&path).unwrap();
        assert_eq!(ds.graphs, ds2.graphs);
        std::fs::remove_file(&path).ok();
    }
}
