//! Dataset and graph serialization.
//!
//! A small JSON-based format so that experiment runs can snapshot the exact
//! synthetic datasets they used (graphs, splits, ground truth) and be
//! replayed later. The writer and parser are hand-rolled (the build
//! environment is offline, so no serde): the grammar is the fixed shape
//! below, not general JSON.
//!
//! ```text
//! graph   := {"labels":[u32,...],"edges":[[u32,u32],...]}
//! dataset := {"kind":"AIDS"|"Linux"|"IMDB","graphs":[graph,...]}
//! ```
//!
//! # Sharded-store snapshots
//!
//! [`crate::shard::ShardedStore`] persists itself through the same
//! hand-rolled codec (see [`crate::shard::ShardedStore::save`] /
//! [`crate::shard::ShardedStore::load`]). Unlike datasets — where
//! [`crate::store::GraphId`]s are process-local handles and are *not*
//! persisted — snapshots do carry each graph's raw sequence number, so a
//! loaded store resolves exactly the ids the saved one did (the global
//! allocator is advanced past every restored seq to keep ids unique).
//! The grammar, layered on the `graph` production above:
//!
//! ```text
//! pivdist  := [u64,u64]                              // [lb,ub]; lb = ub when exact
//! pivrow   := {"seq":u64,"dists":[pivdist,...]}      // one row per member graph
//! pivots   := null
//!           | {"target":u64,"revision":u64,"ids":[u64,...],"rows":[pivrow,...]}
//! entry    := {"seq":u64,"graph":graph}
//! shard    := {"bucket":u64,"revision":u64,"entries":[entry,...],"pivots":pivots}
//! snapshot := {"schema":1,"bucket_width":u64,"revision":u64,"shards":[shard,...]}
//! ```
//!
//! Signatures and CSR views are *not* persisted: both are deterministic
//! functions of the graph and are recomputed on load.

use crate::dataset::{DatasetKind, GraphDataset};
use crate::graph::{Graph, Label};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A structured JSON-codec error: what went wrong and exactly where.
///
/// Positions are reported three ways — absolute byte offset plus 1-based
/// line and column — because the codec parses both whole files
/// ([`load_dataset`]) and single lines of a line-delimited protocol, where
/// the caller wants to prefix its own line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Absolute byte offset into the input where the error was detected.
    pub at: usize,
    /// 1-based line number of `at`.
    pub line: usize,
    /// 1-based byte column of `at` within its line.
    pub column: usize,
    /// What the parser expected or which invariant the input violated.
    pub kind: ParseErrorKind,
}

/// The failure cases of the graph/dataset grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A fixed token of the grammar was expected.
    Expected(&'static str),
    /// A decimal number was expected.
    ExpectedNumber,
    /// A number does not fit in the integer width the grammar calls for
    /// (`u32` for labels and edge endpoints, `u64` for snapshot fields).
    NumberOverflow,
    /// An edge `(u, u)` — the graphs here are simple.
    SelfLoop(u32),
    /// An edge endpoint at or beyond the node count.
    EdgeOutOfRange {
        /// The offending edge.
        edge: (u32, u32),
        /// The graph's node count.
        nodes: u32,
    },
    /// The same undirected edge listed twice.
    DuplicateEdge(u32, u32),
    /// A dataset `kind` string that is not `AIDS`, `Linux`, or `IMDB`.
    UnknownKind,
    /// Input continuing past the end of the value.
    TrailingInput,
    /// A syntactically well-formed field holding a semantically invalid
    /// value (used by grammars layered on top of this codec, e.g. the
    /// `ged-server` wire protocol: unknown op, bad protocol version).
    Invalid(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {} (byte {}): ",
            self.line, self.column, self.at
        )?;
        match &self.kind {
            ParseErrorKind::Expected(token) => write!(f, "expected `{token}`"),
            ParseErrorKind::ExpectedNumber => write!(f, "expected a number"),
            ParseErrorKind::NumberOverflow => write!(f, "number overflows its field"),
            ParseErrorKind::SelfLoop(u) => write!(f, "self loop at node {u}"),
            ParseErrorKind::EdgeOutOfRange {
                edge: (u, v),
                nodes,
            } => {
                write!(f, "edge ({u},{v}) out of range (n={nodes})")
            }
            ParseErrorKind::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u},{v})"),
            ParseErrorKind::UnknownKind => write!(f, "unknown dataset kind"),
            ParseErrorKind::TrailingInput => write!(f, "trailing input after value"),
            ParseErrorKind::Invalid(what) => write!(f, "invalid {what}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a graph to a JSON string.
#[must_use]
pub fn graph_to_json(g: &Graph) -> String {
    let mut s = String::from("{\"labels\":[");
    for (i, l) in g.labels().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&l.0.to_string());
    }
    s.push_str("],\"edges\":[");
    for (i, (u, v)) in g.edges().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("[{u},{v}]"));
    }
    s.push_str("]}");
    s
}

/// Parses a graph from a JSON string.
///
/// # Errors
/// Returns a [`ParseError`] if the JSON is malformed or violates graph
/// invariants (out-of-range endpoints, self loops, duplicate edges).
pub fn graph_from_json(s: &str) -> Result<Graph, ParseError> {
    let mut p = Parser::new(s);
    let g = p.graph()?;
    p.end()?;
    Ok(g)
}

/// Parses one graph object from the *front* of `s`, returning the graph
/// and the number of bytes consumed. Trailing input is left for the
/// caller — this is the hook grammars embedding graph objects (such as
/// the `ged-server` wire protocol) use to delegate graph payloads to this
/// codec.
///
/// # Errors
/// Returns a [`ParseError`] (positions relative to `s`) if the prefix is
/// not a valid graph object.
pub fn graph_from_json_prefix(s: &str) -> Result<(Graph, usize), ParseError> {
    let mut p = Parser::new(s);
    let g = p.graph()?;
    Ok((g, p.pos))
}

/// Serializes a dataset to a JSON string. Graphs are written in id
/// order; [`crate::store::GraphId`]s themselves are process-local handles
/// and are not persisted (loading mints fresh ids).
#[must_use]
pub fn dataset_to_json(ds: &GraphDataset) -> String {
    let mut s = format!("{{\"kind\":\"{}\",\"graphs\":[", ds.kind.name());
    for (i, g) in ds.graphs().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&graph_to_json(g));
    }
    s.push_str("]}");
    s
}

/// Parses a dataset from a JSON string.
///
/// # Errors
/// Returns a [`ParseError`] if the JSON is malformed or any graph is
/// invalid.
pub fn dataset_from_json(s: &str) -> Result<GraphDataset, ParseError> {
    let mut p = Parser::new(s);
    let ds = p.dataset()?;
    p.end()?;
    Ok(ds)
}

/// Writes a dataset to a JSON file.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_dataset(ds: &GraphDataset, path: &Path) -> io::Result<()> {
    fs::write(path, dataset_to_json(ds))
}

/// Reads a dataset from a JSON file.
///
/// # Errors
/// Propagates I/O errors and reports malformed JSON.
pub fn load_dataset(path: &Path) -> io::Result<GraphDataset> {
    let s = fs::read_to_string(path)?;
    dataset_from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Recursive-descent parser for the fixed graph/dataset grammar above.
/// `pub(crate)` so the sharded-store snapshot codec ([`crate::shard`])
/// can layer its grammar on the same primitives.
pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    /// Builds a [`ParseError`] at byte `at`, deriving line/column from the
    /// input prefix. Error paths only, so the O(at) scan is fine.
    pub(crate) fn err(&self, at: usize, kind: ParseErrorKind) -> ParseError {
        let mut line = 1;
        let mut line_start = 0;
        for (i, &b) in self.bytes[..at.min(self.bytes.len())].iter().enumerate() {
            if b == b'\n' {
                line += 1;
                line_start = i + 1;
            }
        }
        ParseError {
            at,
            line,
            column: at - line_start + 1,
            kind,
        }
    }

    pub(crate) fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    pub(crate) fn expect(&mut self, token: &'static str) -> Result<(), ParseError> {
        self.skip_ws();
        let end = self.pos + token.len();
        if end <= self.bytes.len() && &self.bytes[self.pos..end] == token.as_bytes() {
            self.pos = end;
            Ok(())
        } else {
            Err(self.err(self.pos, ParseErrorKind::Expected(token)))
        }
    }

    pub(crate) fn peek_is(&mut self, byte: u8) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&byte)
    }

    fn u32(&mut self) -> Result<u32, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err(start, ParseErrorKind::ExpectedNumber));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are valid UTF-8")
            .parse::<u32>()
            .map_err(|_| self.err(start, ParseErrorKind::NumberOverflow))
    }

    /// The snapshot grammar's integer width (sequence numbers, revisions).
    pub(crate) fn u64(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err(start, ParseErrorKind::ExpectedNumber));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are valid UTF-8")
            .parse::<u64>()
            .map_err(|_| self.err(start, ParseErrorKind::NumberOverflow))
    }

    /// `[item, item, ...]` with `item` produced by `f`.
    pub(crate) fn list<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, ParseError>,
    ) -> Result<Vec<T>, ParseError> {
        self.expect("[")?;
        let mut out = Vec::new();
        if self.peek_is(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(f(self)?);
            if self.peek_is(b',') {
                self.pos += 1;
            } else {
                self.expect("]")?;
                return Ok(out);
            }
        }
    }

    pub(crate) fn graph(&mut self) -> Result<Graph, ParseError> {
        self.expect("{")?;
        self.expect("\"labels\"")?;
        self.expect(":")?;
        let labels: Vec<Label> = self.list(|p| p.u32().map(Label))?;
        self.expect(",")?;
        self.expect("\"edges\"")?;
        self.expect(":")?;
        let n = labels.len() as u32;
        let mut seen = std::collections::HashSet::new();
        let edges = self.list(|p| {
            let at = {
                p.skip_ws();
                p.pos
            };
            p.expect("[")?;
            let u = p.u32()?;
            p.expect(",")?;
            let v = p.u32()?;
            p.expect("]")?;
            if u == v {
                return Err(p.err(at, ParseErrorKind::SelfLoop(u)));
            }
            if u >= n || v >= n {
                return Err(p.err(
                    at,
                    ParseErrorKind::EdgeOutOfRange {
                        edge: (u, v),
                        nodes: n,
                    },
                ));
            }
            if !seen.insert((u.min(v), u.max(v))) {
                return Err(p.err(at, ParseErrorKind::DuplicateEdge(u, v)));
            }
            Ok((u, v))
        })?;
        self.expect("}")?;
        Ok(Graph::from_edges(labels, &edges))
    }

    fn dataset(&mut self) -> Result<GraphDataset, ParseError> {
        self.expect("{")?;
        self.expect("\"kind\"")?;
        self.expect(":")?;
        let kind = if self.expect("\"AIDS\"").is_ok() {
            DatasetKind::Aids
        } else if self.expect("\"Linux\"").is_ok() {
            DatasetKind::Linux
        } else if self.expect("\"IMDB\"").is_ok() {
            DatasetKind::Imdb
        } else {
            return Err(self.err(self.pos, ParseErrorKind::UnknownKind));
        };
        self.expect(",")?;
        self.expect("\"graphs\"")?;
        self.expect(":")?;
        let graphs = self.list(Self::graph)?;
        self.expect("}")?;
        Ok(GraphDataset::from_graphs(kind, graphs))
    }

    pub(crate) fn end(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.err(self.pos, ParseErrorKind::TrailingInput))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GraphDataset;
    use crate::graph::Label;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn graph_json_roundtrip() {
        let g = Graph::from_edges(vec![Label(1), Label(2), Label(3)], &[(0, 1), (1, 2)]);
        let s = graph_to_json(&g);
        let g2 = graph_from_json(&s).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = Graph::new();
        assert_eq!(graph_from_json(&graph_to_json(&g)).unwrap(), g);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(
            graph_from_json("not json").unwrap_err().kind,
            ParseErrorKind::Expected("{")
        );
        assert_eq!(
            graph_from_json("{\"labels\":[0,0]}").unwrap_err().kind,
            ParseErrorKind::Expected(",")
        );
        assert_eq!(
            graph_from_json("{\"labels\":[0],\"edges\":[]} tail")
                .unwrap_err()
                .kind,
            ParseErrorKind::TrailingInput
        );
        assert_eq!(
            graph_from_json("{\"labels\":[99999999999],\"edges\":[]}")
                .unwrap_err()
                .kind,
            ParseErrorKind::NumberOverflow
        );
        assert_eq!(
            dataset_from_json("{\"kind\":\"QM9\",\"graphs\":[]}")
                .unwrap_err()
                .kind,
            ParseErrorKind::UnknownKind
        );
    }

    #[test]
    fn rejects_invariant_violations() {
        assert_eq!(
            graph_from_json("{\"labels\":[0,0],\"edges\":[[1,1]]}")
                .unwrap_err()
                .kind,
            ParseErrorKind::SelfLoop(1)
        );
        assert_eq!(
            graph_from_json("{\"labels\":[0,0],\"edges\":[[0,2]]}")
                .unwrap_err()
                .kind,
            ParseErrorKind::EdgeOutOfRange {
                edge: (0, 2),
                nodes: 2
            }
        );
        // Duplicate, also when reversed.
        assert_eq!(
            graph_from_json("{\"labels\":[0,0],\"edges\":[[0,1],[1,0]]}")
                .unwrap_err()
                .kind,
            ParseErrorKind::DuplicateEdge(1, 0)
        );
    }

    #[test]
    fn errors_carry_position() {
        // The bad number starts at byte 11 of line 2.
        let e = graph_from_json("{\"labels\":\n[0],\"edges\":[[0,x]]}").unwrap_err();
        assert_eq!(e.kind, ParseErrorKind::ExpectedNumber);
        assert_eq!(e.line, 2);
        assert_eq!(e.column, e.at - "{\"labels\":\n".len() + 1);
        let msg = e.to_string();
        assert!(msg.contains("line 2"), "{msg}");
        assert!(msg.contains("expected a number"), "{msg}");

        // Single-line inputs report line 1 and column = byte + 1.
        let e = graph_from_json("nope").unwrap_err();
        assert_eq!((e.line, e.column, e.at), (1, 1, 0));
    }

    #[test]
    fn dataset_file_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(3);
        let ds = GraphDataset::linux_like(10, &mut rng);
        let dir = std::env::temp_dir().join("ot_ged_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save_dataset(&ds, &path).unwrap();
        let ds2 = load_dataset(&path).unwrap();
        assert_eq!(ds.kind, ds2.kind);
        assert_eq!(ds.len(), ds2.len());
        assert!(ds.graphs().eq(ds2.graphs()), "graphs round-trip in order");
        std::fs::remove_file(&path).ok();
    }
}
