//! Random graph generation and ground-truth pair synthesis.
//!
//! Provides the generators behind the synthetic dataset stand-ins
//! (connected sparse graphs for AIDS/LINUX, ego-nets for IMDB, power-law
//! graphs for the scalability study) and the Δ-edit perturbation technique
//! the paper uses to create ground truth for graph pairs that are too large
//! for exact A* (Section 6.1, Appendix F.1).

use crate::graph::{Graph, Label};
use crate::mapping::NodeMapping;
use rand::distributions::{Distribution, WeightedIndex};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashSet;

/// A random connected graph with `n` nodes and approximately `extra_edges`
/// edges beyond the spanning tree, labels drawn from `label_weights`
/// (index = label id, value = relative frequency).
///
/// # Panics
/// Panics if `n == 0` or `label_weights` is empty.
pub fn random_connected<R: Rng>(
    n: usize,
    extra_edges: usize,
    label_weights: &[f64],
    rng: &mut R,
) -> Graph {
    assert!(n > 0, "graph must have at least one node");
    let dist = WeightedIndex::new(label_weights).expect("non-empty positive weights");
    let mut g = Graph::with_capacity(n);
    for _ in 0..n {
        let l = dist.sample(rng) as u32;
        g.add_node(Label(l));
    }
    // Random spanning tree: connect node i to a random previous node.
    for i in 1..n as u32 {
        let j = rng.gen_range(0..i);
        g.add_edge(i, j);
    }
    // Extra edges, skipping duplicates.
    let max_extra = n * (n - 1) / 2 - (n - 1);
    let target = extra_edges.min(max_extra);
    let mut added = 0;
    let mut attempts = 0;
    while added < target && attempts < 50 * (target + 1) {
        attempts += 1;
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v);
            added += 1;
        }
    }
    g
}

/// An unlabeled random connected graph (every node labeled
/// [`Label::UNLABELED`]).
pub fn random_connected_unlabeled<R: Rng>(n: usize, extra_edges: usize, rng: &mut R) -> Graph {
    random_connected(n, extra_edges, &[1.0], rng)
}

/// A Barabási–Albert style preferential-attachment graph: each new node
/// attaches to `m_attach` existing nodes chosen proportionally to degree.
/// Produces the power-law degree distributions used in Figure 16 / G.4.
///
/// # Panics
/// Panics if `n == 0` or `m_attach == 0`.
pub fn barabasi_albert<R: Rng>(n: usize, m_attach: usize, rng: &mut R) -> Graph {
    assert!(n > 0 && m_attach > 0);
    let m0 = (m_attach + 1).min(n);
    let mut g = Graph::with_capacity(n);
    for _ in 0..n {
        g.add_node(Label::UNLABELED);
    }
    // Seed clique among the first m0 nodes.
    for u in 0..m0 as u32 {
        for v in (u + 1)..m0 as u32 {
            g.add_edge(u, v);
        }
    }
    // `targets` holds one entry per edge endpoint => sampling from it is
    // degree-proportional.
    let mut targets: Vec<u32> = Vec::new();
    for u in 0..m0 as u32 {
        for _ in 0..g.degree(u) {
            targets.push(u);
        }
    }
    for u in m0 as u32..n as u32 {
        let mut chosen: HashSet<u32> = HashSet::new();
        let want = m_attach.min(u as usize);
        let mut guard = 0;
        while chosen.len() < want && guard < 1000 {
            guard += 1;
            let t = *targets.choose(rng).expect("non-empty targets");
            if t != u {
                chosen.insert(t);
            }
        }
        for &t in &chosen {
            g.add_edge(u, t);
            targets.push(u);
            targets.push(t);
        }
    }
    g
}

/// An ego-network style graph (IMDB stand-in): a hub connected to everyone,
/// plus `communities` dense clusters among the remaining nodes, plus a few
/// random noise edges. Unlabeled and much denser than the AIDS/LINUX graphs.
///
/// # Panics
/// Panics if `n < 2`.
pub fn ego_net<R: Rng>(n: usize, communities: usize, rng: &mut R) -> Graph {
    assert!(n >= 2, "ego net needs at least hub + one member");
    let mut g = Graph::with_capacity(n);
    for _ in 0..n {
        g.add_node(Label::UNLABELED);
    }
    // Hub = node 0.
    for v in 1..n as u32 {
        g.add_edge(0, v);
    }
    // Assign members to communities; fully connect within each with
    // probability 0.8 per pair.
    let c = communities.max(1);
    let mut assignment: Vec<usize> = (1..n).map(|_| rng.gen_range(0..c)).collect();
    assignment.shuffle(rng);
    for i in 1..n as u32 {
        for j in (i + 1)..n as u32 {
            if assignment[(i - 1) as usize] == assignment[(j - 1) as usize] && rng.gen_bool(0.8) {
                g.add_edge(i, j);
            }
        }
    }
    // Sparse cross-community noise.
    let noise = n / 4;
    for _ in 0..noise {
        let u = rng.gen_range(1..n as u32);
        let v = rng.gen_range(1..n as u32);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v);
        }
    }
    g
}

/// A synthetic graph pair with known (approximate) ground truth, produced by
/// applying `delta` non-cancelling random edit operations to `g`.
pub struct PerturbedPair {
    /// The perturbed graph `G'`.
    pub graph: Graph,
    /// Number of edit operations actually applied (≤ requested `delta` only
    /// when the graph runs out of editable material).
    pub applied: usize,
    /// Ground-truth matching from the *original* graph into the perturbed
    /// one (identity on surviving nodes — perturbation never deletes nodes,
    /// so this is always total and injective).
    pub mapping: NodeMapping,
}

/// Applies `delta` random edit operations to `g`, returning the perturbed
/// graph, the achieved edit count and the ground-truth node matching.
///
/// This reproduces the ground-truth generation technique of the paper
/// (Appendix F.1) for graph pairs too large for exact A*: the edit count is
/// treated as the (approximate) ground-truth GED and the identity matching
/// as the ground-truth coupling. Operations are chosen to avoid trivial
/// cancellation: a node is relabeled at most once, inserted edges are never
/// re-deleted and vice versa, and node insertions (which consume 2 ops:
/// the node plus one connecting edge) always attach to a pre-existing node.
///
/// `num_labels` is the label alphabet size (use 1 for unlabeled graphs,
/// which disables relabeling).
pub fn perturb_with_edits<R: Rng>(
    g: &Graph,
    delta: usize,
    num_labels: u32,
    rng: &mut R,
) -> PerturbedPair {
    let n0 = g.num_nodes();
    let mut out = g.clone();
    let mut applied = 0usize;
    let mut relabeled: HashSet<u32> = HashSet::new();
    let mut touched_edges: HashSet<(u32, u32)> = HashSet::new();
    let key = |u: u32, v: u32| (u.min(v), u.max(v));

    let mut guard = 0;
    while applied < delta && guard < 200 * (delta + 1) {
        guard += 1;
        let n = out.num_nodes() as u32;
        // 0: relabel, 1: insert node (+edge), 2: insert edge, 3: delete edge
        let choice = rng.gen_range(0..4u32);
        match choice {
            0 if num_labels > 1 => {
                let u = rng.gen_range(0..n);
                // Only relabel original nodes (keeps ground truth exact) and
                // only once each.
                if (u as usize) < n0 && !relabeled.contains(&u) {
                    let old = out.label(u);
                    let new = Label(rng.gen_range(0..num_labels));
                    if new != old {
                        out.set_label(u, new);
                        relabeled.insert(u);
                        applied += 1;
                    }
                }
            }
            1 if applied + 2 <= delta => {
                // Node insertion costs 2 ops: the node and a connecting edge
                // to keep the graph connected (as real datasets are).
                let label = if num_labels > 1 {
                    Label(rng.gen_range(0..num_labels))
                } else {
                    Label::UNLABELED
                };
                let v = out.add_node(label);
                let anchor = rng.gen_range(0..n);
                out.add_edge(v, anchor);
                touched_edges.insert(key(v, anchor));
                applied += 2;
            }
            2 if n >= 2 => {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && !out.has_edge(u, v) && !touched_edges.contains(&key(u, v)) {
                    out.add_edge(u, v);
                    touched_edges.insert(key(u, v));
                    applied += 1;
                }
            }
            3 => {
                let edges: Vec<(u32, u32)> = out
                    .edges()
                    .filter(|&(u, v)| !touched_edges.contains(&key(u, v)))
                    .collect();
                if let Some(&(u, v)) = edges.choose(rng) {
                    // Keep every node reachable: avoid isolating an endpoint.
                    if out.degree(u) > 1 && out.degree(v) > 1 {
                        out.remove_edge(u, v);
                        touched_edges.insert(key(u, v));
                        applied += 1;
                    }
                }
            }
            _ => {}
        }
    }
    PerturbedPair {
        graph: out,
        applied,
        mapping: NodeMapping::identity(n0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_connected_is_connected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in 1..20 {
            let g = random_connected(n, n / 2, &[0.5, 0.3, 0.2], &mut rng);
            g.validate();
            assert_eq!(g.num_nodes(), n);
            assert!(g.is_connected(), "n={n} not connected");
        }
    }

    #[test]
    fn barabasi_albert_shapes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = barabasi_albert(60, 2, &mut rng);
        g.validate();
        assert_eq!(g.num_nodes(), 60);
        assert!(g.is_connected());
        // Power-law-ish: max degree should clearly exceed the median degree.
        let mut degs: Vec<usize> = (0..60u32).map(|u| g.degree(u)).collect();
        degs.sort_unstable();
        assert!(
            degs[59] >= 2 * degs[30],
            "hub degree {} median {}",
            degs[59],
            degs[30]
        );
    }

    #[test]
    fn ego_net_has_hub() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = ego_net(15, 3, &mut rng);
        g.validate();
        assert_eq!(g.degree(0), 14);
        assert!(g.is_connected());
        // Dense: well above tree edge count.
        assert!(g.num_edges() > 20, "edges = {}", g.num_edges());
    }

    #[test]
    fn perturbation_cost_matches_applied() {
        let mut rng = SmallRng::seed_from_u64(3);
        for trial in 0..50 {
            let g = random_connected(8, 3, &[0.4, 0.3, 0.2, 0.1], &mut rng);
            let delta = 1 + (trial % 6);
            let pair = perturb_with_edits(&g, delta, 4, &mut rng);
            pair.graph.validate();
            assert!(pair.applied <= delta);
            // The identity matching's induced cost must be exactly the number
            // of applied operations (non-cancelling construction).
            assert!(pair.graph.num_nodes() >= g.num_nodes());
            let cost = pair.mapping.induced_cost(&g, &pair.graph);
            assert_eq!(cost, pair.applied, "trial {trial}");
        }
    }

    #[test]
    fn perturbation_keeps_connectivity() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..30 {
            let g = random_connected_unlabeled(10, 4, &mut rng);
            let pair = perturb_with_edits(&g, 5, 1, &mut rng);
            // Edge deletions avoid isolating nodes, node insertions connect:
            // no isolated nodes remain.
            for u in 0..pair.graph.num_nodes() as u32 {
                assert!(pair.graph.degree(u) > 0, "node {u} isolated");
            }
        }
    }

    #[test]
    fn perturbation_zero_delta_is_identity() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = random_connected(6, 2, &[1.0, 1.0], &mut rng);
        let pair = perturb_with_edits(&g, 0, 2, &mut rng);
        assert_eq!(pair.graph, g);
        assert_eq!(pair.applied, 0);
    }
}
