//! Edit operations and edit paths.
//!
//! The paper's GED uses five uniform-cost operations: node insertion, node
//! deletion, node relabeling, edge insertion and edge deletion. An
//! [`EditPath`] is an ordered sequence of operations; applying it to `G1`
//! must yield (a graph isomorphic to) `G2`.

use crate::graph::{Graph, Label};

/// A single edit operation, interpreted against the *current* state of the
/// graph being edited (node ids refer to that state).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EditOp {
    /// Change the label of `node` to `label`.
    RelabelNode {
        /// Node to relabel.
        node: u32,
        /// New label.
        label: Label,
    },
    /// Append a new isolated node with the given label.
    InsertNode {
        /// Label of the inserted node.
        label: Label,
    },
    /// Delete `node` (must be isolated; ids above shift down by one).
    DeleteNode {
        /// Node to delete.
        node: u32,
    },
    /// Insert the undirected edge `(u, v)`.
    InsertEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// Delete the undirected edge `(u, v)`.
    DeleteEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
}

/// A sequence of edit operations. Its [`len`](EditPath::len) is the edit
/// cost under the paper's uniform cost model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EditPath {
    ops: Vec<EditOp>,
}

impl EditPath {
    /// Creates an empty path.
    #[must_use]
    pub fn new() -> Self {
        EditPath { ops: Vec::new() }
    }

    /// Wraps an operation list.
    #[must_use]
    pub fn from_ops(ops: Vec<EditOp>) -> Self {
        EditPath { ops }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: EditOp) {
        self.ops.push(op);
    }

    /// The operations in order.
    #[must_use]
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// The number of operations — i.e. the edit cost of this path.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the path is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the path to `g`, returning the edited graph.
    ///
    /// # Errors
    /// Returns a description of the first inapplicable operation (e.g.
    /// deleting a missing edge), leaving no partial result.
    pub fn apply(&self, g: &Graph) -> Result<Graph, String> {
        let mut out = g.clone();
        for (i, &op) in self.ops.iter().enumerate() {
            apply_op(&mut out, op).map_err(|e| format!("op #{i} ({op:?}): {e}"))?;
        }
        Ok(out)
    }
}

impl FromIterator<EditOp> for EditPath {
    fn from_iter<T: IntoIterator<Item = EditOp>>(iter: T) -> Self {
        EditPath {
            ops: iter.into_iter().collect(),
        }
    }
}

fn apply_op(g: &mut Graph, op: EditOp) -> Result<(), String> {
    let n = g.num_nodes() as u32;
    let check = |u: u32| -> Result<(), String> {
        if u < n {
            Ok(())
        } else {
            Err(format!("node {u} out of range (n={n})"))
        }
    };
    match op {
        EditOp::RelabelNode { node, label } => {
            check(node)?;
            if g.label(node) == label {
                return Err("relabel to identical label".into());
            }
            g.set_label(node, label);
        }
        EditOp::InsertNode { label } => {
            g.add_node(label);
        }
        EditOp::DeleteNode { node } => {
            check(node)?;
            if g.degree(node) != 0 {
                return Err(format!(
                    "node {node} not isolated (degree {})",
                    g.degree(node)
                ));
            }
            g.remove_node(node);
        }
        EditOp::InsertEdge { u, v } => {
            check(u)?;
            check(v)?;
            if u == v {
                return Err("self loop".into());
            }
            if g.has_edge(u, v) {
                return Err(format!("edge ({u},{v}) already present"));
            }
            g.add_edge(u, v);
        }
        EditOp::DeleteEdge { u, v } => {
            check(u)?;
            check(v)?;
            if !g.remove_edge(u, v) {
                return Err(format!("edge ({u},{v}) not present"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(labels: &[u32], edges: &[(u32, u32)]) -> Graph {
        Graph::from_edges(labels.iter().map(|&l| Label(l)).collect(), edges)
    }

    #[test]
    fn apply_full_path() {
        // Figure 1 of the paper: G1 (3 nodes) -> G2 (4 nodes) with GED 4:
        // relabel u3, insert node v4, delete edge (u2,u3), insert edge (u3,v4).
        let g1 = path_graph(&[1, 1, 2], &[(0, 1), (0, 2), (1, 2)]);
        let g2 = path_graph(&[1, 1, 3, 4], &[(0, 1), (0, 2), (2, 3)]);
        let path = EditPath::from_ops(vec![
            EditOp::RelabelNode {
                node: 2,
                label: Label(3),
            },
            EditOp::InsertNode { label: Label(4) },
            EditOp::DeleteEdge { u: 1, v: 2 },
            EditOp::InsertEdge { u: 2, v: 3 },
        ]);
        assert_eq!(path.len(), 4);
        let result = path.apply(&g1).unwrap();
        result.validate();
        assert_eq!(result, g2);
    }

    #[test]
    fn delete_node_requires_isolation() {
        let g = path_graph(&[0, 0], &[(0, 1)]);
        let p = EditPath::from_ops(vec![EditOp::DeleteNode { node: 0 }]);
        assert!(p.apply(&g).unwrap_err().contains("not isolated"));
        let p2 = EditPath::from_ops(vec![
            EditOp::DeleteEdge { u: 0, v: 1 },
            EditOp::DeleteNode { node: 0 },
        ]);
        let out = p2.apply(&g).unwrap();
        assert_eq!(out.num_nodes(), 1);
    }

    #[test]
    fn invalid_ops_are_reported() {
        let g = path_graph(&[0, 0], &[(0, 1)]);
        for (op, msg) in [
            (EditOp::InsertEdge { u: 0, v: 1 }, "already present"),
            (EditOp::DeleteEdge { u: 0, v: 5 }, "out of range"),
            (EditOp::InsertEdge { u: 1, v: 1 }, "self loop"),
            (
                EditOp::RelabelNode {
                    node: 0,
                    label: Label(0),
                },
                "identical label",
            ),
        ] {
            let err = EditPath::from_ops(vec![op]).apply(&g).unwrap_err();
            assert!(err.contains(msg), "{err} should contain {msg}");
        }
    }

    #[test]
    fn empty_path_is_identity() {
        let g = path_graph(&[1, 2, 3], &[(0, 1)]);
        assert_eq!(EditPath::new().apply(&g).unwrap(), g);
    }
}
