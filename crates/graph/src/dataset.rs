//! Synthetic graph datasets mirroring the paper's AIDS / LINUX / IMDB.
//!
//! The real datasets are not redistributable here, so we generate synthetic
//! stand-ins that preserve the properties the evaluation leans on (Table 2):
//!
//! | dataset | graphs | avg n | labels | character |
//! |---------|--------|-------|--------|-----------|
//! | AIDS    | 700    | 8.9   | 29     | sparse labeled compound graphs |
//! | LINUX   | 1000   | 7.6   | 1      | sparse unlabeled PDGs |
//! | IMDB    | 1500   | 13    | 1      | dense unlabeled ego-nets, heavy >10-node tail |
//!
//! Every builder fills a [`GraphStore`], so each dataset graph carries a
//! stable [`GraphId`] and a precomputed search signature from the moment
//! it exists; [`GraphDataset`] is just a store plus the [`DatasetKind`]
//! it imitates (and derefs to the store). The same 60/20/20
//! train/val/test protocol and the "100 partners per test graph" pairing
//! scheme of Section 6.1 are implemented here, in terms of ids.

use crate::generate::{ego_net, random_connected, random_connected_unlabeled};
use crate::graph::Graph;
use crate::store::{GraphId, GraphStore};
use rand::seq::SliceRandom;
use rand::Rng;
use std::ops::{Deref, DerefMut};

/// Which real-world dataset a synthetic dataset imitates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Labeled chemical-compound-like graphs (29 labels, sparse, ≤ 10 nodes).
    Aids,
    /// Unlabeled sparse program-dependence-like graphs (≤ 10 nodes).
    Linux,
    /// Unlabeled dense ego-networks with a >10-node tail.
    Imdb,
}

impl DatasetKind {
    /// Display name matching the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Aids => "AIDS",
            DatasetKind::Linux => "Linux",
            DatasetKind::Imdb => "IMDB",
        }
    }

    /// Label alphabet size.
    #[must_use]
    pub fn num_labels(self) -> u32 {
        match self {
            DatasetKind::Aids => 29,
            DatasetKind::Linux | DatasetKind::Imdb => 1,
        }
    }
}

/// An indexed collection of graphs imitating one of the paper's datasets:
/// a [`GraphStore`] (which it derefs to) plus its [`DatasetKind`].
#[derive(Clone, Debug)]
pub struct GraphDataset {
    /// Which dataset this imitates.
    pub kind: DatasetKind,
    store: GraphStore,
}

impl Deref for GraphDataset {
    type Target = GraphStore;

    fn deref(&self) -> &GraphStore {
        &self.store
    }
}

impl DerefMut for GraphDataset {
    fn deref_mut(&mut self) -> &mut GraphStore {
        &mut self.store
    }
}

/// Id sets for the 60/20/20 split of Section 6.1.
#[derive(Clone, Debug)]
pub struct Split {
    /// Training graph ids (60%).
    pub train: Vec<GraphId>,
    /// Validation graph ids (20%).
    pub val: Vec<GraphId>,
    /// Test graph ids (20%).
    pub test: Vec<GraphId>,
}

/// Summary statistics in the shape of the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetStats {
    /// Number of graphs.
    pub count: usize,
    /// Average node count.
    pub avg_nodes: f64,
    /// Average edge count.
    pub avg_edges: f64,
    /// Maximum node count.
    pub max_nodes: usize,
    /// Maximum edge count.
    pub max_edges: usize,
    /// Number of distinct labels across the dataset.
    pub num_labels: usize,
}

impl GraphDataset {
    /// Wraps an existing store as a dataset of the given kind.
    #[must_use]
    pub fn new(kind: DatasetKind, store: GraphStore) -> Self {
        GraphDataset { kind, store }
    }

    /// Builds a dataset by inserting every graph of `graphs` into a fresh
    /// store, in order.
    #[must_use]
    pub fn from_graphs<I: IntoIterator<Item = Graph>>(kind: DatasetKind, graphs: I) -> Self {
        GraphDataset {
            kind,
            store: GraphStore::from_graphs(graphs),
        }
    }

    /// The underlying indexed store.
    #[must_use]
    pub fn store(&self) -> &GraphStore {
        &self.store
    }

    /// Consumes the dataset, returning the underlying store.
    #[must_use]
    pub fn into_store(self) -> GraphStore {
        self.store
    }

    /// AIDS-like: `count` connected labeled graphs, 4–10 nodes, skewed
    /// 29-symbol label distribution (carbon/oxygen/nitrogen-heavy, like
    /// chemical compounds).
    pub fn aids_like<R: Rng>(count: usize, rng: &mut R) -> Self {
        // Zipf-ish weights over 29 labels: a few dominant atoms.
        let weights: Vec<f64> = (0..29).map(|i| 1.0 / (1.0 + i as f64).powf(1.4)).collect();
        Self::from_graphs(
            DatasetKind::Aids,
            (0..count).map(|_| {
                let n = rng.gen_range(4..=10);
                let extra = rng.gen_range(0..=(n / 3));
                random_connected(n, extra, &weights, rng)
            }),
        )
    }

    /// LINUX-like: `count` connected unlabeled sparse graphs, 4–10 nodes.
    pub fn linux_like<R: Rng>(count: usize, rng: &mut R) -> Self {
        Self::from_graphs(
            DatasetKind::Linux,
            (0..count).map(|_| {
                let n = rng.gen_range(4..=10);
                let extra = rng.gen_range(0..=(n / 4));
                random_connected_unlabeled(n, extra, rng)
            }),
        )
    }

    /// IMDB-like: `count` unlabeled ego-nets. Roughly 60% small (5–10 nodes)
    /// and 40% large (11..=`max_large` nodes), mirroring IMDB's heavy tail.
    pub fn imdb_like<R: Rng>(count: usize, max_large: usize, rng: &mut R) -> Self {
        let max_large = max_large.max(12);
        Self::from_graphs(
            DatasetKind::Imdb,
            (0..count).map(|_| {
                let n = if rng.gen_bool(0.6) {
                    rng.gen_range(5..=10)
                } else {
                    rng.gen_range(11..=max_large)
                };
                let communities = 1 + n / 6;
                ego_net(n, communities, rng)
            }),
        )
    }

    /// Builds the dataset of the given kind with default sizing (scaled-down
    /// versions of the paper's 700/1000/1500 graph collections).
    pub fn build<R: Rng>(kind: DatasetKind, count: usize, rng: &mut R) -> Self {
        match kind {
            DatasetKind::Aids => Self::aids_like(count, rng),
            DatasetKind::Linux => Self::linux_like(count, rng),
            DatasetKind::Imdb => Self::imdb_like(count, 24, rng),
        }
    }

    /// Table 2 statistics.
    #[must_use]
    pub fn stats(&self) -> DatasetStats {
        let count = self.store.len();
        let (mut sn, mut se, mut mn, mut me) = (0usize, 0usize, 0usize, 0usize);
        let mut labels: Vec<u32> = Vec::new();
        for g in self.store.graphs() {
            sn += g.num_nodes();
            se += g.num_edges();
            mn = mn.max(g.num_nodes());
            me = me.max(g.num_edges());
            labels.extend(g.labels().iter().map(|l| l.0));
        }
        labels.sort_unstable();
        labels.dedup();
        DatasetStats {
            count,
            avg_nodes: sn as f64 / count.max(1) as f64,
            avg_edges: se as f64 / count.max(1) as f64,
            max_nodes: mn,
            max_edges: me,
            num_labels: labels.len(),
        }
    }

    /// Random 60/20/20 split of graph ids (Section 6.1).
    pub fn split<R: Rng>(&self, rng: &mut R) -> Split {
        let mut ids = self.store.ids();
        ids.shuffle(rng);
        let n = ids.len();
        let n_train = (n * 6) / 10;
        let n_val = n / 5;
        Split {
            train: ids[..n_train].to_vec(),
            val: ids[n_train..n_train + n_val].to_vec(),
            test: ids[n_train + n_val..].to_vec(),
        }
    }
}

/// All ordered pairs `(a, b)` with `a` before `b` in `items` — the paper
/// pairs every two training graphs to create the training set. Generic so
/// it works over [`GraphId`] lists and plain index lists alike.
#[must_use]
pub fn all_pairs<T: Copy>(items: &[T]) -> Vec<(T, T)> {
    let mut out = Vec::with_capacity(items.len() * items.len().saturating_sub(1) / 2);
    for (a, &i) in items.iter().enumerate() {
        for &j in &items[a + 1..] {
            out.push((i, j));
        }
    }
    out
}

/// For each query, samples `partners` items from `pool` (with replacement
/// across queries, without within a query when possible) — the "100 graphs
/// per test graph" pairing scheme of Section 6.1.
pub fn query_pairs<T: Copy + PartialEq, R: Rng>(
    queries: &[T],
    pool: &[T],
    partners: usize,
    rng: &mut R,
) -> Vec<(T, T)> {
    let mut out = Vec::with_capacity(queries.len() * partners);
    for &q in queries {
        if pool.len() <= partners {
            for &p in pool {
                if p != q {
                    out.push((q, p));
                }
            }
        } else {
            let sample: Vec<T> = pool.choose_multiple(rng, partners + 1).copied().collect();
            let mut taken = 0;
            for p in sample {
                if p != q && taken < partners {
                    out.push((q, p));
                    taken += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn aids_like_stats_in_regime() {
        let mut rng = SmallRng::seed_from_u64(11);
        let ds = GraphDataset::aids_like(120, &mut rng);
        let s = ds.stats();
        assert_eq!(s.count, 120);
        assert!(
            s.avg_nodes >= 5.0 && s.avg_nodes <= 9.5,
            "avg nodes {}",
            s.avg_nodes
        );
        assert!(s.max_nodes <= 10);
        assert!(
            s.num_labels > 5,
            "should use a rich alphabet, got {}",
            s.num_labels
        );
        for g in ds.graphs() {
            assert!(g.is_connected());
        }
    }

    #[test]
    fn linux_like_is_unlabeled() {
        let mut rng = SmallRng::seed_from_u64(12);
        let ds = GraphDataset::linux_like(50, &mut rng);
        assert_eq!(ds.stats().num_labels, 1);
        assert!(ds.stats().max_nodes <= 10);
    }

    #[test]
    fn imdb_like_is_denser_with_tail() {
        let mut rng = SmallRng::seed_from_u64(13);
        let ds = GraphDataset::imdb_like(100, 24, &mut rng);
        let s = ds.stats();
        assert!(s.max_nodes > 10, "needs a large-graph tail");
        // Denser than a tree on average.
        assert!(
            s.avg_edges > s.avg_nodes,
            "avg_edges {} <= avg_nodes {}",
            s.avg_edges,
            s.avg_nodes
        );
    }

    #[test]
    fn builders_precompute_signatures() {
        let mut rng = SmallRng::seed_from_u64(16);
        let ds = GraphDataset::aids_like(10, &mut rng);
        for (id, g, sig) in ds.entries() {
            assert_eq!(sig.num_nodes(), g.num_nodes(), "{id}");
            assert_eq!(sig.num_edges(), g.num_edges(), "{id}");
            assert_eq!(sig.labels(), g.label_multiset().as_slice(), "{id}");
        }
    }

    #[test]
    fn split_proportions() {
        let mut rng = SmallRng::seed_from_u64(14);
        let ds = GraphDataset::linux_like(100, &mut rng);
        let split = ds.split(&mut rng);
        assert_eq!(split.train.len(), 60);
        assert_eq!(split.val.len(), 20);
        assert_eq!(split.test.len(), 20);
        let mut all: Vec<GraphId> = split
            .train
            .iter()
            .chain(&split.val)
            .chain(&split.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, ds.ids(), "the split partitions exactly the store");
        // Split ids resolve in the dataset's store.
        for id in all {
            assert!(ds.contains(id));
        }
    }

    #[test]
    fn pairing_helpers() {
        let pairs = all_pairs(&[3usize, 5, 9]);
        assert_eq!(pairs, vec![(3, 5), (3, 9), (5, 9)]);

        let mut rng = SmallRng::seed_from_u64(15);
        let qp = query_pairs(&[0usize, 1], &(2..50).collect::<Vec<_>>(), 10, &mut rng);
        assert_eq!(qp.len(), 20);
        for &(q, p) in &qp {
            assert!(q < 2 && p >= 2);
        }
    }
}
