//! A compact VF2-style graph isomorphism check.
//!
//! Used by tests and the edit-path verifier to confirm that applying a
//! generated edit path to `G1` really produces `G2`. Exponential in the
//! worst case, but the graphs in this project are small (tens of nodes) and
//! the degree/label pruning makes it fast in practice.

use crate::graph::Graph;

/// Returns `true` if `g1` and `g2` are isomorphic as labeled graphs.
#[must_use]
pub fn are_isomorphic(g1: &Graph, g2: &Graph) -> bool {
    if g1.num_nodes() != g2.num_nodes() || g1.num_edges() != g2.num_edges() {
        return false;
    }
    if g1.label_multiset() != g2.label_multiset() {
        return false;
    }
    let mut deg1: Vec<usize> = (0..g1.num_nodes() as u32).map(|u| g1.degree(u)).collect();
    let mut deg2: Vec<usize> = (0..g2.num_nodes() as u32).map(|u| g2.degree(u)).collect();
    deg1.sort_unstable();
    deg2.sort_unstable();
    if deg1 != deg2 {
        return false;
    }

    let n = g1.num_nodes();
    // Match nodes of g1 in descending-degree order for better pruning.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(g1.degree(u)));

    let mut mapping = vec![u32::MAX; n];
    let mut used = vec![false; n];
    backtrack(g1, g2, &order, 0, &mut mapping, &mut used)
}

fn backtrack(
    g1: &Graph,
    g2: &Graph,
    order: &[u32],
    depth: usize,
    mapping: &mut [u32],
    used: &mut [bool],
) -> bool {
    if depth == order.len() {
        return true;
    }
    let u = order[depth];
    'candidates: for v in 0..g2.num_nodes() as u32 {
        if used[v as usize] || g1.label(u) != g2.label(v) || g1.degree(u) != g2.degree(v) {
            continue;
        }
        // Consistency with already-mapped neighbors (both directions).
        for &w in g1.neighbors(u) {
            let mw = mapping[w as usize];
            if mw != u32::MAX && !g2.has_edge(v, mw) {
                continue 'candidates;
            }
        }
        for &x in g2.neighbors(v) {
            // If x is the image of some mapped node w, then (u,w) must be an
            // edge of g1. Scan mapped prefix (graphs are small).
            for &w in order.iter().take(depth) {
                if mapping[w as usize] == x && !g1.has_edge(u, w) {
                    continue 'candidates;
                }
            }
        }
        mapping[u as usize] = v;
        used[v as usize] = true;
        if backtrack(g1, g2, order, depth + 1, mapping, used) {
            return true;
        }
        mapping[u as usize] = u32::MAX;
        used[v as usize] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Label;

    #[test]
    fn permuted_graphs_are_isomorphic() {
        let g1 = Graph::from_edges(
            vec![Label(1), Label(2), Label(3), Label(1)],
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
        );
        // Same cycle, nodes renamed by the rotation 0->2,1->3,2->0,3->1.
        let g2 = Graph::from_edges(
            vec![Label(3), Label(1), Label(1), Label(2)],
            &[(2, 3), (3, 0), (0, 1), (1, 2)],
        );
        assert!(are_isomorphic(&g1, &g2));
    }

    #[test]
    fn label_mismatch_detected() {
        let g1 = Graph::from_edges(vec![Label(1), Label(2)], &[(0, 1)]);
        let g2 = Graph::from_edges(vec![Label(1), Label(3)], &[(0, 1)]);
        assert!(!are_isomorphic(&g1, &g2));
    }

    #[test]
    fn structure_mismatch_detected() {
        // Path P4 vs star K1,3: same degrees multiset? P4: 1,2,2,1; star: 3,1,1,1.
        let p4 = Graph::unlabeled_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let star = Graph::unlabeled_from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert!(!are_isomorphic(&p4, &star));
    }

    #[test]
    fn same_degree_sequence_different_structure() {
        // C6 vs two triangles: all degrees 2, not isomorphic.
        let c6 = Graph::unlabeled_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let tt = Graph::unlabeled_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert!(!are_isomorphic(&c6, &tt));
        assert!(are_isomorphic(&c6, &c6));
    }

    #[test]
    fn empty_graphs() {
        assert!(are_isomorphic(&Graph::new(), &Graph::new()));
    }
}
