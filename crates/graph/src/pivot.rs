//! Triangle-inequality metric pruning: a pivot table over a
//! [`GraphStore`].
//!
//! GED is a metric, so exact distances to a small set of reference graphs
//! ("pivots") bound the distance between *any* query and *any* stored
//! graph without touching either graph:
//!
//! ```text
//! |d(q, p) − d(p, g)|  ≤  d(q, g)  ≤  d(q, p) + d(p, g)
//! ```
//!
//! A [`PivotIndex`] materializes `d(p_i, g)` for every stored graph `g`
//! and every pivot `p_i` once, at index-build time. At query time the
//! caller computes the `p` query-to-pivot distances and derives, per
//! candidate, the tightest lower bound `max_i |d(q,p_i) − d(p_i,g)|` and
//! upper bound `min_i d(q,p_i) + d(p_i,g)` via [`PivotIndex::bounds`] —
//! one table row scan per candidate, no graph access.
//!
//! # Distance oracle
//!
//! This crate knows nothing about GED solvers, so every distance the
//! index stores is produced by a caller-supplied oracle
//! `FnMut(&Graph, &Graph) -> PivotDistance`. The oracle may return an
//! exact distance or — when an exact computation blows a budget — a
//! `[lb, ub]` interval ([`PivotDistance::interval`]); the triangle-
//! inequality bounds degrade gracefully to interval arithmetic and stay
//! admissible as long as the oracle's intervals genuinely contain the
//! true metric distance. `ged-core` supplies the production oracle (a
//! feasible-upper-bound-bounded exact A\* with node-expansion budget).
//!
//! # Pivot selection
//!
//! Pivots are chosen by deterministic farthest-point (max–min) selection:
//! the first pivot is the smallest live [`GraphId`], each next pivot is
//! the stored graph maximizing its minimum distance to the already
//! selected pivots (ties broken by smallest id). Selection reuses the
//! very columns the table needs anyway, so building an index costs
//! exactly `p · n` oracle calls.
//!
//! # Incremental maintenance
//!
//! [`PivotIndex::sync`] diffs the index against the store using the
//! [`GraphStore::revision`] hook (`O(1)` when nothing changed): new
//! graphs get a table row, removed graphs lose theirs, and removing a
//! pivot graph drops its column everywhere and re-runs max–min selection
//! to replace it. Because correctness never depends on *which* pivots are
//! selected (the bounds are admissible for any pivot set), an
//! incrementally maintained index answers every query exactly like a
//! freshly built one.

use crate::graph::Graph;
use crate::store::{GraphId, GraphStore};
use std::collections::BTreeMap;

/// One stored distance of a pivot table: either an exact metric distance
/// or a `[lb, ub]` interval guaranteed to contain it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PivotDistance {
    lb: usize,
    ub: usize,
}

impl PivotDistance {
    /// An exactly known distance (`lb = ub = d`).
    #[must_use]
    pub fn exact(d: usize) -> Self {
        PivotDistance { lb: d, ub: d }
    }

    /// A distance known only up to an interval `[lb, ub]`.
    ///
    /// # Panics
    /// Panics if `lb > ub` — an empty interval can never contain the true
    /// distance, so storing one would silently break every bound derived
    /// from it.
    #[must_use]
    pub fn interval(lb: usize, ub: usize) -> Self {
        assert!(lb <= ub, "PivotDistance: empty interval [{lb}, {ub}]");
        PivotDistance { lb, ub }
    }

    /// The interval's lower end (equals the distance when exact).
    #[must_use]
    pub fn lb(&self) -> usize {
        self.lb
    }

    /// The interval's upper end (equals the distance when exact).
    #[must_use]
    pub fn ub(&self) -> usize {
        self.ub
    }

    /// Whether the distance is exactly known.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.lb == self.ub
    }
}

/// A pivot table over one [`GraphStore`]: `p` reference graphs plus the
/// (possibly interval-valued) distance from every stored graph to every
/// pivot. See the [module docs](self) for the design.
#[derive(Clone, Debug)]
pub struct PivotIndex {
    /// How many pivots the index aims for (clamped to the store size).
    target: usize,
    /// The store revision the table was last synchronized against.
    revision: u64,
    /// Selected pivot ids, in selection order (= column order).
    pivots: Vec<GraphId>,
    /// Per stored graph, its distances to `pivots` (same column order).
    rows: BTreeMap<GraphId, Vec<PivotDistance>>,
}

impl PivotIndex {
    /// Builds an index over the current contents of `store`, selecting up
    /// to `target` pivots by deterministic max–min selection and filling
    /// the distance table through `oracle` (`target.min(store.len())`
    /// columns × `store.len()` rows of oracle calls; the self-distance of
    /// a pivot is hardwired to exact 0 — `d(g, g) = 0` for any metric).
    #[must_use]
    pub fn build<F>(store: &GraphStore, target: usize, oracle: &mut F) -> Self
    where
        F: FnMut(&Graph, &Graph) -> PivotDistance,
    {
        let mut index = PivotIndex {
            target,
            revision: store.revision(),
            pivots: Vec::new(),
            rows: store.ids().into_iter().map(|id| (id, Vec::new())).collect(),
        };
        index.extend_pivots(store, oracle);
        index
    }

    /// Re-synchronizes the table with `store` after any number of
    /// [`GraphStore::insert`] / [`GraphStore::remove`] calls:
    ///
    /// * `O(1)` no-op when [`GraphStore::revision`] is unchanged;
    /// * removed graphs lose their row; a removed **pivot** additionally
    ///   loses its column everywhere, and max–min selection runs again to
    ///   replace it (the replacement's column is computed fresh);
    /// * inserted graphs get a row (one oracle call per current pivot);
    /// * if the store grew past a previously clamped pivot count, new
    ///   pivots are selected up to the target.
    pub fn sync<F>(&mut self, store: &GraphStore, oracle: &mut F)
    where
        F: FnMut(&Graph, &Graph) -> PivotDistance,
    {
        if self.revision == store.revision() {
            return;
        }
        // Rows whose graph left the store. Ids are never reused, so a
        // surviving id is guaranteed to still name the same graph.
        let dead: Vec<GraphId> = self
            .rows
            .keys()
            .copied()
            .filter(|&id| !store.contains(id))
            .collect();
        let dead_columns: Vec<usize> = self
            .pivots
            .iter()
            .enumerate()
            .filter(|(_, p)| !store.contains(**p))
            .map(|(col, _)| col)
            .collect();
        for &col in dead_columns.iter().rev() {
            self.pivots.remove(col);
            for row in self.rows.values_mut() {
                row.remove(col);
            }
        }
        for id in dead {
            self.rows.remove(&id);
        }
        // Fresh graphs: one oracle call per surviving pivot.
        for (id, g, _) in store.entries() {
            if !self.rows.contains_key(&id) {
                let row = self.pivots.iter().map(|&p| oracle(&store[p], g)).collect();
                self.rows.insert(id, row);
            }
        }
        self.extend_pivots(store, oracle);
        self.revision = store.revision();
    }

    /// Max–min selection up to `target.min(store.len())` pivots, filling
    /// each new pivot's column as it is chosen. Deterministic: the first
    /// pivot is the smallest id, later ties break toward the smaller id,
    /// and distances compare by their interval lower end.
    fn extend_pivots<F>(&mut self, store: &GraphStore, oracle: &mut F)
    where
        F: FnMut(&Graph, &Graph) -> PivotDistance,
    {
        let want = self.target.min(self.rows.len());
        while self.pivots.len() < want {
            let next = if self.pivots.is_empty() {
                *self.rows.keys().next().expect("rows nonempty: want > 0")
            } else {
                self.rows
                    .iter()
                    .filter(|(id, _)| !self.pivots.contains(id))
                    .max_by_key(|(id, row)| {
                        let spread = row.iter().map(PivotDistance::lb).min().unwrap_or(0);
                        // BTreeMap iterates ascending and `max_by_key`
                        // keeps the *last* maximum, so invert the id to
                        // make ties resolve to the smallest one.
                        (spread, std::cmp::Reverse(*id))
                    })
                    .map(|(&id, _)| id)
                    .expect("fewer pivots than rows")
            };
            self.pivots.push(next);
            let pivot_graph = store[next].clone();
            for (&id, row) in &mut self.rows {
                row.push(if id == next {
                    PivotDistance::exact(0)
                } else {
                    oracle(&pivot_graph, &store[id])
                });
            }
        }
    }

    /// Distances from `query` to every pivot, in column order — compute
    /// once per query, then feed to [`PivotIndex::bounds`] per candidate.
    /// Call only after [`PivotIndex::sync`] against the same store.
    ///
    /// # Panics
    /// Panics if a pivot id does not resolve in `store` (the index is out
    /// of sync).
    #[must_use]
    pub fn query_distances<F>(
        &self,
        store: &GraphStore,
        query: &Graph,
        oracle: &mut F,
    ) -> Vec<PivotDistance>
    where
        F: FnMut(&Graph, &Graph) -> PivotDistance,
    {
        self.pivots
            .iter()
            .map(|&p| oracle(&store[p], query))
            .collect()
    }

    /// The triangle-inequality bounds `(lb, ub)` on `d(query, id)` given
    /// the precomputed query-to-pivot distances: the tightest
    /// `lb = max_i max(q_i.lb − g_i.ub, g_i.lb − q_i.ub, 0)` and
    /// `ub = min_i (q_i.ub + g_i.ub)` over all pivots. With zero pivots
    /// this degrades to the vacuous `(0, usize::MAX)`. Returns `None` for
    /// an id the table does not hold.
    #[must_use]
    pub fn bounds(&self, query_dists: &[PivotDistance], id: GraphId) -> Option<(usize, usize)> {
        let row = self.rows.get(&id)?;
        debug_assert_eq!(row.len(), query_dists.len(), "one distance per pivot");
        let mut lb = 0usize;
        let mut ub = usize::MAX;
        for (q, g) in query_dists.iter().zip(row) {
            lb = lb
                .max(q.lb().saturating_sub(g.ub()))
                .max(g.lb().saturating_sub(q.ub()));
            ub = ub.min(q.ub().saturating_add(g.ub()));
        }
        Some((lb, ub))
    }

    /// The triangle-inequality bounds `(lb, ub)` on `d(a, b)` for two
    /// graphs the table already holds, combining their stored rows —
    /// the tightest `lb = max_i max(a_i.lb − b_i.ub, b_i.lb − a_i.ub)`
    /// and `ub = min_i (a_i.ub + b_i.ub)` over all pivots. Because both
    /// sides are members, building the index is the *only* arming cost:
    /// a self-join reads pair bounds straight out of the table with
    /// zero per-row oracle calls. With zero pivots this degrades to the
    /// vacuous `(0, usize::MAX)`. Returns `None` if either id has no
    /// table row.
    #[must_use]
    pub fn member_bounds(&self, a: GraphId, b: GraphId) -> Option<(usize, usize)> {
        let ra = self.rows.get(&a)?;
        let rb = self.rows.get(&b)?;
        let mut lb = 0usize;
        let mut ub = usize::MAX;
        for (da, db) in ra.iter().zip(rb) {
            lb = lb
                .max(da.lb().saturating_sub(db.ub()))
                .max(db.lb().saturating_sub(da.ub()));
            ub = ub.min(da.ub().saturating_add(db.ub()));
        }
        Some((lb, ub))
    }

    /// The selected pivot ids, in selection (= column) order.
    #[must_use]
    pub fn pivots(&self) -> &[GraphId] {
        &self.pivots
    }

    /// Number of selected pivots (≤ [`PivotIndex::target`]).
    #[must_use]
    pub fn pivot_count(&self) -> usize {
        self.pivots.len()
    }

    /// The per-query arming cost of this index, in query-to-pivot
    /// distance computations: what one call to
    /// [`PivotIndex::query_distances`] spends before any per-candidate
    /// bound can be read. The tier-cost hook query planners weigh the
    /// pivot tier's observed yield against.
    #[must_use]
    pub fn query_cost(&self) -> usize {
        self.pivots.len()
    }

    /// The pivot count the index aims for (clamped to the store size at
    /// selection time).
    #[must_use]
    pub fn target(&self) -> usize {
        self.target
    }

    /// Number of table rows (= graphs in the synchronized store).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether `id` has a table row.
    #[must_use]
    pub fn contains(&self, id: GraphId) -> bool {
        self.rows.contains_key(&id)
    }

    /// The stored distances from the graph behind `id` to every pivot, in
    /// column order, or `None` for an unknown id.
    #[must_use]
    pub fn distances(&self, id: GraphId) -> Option<&[PivotDistance]> {
        self.rows.get(&id).map(Vec::as_slice)
    }

    /// The store revision the table was last synchronized against.
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Reassembles an index from persisted parts (snapshot load only).
    /// The caller is responsible for the parts being mutually consistent:
    /// every row the same length as `pivots`, every pivot owning a row.
    /// Because the persisted `revision` is carried through, a loaded
    /// index resumes incremental [`PivotIndex::sync`] exactly where the
    /// saved one left off — in particular, syncing against an unchanged
    /// restored store is an `O(1)` no-op.
    pub(crate) fn from_parts(
        target: usize,
        revision: u64,
        pivots: Vec<GraphId>,
        rows: BTreeMap<GraphId, Vec<PivotDistance>>,
    ) -> Self {
        debug_assert!(rows.values().all(|row| row.len() == pivots.len()));
        debug_assert!(pivots.iter().all(|p| rows.contains_key(p)));
        PivotIndex {
            target,
            revision,
            pivots,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Label;

    /// A cheap true metric on graphs: the L1 distance between node-label
    /// count vectors (multiset symmetric difference size).
    fn label_metric(a: &Graph, b: &Graph) -> usize {
        let (la, lb) = (a.label_multiset(), b.label_multiset());
        let (mut i, mut j, mut diff) = (0, 0, 0usize);
        while i < la.len() && j < lb.len() {
            match la[i].cmp(&lb[j]) {
                std::cmp::Ordering::Less => {
                    diff += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    diff += 1;
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        diff + (la.len() - i) + (lb.len() - j)
    }

    fn exact_oracle() -> impl FnMut(&Graph, &Graph) -> PivotDistance {
        |a, b| PivotDistance::exact(label_metric(a, b))
    }

    fn bag(labels: &[u32]) -> Graph {
        Graph::from_edges(labels.iter().map(|&l| Label(l)).collect(), &[])
    }

    fn store_of(bags: &[&[u32]]) -> (GraphStore, Vec<GraphId>) {
        let mut store = GraphStore::new();
        let ids = bags.iter().map(|ls| store.insert(bag(ls))).collect();
        (store, ids)
    }

    #[test]
    fn distance_constructors_validate() {
        assert!(PivotDistance::exact(3).is_exact());
        assert_eq!(PivotDistance::exact(3).lb(), 3);
        assert_eq!(PivotDistance::exact(3).ub(), 3);
        let iv = PivotDistance::interval(1, 4);
        assert!(!iv.is_exact());
        let empty = std::panic::catch_unwind(|| PivotDistance::interval(4, 1));
        assert!(empty.is_err(), "empty intervals must be rejected");
    }

    #[test]
    fn selection_is_deterministic_max_min() {
        // Distances from the first graph (= first pivot, smallest id):
        // b:2  c:4  d:4. Max–min picks distance 4 with the smaller id (c),
        // then the next pivot maximizes min(d-to-a, d-to-c).
        let (store, ids) = store_of(&[&[1, 2], &[1, 3], &[4, 5], &[6, 7]]);
        let idx = PivotIndex::build(&store, 3, &mut exact_oracle());
        assert_eq!(idx.pivots()[0], ids[0], "first pivot is the smallest id");
        assert_eq!(
            idx.pivots()[1],
            ids[2],
            "farthest point, smallest-id tie-break"
        );
        assert_eq!(idx.pivot_count(), 3);
        assert_eq!(idx.len(), store.len());
        // Rebuilding gives the identical index.
        let again = PivotIndex::build(&store, 3, &mut exact_oracle());
        assert_eq!(idx.pivots(), again.pivots());
        for id in store.ids() {
            assert_eq!(idx.distances(id), again.distances(id));
        }
    }

    #[test]
    fn bounds_sandwich_the_true_metric() {
        let (store, _) = store_of(&[&[1, 2, 3], &[1, 2], &[4], &[1, 4, 5, 6], &[2, 3]]);
        let idx = PivotIndex::build(&store, 2, &mut exact_oracle());
        let query = bag(&[1, 5]);
        let qd = idx.query_distances(&store, &query, &mut exact_oracle());
        for (id, g) in store.iter() {
            let (lb, ub) = idx.bounds(&qd, id).expect("row exists");
            let d = label_metric(&query, g);
            assert!(lb <= d && d <= ub, "bounds [{lb}, {ub}] must contain {d}");
        }
    }

    #[test]
    fn interval_oracles_keep_bounds_admissible() {
        // An oracle that only knows distances up to ±1 slack.
        let mut fuzzy = |a: &Graph, b: &Graph| {
            let d = label_metric(a, b);
            PivotDistance::interval(d.saturating_sub(1), d + 1)
        };
        let (store, _) = store_of(&[&[1, 2, 3], &[1, 2], &[4], &[1, 4, 5, 6]]);
        let idx = PivotIndex::build(&store, 2, &mut fuzzy);
        let query = bag(&[2, 4]);
        let qd = idx.query_distances(&store, &query, &mut fuzzy);
        for (id, g) in store.iter() {
            let (lb, ub) = idx.bounds(&qd, id).expect("row exists");
            let d = label_metric(&query, g);
            assert!(lb <= d && d <= ub, "interval bounds [{lb}, {ub}] vs {d}");
        }
    }

    #[test]
    fn member_bounds_sandwich_the_true_metric() {
        let (store, _) = store_of(&[&[1, 2, 3], &[1, 2], &[4], &[1, 4, 5, 6], &[2, 3]]);
        let idx = PivotIndex::build(&store, 2, &mut exact_oracle());
        for (a, ga) in store.iter() {
            for (b, gb) in store.iter() {
                let (lb, ub) = idx.member_bounds(a, b).expect("both rows exist");
                let d = label_metric(ga, gb);
                assert!(lb <= d && d <= ub, "bounds [{lb}, {ub}] must contain {d}");
            }
        }
        // Zero pivots: vacuous; foreign ids: no bounds.
        let empty = PivotIndex::build(&store, 0, &mut exact_oracle());
        let ids = store.ids();
        assert_eq!(empty.member_bounds(ids[0], ids[1]), Some((0, usize::MAX)));
        let (_, foreign) = store_of(&[&[9]]);
        assert_eq!(idx.member_bounds(ids[0], foreign[0]), None);
    }

    #[test]
    fn zero_pivots_yield_vacuous_bounds() {
        let (store, ids) = store_of(&[&[1], &[2]]);
        let idx = PivotIndex::build(&store, 0, &mut exact_oracle());
        assert_eq!(idx.pivot_count(), 0);
        let qd = idx.query_distances(&store, &bag(&[3]), &mut exact_oracle());
        assert!(qd.is_empty());
        assert_eq!(idx.bounds(&qd, ids[0]), Some((0, usize::MAX)));
    }

    #[test]
    fn target_beyond_store_clamps_then_grows_on_sync() {
        let (mut store, ids) = store_of(&[&[1, 1]]);
        let mut oracle = exact_oracle();
        let mut idx = PivotIndex::build(&store, 3, &mut oracle);
        assert_eq!(idx.pivot_count(), 1, "clamped to the store size");
        assert_eq!(idx.distances(ids[0]), Some(&[PivotDistance::exact(0)][..]));

        let b = store.insert(bag(&[2, 3]));
        let c = store.insert(bag(&[4]));
        idx.sync(&store, &mut oracle);
        assert_eq!(idx.pivot_count(), 3, "selection grows toward the target");
        assert_eq!(idx.len(), 3);
        for id in [ids[0], b, c] {
            assert!(idx.contains(id));
            assert_eq!(idx.distances(id).unwrap().len(), 3);
        }
    }

    #[test]
    fn sync_is_a_noop_on_unchanged_revision() {
        let (store, _) = store_of(&[&[1], &[2], &[3]]);
        let calls = std::cell::Cell::new(0usize);
        let mut counting = |a: &Graph, b: &Graph| {
            calls.set(calls.get() + 1);
            PivotDistance::exact(label_metric(a, b))
        };
        let mut idx = PivotIndex::build(&store, 2, &mut counting);
        let after_build = calls.get();
        assert!(after_build > 0);
        idx.sync(&store, &mut counting);
        assert_eq!(
            calls.get(),
            after_build,
            "unchanged store costs zero oracle calls"
        );
        assert_eq!(idx.revision(), store.revision());
    }

    #[test]
    fn removing_a_pivot_drops_its_column_and_reselects() {
        let (mut store, ids) = store_of(&[&[1, 2], &[1, 3], &[4, 5], &[6, 7]]);
        let mut oracle = exact_oracle();
        let mut idx = PivotIndex::build(&store, 2, &mut oracle);
        let victim = idx.pivots()[0];
        assert_eq!(victim, ids[0]);

        store.remove(victim);
        idx.sync(&store, &mut oracle);
        assert!(!idx.contains(victim), "the row is gone");
        assert!(
            !idx.pivots().contains(&victim),
            "the dead pivot is deselected"
        );
        assert_eq!(idx.pivot_count(), 2, "selection replaced the lost pivot");
        assert_eq!(idx.len(), store.len());
        // Every surviving row matches the reselected pivot columns, and
        // the bounds stay admissible.
        let query = bag(&[1, 6]);
        let qd = idx.query_distances(&store, &query, &mut oracle);
        for (id, g) in store.iter() {
            assert_eq!(idx.distances(id).unwrap().len(), idx.pivot_count());
            let (lb, ub) = idx.bounds(&qd, id).unwrap();
            let d = label_metric(&query, g);
            assert!(lb <= d && d <= ub);
        }
    }

    #[test]
    fn inserts_add_rows_without_touching_pivots() {
        let (mut store, _) = store_of(&[&[1, 2], &[3, 4], &[5, 6]]);
        let mut oracle = exact_oracle();
        let mut idx = PivotIndex::build(&store, 2, &mut oracle);
        let before = idx.pivots().to_vec();
        let fresh = store.insert(bag(&[7, 8, 9]));
        idx.sync(&store, &mut oracle);
        assert_eq!(idx.pivots(), before, "inserts keep the pivot set stable");
        let row = idx.distances(fresh).expect("fresh row");
        assert_eq!(row.len(), 2);
        for (col, &p) in before.iter().enumerate() {
            assert_eq!(row[col].lb(), label_metric(&store[p], &store[fresh]));
        }
    }

    #[test]
    fn unknown_ids_have_no_bounds() {
        let (store, _) = store_of(&[&[1], &[2]]);
        let (other, foreign) = store_of(&[&[9]]);
        let _ = other;
        let idx = PivotIndex::build(&store, 1, &mut exact_oracle());
        let qd = idx.query_distances(&store, &bag(&[1]), &mut exact_oracle());
        assert_eq!(idx.bounds(&qd, foreign[0]), None);
    }
}
